(* Generalized association rules over a product taxonomy.

   Individual SKUs are often too thin to support any rule, yet their
   categories associate strongly — the classic example from the
   generalized-rules literature the paper cites: no single jacket model
   sells with hiking boots often enough to matter, but "outerwear" does.
   This example builds a small product taxonomy, extends the baskets
   with category memberships, and mines category-level rules through
   the ordinary online engine.

   Run with: dune exec examples/category_insights.exe *)

open Olar_data
open Olar_taxonomy

(* Leaf products and their categories, with names for readability. *)
let names =
  [
    (* 0-5: leaf products *)
    "alpine jacket"; "trail jacket"; "ski pants"; "hiking boots";
    "trail runners"; "wool shirt";
    (* 6-9: categories *)
    "outerwear"; "footwear"; "clothing"; "hiking gear";
  ]

let taxonomy () =
  (* alpine jacket, trail jacket, ski pants -> outerwear -> clothing
     hiking boots, trail runners -> footwear -> hiking gear
     wool shirt -> clothing *)
  Taxonomy.of_parents ~num_items:(List.length names)
    [ (0, 6); (1, 6); (2, 6); (6, 8); (3, 7); (4, 7); (7, 9); (5, 8) ]

let build_baskets () =
  let rng = Olar_util.Rng.of_int 88 in
  let baskets = ref [] in
  for _ = 1 to 3_000 do
    let basket = Hashtbl.create 4 in
    (* a customer buys SOME outerwear piece with 25% probability; which
       piece is uniform — so each SKU alone sits near 8% *)
    if Olar_util.Rng.float rng < 0.25 then begin
      Hashtbl.replace basket (Olar_util.Rng.int rng 3) ();
      (* outerwear buyers very often also take some footwear *)
      if Olar_util.Rng.float rng < 0.8 then
        Hashtbl.replace basket (3 + Olar_util.Rng.int rng 2) ()
    end
    else if Olar_util.Rng.float rng < 0.15 then
      Hashtbl.replace basket (3 + Olar_util.Rng.int rng 2) ();
    if Olar_util.Rng.float rng < 0.3 then Hashtbl.replace basket 5 ();
    baskets := Hashtbl.fold (fun i () acc -> i :: acc) basket [] :: !baskets
  done;
  Database.of_lists ~num_items:(List.length names) !baskets

let () =
  let vocab = Item.Vocab.of_names names in
  let taxonomy = taxonomy () in
  let db = build_baskets () in
  Format.printf "%d baskets over %d SKUs in %d categories@." (Database.size db)
    (List.length (Taxonomy.leaves taxonomy))
    (List.length names - List.length (Taxonomy.leaves taxonomy));

  (* 1. SKU-level mining: at a rule-worthy confidence, the thin SKUs
     produce nothing interesting. *)
  let engine = Olar_core.Engine.at_threshold db ~primary_support:0.01 in
  let sku_rules = Olar_core.Engine.essential_rules engine ~minsup:0.05 ~minconf:0.6 in
  Format.printf "@.SKU-level essential rules at (5%%, 60%%): %d@."
    (List.length sku_rules);

  (* 2. Extend baskets with the taxonomy and clean the lattice before
     rule generation. *)
  let extended = Generalize.extend_database taxonomy db in
  let raw = Olar_core.Engine.at_threshold extended ~primary_support:0.01 in
  let clean_lattice =
    Generalize.clean_lattice taxonomy (Olar_core.Engine.lattice raw)
  in
  let clean = Olar_core.Engine.of_lattice clean_lattice in
  Format.printf
    "extended lattice: %d itemsets, %d after removing item-with-own-ancestor sets@."
    (Olar_core.Lattice.num_vertices (Olar_core.Engine.lattice raw) - 1)
    (Olar_core.Lattice.num_vertices clean_lattice - 1);

  let rules = Olar_core.Engine.essential_rules clean ~minsup:0.05 ~minconf:0.6 in
  let informative = Generalize.prune_rules taxonomy rules in
  Format.printf
    "@.category-level essential rules at (5%%, 60%%): %d (%d after taxonomy pruning)@."
    (List.length rules) (List.length informative);
  List.iter
    (fun r ->
      Format.printf "  %a  [%a]@."
        (Olar_core.Rule.pp_named vocab)
        r Olar_core.Interest.pp
        (Olar_core.Interest.measures clean_lattice r))
    informative;

  (* 3. The headline insight, queried directly: what does outerwear
     pull? *)
  let outerwear = Itemset.singleton (Option.get (Item.Vocab.id vocab "outerwear")) in
  let constraints =
    { Olar_core.Boundary.unconstrained with
      Olar_core.Boundary.antecedent_includes = outerwear }
  in
  let pulled =
    Generalize.prune_rules taxonomy
      (Olar_core.Engine.essential_rules clean ~constraints ~minsup:0.05
         ~minconf:0.5)
  in
  Format.printf "@.rules with outerwear in the antecedent:@.";
  List.iter
    (fun r -> Format.printf "  %a@." (Olar_core.Rule.pp_named vocab) r)
    pulled
