(* Redundancy in rule generation (Section 4 and Figures 11-12).

   Shows how many of the rules produced by naive subset enumeration are
   simple/strict-redundant, how the count explodes with consequent size
   (Theorem 4.3), and how the redundancy ratio moves with the support
   and confidence thresholds on synthetic data.

   Run with: dune exec examples/redundancy_report.exe *)

open Olar_data

let () =
  (* Theorem 4.3: redundant rules per rule, by consequent size. *)
  Format.printf "Theorem 4.3 - redundant rules implied by one rule X => Y:@.";
  Format.printf "  %-4s %-18s %-18s@." "|Y|" "simple (2^m-2)" "total (3^m-2^m-1)";
  for m = 1 to 8 do
    Format.printf "  %-4d %-18d %-18d@." m
      (Olar_core.Rule.count_simple_redundant ~consequent_size:m)
      (Olar_core.Rule.count_all_redundant ~consequent_size:m)
  done;

  (* A concrete dataset. *)
  let params =
    {
      (Option.get (Olar_datagen.Params.of_name "T10.I6.D5K")) with
      Olar_datagen.Params.num_items = 400;
      seed = 314;
    }
  in
  let db = Olar_datagen.Quest.generate params in
  let engine = Olar_core.Engine.at_threshold db ~primary_support:0.004 in
  Format.printf "@.dataset %s, %d primary itemsets@."
    (Olar_datagen.Params.name params)
    (Olar_core.Engine.num_primary_itemsets engine);

  (* Redundancy ratio vs confidence (Figure 11 shape). *)
  Format.printf "@.redundancy ratio vs confidence (minsup = 0.5%%):@.";
  Format.printf "  %-6s %-8s %-10s %-7s@." "conf" "total" "essential" "ratio";
  List.iter
    (fun c ->
      let r = Olar_core.Engine.redundancy engine ~minsup:0.005 ~minconf:c in
      Format.printf "  %-6.2f %-8d %-10d %-7.2f@." c r.Olar_core.Rulegen.total_rules
        r.Olar_core.Rulegen.essential_count r.Olar_core.Rulegen.redundancy_ratio)
    [ 0.9; 0.8; 0.7; 0.6; 0.5 ];

  (* Redundancy ratio vs support (Figure 12 shape). *)
  Format.printf "@.redundancy ratio vs support (minconf = 50%%):@.";
  Format.printf "  %-8s %-8s %-10s %-7s@." "minsup" "total" "essential" "ratio";
  List.iter
    (fun s ->
      let r = Olar_core.Engine.redundancy engine ~minsup:s ~minconf:0.5 in
      Format.printf "  %-8.3f %-8d %-10d %-7.2f@." s r.Olar_core.Rulegen.total_rules
        r.Olar_core.Rulegen.essential_count r.Olar_core.Rulegen.redundancy_ratio)
    [ 0.01; 0.008; 0.006; 0.005; 0.004 ];

  (* A side-by-side on one itemset family: everything the naive method
     prints for one pattern vs the essential summary. *)
  let all = Olar_core.Engine.all_rules engine ~minsup:0.006 ~minconf:0.5 in
  let essential =
    Olar_core.Engine.essential_rules engine ~minsup:0.006 ~minconf:0.5
  in
  match essential with
  | [] -> Format.printf "@.(no rules at the chosen thresholds)@."
  | first :: rest ->
    (* Showcase the largest itemset family: that is where redundancy
       explodes (Theorem 4.3). *)
    let bigger a b =
      if
        Itemset.cardinal (Olar_core.Rule.union a)
        >= Itemset.cardinal (Olar_core.Rule.union b)
      then a
      else b
    in
    let family = Olar_core.Rule.union (List.fold_left bigger first rest) in
    let about r = Itemset.subset (Olar_core.Rule.union r) family in
    Format.printf "@.rules generated from subsets of %a:@." Itemset.pp family;
    Format.printf "  naive output (%d rules):@."
      (List.length (List.filter about all));
    List.iter
      (fun r -> if about r then Format.printf "    %a@." Olar_core.Rule.pp r)
      all;
    Format.printf "  essential output (%d rules):@."
      (List.length (List.filter about essential));
    List.iter
      (fun r -> if about r then Format.printf "    %a@." Olar_core.Rule.pp r)
      essential
