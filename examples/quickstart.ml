(* Quickstart: preprocess once, query many.

   Generates a small synthetic market-basket dataset, preprocesses it
   into an adjacency lattice under an itemset budget, then answers a
   series of online queries at different supports and confidences —
   without ever rescanning the transactions.

   Run with: dune exec examples/quickstart.exe *)

open Olar_data

let () =
  (* 1. A synthetic dataset: 5k transactions, ~10 items each (T10.I4). *)
  let params =
    {
      (Option.get (Olar_datagen.Params.of_name "T10.I4.D5K")) with
      Olar_datagen.Params.num_items = 300;
      seed = 2026;
    }
  in
  let db = Olar_datagen.Quest.generate params in
  Format.printf "dataset %s: %d transactions, %d items, avg size %.1f@."
    (Olar_datagen.Params.name params)
    (Database.size db) (Database.num_items db)
    (Database.avg_transaction_size db);

  (* 2. Preprocess once: find the lowest support threshold that fits a
     budget of 2000 prestored itemsets, mine them with DHP, and build
     the adjacency lattice. *)
  let stats = Olar_mining.Stats.create () in
  let engine, preprocess_s =
    Olar_util.Timer.time (fun () ->
        Olar_core.Engine.preprocess ~stats db ~max_itemsets:2000)
  in
  Format.printf
    "preprocessed in %.2fs: %d primary itemsets at threshold %.3f%% (%a)@."
    preprocess_s
    (Olar_core.Engine.num_primary_itemsets engine)
    (100.0 *. Olar_core.Engine.primary_threshold engine)
    Olar_mining.Stats.pp stats;

  (* 3. Query many: each of these hits only the lattice. *)
  let queries = [ (0.02, 0.8); (0.01, 0.8); (0.01, 0.5); (0.005, 0.9) ] in
  List.iter
    (fun (minsup, minconf) ->
      match
        Olar_util.Timer.time (fun () ->
            Olar_core.Engine.essential_rules engine ~minsup ~minconf)
      with
      | rules, dt ->
        Format.printf "@.(minsup=%.3f%%, minconf=%.0f%%): %d essential rules in %.4fs@."
          (100.0 *. minsup) (100.0 *. minconf) (List.length rules) dt;
        List.iteri
          (fun i r -> if i < 5 then Format.printf "  %a@." Olar_core.Rule.pp r)
          rules;
        if List.length rules > 5 then
          Format.printf "  ... and %d more@." (List.length rules - 5)
      | exception Olar_core.Query.Below_primary_threshold { requested; primary } ->
        Format.printf
          "@.(minsup=%.3f%%): below the primary threshold (%d < %d) — not prestored@."
          (100.0 *. minsup) requested primary)
    queries;

  (* 4. Count queries are just as cheap. *)
  Format.printf "@.itemsets at 1%%: %d; at 2%%: %d@."
    (Olar_core.Engine.count_itemsets engine ~minsup:0.01)
    (Olar_core.Engine.count_itemsets engine ~minsup:0.02)
