(* Quantitative association rules over a demographic survey.

   The 0-1 market-basket model extends to tables with numeric and
   categorical columns by giving every categorical value and every
   interval of a numeric column its own item (the paper's reference
   [22]). This example synthesises a survey (age, income, household,
   commute mode), quantizes it, and asks the online engine for rules
   that read as predicates: "age in [a, b) AND commute = car => ...".

   Run with: dune exec examples/quantitative_survey.exe *)

open Olar_quant

let schema =
  [|
    Attribute.numeric "age" ~buckets:4;
    Attribute.numeric "income_k" ~buckets:4;
    Attribute.numeric "household" ~buckets:3;
    Attribute.categorical "commute";
  |]

(* A population with planted structure: income rises with age; larger
   households prefer the car; young singles cycle. *)
let synthesize n =
  let rng = Olar_util.Rng.of_int 4242 in
  Array.init n (fun _ ->
      let age = 18.0 +. (52.0 *. Olar_util.Rng.float rng) in
      let income =
        (age *. 1.1) +. (15.0 *. Olar_util.Rng.float rng)
        +. if age > 40.0 then 12.0 else 0.0
      in
      let household =
        if age < 30.0 then 1.0 +. float_of_int (Olar_util.Rng.int rng 2)
        else 1.0 +. float_of_int (Olar_util.Rng.int rng 4)
      in
      let commute =
        if household >= 3.0 && Olar_util.Rng.float rng < 0.8 then "car"
        else if age < 30.0 && Olar_util.Rng.float rng < 0.6 then "bicycle"
        else if Olar_util.Rng.float rng < 0.5 then "transit"
        else "car"
      in
      [|
        Attribute.Num age; Attribute.Num income; Attribute.Num household;
        Attribute.Cat commute;
      |])

let () =
  let records = synthesize 8_000 in
  let enc = Quant.fit schema records in
  let db = Quant.database enc records in
  Format.printf "%d survey responses quantized onto %d items:@."
    (Array.length records) (Quant.num_items enc);
  List.iter
    (fun i -> Format.printf "  item %d: %s@." i (Quant.item_label enc i))
    (List.init (Quant.num_items enc) Fun.id);

  let engine = Olar_core.Engine.at_threshold db ~primary_support:0.02 in
  Format.printf "@.%d primary itemsets prestored@."
    (Olar_core.Engine.num_primary_itemsets engine);

  (* Broad sweep, essential rules only. *)
  let rules = Olar_core.Engine.essential_rules engine ~minsup:0.08 ~minconf:0.7 in
  Format.printf "@.essential rules at (8%%, 70%%): %d; the strongest by lift:@."
    (List.length rules);
  let by_lift =
    Olar_core.Interest.sort_by `Lift (Olar_core.Engine.lattice engine) rules
  in
  List.iteri
    (fun i r -> if i < 8 then Format.printf "  %a@." (Quant.pp_rule enc) r)
    by_lift;

  (* A targeted question: what characterises car commuters? *)
  let car =
    Olar_data.Itemset.singleton
      (Option.get (Olar_data.Item.Vocab.id (Quant.vocab enc) "commute = car"))
  in
  let constraints =
    { Olar_core.Boundary.unconstrained with
      Olar_core.Boundary.consequent_includes = car }
  in
  let to_car =
    Olar_core.Engine.essential_rules engine ~constraints ~minsup:0.05
      ~minconf:0.6
  in
  Format.printf "@.what predicts commuting by car (conf >= 60%%)?@.";
  List.iteri
    (fun i r -> if i < 6 then Format.printf "  %a@." (Quant.pp_rule enc) r)
    to_car
