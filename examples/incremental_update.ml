(* Keeping the lattice fresh as transactions keep arriving.

   The preprocess-once economics only hold if the prestore survives
   data growth. This example simulates a store that preprocesses its
   history once, then receives daily batches: each batch is folded into
   the lattice in a single pass over the batch (Maintenance.append),
   queries stay exact for every itemset that was primary, and the
   promotion frontier tells the store when enough genuinely-new
   patterns have appeared to justify the slow full rebuild.

   Run with: dune exec examples/incremental_update.exe *)

open Olar_data

let generate ~seed ~num_transactions =
  Olar_datagen.Quest.generate
    {
      Olar_datagen.Params.default with
      Olar_datagen.Params.num_items = 200;
      num_potential = 60;
      num_transactions;
      avg_transaction_size = 8.0;
      avg_itemset_size = 3.0;
      seed;
    }

let slice db ~from ~count =
  Database.create ~num_items:(Database.num_items db)
    (Array.init count (fun i -> Database.get db (from + i)))

let () =
  (* One long stream of normal trade: the first 8k transactions are the
     preprocessed history, the next 3k arrive as daily batches from the
     SAME distribution. Days 4-7 switch to a different assortment. *)
  let stream = generate ~seed:1 ~num_transactions:11_000 in
  let shifted = generate ~seed:77 ~num_transactions:4_000 in
  let history = slice stream ~from:0 ~count:8_000 in
  let engine = Olar_core.Engine.at_threshold history ~primary_support:0.01 in
  let lattice = ref (Olar_core.Engine.lattice engine) in
  Format.printf "history: %d transactions, %d primary itemsets at threshold %d@."
    (Database.size history)
    (Olar_core.Lattice.num_vertices !lattice - 1)
    (Olar_core.Lattice.threshold !lattice);

  (* A week of daily batches; days 4-7 shift the assortment (different
     generator seed ~ new planted patterns) so promotions appear. *)
  let all_batches = ref [] in
  for day = 1 to 7 do
    let batch =
      if day <= 3 then slice stream ~from:(8_000 + ((day - 1) * 1_000)) ~count:1_000
      else slice shifted ~from:((day - 4) * 1_000) ~count:1_000
    in
    all_batches := batch :: !all_batches;
    let update, dt =
      Olar_util.Timer.time (fun () -> Olar_core.Maintenance.append !lattice batch)
    in
    lattice := update.Olar_core.Maintenance.lattice;
    let engine = Olar_core.Engine.of_lattice !lattice in
    let n_rules =
      List.length (Olar_core.Engine.essential_rules engine ~minsup:0.012 ~minconf:0.7)
    in
    Format.printf
      "day %d: +%d transactions folded in %.3fs; db=%d; rules@(1.2%%,70%%)=%d; \
       promotion frontier=%d@."
      day
      update.Olar_core.Maintenance.delta_size
      dt
      (Olar_core.Lattice.db_size !lattice)
      n_rules
      (List.length update.Olar_core.Maintenance.promoted_candidates);
    if List.length update.Olar_core.Maintenance.promoted_candidates > 10 then
      Format.printf
        "        ^ the assortment shifted - scheduling a full rebuild would \
         capture %d new pattern families@."
        (List.length update.Olar_core.Maintenance.promoted_candidates)
  done;

  (* Verify exactness: every maintained count equals a scan over the full
     accumulated data. *)
  let merged =
    let txns = ref [] in
    List.iter
      (fun db -> Database.iter (fun t -> txns := Itemset.to_list t :: !txns) db)
      (!all_batches @ [ history ]);
    Database.of_lists ~num_items:200 !txns
  in
  let mismatches = ref 0 in
  Array.iter
    (fun (x, c) -> if Database.support_count merged x <> c then incr mismatches)
    (Olar_core.Lattice.entries !lattice);
  Format.printf
    "@.verification: %d/%d maintained counts differ from a full rescan@."
    !mismatches
    (Array.length (Olar_core.Lattice.entries !lattice));

  (* The slow path, for contrast. *)
  let _, rebuild_s =
    Olar_util.Timer.time (fun () ->
        Olar_core.Maintenance.rebuild
          ~threshold:(Olar_core.Lattice.threshold !lattice)
          ~old_db:history
          ~delta:
            (Database.of_lists ~num_items:200
               (List.concat_map
                  (fun db -> Database.fold (fun acc t -> Itemset.to_list t :: acc) [] db)
                  !all_batches))
          ())
  in
  Format.printf "a full rebuild takes %.2fs - the appends above averaged ~ms@."
    rebuild_s
