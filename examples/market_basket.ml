(* Market-basket analysis with named items and targeted queries.

   Models the paper's motivating scenario: a store analyst asks focused
   questions — "what do beer buyers also take?", "which rules put
   diapers in the consequent?" — against a preprocessed lattice of a
   hand-crafted shopping dataset with planted correlations.

   Run with: dune exec examples/market_basket.exe *)

open Olar_data

let item_names =
  [
    "beer"; "chips"; "salsa"; "diapers"; "wipes"; "bread"; "butter"; "jam";
    "coffee"; "milk"; "sugar"; "tea"; "cereal"; "bananas"; "yogurt";
  ]

(* Build a shopping history with deliberate co-purchase patterns on top
   of random noise: {beer,chips,salsa}, {diapers,wipes} (+beer),
   {bread,butter,jam}, {coffee,milk,sugar}. *)
let build_history () =
  let vocab = Item.Vocab.of_names item_names in
  let id name = Option.get (Item.Vocab.id vocab name) in
  let rng = Olar_util.Rng.of_int 7_2026 in
  let patterns =
    [
      ([ "beer"; "chips"; "salsa" ], 0.18);
      ([ "diapers"; "wipes" ], 0.22);
      ([ "diapers"; "wipes"; "beer" ], 0.06);
      ([ "bread"; "butter" ], 0.25);
      ([ "bread"; "butter"; "jam" ], 0.12);
      ([ "coffee"; "milk"; "sugar" ], 0.15);
      ([ "tea"; "milk" ], 0.10);
    ]
  in
  let num_txns = 4_000 in
  let transactions =
    Array.init num_txns (fun _ ->
        let basket = Hashtbl.create 8 in
        List.iter
          (fun (names, p) ->
            if Olar_util.Rng.float rng < p then
              List.iter (fun n -> Hashtbl.replace basket (id n) ()) names)
          patterns;
        (* a couple of impulse buys *)
        for _ = 1 to 1 + Olar_util.Rng.int rng 3 do
          Hashtbl.replace basket (Olar_util.Rng.int rng (List.length item_names)) ()
        done;
        Itemset.of_list (Hashtbl.fold (fun i () acc -> i :: acc) basket []))
  in
  (vocab, Database.create ~num_items:(List.length item_names) transactions)

let () =
  let vocab, db = build_history () in
  let id name = Option.get (Item.Vocab.id vocab name) in
  Format.printf "shopping history: %d baskets, avg %.1f items@."
    (Database.size db) (Database.avg_transaction_size db);

  let engine = Olar_core.Engine.at_threshold db ~primary_support:0.01 in
  Format.printf "lattice: %d itemsets prestored at >= 1%% support@.@."
    (Olar_core.Engine.num_primary_itemsets engine);

  let pp_rule = Olar_core.Rule.pp_named vocab in

  (* Query type (2): all rules concerned with beer. *)
  let beer = Itemset.singleton (id "beer") in
  let rules =
    Olar_core.Engine.essential_rules engine ~containing:beer ~minsup:0.02
      ~minconf:0.5
  in
  Format.printf "essential rules about beer (sup >= 2%%, conf >= 50%%):@.";
  List.iter (fun r -> Format.printf "  %a@." pp_rule r) rules;

  (* Section 4.1 constraints: diapers in the consequent — "what predicts
     a diaper purchase?" *)
  let constraints =
    {
      Olar_core.Boundary.unconstrained with
      Olar_core.Boundary.consequent_includes = Itemset.singleton (id "diapers");
    }
  in
  let rules =
    Olar_core.Engine.essential_rules engine ~constraints ~minsup:0.02
      ~minconf:0.5
  in
  Format.printf "@.rules putting diapers in the consequent:@.";
  List.iter (fun r -> Format.printf "  %a@." pp_rule r) rules;

  (* Antecedent constraint: what does a {bread} basket lead to? *)
  let constraints =
    {
      Olar_core.Boundary.unconstrained with
      Olar_core.Boundary.antecedent_includes = Itemset.singleton (id "bread");
    }
  in
  let rules =
    Olar_core.Engine.essential_rules engine ~constraints ~minsup:0.02
      ~minconf:0.4
  in
  Format.printf "@.rules with bread in the antecedent:@.";
  List.iter (fun r -> Format.printf "  %a@." pp_rule r) rules;

  (* Query type (4): how selective must support be to see exactly 5
     itemsets involving coffee? *)
  (match
     Olar_core.Engine.support_for_k_itemsets engine
       ~containing:(Itemset.singleton (id "coffee"))
       ~k:5
   with
  | Some level ->
    Format.printf "@.exactly 5 itemsets contain coffee at minsup = %.2f%%@."
      (100.0 *. level)
  | None -> Format.printf "@.fewer than 5 coffee itemsets are prestored@.");

  (* Persist for the next session. *)
  let path = Filename.temp_file "market_basket" ".lattice" in
  Olar_core.Engine.save engine path;
  let reloaded = Olar_core.Engine.load path in
  Format.printf "@.lattice saved and reloaded from %s (%d itemsets)@." path
    (Olar_core.Engine.num_primary_itemsets reloaded);
  Sys.remove path
