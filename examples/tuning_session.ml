(* An online tuning session.

   The paper's core motivation: an analyst rarely knows the right
   (minsup, minconf) in advance — they iterate. This example plays out
   such a session: broad counts first, reverse queries to land on a
   support level that yields a digestible number of answers, then the
   final rule query — every step answered from the lattice in
   milliseconds, versus a full re-mine per step for the classical
   approach (timed here for contrast).

   Run with: dune exec examples/tuning_session.exe *)

open Olar_data

let () =
  let params =
    {
      (Option.get (Olar_datagen.Params.of_name "T10.I4.D10K")) with
      Olar_datagen.Params.num_items = 500;
      seed = 99;
    }
  in
  let db = Olar_datagen.Quest.generate params in
  Format.printf "dataset %s (%d items)@." (Olar_datagen.Params.name params)
    (Database.num_items db);

  let engine, dt =
    Olar_util.Timer.time (fun () ->
        Olar_core.Engine.preprocess db ~max_itemsets:5_000)
  in
  Format.printf "one-off preprocessing: %.2fs, %d itemsets, threshold %.3f%%@.@."
    dt
    (Olar_core.Engine.num_primary_itemsets engine)
    (100.0 *. Olar_core.Engine.primary_threshold engine);

  (* Step 1: the analyst probes volume at a few supports (query type 3). *)
  Format.printf "step 1 - how much is out there?@.";
  List.iter
    (fun s ->
      let n, dt =
        Olar_util.Timer.time (fun () ->
            Olar_core.Engine.count_itemsets engine ~minsup:s)
      in
      Format.printf "  minsup %.2f%% -> %d itemsets   (%.4fs)@." (100.0 *. s) n dt)
    [ 0.05; 0.02; 0.01; 0.005 ];

  (* Step 2: reverse query (type 4): aim directly at ~40 itemsets. *)
  let k = 40 in
  (match
     Olar_core.Engine.support_for_k_itemsets engine ~containing:Itemset.empty ~k
   with
  | None -> Format.printf "@.step 2 - fewer than %d itemsets prestored@." k
  | Some level ->
    Format.printf "@.step 2 - exactly %d itemsets exist at minsup = %.3f%%@." k
      (100.0 *. level);

    (* Step 3: reverse query for rules (type 5): where do 20
       single-consequent rules at 60%% confidence appear? *)
    let rule_level =
      match
        Olar_core.Engine.support_for_k_rules engine ~involving:Itemset.empty
          ~minconf:0.6 ~k:20
      with
      | Some rule_level ->
        Format.printf
          "step 3 - 20 single-consequent rules at conf 60%% exist at minsup = %.3f%%@."
          (100.0 *. rule_level);
        rule_level
      | None ->
        Format.printf "step 3 - not enough rules at conf 60%%; keeping step 2's level@.";
        level
    in

    (* Step 4: the final, tuned query at the support the reverse query
       found. *)
    let rules, dt =
      Olar_util.Timer.time (fun () ->
          Olar_core.Engine.essential_rules engine ~minsup:rule_level ~minconf:0.6)
    in
    Format.printf "@.step 4 - final query: %d essential rules in %.4fs@."
      (List.length rules) dt;
    List.iteri
      (fun i r -> if i < 8 then Format.printf "  %a@." Olar_core.Rule.pp r)
      rules;

    (* Contrast: the classical two-phase approach re-mines from scratch
       for this single parameter setting. *)
    let minsup_count = Olar_core.Engine.count_of_support engine rule_level in
    let direct =
      Olar_baseline.Direct.query db ~minsup:minsup_count
        ~confidence:(Olar_core.Conf.of_float 0.6)
    in
    Format.printf
      "@.the direct approach spent %.2fs mining + %.4fs generating for the same query@."
      direct.Olar_baseline.Direct.mining_seconds
      direct.Olar_baseline.Direct.rulegen_seconds;
    Format.printf
      "(and would spend it again for every step of this session)@.")
