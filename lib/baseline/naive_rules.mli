(** Naive rule generation and brute-force redundancy classification.

    The reference implementations everything else is validated against:
    generate rules by enumerating every antecedent subset of every
    frequent itemset (the classical two-phase method's second phase), and
    classify essential rules directly from Definition 4.2 by pairwise
    redundancy tests. Exponential in itemset size and quadratic in rule
    count — for baselines and tests, not for the online path. *)

open Olar_data

(** [all_rules ~support ~frequent ~confidence] generates, for every
    itemset X in [frequent] and every proper non-empty subset A of X with
    support(X)/support(A) >= confidence, the rule A ⇒ X \ A. [support]
    must return the exact count for every subset of a frequent itemset
    (downward closure makes them all frequent); it is called as
    [support a]. Raises [Invalid_argument] (via {!Olar_data.Itemset})
    when an itemset exceeds 20 items. Sorted by {!Olar_core.Rule.compare}. *)
val all_rules :
  support:(Itemset.t -> int) ->
  frequent:(Itemset.t * int) list ->
  confidence:Olar_core.Conf.t ->
  Olar_core.Rule.t list

(** [essential_filter rules] keeps exactly the rules that are not
    redundant (simple or strict, Theorems 4.1-4.2) with respect to any
    other rule in [rules] — Definition 4.2 verbatim. O(n²). *)
val essential_filter : Olar_core.Rule.t list -> Olar_core.Rule.t list
