open Olar_data

type answer = {
  itemsets : (Itemset.t * int) list;
  rules : Olar_core.Rule.t list;
  mining_seconds : float;
  rulegen_seconds : float;
}

let query ?stats ?(miner = Olar_mining.Threshold.Use_dhp) ?containing db ~minsup
    ~confidence =
  let mine () =
    match miner with
    | Olar_mining.Threshold.Use_apriori -> Olar_mining.Apriori.mine ?stats db ~minsup
    | Olar_mining.Threshold.Use_dhp -> Olar_mining.Dhp.mine ?stats db ~minsup
    | Olar_mining.Threshold.Use_fpgrowth -> Olar_mining.Fpgrowth.mine ?stats db ~minsup
  in
  let frequent, mining_seconds = Olar_util.Timer.time mine in
  let generate () =
    let keep (x, _) =
      match containing with
      | None -> true
      | Some z -> Itemset.subset z x
    in
    let all = List.filter keep (Olar_mining.Frequent.to_list frequent) in
    let support a =
      if Itemset.is_empty a then Olar_mining.Frequent.db_size frequent
      else
        match Olar_mining.Frequent.count frequent a with
        | Some c -> c
        | None -> assert false (* downward closure of a complete result *)
    in
    (all, Naive_rules.all_rules ~support ~frequent:all ~confidence)
  in
  let (itemsets, rules), rulegen_seconds = Olar_util.Timer.time generate in
  { itemsets; rules; mining_seconds; rulegen_seconds }
