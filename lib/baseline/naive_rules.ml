open Olar_data

let all_rules ~support ~frequent ~confidence =
  let rules = ref [] in
  List.iter
    (fun (x, count_x) ->
      if Itemset.cardinal x >= 2 then
        List.iter
          (fun antecedent ->
            let count_a = support antecedent in
            if
              Olar_core.Conf.satisfied confidence ~union_count:count_x
                ~antecedent_count:count_a
            then
              rules :=
                Olar_core.Rule.make ~antecedent
                  ~consequent:(Itemset.diff x antecedent)
                  ~support_count:count_x ~antecedent_count:count_a
                :: !rules)
          (Itemset.proper_nonempty_subsets x))
    frequent;
  List.sort Olar_core.Rule.compare !rules

let essential_filter rules =
  let arr = Array.of_list rules in
  List.filter
    (fun candidate ->
      not
        (Array.exists
           (fun wrt ->
             (not (Olar_core.Rule.equal candidate wrt))
             && Olar_core.Rule.redundant ~candidate ~wrt)
           arr))
    rules
