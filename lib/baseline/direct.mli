(** The paper's comparator: answer each query from scratch.

    For every (minsup, minconf) the analyst tries, re-run the itemset
    miner over the full transaction database and then generate the rules
    — no preprocessing, no lattice. This is the "direct itemset
    generation approach like DHP" of Table 3; the online engine is
    benchmarked against it. *)

open Olar_data

type answer = {
  itemsets : (Itemset.t * int) list;  (** frequent itemsets with counts *)
  rules : Olar_core.Rule.t list;  (** all rules clearing the confidence *)
  mining_seconds : float;  (** time spent in the miner (phase 1) *)
  rulegen_seconds : float;  (** time spent generating rules (phase 2) *)
}

(** [query db ~minsup ~confidence] mines [db] at the absolute support
    count [minsup] and generates all rules at [confidence].

    @param miner defaults to DHP.
    @param containing restrict phase 1's output to itemsets containing
      this set {e after} mining (the direct method cannot exploit the
      constraint during the scan — that asymmetry is the point).
    @param stats mining work counters.
    Raises [Invalid_argument] when [minsup < 1]. *)
val query :
  ?stats:Olar_mining.Stats.t ->
  ?miner:Olar_mining.Threshold.miner ->
  ?containing:Itemset.t ->
  Database.t ->
  minsup:int ->
  confidence:Olar_core.Conf.t ->
  answer
