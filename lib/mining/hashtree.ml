open Olar_data

(* A leaf stores candidates (as item arrays) with their counts; an
   interior node dispatches on [hash item] of the item consumed at its
   depth. Because hashing is lossy, a leaf reached during counting may
   hold candidates whose prefix does not actually match the chosen
   transaction items, and one leaf can be reached along several hash
   paths for the same transaction — so leaves verify the full subset
   relation and a per-transaction stamp prevents double counting
   (exactly the "answer set" of the original Apriori paper). *)
type candidate = {
  items : int array;
  mutable count : int;
  mutable stamp : int; (* last transaction sequence that counted this *)
}

type node =
  | Leaf of leaf
  | Interior of node array

and leaf = { mutable members : candidate list }

type t = {
  mutable root : node;
  tree_depth : int;
  fanout : int;
  leaf_capacity : int;
  mutable size : int;
  mutable txn_seq : int;
}

let new_leaf () = Leaf { members = [] }

let create ?(fanout = 8) ?(leaf_capacity = 8) ~depth () =
  if depth < 1 then invalid_arg "Hashtree.create: depth";
  if fanout < 1 then invalid_arg "Hashtree.create: fanout";
  if leaf_capacity < 1 then invalid_arg "Hashtree.create: leaf_capacity";
  {
    root = new_leaf ();
    tree_depth = depth;
    fanout;
    leaf_capacity;
    size = 0;
    txn_seq = 0;
  }

let depth t = t.tree_depth
let size t = t.size
let bucket t item = item mod t.fanout

(* Split a leaf at tree level [level]: members re-dispatch on their item
   at position [level]. *)
let split t level leaf =
  let kids = Array.init t.fanout (fun _ -> new_leaf ()) in
  List.iter
    (fun c ->
      match kids.(bucket t c.items.(level)) with
      | Leaf l -> l.members <- c :: l.members
      | Interior _ -> assert false)
    leaf.members;
  Interior kids

let insert t x =
  if Itemset.cardinal x <> t.tree_depth then
    invalid_arg "Hashtree.insert: wrong arity";
  let items = Itemset.to_array x in
  let rec go node level replace =
    match node with
    | Interior kids ->
      let b = bucket t items.(level) in
      go kids.(b) (level + 1) (fun n -> kids.(b) <- n)
    | Leaf leaf ->
      if List.exists (fun c -> c.items = items) leaf.members then ()
      else if
        List.length leaf.members >= t.leaf_capacity && level < t.tree_depth
      then begin
        (* overflow: split (possible while items remain to hash on) and
           retry at the same level, now an interior node *)
        let interior = split t level leaf in
        replace interior;
        go interior level replace
      end
      else begin
        leaf.members <- { items; count = 0; stamp = -1 } :: leaf.members;
        t.size <- t.size + 1
      end
  in
  go t.root 0 (fun n -> t.root <- n)

let subset candidate items =
  let nc = Array.length candidate and ni = Array.length items in
  let rec loop ci ii =
    if ci >= nc then true
    else if ii >= ni then false
    else if candidate.(ci) = items.(ii) then loop (ci + 1) (ii + 1)
    else if candidate.(ci) > items.(ii) then loop ci (ii + 1)
    else false
  in
  loop 0 0

let count_transaction t txn =
  let items = Itemset.to_array txn in
  let n = Array.length items in
  if n >= t.tree_depth then begin
    t.txn_seq <- t.txn_seq + 1;
    let seq = t.txn_seq in
    let rec go node level from =
      match node with
      | Leaf leaf ->
        List.iter
          (fun c ->
            if c.stamp <> seq && subset c.items items then begin
              c.stamp <- seq;
              c.count <- c.count + 1
            end)
          leaf.members
      | Interior kids ->
        let last = n - (t.tree_depth - level) in
        for i = from to last do
          go kids.(bucket t items.(i)) (level + 1) (i + 1)
        done
    in
    go t.root 0 0
  end

let count t x =
  if Itemset.cardinal x <> t.tree_depth then None
  else begin
    let items = Itemset.to_array x in
    let rec go node level =
      match node with
      | Leaf leaf ->
        Option.map
          (fun c -> c.count)
          (List.find_opt (fun c -> c.items = items) leaf.members)
      | Interior kids -> go kids.(bucket t items.(level)) (level + 1)
    in
    go t.root 0
  end

let to_sorted_array t =
  let out = Olar_util.Vec.with_capacity (max 1 t.size) in
  let rec walk = function
    | Leaf leaf ->
      List.iter
        (fun c ->
          Olar_util.Vec.push out (Itemset.of_sorted_array_unchecked c.items, c.count))
        leaf.members
    | Interior kids -> Array.iter walk kids
  in
  walk t.root;
  let arr = Olar_util.Vec.to_array out in
  Array.sort (fun (a, _) (b, _) -> Itemset.compare_lex a b) arr;
  arr
