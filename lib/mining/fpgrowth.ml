open Olar_data
module Counter = Olar_util.Timer.Counter

(* FP-tree node. The [parent] chain yields the prefix path of a node;
   nodes of the same item are threaded through the header table. *)
type node = {
  item : int;
  mutable count : int;
  parent : node option;
  children : (int, node) Hashtbl.t;
}

type tree = {
  root : node;
  (* per item: every node carrying it, plus the item's total count *)
  header : (int, node list ref * int ref) Hashtbl.t;
}

let new_node ~item ~parent = { item; count = 0; parent; children = Hashtbl.create 4 }

let new_tree () =
  { root = new_node ~item:(-1) ~parent:None; header = Hashtbl.create 64 }

let header_slot tree item =
  match Hashtbl.find_opt tree.header item with
  | Some slot -> slot
  | None ->
    let slot = (ref [], ref 0) in
    Hashtbl.add tree.header item slot;
    slot

(* Insert a frequency-ordered item list with multiplicity [count]. *)
let insert tree items count =
  let rec go node = function
    | [] -> ()
    | item :: rest ->
      let child =
        match Hashtbl.find_opt node.children item with
        | Some c -> c
        | None ->
          let c = new_node ~item ~parent:(Some node) in
          Hashtbl.add node.children item c;
          let nodes, _ = header_slot tree item in
          nodes := c :: !nodes;
          c
      in
      child.count <- child.count + count;
      let _, total = header_slot tree item in
      total := !total + count;
      go child rest
  in
  go tree.root items

(* The prefix path of a node, root side first, excluding the node
   itself. *)
let prefix_path node =
  let rec up n acc =
    match n.parent with
    | None -> acc
    | Some p -> if p.item = -1 then acc else up p (p.item :: acc)
  in
  up node []

(* Items of [tree] in increasing total count (ties: decreasing id), the
   order in which conditional trees are grown. *)
let items_ascending tree =
  let entries =
    Hashtbl.fold (fun item (_, total) acc -> (item, !total) :: acc) tree.header []
  in
  List.sort
    (fun (i1, c1) (i2, c2) ->
      if c1 <> c2 then Int.compare c1 c2 else Int.compare i2 i1)
    entries

(* True when the tree is one chain from the root. *)
let single_path tree =
  let rec walk node acc =
    match Hashtbl.length node.children with
    | 0 -> Some (List.rev acc)
    | 1 ->
      let child = Hashtbl.fold (fun _ c _ -> Some c) node.children None in
      let child = Option.get child in
      walk child ((child.item, child.count) :: acc)
    | _ -> None
  in
  walk tree.root []

(* All non-empty subsets of a counted single path, each with the count
   of its deepest member. Emitted via [yield suffix_items count]. *)
let rec path_subsets path yield =
  match path with
  | [] -> ()
  | (item, count) :: rest ->
    yield [ item ] count;
    path_subsets rest yield;
    path_subsets rest (fun items c -> yield (item :: items) (min count c))

let mine ?stats db ~minsup =
  if minsup < 1 then invalid_arg "Fpgrowth.mine: minsup";
  let bump_pass () =
    match stats with
    | Some s -> Counter.incr s.Stats.passes
    | None -> ()
  in
  (* Pass 1: item frequencies, the global frequency order. *)
  bump_pass ();
  let freq = Database.item_frequencies db in
  let order_rank = Array.make (Database.num_items db) max_int in
  let frequent_items =
    let all = List.init (Database.num_items db) Fun.id in
    let kept = List.filter (fun i -> freq.(i) >= minsup) all in
    List.sort
      (fun a b ->
        if freq.(a) <> freq.(b) then Int.compare freq.(b) freq.(a)
        else Int.compare a b)
      kept
  in
  List.iteri (fun rank item -> order_rank.(item) <- rank) frequent_items;
  (* Pass 2: build the FP-tree from frequency-ordered filtered
     transactions. *)
  bump_pass ();
  let tree = new_tree () in
  Database.iter
    (fun txn ->
      let items =
        List.filter (fun i -> order_rank.(i) <> max_int) (Itemset.to_list txn)
      in
      let items =
        List.sort (fun a b -> Int.compare order_rank.(a) order_rank.(b)) items
      in
      if items <> [] then insert tree items 1)
    db;
  (* Recursive growth. [suffix] is the itemset being extended (as a
     list); every (itemset, exact count) pair is accumulated. *)
  let found : (Itemset.t * int) list ref = ref [] in
  let emit items count =
    found := (Itemset.of_list items, count) :: !found
  in
  let rec grow tree suffix =
    match single_path tree with
    | Some path ->
      (* every subset of the path extends the suffix *)
      path_subsets
        (List.filter (fun (_, c) -> c >= minsup) path)
        (fun items count -> if count >= minsup then emit (items @ suffix) count)
    | None ->
      List.iter
        (fun (item, total) ->
          if total >= minsup then begin
            let suffix' = item :: suffix in
            emit suffix' total;
            (* conditional pattern base -> conditional tree *)
            let conditional = new_tree () in
            let nodes, _ = header_slot tree item in
            (* local frequencies inside the pattern base decide which
               prefix items survive *)
            let local = Hashtbl.create 16 in
            List.iter
              (fun n ->
                List.iter
                  (fun i ->
                    Hashtbl.replace local i
                      (n.count + Option.value ~default:0 (Hashtbl.find_opt local i)))
                  (prefix_path n))
              !nodes;
            List.iter
              (fun n ->
                let path =
                  List.filter
                    (fun i -> Hashtbl.find local i >= minsup)
                    (prefix_path n)
                in
                if path <> [] then insert conditional path n.count)
              !nodes;
            grow conditional suffix'
          end)
        (items_ascending tree)
  in
  grow tree [];
  (* Assemble the Frequent.t level structure. *)
  (match stats with
  | Some s -> Counter.add s.Stats.frequent (List.length !found)
  | None -> ());
  let by_level = Hashtbl.create 8 in
  let max_k = ref 0 in
  List.iter
    (fun (x, c) ->
      let k = Itemset.cardinal x in
      max_k := max !max_k k;
      Hashtbl.replace by_level k
        ((x, c) :: Option.value ~default:[] (Hashtbl.find_opt by_level k)))
    !found;
  let levels =
    List.init !max_k (fun idx ->
        Array.of_list
          (List.sort
             (fun (a, _) (b, _) -> Itemset.compare_lex a b)
             (Option.value ~default:[] (Hashtbl.find_opt by_level (idx + 1)))))
  in
  Frequent.v ~db_size:(Database.size db) ~threshold:minsup ~levels
    ~complete:true ~completed_levels:(List.length levels)
