(** Hash-tree candidate counting (Agrawal & Srikant's original
    structure).

    The alternative to {!Trie} from the Apriori paper: interior nodes
    dispatch on a hash of the next item, leaves hold small candidate
    lists and split when they overflow. Same contract as {!Trie}; kept
    as an independently-tested implementation and for the
    trie-versus-hash-tree ablation in the benchmark harness (on modern
    hardware the pointer-chasing profile differs, the counted results
    never do). *)

open Olar_data

type t

(** [create ~depth] is an empty tree for candidates of cardinality
    [depth] >= 1. [fanout] is the hash width of interior nodes (default
    8); [leaf_capacity] triggers splitting (default 8). Raises
    [Invalid_argument] on non-positive parameters. *)
val create : ?fanout:int -> ?leaf_capacity:int -> depth:int -> unit -> t

(** [depth t] is the candidate cardinality. *)
val depth : t -> int

(** [size t] is the number of distinct candidates inserted. *)
val size : t -> int

(** [insert t x] registers a candidate (idempotent). Raises
    [Invalid_argument] on wrong cardinality. *)
val insert : t -> Itemset.t -> unit

(** [count_transaction t txn] increments every candidate ⊆ [txn]. *)
val count_transaction : t -> Itemset.t -> unit

(** [count t x] is the candidate's current count, [None] if never
    inserted. *)
val count : t -> Itemset.t -> int option

(** [to_sorted_array t] is all (candidate, count) pairs in
    {!Olar_data.Itemset.compare_lex} order. *)
val to_sorted_array : t -> (Itemset.t * int) array
