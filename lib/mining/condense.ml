open Olar_data

let require_complete frequent name =
  if not (Frequent.complete frequent) then
    invalid_arg (name ^ ": requires a complete mining result")

(* Shared sweep: walk levels top-down and mark, for each (k+1)-itemset,
   the k-subsets that [dominates] says it covers. Unmarked itemsets
   survive. *)
let survivors frequent ~dominates =
  let doomed = Itemset.Table.create 1024 in
  let out = ref [] in
  let max_level = Frequent.max_level frequent in
  for k = max_level downto 1 do
    Array.iter
      (fun (x, c) ->
        if not (Itemset.Table.mem doomed x) then out := (x, c) :: !out;
        if k > 1 then
          List.iter
            (fun (_, parent) ->
              match Frequent.count frequent parent with
              | Some parent_count when dominates ~child_count:c ~parent_count ->
                Itemset.Table.replace doomed parent ()
              | Some _ | None -> ())
            (Itemset.parents x))
      (Frequent.level frequent k)
  done;
  List.sort (fun (a, _) (b, _) -> Itemset.compare a b) !out

(* An itemset is non-maximal iff some frequent superset exists; a
   frequent (k+1)-superset implies a frequent (k+1)-superset one item
   larger, so marking immediate parents level by level suffices. *)
let maximal frequent =
  require_complete frequent "Condense.maximal";
  survivors frequent ~dominates:(fun ~child_count:_ ~parent_count:_ -> true)

(* Non-closed iff some strict superset has equal support; supports only
   shrink upward in cardinality, so an equal-support superset implies an
   equal-support superset one item larger. *)
let closed frequent =
  require_complete frequent "Condense.closed";
  survivors frequent ~dominates:(fun ~child_count ~parent_count ->
      child_count = parent_count)

let support_from_closed closed_sets x =
  List.fold_left
    (fun acc (y, c) ->
      if Itemset.subset x y then
        match acc with
        | None -> Some c
        | Some best -> Some (max best c)
      else acc)
    None closed_sets
