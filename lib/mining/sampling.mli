(** Sampling-based mining (Toivonen, VLDB 1996).

    The other pass-reduction technique the paper cites: mine a random
    sample in memory at a {e lowered} threshold, then verify in a single
    full pass. The verification counts the sample's frequent itemsets
    {e and} their negative border — the minimal itemsets the sample
    deemed infrequent. If nothing in the border turns out globally
    frequent, the one pass proves the result complete; otherwise the
    sample missed something and this implementation falls back to an
    exact run (counted in the returned report), so the result is always
    exact.

    The result is identical to {!Apriori.mine} in all cases. *)

open Olar_data

type report = {
  result : Frequent.t;
  sample_size : int;
  border_size : int;  (** negative-border itemsets verified *)
  misses : int;
      (** border itemsets that turned out frequent — 0 means the
          one-pass verification sufficed *)
  fell_back : bool;  (** true when an exact fallback run was needed *)
}

(** [negative_border frequent_sets] is the minimal itemsets outside a
    downward-closed family: every itemset all of whose proper maximal
    subsets lie in the family, but which itself does not. Input is given
    as the per-level membership of the family (level k at index k-1,
    lexicographically sorted); 1-itemsets outside the family require the
    universe, hence [num_items]. Exposed for testing. *)
val negative_border :
  num_items:int -> levels:Itemset.t array list -> Itemset.t list

(** [mine db ~minsup] mines exactly, verifying a sample-based guess in
    one pass when possible.

    @param seed sampling RNG seed (default 7).
    @param sample_fraction fraction of transactions sampled without
      replacement (default 0.1, clamped to at least 100 transactions
      when the database allows). Raises [Invalid_argument] outside
      (0, 1].
    @param lowering multiplier < 1 applied to the threshold on the
      sample (default 0.8): lower values make misses rarer but the
      candidate set bigger. Raises [Invalid_argument] outside (0, 1].
    Raises [Invalid_argument] when [minsup < 1]. *)
val mine :
  ?stats:Stats.t ->
  ?seed:int ->
  ?sample_fraction:float ->
  ?lowering:float ->
  Database.t ->
  minsup:int ->
  report
