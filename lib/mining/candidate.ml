open Olar_data

let validate frequent =
  let n = Array.length frequent in
  if n = 0 then invalid_arg "Candidate.generate: empty level";
  let k = Itemset.cardinal frequent.(0) in
  if k < 1 then invalid_arg "Candidate.generate: empty itemset";
  Array.iteri
    (fun i x ->
      if Itemset.cardinal x <> k then invalid_arg "Candidate.generate: mixed arity";
      if i > 0 && Itemset.compare_lex frequent.(i - 1) x >= 0 then
        invalid_arg "Candidate.generate: not sorted")
    frequent;
  k

let share_prefix k x y =
  (* First k-1 items equal; both sorted, so positional comparison works. *)
  let rec loop i = i >= k - 1 || (Itemset.nth x i = Itemset.nth y i && loop (i + 1)) in
  loop 0

let all_subsets_frequent ~is_frequent candidate =
  List.for_all (fun (_, parent) -> is_frequent parent) (Itemset.parents candidate)

let generate ~frequent ~is_frequent =
  let k = validate frequent in
  let out = Olar_util.Vec.create () in
  let n = Array.length frequent in
  let i = ref 0 in
  while !i < n do
    (* Find the block [i, j) of itemsets sharing the first k-1 items. *)
    let j = ref (!i + 1) in
    while !j < n && share_prefix k frequent.(!i) frequent.(!j) do
      incr j
    done;
    for a = !i to !j - 1 do
      for b = a + 1 to !j - 1 do
        let x = frequent.(a) and y = frequent.(b) in
        (* x < y lexicographically with equal prefixes, so the union is
           x extended by y's last item: still sorted. *)
        let cand =
          Itemset.of_sorted_array_unchecked
            (Array.append (Itemset.to_array x) [| Itemset.nth y (k - 1) |])
        in
        if all_subsets_frequent ~is_frequent cand then Olar_util.Vec.push out cand
      done
    done;
    i := !j
  done;
  (* Blocks are visited in lexicographic order, and within a block the
     (a, b) double loop emits extensions in increasing last item, so the
     output is already sorted. *)
  Olar_util.Vec.to_array out

let pairs_of_items items =
  let n = Array.length items in
  for i = 1 to n - 1 do
    if items.(i - 1) >= items.(i) then invalid_arg "Candidate.pairs_of_items"
  done;
  let out = Olar_util.Vec.with_capacity (max 1 (n * (n - 1) / 2)) in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      Olar_util.Vec.push out
        (Itemset.of_sorted_array_unchecked [| items.(a); items.(b) |])
    done
  done;
  Olar_util.Vec.to_array out
