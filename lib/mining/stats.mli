(** Cost accounting for mining runs.

    Absolute 1998 wall-clock numbers are not reproducible, so the
    experiment harness reports these machine-independent counters next to
    wall time: database passes, candidates generated/counted, itemsets
    found, candidates removed by the DHP hash filter, and items removed by
    transaction trimming. A single [Stats.t] is threaded through one
    mining run (or accumulated across the runs of a threshold search). *)

type t = {
  passes : Olar_util.Timer.Counter.t;  (** full scans of the database *)
  candidates : Olar_util.Timer.Counter.t;
      (** candidate itemsets whose support was counted *)
  frequent : Olar_util.Timer.Counter.t;  (** itemsets found frequent *)
  hash_pruned : Olar_util.Timer.Counter.t;
      (** candidates discarded by the DHP hash filter before counting *)
  trimmed_items : Olar_util.Timer.Counter.t;
      (** item occurrences removed by transaction trimming *)
}

(** [create ()] is a zeroed stats record. *)
val create : unit -> t

(** [reset t] zeroes all counters. *)
val reset : t -> unit

(** [total_work t] is a single scalar proxy for preprocessing effort:
    candidates counted + candidates hash-pruned. *)
val total_work : t -> int

(** [pp] prints a one-line human-readable summary. *)
val pp : Format.formatter -> t -> unit
