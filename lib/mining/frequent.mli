(** The result of a frequent-itemset mining run.

    Holds every discovered itemset with its exact support count, organised
    by level (cardinality). A result may be {e partial}: the threshold
    search of Section 5 deliberately aborts DHP once more than [cap]
    itemsets have been generated, and the level-wise skeleton records how
    many levels completed so later iterations can reuse them (the paper's
    "k-itemsets for which k <= k0 are available"). *)

open Olar_data

type t

(** [v ~db_size ~threshold ~levels ~complete ~completed_levels] packs a
    result. [levels] maps cardinality k (1-based) to the frequent
    k-itemsets with their counts; level arrays must be sorted by
    {!Olar_data.Itemset.compare_lex} and every count must be >=
    [threshold]. [complete] says whether mining ran to fixpoint;
    [completed_levels] is the number of leading levels guaranteed
    exhaustive (= all levels when [complete]). Raises [Invalid_argument]
    on violations. *)
val v :
  db_size:int ->
  threshold:int ->
  levels:(Itemset.t * int) array list ->
  complete:bool ->
  completed_levels:int ->
  t

(** [db_size r] is the number of transactions mined. *)
val db_size : t -> int

(** [threshold r] is the absolute minimum support count used. *)
val threshold : t -> int

(** [complete r] is false iff mining was aborted early (cap reached). *)
val complete : t -> bool

(** [completed_levels r] is the number of leading levels that are
    exhaustive: every frequent k-itemset with k <= [completed_levels r]
    is present. Equals [max_level r] (or more) when [complete r]. *)
val completed_levels : t -> int

(** [total r] is the number of itemsets found (excluding the empty set). *)
val total : t -> int

(** [max_level r] is the largest cardinality present (0 when empty). *)
val max_level : t -> int

(** [level r k] is the frequent k-itemsets, sorted lexicographically.
    Empty array when out of range ([k < 1] included). *)
val level : t -> int -> (Itemset.t * int) array

(** [count r x] is the support count of [x] if it was found ([None]
    otherwise; note the empty set is never stored). O(1) expected. *)
val count : t -> Itemset.t -> int option

(** [mem r x] is [count r x <> None]. *)
val mem : t -> Itemset.t -> bool

(** [iter f r] applies [f itemset count] level by level, lexicographic
    within each level. *)
val iter : (Itemset.t -> int -> unit) -> t -> unit

(** [to_list r] is all (itemset, count) pairs in the {!iter} order. *)
val to_list : t -> (Itemset.t * int) list

(** [restrict r ~threshold] is the sub-result at a higher threshold,
    without touching the database. Used by the threshold search to reuse
    the itemsets of I(Low) when probing Mid > Low. Raises
    [Invalid_argument] if [threshold < threshold r]. *)
val restrict : t -> threshold:int -> t
