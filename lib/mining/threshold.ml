open Olar_data

type result = {
  threshold : int;
  itemsets : Frequent.t;
  probes : (int * int) list;
  hit_deadline : bool;
}

type miner = Use_apriori | Use_dhp | Use_fpgrowth

let run_miner ?(obs = Olar_obs.Obs.disabled) ?stats ?cap ?seed ?domains miner
    db ~minsup =
  Olar_obs.Obs.maybe_span obs "mine"
    ~attrs:(fun () -> [ ("minsup", Olar_obs.Trace.Int minsup) ])
    (fun () ->
      match miner with
      | Use_apriori -> Apriori.mine ~obs ?stats ?cap ?seed ?domains db ~minsup
      | Use_dhp -> Dhp.mine ~obs ?stats ?cap ?seed ?domains db ~minsup
      | Use_fpgrowth ->
        (* pattern growth has no per-level cut points and counts on one
           domain: cap, seed and domains are accepted for interface
           uniformity but each probe runs complete, sequentially *)
        ignore cap;
        ignore seed;
        ignore domains;
        Fpgrowth.mine ?stats db ~minsup)

(* One binary-search iteration: the span closes with the probed threshold
   and how many itemsets the probe generated before finishing or being
   cut by the early-termination cap. *)
let probe_span obs ~minsup f =
  match obs with
  | None -> f ()
  | Some ctx ->
    let out = ref None in
    Olar_obs.Obs.span ctx "threshold.probe"
      ~attrs:(fun () ->
        let generated =
          match !out with Some r -> Frequent.total r | None -> -1
        in
        [
          ("minsup", Olar_obs.Trace.Int minsup);
          ("generated", Olar_obs.Trace.Int generated);
        ])
      (fun () ->
        let r = f () in
        out := Some r;
        r)

(* Shared binary-search driver. [probe mid] mines at threshold [mid] and
   may abort early once it is known that more than [target] itemsets
   exist; [final mid] must produce the complete result at [mid]. The
   search maintains: Generated(lo) > target (lo = 0 stands for "all
   subsets", never probed) and Generated(hi) <= target (hi starts at
   max item frequency + 1, where nothing is frequent). *)
let search ?deadline_s ~probe ~final db ~target ~slack () =
  if target < 1 then invalid_arg "Threshold: target";
  if slack < 0 || slack >= target then invalid_arg "Threshold: slack";
  (match deadline_s with
  | Some d when d < 0.0 || Float.is_nan d -> invalid_arg "Threshold: deadline_s"
  | _ -> ());
  let clock = Olar_util.Timer.start () in
  let out_of_time () =
    match deadline_s with
    | None -> false
    | Some d -> Olar_util.Timer.elapsed_s clock >= d
  in
  let freqs = Database.item_frequencies db in
  let maxfreq = Array.fold_left max 0 freqs in
  let lo = ref 0 and hi = ref (maxfreq + 1) in
  let best = ref None in
  let probes = ref [] in
  let finished = ref false in
  let hit_deadline = ref false in
  while (not !finished) && !hi - !lo > 1 do
    if out_of_time () then begin
      (* Preprocessing-time limit (Section 5): stop refining; the caller
         still gets a complete result at the best threshold so far. *)
      hit_deadline := true;
      finished := true
    end
    else begin
      let mid = (!lo + !hi) / 2 in
      let r = probe mid in
      let g = Frequent.total r in
      probes := (mid, g) :: !probes;
      if (not (Frequent.complete r)) || g > target then lo := mid
      else begin
        hi := mid;
        best := Some r;
        if g >= target - slack then finished := true
      end
    end
  done;
  let itemsets =
    match !best with
    | Some r when Frequent.threshold r = !hi -> r
    | _ -> final !hi
  in
  { threshold = !hi; itemsets; probes = !probes; hit_deadline = !hit_deadline }

let naive ?(obs = Olar_obs.Obs.disabled) ?stats ?(miner = Use_dhp) ?deadline_s
    ?domains db ~target ~slack =
  let probe mid =
    probe_span obs ~minsup:mid (fun () ->
        run_miner ~obs ?stats ?domains miner db ~minsup:mid)
  in
  search ?deadline_s ~probe ~final:probe db ~target ~slack ()

(* Mirror of Lattice.estimated_bytes, computed from the mining result:
   vertices = itemsets + root; edges = sum of itemset sizes
   (Theorem 2.1). The formula — and the power-of-two index capacity —
   must match the CSR cost model in Lattice exactly: four offset/support
   arrays of ~n words, three flat buffers of e words, the open-addressed
   index, headers and the record. *)
let index_capacity n =
  let target = max 8 (2 * n) in
  let c = ref 8 in
  while !c < target do
    c := !c lsl 1
  done;
  !c

let estimate_bytes frequent =
  let word = 8 in
  let vertices = Frequent.total frequent + 1 in
  let item_slots = ref 0 in
  Frequent.iter (fun x _ -> item_slots := !item_slots + Olar_data.Itemset.cardinal x) frequent;
  let edges = !item_slots in
  word * ((4 * vertices) + (3 * edges) + index_capacity vertices + 23)

(* Lower bound on the footprint of one itemset: a 1-itemset's share —
   four offset/support slots, three buffer slots, ~two index slots. *)
let min_bytes_per_itemset = 8 * 9

let optimized ?(obs = Olar_obs.Obs.disabled) ?stats ?(miner = Use_dhp)
    ?deadline_s ?domains db ~target ~slack =
  (* Every probe result is kept; a later probe at threshold t reuses the
     most advanced earlier result whose threshold is <= t. *)
  let history : Frequent.t list ref = ref [] in
  let seed_for mid =
    let usable =
      List.filter (fun r -> Frequent.threshold r <= mid) !history
    in
    match usable with
    | [] -> None
    | r0 :: rest ->
      let better a b =
        if Frequent.completed_levels a <> Frequent.completed_levels b then
          Frequent.completed_levels a > Frequent.completed_levels b
        else Frequent.threshold a > Frequent.threshold b
      in
      Some (List.fold_left (fun acc r -> if better r acc then r else acc) r0 rest)
  in
  let run ?cap mid =
    let r =
      probe_span obs ~minsup:mid (fun () ->
          run_miner ~obs ?stats ?cap ?seed:(seed_for mid) ?domains miner db
            ~minsup:mid)
    in
    history := r :: !history;
    r
  in
  let probe mid = run ~cap:target mid in
  let final mid = run mid in
  search ?deadline_s ~probe ~final db ~target ~slack ()

(* The byte-budget variant reuses the count-based binary-search driver:
   Generated(p) is replaced by the byte estimate, which is just as
   monotone in the threshold. The early-termination cap is the largest
   itemset count any within-budget result could have. *)
let optimized_bytes ?(obs = Olar_obs.Obs.disabled) ?stats ?(miner = Use_dhp)
    ?domains db ~budget_bytes ~slack_bytes =
  if budget_bytes < 1 then invalid_arg "Threshold: budget_bytes";
  if slack_bytes < 0 || slack_bytes >= budget_bytes then
    invalid_arg "Threshold: slack_bytes";
  let cap = max 1 (budget_bytes / min_bytes_per_itemset) in
  let history : Frequent.t list ref = ref [] in
  let seed_for mid =
    let usable = List.filter (fun r -> Frequent.threshold r <= mid) !history in
    match usable with
    | [] -> None
    | r0 :: rest ->
      let better a b =
        if Frequent.completed_levels a <> Frequent.completed_levels b then
          Frequent.completed_levels a > Frequent.completed_levels b
        else Frequent.threshold a > Frequent.threshold b
      in
      Some (List.fold_left (fun acc r -> if better r acc then r else acc) r0 rest)
  in
  let run ?cap mid =
    let r =
      probe_span obs ~minsup:mid (fun () ->
          run_miner ~obs ?stats ?cap ?seed:(seed_for mid) ?domains miner db
            ~minsup:mid)
    in
    history := r :: !history;
    r
  in
  let freqs = Olar_data.Database.item_frequencies db in
  let maxfreq = Array.fold_left max 0 freqs in
  let lo = ref 0 and hi = ref (maxfreq + 1) in
  let best = ref None in
  let probes = ref [] in
  let finished = ref false in
  while (not !finished) && !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    let r = run ~cap mid in
    let bytes = estimate_bytes r in
    probes := (mid, Frequent.total r) :: !probes;
    if (not (Frequent.complete r)) || bytes > budget_bytes then lo := mid
    else begin
      hi := mid;
      best := Some r;
      if bytes >= budget_bytes - slack_bytes then finished := true
    end
  done;
  let itemsets =
    match !best with
    | Some r when Frequent.threshold r = !hi -> r
    | _ -> run !hi
  in
  { threshold = !hi; itemsets; probes = !probes; hit_deadline = false }
