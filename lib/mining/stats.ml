module Counter = Olar_util.Timer.Counter

type t = {
  passes : Counter.t;
  candidates : Counter.t;
  frequent : Counter.t;
  hash_pruned : Counter.t;
  trimmed_items : Counter.t;
}

let create () =
  {
    passes = Counter.create "passes";
    candidates = Counter.create "candidates";
    frequent = Counter.create "frequent";
    hash_pruned = Counter.create "hash_pruned";
    trimmed_items = Counter.create "trimmed_items";
  }

let reset t =
  Counter.reset t.passes;
  Counter.reset t.candidates;
  Counter.reset t.frequent;
  Counter.reset t.hash_pruned;
  Counter.reset t.trimmed_items

let total_work t = Counter.value t.candidates + Counter.value t.hash_pruned

let pp fmt t =
  Format.fprintf fmt
    "passes=%d candidates=%d frequent=%d hash_pruned=%d trimmed_items=%d"
    (Counter.value t.passes) (Counter.value t.candidates)
    (Counter.value t.frequent) (Counter.value t.hash_pruned)
    (Counter.value t.trimmed_items)
