(** Prefix trie for batched candidate counting.

    The classic Apriori counting structure: candidates of a fixed
    cardinality [depth] are inserted, then each transaction is streamed
    through {!count_transaction}, which increments the counter of every
    inserted candidate that is a subset of the transaction by a pruned
    descent (a node is only entered through items the transaction
    contains). This makes one database pass count all candidates of a
    level at once. *)

open Olar_data

type t

(** [create ~depth] is an empty trie for candidates of cardinality
    [depth] >= 1. Raises [Invalid_argument] otherwise. *)
val create : depth:int -> t

(** [depth t] is the candidate cardinality. *)
val depth : t -> int

(** [size t] is the number of candidates inserted. *)
val size : t -> int

(** [insert t x] registers candidate [x] with a zero count. Duplicate
    inserts are idempotent. Raises [Invalid_argument] if
    [Itemset.cardinal x <> depth t]. *)
val insert : t -> Itemset.t -> unit

(** [count_transaction t txn] increments every registered candidate that
    is a subset of [txn]. *)
val count_transaction : t -> Itemset.t -> unit

(** [count t x] is the current count of candidate [x], or [None] if it was
    never inserted. *)
val count : t -> Itemset.t -> int option

(** [to_sorted_array t] is all (candidate, count) pairs sorted by
    {!Olar_data.Itemset.compare_lex}. *)
val to_sorted_array : t -> (Itemset.t * int) array
