let mine ?obs ?stats ?cap ?max_level ?seed ?(counting = Levelwise.Use_trie)
    ?(domains = 1) db ~minsup =
  if domains < 1 then invalid_arg "Apriori.mine: domains";
  let config =
    { Levelwise.trim = false; hash = Levelwise.No_hash; counting; domains }
  in
  Levelwise.mine ?obs ?stats ?cap ?max_level ?seed config db ~minsup
