open Olar_data

type t = {
  db_size : int;
  threshold : int;
  levels : (Itemset.t * int) array array; (* levels.(k-1) = k-itemsets *)
  counts : int Itemset.Table.t;
  complete : bool;
  completed_levels : int;
}

let check_level ~threshold k entries =
  Array.iteri
    (fun i (x, c) ->
      if Itemset.cardinal x <> k then invalid_arg "Frequent.v: wrong level";
      if c < threshold then invalid_arg "Frequent.v: count below threshold";
      if i > 0 then begin
        let prev, _ = entries.(i - 1) in
        if Itemset.compare_lex prev x >= 0 then
          invalid_arg "Frequent.v: level not sorted"
      end)
    entries

let v ~db_size ~threshold ~levels ~complete ~completed_levels =
  if db_size < 0 || threshold < 1 || completed_levels < 0 then invalid_arg "Frequent.v";
  let levels = Array.of_list levels in
  Array.iteri (fun i entries -> check_level ~threshold (i + 1) entries) levels;
  let counts = Itemset.Table.create 1024 in
  Array.iter
    (fun entries ->
      Array.iter
        (fun (x, c) ->
          if Itemset.Table.mem counts x then invalid_arg "Frequent.v: duplicate";
          Itemset.Table.add counts x c)
        entries)
    levels;
  if complete && completed_levels < Array.length levels then
    invalid_arg "Frequent.v: complete run must complete all levels";
  { db_size; threshold; levels; counts; complete; completed_levels }

let db_size r = r.db_size
let threshold r = r.threshold
let complete r = r.complete
let completed_levels r = r.completed_levels
let total r = Itemset.Table.length r.counts
let max_level r = Array.length r.levels

let level r k =
  if k < 1 || k > Array.length r.levels then [||] else r.levels.(k - 1)

let count r x = Itemset.Table.find_opt r.counts x
let mem r x = Itemset.Table.mem r.counts x

let iter f r =
  Array.iter (fun entries -> Array.iter (fun (x, c) -> f x c) entries) r.levels

let to_list r =
  let out = ref [] in
  iter (fun x c -> out := (x, c) :: !out) r;
  List.rev !out

let restrict r ~threshold =
  if threshold < r.threshold then invalid_arg "Frequent.restrict";
  if threshold = r.threshold then r
  else begin
    let keep entries =
      Array.of_list
        (List.filter (fun (_, c) -> c >= threshold) (Array.to_list entries))
    in
    let levels = Array.map keep r.levels in
    (* Drop empty trailing levels so [max_level] stays meaningful. *)
    let last = ref (Array.length levels) in
    while !last > 0 && Array.length levels.(!last - 1) = 0 do
      decr last
    done;
    let levels = Array.sub levels 0 !last in
    let counts = Itemset.Table.create 1024 in
    Array.iter
      (fun entries -> Array.iter (fun (x, c) -> Itemset.Table.add counts x c) entries)
      levels;
    {
      r with
      threshold;
      levels;
      counts;
      completed_levels = min r.completed_levels (Array.length levels);
    }
  end
