(** Primary-threshold search (Section 5 of the paper).

    The preprocessing stage wants the lowest support threshold whose
    frequent-itemset count fits the memory budget: given a target number
    of itemsets N and a slack Ns, find a threshold at which between
    N - Ns and N itemsets are frequent. Because of ties such a threshold
    may not exist; both searches then return the smallest threshold
    generating at most N itemsets, so the budget is never exceeded.

    Two implementations, matching the paper:
    - {!naive}: [NaiveFindThreshold] — binary search on the threshold,
      running the mining subroutine to completion at every probe;
    - {!optimized}: the improved search, which (1) aborts a probe as soon
      as more than N itemsets are found (that alone proves the probe is
      too low), and (2) reuses completed levels from earlier probes at
      lower thresholds instead of recounting them. *)

open Olar_data

type result = {
  threshold : int;  (** chosen primary threshold (absolute support count) *)
  itemsets : Frequent.t;
      (** the complete mining result at [threshold] — the primary itemsets *)
  probes : (int * int) list;
      (** binary-search trace: (probed threshold, itemsets generated
          before the probe finished or was cut), most recent first *)
  hit_deadline : bool;
      (** the search stopped because the preprocessing-time budget ran
          out (Section 5, constraint 2); [itemsets] is still a complete
          result at [threshold] — just possibly further from the target
          than the window asked for *)
}

(** Which mining subroutine the search drives. [Use_fpgrowth] cannot be
    aborted early or seeded (it is not level-wise), so under it the
    optimized search degrades to complete probes — still correct, and
    often still fastest. *)
type miner = Use_apriori | Use_dhp | Use_fpgrowth

(** [naive db ~target ~slack] runs the paper's [NaiveFindThreshold].
    Raises [Invalid_argument] unless [target >= 1] and
    [0 <= slack < target]. [miner] defaults to [Use_dhp] (as in the
    paper); [stats] accumulates work over all probes; [obs] (default
    disabled) wraps each binary-search iteration in a [threshold.probe]
    span carrying the probed threshold and the itemsets it generated,
    with the miner's [mine]/[mine.pass] spans nested inside.
    @param deadline_s wall-clock budget for the whole search (the
      paper's preprocessing-time constraint). When it expires the search
      stops refining and returns the best threshold proven so far — a
      complete result, conservatively above the target. Unlimited when
      omitted.
    @param domains number of parallel counting domains every probe runs
      with (see {!Levelwise.config}; default 1 = sequential). Ignored
      under [Use_fpgrowth]. *)
val naive :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Stats.t ->
  ?miner:miner ->
  ?deadline_s:float ->
  ?domains:int ->
  Database.t ->
  target:int ->
  slack:int ->
  result

(** [optimized db ~target ~slack] is the accelerated search (early
    termination + cross-probe reuse). Same contract and same final
    threshold as {!naive}. *)
val optimized :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Stats.t ->
  ?miner:miner ->
  ?deadline_s:float ->
  ?domains:int ->
  Database.t ->
  target:int ->
  slack:int ->
  result

(** [estimate_bytes frequent] estimates the memory an adjacency lattice
    over [frequent]'s itemsets would occupy, with the same cost model as
    {!Olar_core.Lattice.estimated_bytes} (computable here without
    building the lattice: Theorem 2.1 gives the edge count as the sum of
    itemset sizes). *)
val estimate_bytes : Frequent.t -> int

(** [optimized_bytes db ~budget_bytes ~slack_bytes] is the search with
    the paper's {e real} constraint — memory, not itemset count: find
    the lowest threshold whose lattice fits [budget_bytes], accepting
    within [budget_bytes - slack_bytes, budget_bytes]. Falls back to the
    smallest-footprint overshoot-free threshold when ties skip the
    window. Raises [Invalid_argument] unless [budget_bytes >= 1] and
    [0 <= slack_bytes < budget_bytes]. *)
val optimized_bytes :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Stats.t ->
  ?miner:miner ->
  ?domains:int ->
  Database.t ->
  budget_bytes:int ->
  slack_bytes:int ->
  result
