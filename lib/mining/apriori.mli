(** Plain Apriori (Agrawal & Srikant 1994): level-wise mining with
    apriori-gen candidates, no hash filtering, no transaction trimming.
    Kept as the reference miner and the DHP ablation baseline. *)

open Olar_data

(** [mine db ~minsup] is all itemsets with support count >= [minsup].
    Optional arguments as in {!Levelwise.mine}. *)
val mine :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Stats.t ->
  ?cap:int ->
  ?max_level:int ->
  ?seed:Frequent.t ->
  ?counting:Levelwise.counting ->
  ?domains:int ->
  Database.t ->
  minsup:int ->
  Frequent.t
