open Olar_data

type report = {
  result : Frequent.t;
  sample_size : int;
  border_size : int;
  misses : int;
  fell_back : bool;
}

(* Minimal itemsets outside the downward-closed family [levels]:
   1-itemsets not in level 1, plus for every k >= 2 the apriori-style
   extensions of level k-1 whose every (k-1)-subset is in the family but
   which are not in level k themselves. *)
let negative_border ~num_items ~levels =
  let member =
    let t = Itemset.Table.create 1024 in
    List.iter (fun level -> Array.iter (fun x -> Itemset.Table.replace t x ()) level) levels;
    Itemset.Table.mem t
  in
  let border = ref [] in
  (* level 1 *)
  let l1 =
    match levels with
    | [] -> [||]
    | l1 :: _ -> l1
  in
  let in_l1 = Array.make num_items false in
  Array.iter (fun x -> in_l1.(Itemset.min_item x) <- true) l1;
  for i = num_items - 1 downto 0 do
    if not in_l1.(i) then border := Itemset.singleton i :: !border
  done;
  (* level k >= 2: candidates joined from level k-1 *)
  List.iteri
    (fun idx level ->
      let k = idx + 1 in
      ignore k;
      if Array.length level > 0 then begin
        let candidates =
          Candidate.generate ~frequent:level ~is_frequent:member
        in
        Array.iter
          (fun cand -> if not (member cand) then border := cand :: !border)
          candidates
      end)
    levels;
  List.sort Itemset.compare !border

let sample_transactions rng db ~sample_size =
  (* Reservoir-free: partial Fisher-Yates over the index range. *)
  let n = Database.size db in
  let idx = Array.init n Fun.id in
  for i = 0 to sample_size - 1 do
    let j = i + Olar_util.Rng.int rng (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Database.create ~num_items:(Database.num_items db)
    (Array.init sample_size (fun i -> Database.get db idx.(i)))

(* One full pass counting an arbitrary set of itemsets exactly. *)
let count_exact ?stats db itemsets =
  let by_level = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let k = Itemset.cardinal x in
      if k >= 1 then begin
        let trie =
          match Hashtbl.find_opt by_level k with
          | Some t -> t
          | None ->
            let t = Trie.create ~depth:k in
            Hashtbl.add by_level k t;
            t
        in
        Trie.insert trie x
      end)
    itemsets;
  (match stats with
  | Some s ->
    Olar_util.Timer.Counter.incr s.Stats.passes;
    Olar_util.Timer.Counter.add s.Stats.candidates (List.length itemsets)
  | None -> ());
  Database.iter
    (fun txn -> Hashtbl.iter (fun _ trie -> Trie.count_transaction trie txn) by_level)
    db;
  let counts = Itemset.Table.create (List.length itemsets) in
  Hashtbl.iter
    (fun _ trie ->
      Array.iter (fun (x, c) -> Itemset.Table.replace counts x c)
        (Trie.to_sorted_array trie))
    by_level;
  fun x -> Itemset.Table.find counts x

let frequent_of_counts ~db_size ~minsup ~count guesses =
  let by_level = Hashtbl.create 8 in
  let max_k = ref 0 in
  List.iter
    (fun x ->
      let c = count x in
      if c >= minsup then begin
        let k = Itemset.cardinal x in
        max_k := max !max_k k;
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_level k) in
        Hashtbl.replace by_level k ((x, c) :: cur)
      end)
    guesses;
  let levels = ref [] in
  for k = !max_k downto 1 do
    let entries = Option.value ~default:[] (Hashtbl.find_opt by_level k) in
    let entries =
      Array.of_list
        (List.sort (fun (a, _) (b, _) -> Itemset.compare_lex a b) entries)
    in
    levels := entries :: !levels
  done;
  Frequent.v ~db_size ~threshold:minsup ~levels:!levels ~complete:true
    ~completed_levels:(List.length !levels)

let mine ?stats ?(seed = 7) ?(sample_fraction = 0.1) ?(lowering = 0.8) db
    ~minsup =
  if minsup < 1 then invalid_arg "Sampling.mine: minsup";
  if sample_fraction <= 0.0 || sample_fraction > 1.0 then
    invalid_arg "Sampling.mine: sample_fraction";
  if lowering <= 0.0 || lowering > 1.0 then invalid_arg "Sampling.mine: lowering";
  let n = Database.size db in
  let sample_size =
    min n (max (min n 100) (int_of_float (sample_fraction *. float_of_int n)))
  in
  if sample_size = 0 || sample_size = n then begin
    (* degenerate: no real sampling possible; mine exactly *)
    let result = Apriori.mine ?stats db ~minsup in
    {
      result;
      sample_size;
      border_size = 0;
      misses = 0;
      fell_back = sample_size = 0;
    }
  end
  else begin
    let rng = Olar_util.Rng.of_int seed in
    let sample = sample_transactions rng db ~sample_size in
    (* Lowered proportional threshold on the sample. *)
    let sample_minsup =
      max 1
        (int_of_float
           (Float.round
              (lowering *. float_of_int minsup *. float_of_int sample_size
              /. float_of_int n)))
    in
    let guess = Apriori.mine ?stats sample ~minsup:sample_minsup in
    let guess_levels =
      List.init (Frequent.max_level guess) (fun k ->
          Array.map fst (Frequent.level guess (k + 1)))
    in
    let border =
      negative_border ~num_items:(Database.num_items db) ~levels:guess_levels
    in
    let guesses = List.map fst (Frequent.to_list guess) in
    let count = count_exact ?stats db (guesses @ border) in
    let misses = List.length (List.filter (fun x -> count x >= minsup) border) in
    if misses = 0 then
      {
        result = frequent_of_counts ~db_size:n ~minsup ~count guesses;
        sample_size;
        border_size = List.length border;
        misses;
        fell_back = false;
      }
    else begin
      (* The sample missed at least one frequent itemset: fall back to an
         exact run (Toivonen would extend the candidate set; a full rerun
         is simpler and equally exact). *)
      let result = Apriori.mine ?stats db ~minsup in
      {
        result;
        sample_size;
        border_size = List.length border;
        misses;
        fell_back = true;
      }
    end
  end
