(** Apriori candidate generation (the apriori-gen join + prune).

    Given the frequent k-itemsets, produce the candidate (k+1)-itemsets:
    join pairs sharing their first k-1 items, then discard any candidate
    with an infrequent k-subset (downward closure). Input and output are
    sorted by {!Olar_data.Itemset.compare_lex}, which makes the join a
    scan over contiguous prefix blocks. *)

open Olar_data

(** [generate ~frequent ~is_frequent] is the candidates of cardinality
    k+1, sorted lexicographically, where [frequent] is the sorted array of
    frequent k-itemsets and [is_frequent] tests membership of a k-itemset
    in the frequent set (used by the prune step). [frequent] must be
    non-empty, uniform in cardinality, and sorted; raises
    [Invalid_argument] otherwise. *)
val generate :
  frequent:Itemset.t array -> is_frequent:(Itemset.t -> bool) -> Itemset.t array

(** [pairs_of_items items] is the candidate 2-itemsets over the given
    frequent 1-items (all pairs), sorted lexicographically. [items] must
    be strictly increasing. *)
val pairs_of_items : Item.t array -> Itemset.t array
