(** The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB 1995).

    One of the two-pass miners the paper cites as the state of the art
    for reducing I/O before its own preprocess-once proposal. Pass 1
    splits the database into chunks small enough to mine in memory and
    mines each chunk at the proportional local threshold; any globally
    frequent itemset must be locally frequent in at least one chunk, so
    the union of the local results is a complete candidate set. Pass 2
    counts those candidates exactly over the full database.

    Included both as a baseline and as an internal check: its output is
    by construction identical to Apriori's. *)

open Olar_data

(** [mine db ~minsup] is all itemsets with support count >= [minsup],
    exactly as {!Apriori.mine}.

    @param num_partitions number of chunks (default 4; clamped to the
      database size). Raises [Invalid_argument] when < 1.
    @param stats accumulates counters; the two logical passes over the
      full database are recorded as [passes] = number of partitions + 1
      (each partition scan touches only its chunk, but we count chunk
      mining conservatively as its own level-wise passes).
    Raises [Invalid_argument] when [minsup < 1]. *)
val mine :
  ?stats:Stats.t ->
  ?num_partitions:int ->
  Database.t ->
  minsup:int ->
  Frequent.t
