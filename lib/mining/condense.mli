(** Condensed representations of a mining result.

    Two classic summaries of a frequent-itemset family:
    - {e maximal} itemsets: frequent with no frequent strict superset —
      the paper's synthetic generator is itself parameterised by
      "maximal potentially large itemsets";
    - {e closed} itemsets: no strict superset with the same support —
      the support of any frequent itemset is recoverable as the maximum
      support of a closed superset, so closed itemsets are a lossless
      compression (they relate to rule redundancy the same way the
      paper's essential rules do).

    Both are derived from a complete {!Frequent.t} without touching the
    database. *)

open Olar_data

(** [maximal frequent] is the maximal frequent itemsets with counts, in
    (cardinality, lexicographic) order. Requires a complete result;
    raises [Invalid_argument] otherwise. *)
val maximal : Frequent.t -> (Itemset.t * int) list

(** [closed frequent] is the closed frequent itemsets with counts, in
    (cardinality, lexicographic) order. Same completeness requirement. *)
val closed : Frequent.t -> (Itemset.t * int) list

(** [support_from_closed closed x] recovers the support of [x] as the
    maximal count among closed supersets of [x]; [None] when [x] is not
    frequent (no closed superset). O(|closed|·|x|). *)
val support_from_closed : (Itemset.t * int) list -> Itemset.t -> int option
