open Olar_data
module Counter = Olar_util.Timer.Counter

type hash_policy =
  | No_hash
  | Hash_pass2 of int
  | Hash_all of int

type counting =
  | Use_trie
  | Use_hashtree

type config = {
  trim : bool;
  hash : hash_policy;
  counting : counting;
  domains : int;
}

(* First-class view of a counting structure so the pass code is agnostic
   to trie vs hash tree. *)
type counter = {
  counter_insert : Olar_data.Itemset.t -> unit;
  counter_transaction : Olar_data.Itemset.t -> unit;
  counter_results : unit -> (Olar_data.Itemset.t * int) array;
}

let make_counter counting ~depth =
  match counting with
  | Use_trie ->
    let t = Trie.create ~depth in
    {
      counter_insert = Trie.insert t;
      counter_transaction = Trie.count_transaction t;
      counter_results = (fun () -> Trie.to_sorted_array t);
    }
  | Use_hashtree ->
    let t = Hashtree.create ~fanout:128 ~leaf_capacity:32 ~depth () in
    {
      counter_insert = Hashtree.insert t;
      counter_transaction = Hashtree.count_transaction t;
      counter_results = (fun () -> Hashtree.to_sorted_array t);
    }

(* FNV-1a over the first [len] entries of [a]; must agree between the
   hashing of transaction combinations and the filtering of candidates. *)
let fnv a len =
  let h = ref 0x3f29ce484222325 in
  for i = 0 to len - 1 do
    h := !h lxor a.(i);
    h := !h * 0x100000001b3
  done;
  !h land max_int

let bucket_of_itemset buckets x =
  let a = Itemset.to_array x in
  fnv a (Array.length a) mod buckets

(* Enumerate all [k]-combinations of [items] (sorted), calling [f buf]
   with the combination in buf.(0..k-1). The buffer is reused. *)
let iter_combinations items k f =
  let n = Array.length items in
  if k <= n then begin
    let buf = Array.make k 0 in
    let rec choose depth from =
      if depth = k then f buf
      else
        for i = from to n - (k - depth) do
          buf.(depth) <- items.(i);
          choose (depth + 1) (i + 1)
        done
    in
    choose 0 0
  end

let no_stats = Stats.create ()

(* Wrap one level pass in a trace span reporting the level and how many
   itemsets survived it; a disabled [obs] runs [f] bare. *)
let pass_span obs ~k f =
  match obs with
  | None -> f ()
  | Some ctx ->
    let out = ref [||] in
    Olar_obs.Obs.span ctx "mine.pass"
      ~attrs:(fun () ->
        [
          ("level", Olar_obs.Trace.Int k);
          ("frequent", Olar_obs.Trace.Int (Array.length !out));
        ])
      (fun () ->
        let ((entries, _) as r) = f () in
        out := entries;
        r)

(* Decide the hash-table size for the table built during pass [k]
   (filtering candidates of size k+1). *)
let buckets_for_pass config k =
  match config.hash with
  | No_hash -> None
  | Hash_pass2 b -> if k = 1 then Some b else None
  | Hash_all b -> Some b

let frequent_entries ~minsup counted =
  Array.of_list
    (List.filter (fun (_, c) -> c >= minsup) (Array.to_list counted))

(* Trim for pass k+1: keep only items occurring in some frequent
   k-itemset; drop transactions that can no longer contain a
   (k+1)-candidate. Exact (downward closure): every item of a frequent
   (k+1)-itemset lies in one of its frequent k-subsets. *)
let trim_transactions stats ~next_k ~alive txns =
  let out = Olar_util.Vec.with_capacity (Array.length txns) in
  Array.iter
    (fun txn ->
      let kept =
        Itemset.of_sorted_array_unchecked
          (Array.of_list (List.filter (fun i -> Itemset.mem i alive) (Itemset.to_list txn)))
      in
      Counter.add stats.Stats.trimmed_items
        (Itemset.cardinal txn - Itemset.cardinal kept);
      if Itemset.cardinal kept >= next_k then Olar_util.Vec.push out kept)
    txns;
  Olar_util.Vec.to_array out

let items_of_level entries =
  let set = Hashtbl.create 256 in
  Array.iter (fun (x, _) -> Itemset.iter (fun i -> Hashtbl.replace set i ()) x) entries;
  Itemset.of_list (Hashtbl.fold (fun i () acc -> i :: acc) set [])

(* Pass 1: count single items; optionally build the pair hash table. *)
let pass1 stats config db ~minsup =
  Counter.incr stats.Stats.passes;
  let buckets = buckets_for_pass config 1 in
  let table = Option.map (fun b -> Array.make b 0) buckets in
  let freq = Array.make (Database.num_items db) 0 in
  let pair_buf = Array.make 2 0 in
  Database.iter
    (fun txn ->
      Itemset.iter (fun i -> freq.(i) <- freq.(i) + 1) txn;
      match table with
      | None -> ()
      | Some h ->
        let b = Array.length h in
        let items = Itemset.to_array txn in
        let n = Array.length items in
        for a = 0 to n - 1 do
          for c = a + 1 to n - 1 do
            pair_buf.(0) <- items.(a);
            pair_buf.(1) <- items.(c);
            let slot = fnv pair_buf 2 mod b in
            h.(slot) <- h.(slot) + 1
          done
        done)
    db;
  Counter.add stats.Stats.candidates (Database.num_items db);
  let entries = Olar_util.Vec.create () in
  Array.iteri
    (fun i c -> if c >= minsup then Olar_util.Vec.push entries (Itemset.singleton i, c))
    freq;
  (Olar_util.Vec.to_array entries, table)

(* One slice of a level pass: count [candidates] over txns[lo, hi) into a
   fresh structure, optionally hashing (k+1)-combinations into a fresh
   table. Pure function of its slice, so slices run on separate domains. *)
let count_slice config ~k ~candidates ~buckets txns lo hi =
  let counter = make_counter config.counting ~depth:k in
  Array.iter counter.counter_insert candidates;
  let table = Option.map (fun b -> Array.make b 0) buckets in
  for t = lo to hi - 1 do
    let txn = txns.(t) in
    counter.counter_transaction txn;
    match table with
    | None -> ()
    | Some h ->
      let b = Array.length h in
      iter_combinations (Itemset.to_array txn) (k + 1) (fun buf ->
          let slot = fnv buf (k + 1) mod b in
          h.(slot) <- h.(slot) + 1)
  done;
  (counter.counter_results (), table)

(* Merge slice results: the counting structures received identical
   candidate sets, so their sorted outputs align positionally. *)
let merge_slices parts =
  match parts with
  | [] -> invalid_arg "Levelwise.merge_slices"
  | [ one ] -> one
  | (first_counts, first_table) :: rest ->
    let counts = Array.copy first_counts in
    let table = Option.map Array.copy first_table in
    List.iter
      (fun (more_counts, more_table) ->
        Array.iteri
          (fun i (x, c) ->
            let x0, c0 = counts.(i) in
            assert (Itemset.equal x0 x);
            counts.(i) <- (x0, c0 + c))
          more_counts;
        match (table, more_table) with
        | Some acc, Some h -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) h
        | None, None -> ()
        | Some _, None | None, Some _ -> assert false)
      rest;
    (counts, table)

(* Pass k >= 2: count [candidates]; optionally build the next level's
   hash table over (k+1)-combinations of each transaction. With
   [config.domains] > 1 the transaction range is sliced across domains. *)
let pass_k stats config ~k txns candidates =
  Counter.incr stats.Stats.passes;
  Counter.add stats.Stats.candidates (Array.length candidates);
  let buckets = buckets_for_pass config k in
  let n = Array.length txns in
  let d = max 1 (min config.domains n) in
  if d = 1 then count_slice config ~k ~candidates ~buckets txns 0 n
  else begin
    let slice i =
      let lo = i * n / d and hi = (i + 1) * n / d in
      (lo, hi)
    in
    let workers =
      List.init (d - 1) (fun i ->
          let lo, hi = slice (i + 1) in
          Domain.spawn (fun () ->
              count_slice config ~k ~candidates ~buckets txns lo hi))
    in
    let lo0, hi0 = slice 0 in
    let own = count_slice config ~k ~candidates ~buckets txns lo0 hi0 in
    merge_slices (own :: List.map Domain.join workers)
  end

let apply_hash_filter stats ~minsup table candidates =
  match table with
  | None -> candidates
  | Some h ->
    let b = Array.length h in
    let kept =
      Array.of_list
        (List.filter
           (fun c -> h.(bucket_of_itemset b c) >= minsup)
           (Array.to_list candidates))
    in
    Counter.add stats.Stats.hash_pruned (Array.length candidates - Array.length kept);
    kept

(* Reusable levels from [seed] at the new threshold: the longest prefix of
   non-empty completed levels. Returns them newest-first. *)
let reuse_from_seed seed ~minsup ~db_size =
  if Frequent.threshold seed > minsup then
    invalid_arg "Levelwise.mine: seed threshold above minsup";
  if Frequent.db_size seed <> db_size then
    invalid_arg "Levelwise.mine: seed from a different database";
  let restricted = Frequent.restrict seed ~threshold:minsup in
  let usable = min (Frequent.completed_levels seed) (Frequent.max_level restricted) in
  let rec take k acc =
    if k > usable then begin
      (* A complete seed whose restriction fits entirely inside the
         completed prefix is the whole answer at [minsup]: frequent
         itemsets at the higher threshold are a subset of the seed's. *)
      let fixpoint =
        Frequent.complete seed && usable = Frequent.max_level restricted
      in
      (acc, fixpoint)
    end
    else
      let entries = Frequent.level restricted k in
      if Array.length entries = 0 then (acc, true) (* fixpoint inside seed *)
      else take (k + 1) (entries :: acc)
  in
  take 1 []

let mine ?(obs = Olar_obs.Obs.disabled) ?stats ?cap ?max_level ?seed config db
    ~minsup =
  if minsup < 1 then invalid_arg "Levelwise.mine: minsup";
  (match cap with
  | Some c when c < 1 -> invalid_arg "Levelwise.mine: cap"
  | _ -> ());
  (match max_level with
  | Some m when m < 1 -> invalid_arg "Levelwise.mine: max_level"
  | _ -> ());
  let stats = Option.value stats ~default:no_stats in
  let db_size = Database.size db in
  let over_cap total = match cap with Some c -> total > c | None -> false in
  let past_max_level k = match max_level with Some m -> k > m | None -> false in
  (* [levels_rev]: completed levels, newest first. [fixpoint]: an empty
     level was derived, no deeper level can exist. *)
  let seeded_levels, seeded_fixpoint =
    match seed with
    | None -> ([], false)
    | Some seed -> reuse_from_seed seed ~minsup ~db_size
  in
  let finish ~levels_rev ~complete ~completed =
    let levels = List.rev levels_rev in
    Frequent.v ~db_size ~threshold:minsup ~levels ~complete
      ~completed_levels:completed
  in
  let rec run ~levels_rev ~k ~total ~txns ~hash_table =
    (* Invariant: levels 1..k-1 are in [levels_rev]; [txns] is the
       (possibly trimmed) database for pass k; [hash_table] filters the
       level-k candidates when present. *)
    if over_cap total then finish ~levels_rev ~complete:false ~completed:(k - 1)
    else if past_max_level k then
      finish ~levels_rev ~complete:false ~completed:(k - 1)
    else begin
      let prev =
        match levels_rev with
        | [] -> [||]
        | entries :: _ -> entries
      in
      if k > 1 && Array.length prev = 0 then
        finish ~levels_rev ~complete:true ~completed:(k - 1)
      else begin
        let entries, next_table =
          pass_span obs ~k (fun () ->
          if k = 1 then pass1 stats config db ~minsup
          else begin
            let candidates =
              if k = 2 then
                Candidate.pairs_of_items
                  (Array.map (fun (x, _) -> Itemset.min_item x) prev)
              else begin
                let frequent = Array.map fst prev in
                let members = Itemset.Table.create (Array.length frequent) in
                Array.iter (fun x -> Itemset.Table.replace members x ()) frequent;
                Candidate.generate ~frequent
                  ~is_frequent:(Itemset.Table.mem members)
              end
            in
            let candidates = apply_hash_filter stats ~minsup hash_table candidates in
            if Array.length candidates = 0 then ([||], None)
            else begin
              let counted, next_table = pass_k stats config ~k txns candidates in
              (frequent_entries ~minsup counted, next_table)
            end
          end)
        in
        Counter.add stats.Stats.frequent (Array.length entries);
        let total = total + Array.length entries in
        let levels_rev = entries :: levels_rev in
        if Array.length entries = 0 then
          (* Fixpoint: strip the trailing empty level for a tidy result. *)
          finish
            ~levels_rev:(List.tl levels_rev)
            ~complete:true ~completed:k
        else begin
          let txns =
            if config.trim then
              trim_transactions stats ~next_k:(k + 1)
                ~alive:(items_of_level entries) txns
            else txns
          in
          run ~levels_rev ~k:(k + 1) ~total ~txns ~hash_table:next_table
        end
      end
    end
  in
  (* A seed that only covers level 1 is a bad deal under hash filtering:
     resuming at level 2 forfeits the pair table built during pass 1 and
     counts every join candidate, which costs more than redoing the single
     cheap pass. Only applies when more mining is actually needed. *)
  let seeded_levels =
    match seeded_levels with
    | [ _ ] when config.hash <> No_hash && not seeded_fixpoint -> []
    | levels -> levels
  in
  let completed = List.length seeded_levels in
  let total =
    List.fold_left (fun acc entries -> acc + Array.length entries) 0 seeded_levels
  in
  if seeded_fixpoint then
    finish ~levels_rev:seeded_levels ~complete:true ~completed
  else if over_cap total then
    finish ~levels_rev:seeded_levels ~complete:false ~completed
  else begin
    match seeded_levels with
    | [] ->
      let txns = Array.init db_size (Database.get db) in
      run ~levels_rev:[] ~k:1 ~total:0 ~txns ~hash_table:None
    | newest :: _ as seeded ->
      (* Resume counting at level [completed]+1 over a freshly trimmed
         database; no hash table is available for the resumed level. *)
      let txns = Array.init db_size (Database.get db) in
      let txns =
        if config.trim then
          trim_transactions stats ~next_k:(completed + 1)
            ~alive:(items_of_level newest) txns
        else txns
      in
      run ~levels_rev:seeded ~k:(completed + 1) ~total ~txns ~hash_table:None
  end
