let mine ?obs ?stats ?cap ?max_level ?seed ?(buckets = 65536)
    ?(hash_all_levels = false) ?(counting = Levelwise.Use_trie) ?(domains = 1)
    db ~minsup =
  if buckets < 1 then invalid_arg "Dhp.mine: buckets";
  if domains < 1 then invalid_arg "Dhp.mine: domains";
  let hash =
    if hash_all_levels then Levelwise.Hash_all buckets
    else Levelwise.Hash_pass2 buckets
  in
  let config = { Levelwise.trim = true; hash; counting; domains } in
  Levelwise.mine ?obs ?stats ?cap ?max_level ?seed config db ~minsup
