(** FP-Growth (Han, Pei & Yin, SIGMOD 2000).

    The pattern-growth alternative to candidate generation: compress the
    database into a frequency-ordered prefix tree (the FP-tree), then
    mine it recursively by building conditional trees per item — no
    candidate sets at all. Included as the modern baseline a mining
    library is expected to ship, and as a third independent
    implementation cross-checking Apriori/DHP (identical outputs,
    asserted in tests and the bench).

    This implementation is exact and favours clarity over the last
    constant factor: conditional pattern bases are materialised per
    item, the single-path shortcut is applied, and the recursion bottoms
    out on empty trees. *)

open Olar_data

(** [mine db ~minsup] is all itemsets with support count >= [minsup],
    exactly as {!Apriori.mine}.

    @param stats [passes] counts the two database scans; [frequent]
      accumulates the result size ([candidates]/[hash_pruned] stay 0 —
      there are no candidates).
    Raises [Invalid_argument] when [minsup < 1]. *)
val mine : ?stats:Stats.t -> Database.t -> minsup:int -> Frequent.t
