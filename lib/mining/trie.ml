open Olar_data

type node = {
  mutable count : int; (* meaningful at depth = trie depth only *)
  children : (int, node) Hashtbl.t;
}

type t = {
  root : node;
  trie_depth : int;
  mutable size : int;
}

let new_node () = { count = 0; children = Hashtbl.create 4 }

let create ~depth =
  if depth < 1 then invalid_arg "Trie.create";
  { root = new_node (); trie_depth = depth; size = 0 }

let depth t = t.trie_depth
let size t = t.size

let insert t x =
  if Itemset.cardinal x <> t.trie_depth then invalid_arg "Trie.insert: wrong arity";
  let node = ref t.root in
  let fresh = ref false in
  Itemset.iter
    (fun i ->
      match Hashtbl.find_opt !node.children i with
      | Some child -> node := child
      | None ->
        let child = new_node () in
        Hashtbl.add !node.children i child;
        node := child;
        fresh := true)
    x;
  if !fresh then t.size <- t.size + 1

(* Descend through every combination of transaction items that matches a
   trie path. [d] is the current node depth; only items at positions
   >= [from] may extend the path (keeps combinations strictly
   increasing). *)
let count_transaction t txn =
  let items = Itemset.to_array txn in
  let n = Array.length items in
  let rec descend node d from =
    if d = t.trie_depth then node.count <- node.count + 1
    else begin
      (* Need trie_depth - d more items; stop when too few remain. *)
      let last = n - (t.trie_depth - d) in
      for i = from to last do
        match Hashtbl.find_opt node.children items.(i) with
        | Some child -> descend child (d + 1) (i + 1)
        | None -> ()
      done
    end
  in
  if n >= t.trie_depth then descend t.root 0 0

let count t x =
  if Itemset.cardinal x <> t.trie_depth then None
  else begin
    let rec walk node = function
      | [] -> Some node.count
      | i :: rest -> (
        match Hashtbl.find_opt node.children i with
        | Some child -> walk child rest
        | None -> None)
    in
    walk t.root (Itemset.to_list x)
  end

let to_sorted_array t =
  let out = Olar_util.Vec.with_capacity (max 1 t.size) in
  let path = Array.make t.trie_depth 0 in
  let rec walk node d =
    if d = t.trie_depth then
      Olar_util.Vec.push out
        (Itemset.of_sorted_array_unchecked (Array.sub path 0 d), node.count)
    else begin
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) node.children [] in
      let keys = List.sort Int.compare keys in
      List.iter
        (fun k ->
          path.(d) <- k;
          walk (Hashtbl.find node.children k) (d + 1))
        keys
    end
  in
  if t.size > 0 then walk t.root 0;
  Olar_util.Vec.to_array out
