open Olar_data

(* Local minimum count for a chunk of [m] transactions out of [n]: the
   largest counts l_i with sum <= minsup guarantee completeness (an
   itemset below l_i in every chunk sums below minsup globally); the
   floor keeps the sum bounded, and raising a zero to 1 stays sound
   because a globally frequent itemset occurs in some chunk. *)
let local_threshold ~minsup ~db_size ~chunk_size =
  max 1 (minsup * chunk_size / db_size)

let split db ~num_partitions =
  let n = Database.size db in
  let p = max 1 (min num_partitions n) in
  let base = n / p and extra = n mod p in
  let chunks = ref [] in
  let start = ref 0 in
  for i = 0 to p - 1 do
    let size = base + if i < extra then 1 else 0 in
    if size > 0 then begin
      let txns = Array.init size (fun k -> Database.get db (!start + k)) in
      chunks := Database.create ~num_items:(Database.num_items db) txns :: !chunks;
      start := !start + size
    end
  done;
  List.rev !chunks

(* Count every candidate exactly in one pass, level by level (one trie
   per cardinality, all filled before the scan). *)
let count_candidates ?stats db candidates =
  let by_level = Hashtbl.create 8 in
  Itemset.Table.iter
    (fun x () ->
      let k = Itemset.cardinal x in
      let trie =
        match Hashtbl.find_opt by_level k with
        | Some t -> t
        | None ->
          let t = Trie.create ~depth:k in
          Hashtbl.add by_level k t;
          t
      in
      Trie.insert trie x)
    candidates;
  (match stats with
  | Some s ->
    Olar_util.Timer.Counter.incr s.Stats.passes;
    Olar_util.Timer.Counter.add s.Stats.candidates (Itemset.Table.length candidates)
  | None -> ());
  Database.iter
    (fun txn -> Hashtbl.iter (fun _ trie -> Trie.count_transaction trie txn) by_level)
    db;
  by_level

let mine ?stats ?(num_partitions = 4) db ~minsup =
  if minsup < 1 then invalid_arg "Partition.mine: minsup";
  if num_partitions < 1 then invalid_arg "Partition.mine: num_partitions";
  let db_size = Database.size db in
  if db_size = 0 then
    Frequent.v ~db_size ~threshold:minsup ~levels:[] ~complete:true
      ~completed_levels:0
  else begin
    (* Pass 1: mine each chunk in memory at its proportional threshold;
       the union of local winners is a complete global candidate set. *)
    let candidates = Itemset.Table.create 1024 in
    List.iter
      (fun chunk ->
        let local =
          Apriori.mine ?stats chunk
            ~minsup:
              (local_threshold ~minsup ~db_size ~chunk_size:(Database.size chunk))
        in
        Frequent.iter (fun x _ -> Itemset.Table.replace candidates x ()) local)
      (split db ~num_partitions);
    (* Pass 2: exact global counts for all candidates. *)
    let by_level = count_candidates ?stats db candidates in
    let max_k = Hashtbl.fold (fun k _ acc -> max acc k) by_level 0 in
    let levels = ref [] in
    for k = max_k downto 1 do
      let entries =
        match Hashtbl.find_opt by_level k with
        | None -> [||]
        | Some trie ->
          Array.of_list
            (List.filter (fun (_, c) -> c >= minsup)
               (Array.to_list (Trie.to_sorted_array trie)))
      in
      levels := entries :: !levels
    done;
    (* Drop empty trailing levels for a tidy result (interior levels
       cannot be empty: downward closure would have emptied them too). *)
    let rec drop_trailing = function
      | [] -> []
      | entries :: rest -> (
        match drop_trailing rest with
        | [] when Array.length entries = 0 -> []
        | rest -> entries :: rest)
    in
    let levels = drop_trailing !levels in
    (match stats with
    | Some s ->
      Olar_util.Timer.Counter.add s.Stats.frequent
        (List.fold_left (fun acc e -> acc + Array.length e) 0 levels)
    | None -> ());
    Frequent.v ~db_size ~threshold:minsup ~levels ~complete:true
      ~completed_levels:(List.length levels)
  end
