(** DHP — the Direct Hashing and Pruning miner of Park, Chen & Yu
    (SIGMOD 1995), the subroutine the paper's preprocessing stage calls.

    Two additions over Apriori: during pass k every (k+1)-subset of each
    transaction is hashed into a bucket-count table used to discard
    level-(k+1) candidates whose bucket cannot reach minimum support
    (deployed for pass 2 by default, where candidate explosion is worst),
    and transactions are progressively trimmed to items that still occur
    in some frequent itemset of the current level. *)

open Olar_data

(** [mine db ~minsup] is all itemsets with support count >= [minsup].

    @param buckets size of the hash-count table (default 65536).
    @param hash_all_levels build a filter table for every level, not just
      pass 2 (costs an enumeration of all (k+1)-combinations of each
      trimmed transaction per pass; default false).
    Other optional arguments as in {!Levelwise.mine}. *)
val mine :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Stats.t ->
  ?cap:int ->
  ?max_level:int ->
  ?seed:Frequent.t ->
  ?buckets:int ->
  ?hash_all_levels:bool ->
  ?counting:Levelwise.counting ->
  ?domains:int ->
  Database.t ->
  minsup:int ->
  Frequent.t
