(** The level-wise (breadth-first) mining engine.

    One configurable skeleton implements both plain Apriori and DHP:
    pass k counts the level-k candidates in one database scan; the
    candidates for pass k+1 come from the apriori-gen join of the level-k
    survivors, optionally pre-filtered by a DHP hash table built during
    pass k, over a database optionally trimmed to items still alive in
    some frequent k-itemset.

    The engine also implements the two accelerations of Section 5 of the
    paper used by the primary-threshold search:
    - {b early termination} ([cap]): stop as soon as strictly more than
      [cap] itemsets have been found — enough to know the probed threshold
      is too low;
    - {b reuse} ([seed]): start from the completed levels of a previous
      run at a lower (or equal) threshold instead of re-counting them. *)

open Olar_data

(** DHP hash-filtering policy. [Hash_pass2 buckets] builds the pair-bucket
    table during pass 1 and filters the 2-candidates (the classic DHP
    deployment); [Hash_all buckets] builds a table for every next level
    (expensive for long transactions: pass k enumerates all
    (k+1)-combinations of each transaction). *)
type hash_policy =
  | No_hash
  | Hash_pass2 of int
  | Hash_all of int

(** Which batched counting structure pass k uses (identical counts; the
    trie is usually faster, see the `ablate-counting` bench). *)
type counting =
  | Use_trie
  | Use_hashtree

type config = {
  trim : bool;
      (** after pass k, drop items in no frequent k-itemset and
          transactions left with fewer than k+1 items *)
  hash : hash_policy;
  counting : counting;
  domains : int;
      (** parallel counting domains for the level passes (OCaml 5
          multicore); 1 = sequential. Results are identical for any
          value: each domain counts a transaction slice into its own
          structure and the per-candidate counts are summed. *)
}

(** [mine config db ~minsup] mines all itemsets with support count >=
    [minsup].

    @param obs telemetry context; when enabled and tracing, each level
      pass is wrapped in a [mine.pass] span carrying the level number and
      the count of itemsets that survived it. Defaults to disabled.
    @param stats work counters to accumulate into.
    @param cap abort (complete = false) once more than [cap] itemsets
      have been found; must be >= 1.
    @param max_level stop after this cardinality (complete = false if
      candidates remained); must be >= 1.
    @param seed a previous result over the {e same database} at a
      threshold <= [minsup]; its completed levels are reused without
      counting. Raises [Invalid_argument] on a threshold above [minsup]
      or a mismatched database size.
    Raises [Invalid_argument] if [minsup < 1]. *)
val mine :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Stats.t ->
  ?cap:int ->
  ?max_level:int ->
  ?seed:Frequent.t ->
  config ->
  Database.t ->
  minsup:int ->
  Frequent.t
