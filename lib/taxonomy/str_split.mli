(** Tiny string-splitting helper for the taxonomy text format (keeps
    {!Taxonomy_io} free of hand-rolled index arithmetic). *)

(** [arrow line] splits on the first [" -> "] (surrounding whitespace of
    the two sides trimmed). [None] when the separator is absent. *)
val arrow : string -> (string * string) option
