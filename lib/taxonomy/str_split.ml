let arrow line =
  let sep = "->" in
  let n = String.length line in
  let rec find i =
    if i + String.length sep > n then None
    else if String.sub line i (String.length sep) = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let left = String.trim (String.sub line 0 i) in
    let right =
      String.trim (String.sub line (i + String.length sep) (n - i - String.length sep))
    in
    Some (left, right)
