(** Item taxonomies (is-a hierarchies).

    Substrate for {e generalized association rules} (Srikant & Agrawal,
    VLDB 1995 — the paper's reference [21]): items are organised in a
    forest, e.g. jacket → outerwear → clothes, and rules may mention
    interior categories ("outerwear ⇒ hiking boots") that no raw
    transaction contains literally.

    A taxonomy is a DAG restricted to a forest here (each item has at
    most one parent, matching the cited paper's hierarchies); categories
    are ordinary item ids, so the whole engine works on them unchanged
    once transactions are extended (see {!Generalize}). *)

open Olar_data

type t

(** [of_parents ~num_items edges] builds a taxonomy over items
    [0 .. num_items-1] from (child, parent) pairs. Raises
    [Invalid_argument] on out-of-range ids, a child with two parents, a
    self-edge, or a cycle. *)
val of_parents : num_items:int -> (Item.t * Item.t) list -> t

(** [num_items t] is the universe size (leaves and categories alike). *)
val num_items : t -> int

(** [parent t i] is [i]'s immediate generalisation, if any. *)
val parent : t -> Item.t -> Item.t option

(** [children t i] are the items whose parent is [i], ascending. *)
val children : t -> Item.t -> Item.t list

(** [ancestors t i] is the chain of strict generalisations of [i],
    nearest first. *)
val ancestors : t -> Item.t -> Item.t list

(** [descendants t i] is every item below [i] (excluding [i]),
    ascending. *)
val descendants : t -> Item.t -> Item.t list

(** [roots t] is the items without parents, ascending. *)
val roots : t -> Item.t list

(** [leaves t] is the items without children, ascending. *)
val leaves : t -> Item.t list

(** [is_ancestor t ~ancestor ~of_] tests strict generalisation. *)
val is_ancestor : t -> ancestor:Item.t -> of_:Item.t -> bool

(** [depth t i] is the number of ancestors of [i] (roots have 0). *)
val depth : t -> Item.t -> int
