open Olar_data

let extend_database taxonomy db =
  if Database.num_items db > Taxonomy.num_items taxonomy then
    invalid_arg "Generalize.extend_database: universe mismatch";
  let extend txn =
    let acc = ref (Itemset.to_list txn) in
    Itemset.iter (fun i -> acc := Taxonomy.ancestors taxonomy i @ !acc) txn;
    Itemset.of_list !acc
  in
  Database.create
    ~num_items:(Taxonomy.num_items taxonomy)
    (Array.init (Database.size db) (fun i -> extend (Database.get db i)))

let itemset_is_clean taxonomy x =
  not
    (Itemset.fold
       (fun i dirty ->
         dirty
         || List.exists (fun a -> Itemset.mem a x) (Taxonomy.ancestors taxonomy i))
       x false)

let clean_itemsets taxonomy entries =
  List.filter (fun (x, _) -> itemset_is_clean taxonomy x) entries

let clean_lattice taxonomy lattice =
  let entries =
    Array.of_list
      (clean_itemsets taxonomy
         (Array.to_list (Olar_core.Lattice.entries lattice)))
  in
  Olar_core.Lattice.of_entries
    ~db_size:(Olar_core.Lattice.db_size lattice)
    ~threshold:(Olar_core.Lattice.threshold lattice)
    entries

let related taxonomy a b =
  Taxonomy.is_ancestor taxonomy ~ancestor:a ~of_:b
  || Taxonomy.is_ancestor taxonomy ~ancestor:b ~of_:a

let rule_is_informative taxonomy rule =
  itemset_is_clean taxonomy (Olar_core.Rule.union rule)
  && not
       (Itemset.fold
          (fun c hit ->
            hit
            || Itemset.fold
                 (fun a hit -> hit || related taxonomy a c)
                 rule.Olar_core.Rule.antecedent false)
          rule.Olar_core.Rule.consequent false)

let prune_rules taxonomy rules =
  List.filter (rule_is_informative taxonomy) rules
