type t = {
  num_items : int;
  parents : int array; (* -1 = root *)
  children : int list array; (* ascending *)
}

let of_parents ~num_items edges =
  if num_items < 1 then invalid_arg "Taxonomy.of_parents: num_items";
  let parents = Array.make num_items (-1) in
  List.iter
    (fun (child, parent) ->
      if child < 0 || child >= num_items || parent < 0 || parent >= num_items
      then invalid_arg "Taxonomy.of_parents: item out of range";
      if child = parent then invalid_arg "Taxonomy.of_parents: self edge";
      if parents.(child) <> -1 then
        invalid_arg "Taxonomy.of_parents: child with two parents";
      parents.(child) <- parent)
    edges;
  (* Cycle check: walking up from any item must terminate within
     num_items steps. *)
  for i = 0 to num_items - 1 do
    let rec walk j steps =
      if j <> -1 then
        if steps > num_items then invalid_arg "Taxonomy.of_parents: cycle"
        else walk parents.(j) (steps + 1)
    in
    walk i 0
  done;
  let children = Array.make num_items [] in
  for i = num_items - 1 downto 0 do
    let p = parents.(i) in
    if p <> -1 then children.(p) <- i :: children.(p)
  done;
  { num_items; parents; children }

let num_items t = t.num_items

let check t i name = if i < 0 || i >= t.num_items then invalid_arg name

let parent t i =
  check t i "Taxonomy.parent";
  if t.parents.(i) = -1 then None else Some t.parents.(i)

let children t i =
  check t i "Taxonomy.children";
  t.children.(i)

let ancestors t i =
  check t i "Taxonomy.ancestors";
  let rec walk j acc =
    match t.parents.(j) with
    | -1 -> List.rev acc
    | p -> walk p (p :: acc)
  in
  walk i []

let descendants t i =
  check t i "Taxonomy.descendants";
  let out = ref [] in
  let rec walk j =
    List.iter
      (fun c ->
        out := c :: !out;
        walk c)
      t.children.(j)
  in
  walk i;
  List.sort Int.compare !out

let roots t =
  List.filter (fun i -> t.parents.(i) = -1) (List.init t.num_items Fun.id)

let leaves t =
  List.filter (fun i -> t.children.(i) = []) (List.init t.num_items Fun.id)

let is_ancestor t ~ancestor ~of_ =
  check t ancestor "Taxonomy.is_ancestor";
  List.mem ancestor (ancestors t of_)

let depth t i = List.length (ancestors t i)
