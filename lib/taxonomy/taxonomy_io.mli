(** Text format for taxonomies over named items.

    One edge per line, [child -> parent], names interned into a shared
    vocabulary ([#] comments and blank lines ignored):
    {v
    # product hierarchy
    alpine jacket -> outerwear
    outerwear -> clothing
    hiking boots -> footwear
    v}
    Category names that never appear in transactions are ordinary items
    in the derived vocabulary — exactly what {!Generalize} needs. *)

(** Raised on syntax errors, with the line number. *)
exception Malformed of string

(** [parse ?vocab lines] reads edges, interning names into [vocab] (a
    fresh one when omitted — pass the transaction vocabulary so item ids
    line up). Returns the grown vocabulary and the taxonomy over it.
    Raises [Malformed] on syntax errors and [Invalid_argument] on
    structural ones (cycles, double parents — see
    {!Taxonomy.of_parents}). *)
val parse :
  ?vocab:Olar_data.Item.Vocab.t -> string list -> Olar_data.Item.Vocab.t * Taxonomy.t

(** [load ?vocab path] is {!parse} on a file. Also raises [Sys_error]. *)
val load :
  ?vocab:Olar_data.Item.Vocab.t -> string -> Olar_data.Item.Vocab.t * Taxonomy.t

(** [save vocab taxonomy path] writes the edges with names. Raises
    [Invalid_argument] when the taxonomy mentions ids the vocabulary
    does not name. *)
val save : Olar_data.Item.Vocab.t -> Taxonomy.t -> string -> unit
