(** Generalized association rules over a taxonomy.

    The cited algorithm's core move: {e extend} every transaction with
    the ancestors of its items, then mine and query as usual — a rule
    can now have interior categories on either side. Two cleanups
    specific to taxonomies are provided:

    - an itemset that contains both an item and one of its ancestors is
      pathological (the ancestor adds no information: support is
      unchanged), so such itemsets and the rules built from them are
      dropped;
    - a rule whose antecedent and consequent relate through the taxonomy
      (e.g. outerwear ⇒ jackets) is near-tautological; {!prune_rules}
      removes rules where some consequent item is an ancestor or
      descendant of an antecedent item. *)

open Olar_data

(** [extend_database taxonomy db] adds to every transaction the ancestors
    of each of its items. The result keeps [db]'s size; its universe is
    the taxonomy's. Raises [Invalid_argument] when [db]'s universe
    exceeds the taxonomy's. *)
val extend_database : Taxonomy.t -> Database.t -> Database.t

(** [itemset_is_clean taxonomy x] is false iff [x] contains an item
    together with one of its ancestors. *)
val itemset_is_clean : Taxonomy.t -> Itemset.t -> bool

(** [clean_itemsets taxonomy entries] drops unclean itemsets. *)
val clean_itemsets :
  Taxonomy.t -> (Itemset.t * int) list -> (Itemset.t * int) list

(** [clean_lattice taxonomy lattice] rebuilds the lattice over the clean
    itemsets only. Cleanliness is closed under subsets, so downward
    closure survives and every lattice invariant holds. This is the
    right order of operations for generalized rules: clean {e before}
    generating, otherwise redundancy elimination promotes the rules of
    the biggest — unclean — itemsets and the category associations are
    pruned away as redundant. *)
val clean_lattice : Taxonomy.t -> Olar_core.Lattice.t -> Olar_core.Lattice.t

(** [rule_is_informative taxonomy rule] is false iff the rule's union is
    unclean, or some consequent item is an ancestor/descendant of an
    antecedent item. *)
val rule_is_informative : Taxonomy.t -> Olar_core.Rule.t -> bool

(** [prune_rules taxonomy rules] keeps the informative rules. *)
val prune_rules : Taxonomy.t -> Olar_core.Rule.t list -> Olar_core.Rule.t list
