exception Malformed of string

let split_edge ~lineno line =
  match Str_split.arrow line with
  | Some (child, parent) when child <> "" && parent <> "" -> (child, parent)
  | _ ->
    raise
      (Malformed
         (Printf.sprintf "line %d: expected \"child -> parent\", got %S" lineno
            line))

let parse ?vocab lines =
  let vocab =
    match vocab with
    | Some v -> v
    | None -> Olar_data.Item.Vocab.create ()
  in
  let edges = ref [] in
  List.iteri
    (fun idx raw ->
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        let child, parent = split_edge ~lineno:(idx + 1) line in
        let c = Olar_data.Item.Vocab.intern vocab child in
        let p = Olar_data.Item.Vocab.intern vocab parent in
        edges := (c, p) :: !edges
      end)
    lines;
  let taxonomy =
    Taxonomy.of_parents
      ~num_items:(max 1 (Olar_data.Item.Vocab.size vocab))
      (List.rev !edges)
  in
  (vocab, taxonomy)

let load ?vocab path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse ?vocab (List.rev !lines))

let save vocab taxonomy path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      for i = 0 to Taxonomy.num_items taxonomy - 1 do
        match Taxonomy.parent taxonomy i with
        | None -> ()
        | Some p ->
          let name j =
            try Olar_data.Item.Vocab.name vocab j
            with Invalid_argument _ ->
              invalid_arg "Taxonomy_io.save: unnamed item"
          in
          Printf.fprintf oc "%s -> %s\n" (name i) (name p)
      done)
