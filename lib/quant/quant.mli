(** Quantitative association rules: record encoding.

    [fit] learns an item encoding from data — each categorical value
    observed becomes an item, each numeric attribute's observed range is
    cut into equi-depth intervals (quantile boundaries) each of which
    becomes an item. Encoded records are ordinary transactions with
    exactly one item per attribute, so the whole engine applies; decoded
    rules read like "age ∈ [32, 41) ∧ married = yes ⇒ cars ∈ [2, 3)"
    (the cited paper's headline example). *)

open Olar_data

type t

(** [fit schema records] learns the encoding. Every record must have one
    value per schema attribute of the matching kind. Raises
    [Invalid_argument] on schema/record violations or when [records] is
    empty. *)
val fit : Attribute.t array -> Attribute.value array array -> t

(** [num_items t] is the size of the derived item universe. *)
val num_items : t -> int

(** [schema t] is the schema the encoding was fitted to. *)
val schema : t -> Attribute.t array

(** [encode t record] is the record's transaction: one item per
    attribute. A categorical value unseen during fitting has no item and
    is skipped; numeric values clamp into the extreme intervals. *)
val encode : t -> Attribute.value array -> Itemset.t

(** [database t records] encodes every record. *)
val database : t -> Attribute.value array array -> Database.t

(** [item_label t i] renders an item as a predicate, e.g.
    ["age in [32.0, 41.0)"] or ["city = berlin"]. Raises
    [Invalid_argument] on an unknown id. *)
val item_label : t -> Item.t -> string

(** [vocab t] is a vocabulary mapping every derived item to its
    {!item_label}, for use with the [pp_named] printers. *)
val vocab : t -> Item.Vocab.t

(** [pp_rule t fmt rule] prints a rule with predicate labels. *)
val pp_rule : t -> Format.formatter -> Olar_core.Rule.t -> unit
