open Olar_data

(* Per-attribute encoders. For numerics, [cuts] are the interior
   quantile boundaries: value v lands in the first bucket whose cut
   exceeds it (equi-depth partitioning of the fitted sample). *)
type encoder =
  | Cat_encoder of (string, int) Hashtbl.t * string array (* value <-> local id *)
  | Num_encoder of { cuts : float array; lo : float; hi : float }

type t = {
  schema : Attribute.t array;
  encoders : encoder array;
  offsets : int array; (* item id base per attribute *)
  total_items : int;
}

let check_record schema record =
  if Array.length record <> Array.length schema then
    invalid_arg "Quant: record arity does not match schema";
  Array.iteri (fun i v -> Attribute.check_value schema.(i) v) record

let fit schema records =
  Attribute.validate_schema schema;
  if Array.length records = 0 then invalid_arg "Quant.fit: no records";
  Array.iter (check_record schema) records;
  let encoders =
    Array.mapi
      (fun col attr ->
        match attr.Attribute.kind with
        | Attribute.Categorical ->
          let by_value = Hashtbl.create 16 in
          let values = Olar_util.Vec.create () in
          Array.iter
            (fun record ->
              match record.(col) with
              | Attribute.Cat s ->
                if not (Hashtbl.mem by_value s) then begin
                  Hashtbl.add by_value s (Olar_util.Vec.length values);
                  Olar_util.Vec.push values s
                end
              | Attribute.Num _ -> assert false)
            records;
          Cat_encoder (by_value, Olar_util.Vec.to_array values)
        | Attribute.Numeric { buckets } ->
          let sample =
            Array.map
              (fun record ->
                match record.(col) with
                | Attribute.Num x -> x
                | Attribute.Cat _ -> assert false)
              records
          in
          Array.sort Float.compare sample;
          let n = Array.length sample in
          (* interior cuts at the k/buckets quantiles; duplicates are
             deduplicated so constant attributes get one bucket *)
          let raw =
            List.init (buckets - 1) (fun k ->
                sample.(min (n - 1) ((k + 1) * n / buckets)))
          in
          let cuts =
            Array.of_list
              (List.sort_uniq Float.compare
                 (List.filter
                    (fun c -> c > sample.(0) && c <= sample.(n - 1))
                    raw))
          in
          Num_encoder { cuts; lo = sample.(0); hi = sample.(n - 1) })
      schema
  in
  let offsets = Array.make (Array.length schema) 0 in
  let total = ref 0 in
  Array.iteri
    (fun col enc ->
      offsets.(col) <- !total;
      let arity =
        match enc with
        | Cat_encoder (_, values) -> Array.length values
        | Num_encoder { cuts; _ } -> Array.length cuts + 1
      in
      total := !total + arity)
    encoders;
  { schema; encoders; offsets; total_items = max 1 !total }

let num_items t = t.total_items
let schema t = t.schema

let bucket_of cuts x =
  (* first index whose cut exceeds x; cuts sorted ascending *)
  let n = Array.length cuts in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x < cuts.(mid) then search lo mid else search (mid + 1) hi
  in
  search 0 n

let encode t record =
  check_record t.schema record;
  let items = ref [] in
  Array.iteri
    (fun col v ->
      match (t.encoders.(col), v) with
      | Cat_encoder (by_value, _), Attribute.Cat s -> (
        match Hashtbl.find_opt by_value s with
        | Some local -> items := (t.offsets.(col) + local) :: !items
        | None -> () (* unseen category: no item *))
      | Num_encoder { cuts; _ }, Attribute.Num x ->
        items := (t.offsets.(col) + bucket_of cuts x) :: !items
      | Cat_encoder _, Attribute.Num _ | Num_encoder _, Attribute.Cat _ ->
        assert false (* check_record *))
    record;
  Itemset.of_list !items

let database t records =
  Database.create ~num_items:t.total_items
    (Array.map (encode t) records)

let locate t i =
  if i < 0 || i >= t.total_items then invalid_arg "Quant.item_label";
  let col = ref 0 in
  let n = Array.length t.offsets in
  while !col + 1 < n && t.offsets.(!col + 1) <= i do
    incr col
  done;
  (!col, i - t.offsets.(!col))

let item_label t i =
  let col, local = locate t i in
  let attr = t.schema.(col) in
  match t.encoders.(col) with
  | Cat_encoder (_, values) ->
    Printf.sprintf "%s = %s" attr.Attribute.name values.(local)
  | Num_encoder { cuts; lo; hi } ->
    let n = Array.length cuts in
    let left = if local = 0 then lo else cuts.(local - 1) in
    let right = if local = n then hi else cuts.(local) in
    if local = n then
      Printf.sprintf "%s in [%g, %g]" attr.Attribute.name left right
    else Printf.sprintf "%s in [%g, %g)" attr.Attribute.name left right

let vocab t =
  Item.Vocab.of_names (List.init t.total_items (item_label t))

let pp_rule t fmt rule =
  let pp_side fmt x =
    let first = ref true in
    Itemset.iter
      (fun i ->
        if !first then first := false else Format.fprintf fmt " AND ";
        Format.pp_print_string fmt (item_label t i))
      x
  in
  Format.fprintf fmt "%a => %a (sup=%d, conf=%.2f)" pp_side
    rule.Olar_core.Rule.antecedent pp_side rule.Olar_core.Rule.consequent
    rule.Olar_core.Rule.support_count
    (Olar_core.Rule.confidence rule)
