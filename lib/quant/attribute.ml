type kind =
  | Categorical
  | Numeric of { buckets : int }

type t = {
  name : string;
  kind : kind;
}

type value =
  | Cat of string
  | Num of float

let categorical name =
  if name = "" then invalid_arg "Attribute.categorical: empty name";
  { name; kind = Categorical }

let numeric name ~buckets =
  if name = "" then invalid_arg "Attribute.numeric: empty name";
  if buckets < 1 then invalid_arg "Attribute.numeric: buckets";
  { name; kind = Numeric { buckets } }

let validate_schema schema =
  if Array.length schema = 0 then invalid_arg "Attribute.validate_schema: empty";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      if Hashtbl.mem seen a.name then
        invalid_arg "Attribute.validate_schema: duplicate name";
      Hashtbl.add seen a.name ())
    schema

let check_value attr v =
  match (attr.kind, v) with
  | Categorical, Cat _ -> ()
  | Numeric _, Num x ->
    if Float.is_nan x then invalid_arg "Attribute.check_value: NaN"
  | Categorical, Num _ | Numeric _, Cat _ ->
    invalid_arg "Attribute.check_value: kind mismatch"
