(** Attribute schemas for quantitative association rules.

    Substrate for the paper's reference [22] (Srikant & Agrawal, SIGMOD
    1996): records over categorical and numeric attributes are mapped
    onto the 0-1 item model by giving every categorical value, and every
    interval of a numeric attribute's range, its own item. This module
    is the schema half; {!Quant} does the fitting and encoding. *)

(** How one attribute is turned into items. *)
type kind =
  | Categorical  (** one item per distinct value observed when fitting *)
  | Numeric of { buckets : int }
      (** equi-depth partitioning into this many intervals (>= 1) *)

type t = {
  name : string;
  kind : kind;
}

(** A field of a record, positionally matching the schema. *)
type value =
  | Cat of string
  | Num of float

(** [categorical name] / [numeric name ~buckets] are constructors with
    validation ([Invalid_argument] on empty name or [buckets < 1]). *)
val categorical : string -> t

val numeric : string -> buckets:int -> t

(** [validate_schema schema] raises [Invalid_argument] on an empty
    schema or duplicate attribute names. *)
val validate_schema : t array -> unit

(** [check_value attr v] raises [Invalid_argument] when the value's
    shape does not match the attribute's kind (or a numeric value is
    NaN). *)
val check_value : t -> value -> unit
