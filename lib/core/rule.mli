(** Association rules and the paper's redundancy theory (Section 4).

    A rule X ⇒ Y carries its exact support count (transactions containing
    X ∪ Y) and the support count of its antecedent, from which the
    confidence follows. Redundancy between rules is purely structural
    (Theorems 4.1 and 4.2): it never needs the transaction data. *)

open Olar_data

type t = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  support_count : int;  (** transactions containing antecedent ∪ consequent *)
  antecedent_count : int;  (** transactions containing the antecedent *)
}

(** [make ~antecedent ~consequent ~support_count ~antecedent_count]
    validates and builds a rule: the parts must be disjoint, the
    consequent non-empty, and 0 <= support_count <= antecedent_count
    (with antecedent_count > 0). Raises [Invalid_argument] otherwise.
    An empty antecedent is allowed (the degenerate rule ∅ ⇒ Y whose
    confidence is the support fraction of Y, with [antecedent_count] the
    database size). *)
val make :
  antecedent:Itemset.t ->
  consequent:Itemset.t ->
  support_count:int ->
  antecedent_count:int ->
  t

(** [union r] is antecedent ∪ consequent — the generating itemset. *)
val union : t -> Itemset.t

(** [confidence r] is support_count / antecedent_count. *)
val confidence : t -> float

(** [support r ~db_size] is the fractional support. Raises
    [Invalid_argument] if [db_size < support_count] or [db_size <= 0]. *)
val support : t -> db_size:int -> float

(** [single_consequent r] is true iff the consequent has exactly one
    item (Section 3.2's rule class). *)
val single_consequent : t -> bool

(** {1 Redundancy (Definitions 4.1-4.2, Theorems 4.1-4.3)}

    In the paper's orientation, [candidate] is redundant {e with respect
    to} [wrt] when [candidate]'s truth at any (support, confidence) level
    follows from [wrt]'s — [candidate]'s support and confidence are both
    at least as large, independent of the data. *)

(** [simple_redundant ~candidate ~wrt] — Theorem 4.1: same generating
    itemset and [candidate]'s antecedent strictly contains [wrt]'s. *)
val simple_redundant : candidate:t -> wrt:t -> bool

(** [strict_redundant ~candidate ~wrt] — Theorem 4.2: [wrt]'s generating
    itemset strictly contains [candidate]'s, and [candidate]'s antecedent
    contains [wrt]'s. *)
val strict_redundant : candidate:t -> wrt:t -> bool

(** [redundant ~candidate ~wrt] is the disjunction of the two. *)
val redundant : candidate:t -> wrt:t -> bool

(** [count_simple_redundant ~consequent_size] is 2^m − 2, the number of
    rules bearing simple redundancy w.r.t. a rule with an m-item
    consequent (Theorem 4.3). Raises [Invalid_argument] if [m < 1] or
    [m > 30]. *)
val count_simple_redundant : consequent_size:int -> int

(** [count_all_redundant ~consequent_size] is 3^m − 2^m − 1, the number
    of rules bearing simple or strict redundancy w.r.t. a rule with an
    m-item consequent (Theorem 4.3). Same bounds. *)
val count_all_redundant : consequent_size:int -> int

(** {1 Order, equality, printing} *)

(** Total order: by generating itemset, then antecedent. Two distinct
    rules never compare equal; counts are not part of the identity (a
    rule's counts are determined by its itemsets on a fixed database). *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [pp fmt r] prints like "{1,2} => {3} (sup=12, conf=0.75)". *)
val pp : Format.formatter -> t -> unit

(** [pp_named vocab fmt r] prints with item names. *)
val pp_named : Item.Vocab.t -> Format.formatter -> t -> unit

(** [to_string r] renders {!pp}. *)
val to_string : t -> string
