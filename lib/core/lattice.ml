open Olar_data

type vertex_id = int

(* Flat CSR layout. The items of vertex v occupy
   item_buf.[item_off.(v) .. item_off.(v+1)), strictly increasing; the
   adjacency rows use the same offset scheme. By Theorem 2.1 the edge
   count equals the total item count, so item_buf, child_buf and
   parent_buf all have the same length. Vertex ids follow the
   (cardinality, lex) order of Itemset.compare, root = 0. *)
type t = {
  db_size : int;
  threshold : int;
  item_off : int array; (* n + 1 *)
  item_buf : int array; (* e *)
  supports : int array; (* n *)
  child_off : int array; (* n + 1 *)
  child_buf : int array; (* rows: decreasing support, ties ascending id *)
  parent_off : int array; (* n + 1 *)
  parent_buf : int array; (* rows: ascending id *)
  index : int array; (* open addressing over packed itemsets; -1 = empty *)
  index_mask : int;
}

(* ------------------------------------------------------------------ *)
(* Index: open-addressed table with linear probing, power-of-two
   capacity >= 2n so probes terminate fast. Hashing replicates
   Itemset.hash over the packed range, so find can hash an Itemset.t
   key and compare against ranges without unpacking. *)

let index_capacity n =
  let target = max 8 (2 * n) in
  let c = ref 8 in
  while !c < target do
    c := !c lsl 1
  done;
  !c

let hash_range buf lo hi =
  let h = ref 0x3f29ce484222325 in
  for k = lo to hi - 1 do
    h := !h lxor buf.(k);
    h := !h * 0x100000001b3
  done;
  !h land max_int

let build_index item_off item_buf n =
  let cap = index_capacity n in
  let mask = cap - 1 in
  let index = Array.make cap (-1) in
  for v = 0 to n - 1 do
    let h = hash_range item_buf item_off.(v) item_off.(v + 1) in
    let slot = ref (h land mask) in
    while index.(!slot) >= 0 do
      slot := (!slot + 1) land mask
    done;
    index.(!slot) <- v
  done;
  (index, mask)

(* ------------------------------------------------------------------ *)
(* Adjacency derivation, shared by of_entries and of_packed. Parents
   are resolved by index lookup of "this vertex minus one item"; the
   child rows are the transpose. Raises Invalid_argument (ctx ^ reason)
   on closure or monotonicity violations. *)

(* Does the itemset of [v] (range starting at plo) equal
   buf.[lo..hi) minus the element at position [skip]? *)
let equal_minus buf plo lo hi skip =
  let ok = ref true in
  let p = ref plo in
  let k = ref lo in
  while !ok && !k < hi do
    if !k <> skip then begin
      if buf.(!p) <> buf.(!k) then ok := false;
      incr p
    end;
    incr k
  done;
  !ok

let find_parent_packed item_off item_buf index mask ~lo ~hi ~skip =
  let h = ref 0x3f29ce484222325 in
  for k = lo to hi - 1 do
    if k <> skip then begin
      h := !h lxor item_buf.(k);
      h := !h * 0x100000001b3
    end
  done;
  let h = !h land max_int in
  let card = hi - lo - 1 in
  let result = ref (-2) in
  let slot = ref (h land mask) in
  while !result = -2 do
    let v = index.(!slot) in
    if v < 0 then result := -1
    else begin
      let plo = item_off.(v) in
      if item_off.(v + 1) - plo = card && equal_minus item_buf plo lo hi skip
      then result := v
      else slot := (!slot + 1) land mask
    end
  done;
  !result

let build_adjacency ~ctx item_off item_buf supports index mask =
  let n = Array.length supports in
  let e = Array.length item_buf in
  let parent_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    parent_off.(v + 1) <- parent_off.(v) + (item_off.(v + 1) - item_off.(v))
  done;
  let parent_buf = Array.make e 0 in
  let child_count = Array.make n 0 in
  for v = 1 to n - 1 do
    let lo = item_off.(v) and hi = item_off.(v + 1) in
    let cursor = ref parent_off.(v) in
    (* Dropping the largest item first yields the lexicographically
       smallest parent, so the row comes out in ascending id order. *)
    for skip = hi - 1 downto lo do
      let p = find_parent_packed item_off item_buf index mask ~lo ~hi ~skip in
      if p < 0 then invalid_arg (ctx ^ "not downward closed");
      if supports.(p) < supports.(v) then
        invalid_arg (ctx ^ "support not monotone");
      parent_buf.(!cursor) <- p;
      incr cursor;
      child_count.(p) <- child_count.(p) + 1
    done
  done;
  let child_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    child_off.(v + 1) <- child_off.(v) + child_count.(v)
  done;
  let child_buf = Array.make e 0 in
  let cursor = Array.copy child_off in
  for v = 1 to n - 1 do
    for k = parent_off.(v) to parent_off.(v + 1) - 1 do
      let p = parent_buf.(k) in
      child_buf.(cursor.(p)) <- v;
      cursor.(p) <- cursor.(p) + 1
    done
  done;
  (* Child rows: decreasing support, ties by ascending id — within a
     row all children share one cardinality, so id order is lex
     order. *)
  let cmp a b =
    let c = Int.compare supports.(b) supports.(a) in
    if c <> 0 then c else Int.compare a b
  in
  for v = 0 to n - 1 do
    let lo = child_off.(v) in
    let len = child_off.(v + 1) - lo in
    if len > 1 then begin
      let row = Array.sub child_buf lo len in
      Array.sort cmp row;
      Array.blit row 0 child_buf lo len
    end
  done;
  (child_off, child_buf, parent_off, parent_buf)

(* ------------------------------------------------------------------ *)
(* Construction from mining output. *)

let of_entries ~db_size ~threshold entries =
  if db_size < 0 then invalid_arg "Lattice.of_entries: db_size";
  if threshold < 1 then invalid_arg "Lattice.of_entries: threshold";
  let entries = Array.copy entries in
  Array.sort (fun (x, _) (y, _) -> Itemset.compare x y) entries;
  let n = Array.length entries + 1 in
  let supports = Array.make n db_size in
  let item_off = Array.make (n + 1) 0 in
  Array.iteri
    (fun k (x, c) ->
      let v = k + 1 in
      if Itemset.is_empty x then
        invalid_arg "Lattice.of_entries: explicit empty itemset";
      if c < threshold || c > db_size then
        invalid_arg "Lattice.of_entries: support out of range";
      if k > 0 && Itemset.equal x (fst entries.(k - 1)) then
        invalid_arg "Lattice.of_entries: duplicate itemset";
      supports.(v) <- c;
      item_off.(v + 1) <- item_off.(v) + Itemset.cardinal x)
    entries;
  let item_buf = Array.make item_off.(n) 0 in
  Array.iteri
    (fun k (x, _) ->
      let pos = ref item_off.(k + 1) in
      Itemset.iter
        (fun i ->
          item_buf.(!pos) <- i;
          incr pos)
        x)
    entries;
  let index, index_mask = build_index item_off item_buf n in
  let child_off, child_buf, parent_off, parent_buf =
    build_adjacency ~ctx:"Lattice.of_entries: " item_off item_buf supports
      index index_mask
  in
  {
    db_size;
    threshold;
    item_off;
    item_buf;
    supports;
    child_off;
    child_buf;
    parent_off;
    parent_buf;
    index;
    index_mask;
  }

(* ------------------------------------------------------------------ *)
(* Construction from a serialized CSR image (untrusted). *)

(* (cardinality, lex) comparison of two packed vertices. *)
let compare_packed item_off item_buf a b =
  let alo = item_off.(a) and ahi = item_off.(a + 1) in
  let blo = item_off.(b) and bhi = item_off.(b + 1) in
  let c = Int.compare (ahi - alo) (bhi - blo) in
  if c <> 0 then c
  else begin
    let len = ahi - alo in
    let k = ref 0 in
    let r = ref 0 in
    while !r = 0 && !k < len do
      r := Int.compare item_buf.(alo + !k) item_buf.(blo + !k);
      incr k
    done;
    !r
  end

let of_packed ~db_size ~threshold ~item_off ~item_buf ~supports ~child_off
    ~child_buf =
  let fail msg = invalid_arg ("Lattice.of_packed: " ^ msg) in
  if db_size < 0 then fail "db_size";
  if threshold < 1 then fail "threshold";
  let n = Array.length supports in
  if n < 1 then fail "no root vertex";
  if Array.length item_off <> n + 1 then fail "item_off length";
  if Array.length child_off <> n + 1 then fail "child_off length";
  let e = Array.length item_buf in
  if Array.length child_buf <> e then
    fail "edge count must equal item count (Theorem 2.1)";
  if item_off.(0) <> 0 || child_off.(0) <> 0 then fail "offsets must start at 0";
  for v = 0 to n - 1 do
    if item_off.(v + 1) < item_off.(v) then fail "item_off not monotone";
    if child_off.(v + 1) < child_off.(v) then fail "child_off not monotone"
  done;
  if item_off.(n) <> e then fail "item_off does not span item_buf";
  if child_off.(n) <> e then fail "child_off does not span child_buf";
  if item_off.(1) <> 0 then fail "vertex 0 must be the empty itemset";
  if supports.(0) <> db_size then fail "root support must equal db_size";
  for v = 1 to n - 1 do
    let lo = item_off.(v) and hi = item_off.(v + 1) in
    for k = lo to hi - 1 do
      if item_buf.(k) < 0 then fail "negative item";
      if k > lo && item_buf.(k) <= item_buf.(k - 1) then
        fail "itemset not strictly increasing"
    done;
    if supports.(v) < threshold || supports.(v) > db_size then
      fail "support out of range";
    if v > 1 && compare_packed item_off item_buf (v - 1) v >= 0 then
      fail "vertices not in (cardinality, lex) order"
  done;
  let index, index_mask = build_index item_off item_buf n in
  let child_off', child_buf', parent_off, parent_buf =
    build_adjacency ~ctx:"Lattice.of_packed: " item_off item_buf supports index
      index_mask
  in
  if child_off <> child_off' || child_buf <> child_buf' then
    fail "child adjacency disagrees with the itemsets";
  {
    db_size;
    threshold;
    item_off;
    item_buf;
    supports;
    child_off = child_off';
    child_buf = child_buf';
    parent_off;
    parent_buf;
    index;
    index_mask;
  }

(* ------------------------------------------------------------------ *)
(* Observation. *)

let db_size t = t.db_size
let threshold t = t.threshold
let num_vertices t = Array.length t.supports
let num_edges t = Array.length t.child_buf
let root _ = 0

let range_equals buf lo x card =
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < card do
    if buf.(lo + !k) <> Itemset.nth x !k then ok := false else incr k
  done;
  !ok

let find t x =
  let card = Itemset.cardinal x in
  let slot = ref (Itemset.hash x land t.index_mask) in
  let result = ref (-2) in
  while !result = -2 do
    let v = t.index.(!slot) in
    if v < 0 then result := -1
    else begin
      let lo = t.item_off.(v) in
      if t.item_off.(v + 1) - lo = card && range_equals t.item_buf lo x card
      then result := v
      else slot := (!slot + 1) land t.index_mask
    end
  done;
  if !result < 0 then None else Some !result

let mem t x = find t x <> None

let check_id t v name = if v < 0 || v >= num_vertices t then invalid_arg name

let itemset t v =
  check_id t v "Lattice.itemset";
  let lo = t.item_off.(v) in
  Itemset.of_sorted_array_unchecked
    (Array.sub t.item_buf lo (t.item_off.(v + 1) - lo))

let support t v =
  check_id t v "Lattice.support";
  t.supports.(v)

let support_of t x = Option.map (fun v -> t.supports.(v)) (find t x)

let cardinal t v =
  check_id t v "Lattice.cardinal";
  t.item_off.(v + 1) - t.item_off.(v)

let children t v =
  check_id t v "Lattice.children";
  let lo = t.child_off.(v) in
  Array.sub t.child_buf lo (t.child_off.(v + 1) - lo)

let parents t v =
  check_id t v "Lattice.parents";
  let lo = t.parent_off.(v) in
  Array.sub t.parent_buf lo (t.parent_off.(v + 1) - lo)

let iter_vertices f t =
  for v = 0 to num_vertices t - 1 do
    f v
  done

let entries t =
  Array.init (num_vertices t - 1) (fun k -> (itemset t (k + 1), t.supports.(k + 1)))

let fresh_marks t = Olar_util.Bitset.create (num_vertices t)

(* ------------------------------------------------------------------ *)
(* Raw CSR access for the query kernels. *)

let child_offsets t = t.child_off
let child_edges t = t.child_buf
let parent_offsets t = t.parent_off
let parent_edges t = t.parent_buf
let support_array t = t.supports
let item_offsets t = t.item_off
let item_buffer t = t.item_buf

let iter_children t v f =
  check_id t v "Lattice.iter_children";
  for i = t.child_off.(v) to t.child_off.(v + 1) - 1 do
    f t.child_buf.(i)
  done

let iter_parents t v f =
  check_id t v "Lattice.iter_parents";
  for i = t.parent_off.(v) to t.parent_off.(v + 1) - 1 do
    f t.parent_buf.(i)
  done

let compare_strength t a b =
  let c = Int.compare t.supports.(b) t.supports.(a) in
  if c <> 0 then c else Int.compare a b

let vertex_has_subset t v x =
  let card = Itemset.cardinal x in
  card = 0
  || begin
       let hi = t.item_off.(v + 1) in
       let lo = ref t.item_off.(v) in
       let k = ref 0 in
       let ok = ref true in
       while !ok && !k < card do
         let target = Itemset.nth x !k in
         while !lo < hi && t.item_buf.(!lo) < target do
           incr lo
         done;
         if !lo < hi && t.item_buf.(!lo) = target then incr k else ok := false
       done;
       !ok
     end

let vertex_disjoint t v x =
  let card = Itemset.cardinal x in
  card = 0
  || begin
       let hi = t.item_off.(v + 1) in
       let lo = ref t.item_off.(v) in
       let k = ref 0 in
       let disjoint = ref true in
       while !disjoint && !lo < hi && !k < card do
         let i = t.item_buf.(!lo) and j = Itemset.nth x !k in
         if i = j then disjoint := false
         else if i < j then incr lo
         else incr k
       done;
       !disjoint
     end

(* ------------------------------------------------------------------ *)
(* Size accounting. *)

(* Heap cost model (64-bit words): each of the eight flat arrays costs
   a header word plus one word per element (four offset/support arrays
   of ~n elements, three buffers of e elements), the open-addressed
   index costs its power-of-two capacity, and the record itself ~12
   words. Kept in sync with Olar_mining.Threshold.estimate_bytes, which
   mirrors this formula from a mining result before the lattice
   exists. *)
let estimated_bytes t =
  let word = 8 in
  let n = num_vertices t in
  let e = num_edges t in
  word * ((4 * n) + (3 * e) + index_capacity n + 23)

module Stats = struct
  type t = {
    vertices : int;
    edges : int;
    bytes : int;
    max_fanout : int;
    depth : int;
  }

  let pp fmt s =
    Format.fprintf fmt
      "vertices %d@ edges %d@ bytes %d@ max_fanout %d@ depth %d" s.vertices
      s.edges s.bytes s.max_fanout s.depth
end

let stats t =
  let n = num_vertices t in
  let max_fanout = ref 0 in
  for v = 0 to n - 1 do
    let fanout = t.child_off.(v + 1) - t.child_off.(v) in
    if fanout > !max_fanout then max_fanout := fanout
  done;
  (* ids are in cardinality order, so the last vertex is a largest
     itemset *)
  let depth = if n = 1 then 0 else t.item_off.(n) - t.item_off.(n - 1) in
  {
    Stats.vertices = n;
    edges = num_edges t;
    bytes = estimated_bytes t;
    max_fanout = !max_fanout;
    depth;
  }
