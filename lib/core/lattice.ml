open Olar_data

type vertex_id = int

type t = {
  db_size : int;
  threshold : int;
  itemsets : Itemset.t array; (* by vertex id; index 0 = empty set *)
  supports : int array;
  children : vertex_id array array; (* decreasing support, ties lex *)
  parents : vertex_id array array; (* increasing id *)
  index : vertex_id Itemset.Table.t;
  num_edges : int;
}

let of_entries ~db_size ~threshold entries =
  if db_size < 0 then invalid_arg "Lattice.of_entries: db_size";
  if threshold < 1 then invalid_arg "Lattice.of_entries: threshold";
  let entries = Array.copy entries in
  Array.sort (fun (x, _) (y, _) -> Itemset.compare x y) entries;
  let n = Array.length entries + 1 in
  let itemsets = Array.make n Itemset.empty in
  let supports = Array.make n db_size in
  let index = Itemset.Table.create (2 * n) in
  Itemset.Table.add index Itemset.empty 0;
  Array.iteri
    (fun k (x, c) ->
      let v = k + 1 in
      if Itemset.is_empty x then
        invalid_arg "Lattice.of_entries: explicit empty itemset";
      if c < threshold || c > db_size then
        invalid_arg "Lattice.of_entries: support out of range";
      if Itemset.Table.mem index x then
        invalid_arg "Lattice.of_entries: duplicate itemset";
      itemsets.(v) <- x;
      supports.(v) <- c;
      Itemset.Table.add index x v)
    entries;
  let child_bufs = Array.init n (fun _ -> Olar_util.Vec.create ()) in
  let parent_bufs = Array.init n (fun _ -> Olar_util.Vec.create ()) in
  let num_edges = ref 0 in
  for v = 1 to n - 1 do
    List.iter
      (fun (_, parent) ->
        match Itemset.Table.find_opt index parent with
        | None -> invalid_arg "Lattice.of_entries: not downward closed"
        | Some p ->
          if supports.(p) < supports.(v) then
            invalid_arg "Lattice.of_entries: support not monotone";
          Olar_util.Vec.push child_bufs.(p) v;
          Olar_util.Vec.push parent_bufs.(v) p;
          incr num_edges)
      (Itemset.parents itemsets.(v))
  done;
  let order_children a b =
    let c = Int.compare supports.(b) supports.(a) in
    if c <> 0 then c else Itemset.compare_lex itemsets.(a) itemsets.(b)
  in
  Array.iter (fun buf -> Olar_util.Vec.sort order_children buf) child_bufs;
  Array.iter (fun buf -> Olar_util.Vec.sort Int.compare buf) parent_bufs;
  {
    db_size;
    threshold;
    itemsets;
    supports;
    children = Array.map Olar_util.Vec.to_array child_bufs;
    parents = Array.map Olar_util.Vec.to_array parent_bufs;
    index;
    num_edges = !num_edges;
  }

let db_size t = t.db_size
let threshold t = t.threshold
let num_vertices t = Array.length t.itemsets
let num_edges t = t.num_edges
let root _ = 0

let find t x = Itemset.Table.find_opt t.index x
let mem t x = Itemset.Table.mem t.index x

let check_id t v name = if v < 0 || v >= num_vertices t then invalid_arg name

let itemset t v =
  check_id t v "Lattice.itemset";
  t.itemsets.(v)

let support t v =
  check_id t v "Lattice.support";
  t.supports.(v)

let support_of t x = Option.map (fun v -> t.supports.(v)) (find t x)

let cardinal t v =
  check_id t v "Lattice.cardinal";
  Itemset.cardinal t.itemsets.(v)

let children t v =
  check_id t v "Lattice.children";
  t.children.(v)

let parents t v =
  check_id t v "Lattice.parents";
  t.parents.(v)

let iter_vertices f t =
  for v = 0 to num_vertices t - 1 do
    f v
  done

let entries t =
  Array.init
    (num_vertices t - 1)
    (fun k -> (t.itemsets.(k + 1), t.supports.(k + 1)))

let fresh_marks t = Olar_util.Bitset.create (num_vertices t)

(* Heap cost model (64-bit words): every array costs a header word plus
   one word per element; a vertex owns its itemset array, one slot in
   each of the four top-level arrays, and hash-index overhead (~4 words
   per binding). Each edge occupies one child slot and one parent
   slot. *)
let estimated_bytes t =
  let word = 8 in
  let vertices = num_vertices t in
  let itemset_words =
    Array.fold_left (fun acc x -> acc + 1 + Itemset.cardinal x) 0 t.itemsets
  in
  let adjacency_words = (2 * t.num_edges) + (2 * vertices) in
  let table_words = 4 * vertices in
  let top_level = 4 * vertices in
  word * (itemset_words + adjacency_words + table_words + top_level)
