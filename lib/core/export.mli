(** Exporting query results to interchange formats.

    Rules and itemsets render to CSV (RFC-4180 quoting) and JSON (plain
    text, UTF-8 pass-through, control characters escaped) for
    consumption by spreadsheets and downstream pipelines. Items print as
    ids, or as names when a vocabulary is supplied. All functions build
    strings; callers own the I/O. *)

open Olar_data

(** [itemsets_to_csv ?vocab ~db_size entries] has header
    [itemset,size,count,support]; the itemset cell joins items with
    spaces. Raises [Invalid_argument] when [db_size <= 0]. *)
val itemsets_to_csv :
  ?vocab:Item.Vocab.t -> db_size:int -> (Itemset.t * int) list -> string

(** [rules_to_csv ?vocab ~db_size rules] has header
    [antecedent,consequent,support_count,support,confidence]; with
    [measures] it appends [lift,leverage,conviction] computed against
    the lattice. *)
val rules_to_csv :
  ?vocab:Item.Vocab.t ->
  ?measures:Lattice.t ->
  db_size:int ->
  Rule.t list ->
  string

(** [itemsets_to_json ?vocab ~db_size entries] is a JSON array of
    objects [{"items": [...], "count": n, "support": s}]. *)
val itemsets_to_json :
  ?vocab:Item.Vocab.t -> db_size:int -> (Itemset.t * int) list -> string

(** [rules_to_json ?vocab ?measures ~db_size rules] is a JSON array of
    objects with antecedent/consequent arrays, counts and measures. *)
val rules_to_json :
  ?vocab:Item.Vocab.t ->
  ?measures:Lattice.t ->
  db_size:int ->
  Rule.t list ->
  string
