open Olar_data

(* The engine owns a scratch so steady-state queries reuse one set of
   marks/stack/heap instead of allocating per call. *)
type t = { lattice : Lattice.t; scratch : Scratch.t }

let of_lattice lattice = { lattice; scratch = Scratch.create lattice }

let lattice_of_frequent frequent =
  assert (Olar_mining.Frequent.complete frequent);
  Lattice.of_entries
    ~db_size:(Olar_mining.Frequent.db_size frequent)
    ~threshold:(Olar_mining.Frequent.threshold frequent)
    (Array.of_list (Olar_mining.Frequent.to_list frequent))

let preprocess ?stats ?miner ?(search = `Optimized) ?slack db ~max_itemsets =
  if max_itemsets < 1 then invalid_arg "Engine.preprocess: max_itemsets";
  let slack =
    match slack with
    | Some s -> s
    | None -> min (max_itemsets - 1) (max 0 (max_itemsets / 20))
  in
  let result =
    match search with
    | `Naive -> Olar_mining.Threshold.naive ?stats ?miner db ~target:max_itemsets ~slack
    | `Optimized ->
      Olar_mining.Threshold.optimized ?stats ?miner db ~target:max_itemsets ~slack
  in
  of_lattice (lattice_of_frequent result.Olar_mining.Threshold.itemsets)

let preprocess_bytes ?stats ?miner ?slack_bytes db ~max_bytes =
  if max_bytes < 1 then invalid_arg "Engine.preprocess_bytes: max_bytes";
  let slack_bytes =
    match slack_bytes with
    | Some s -> s
    | None -> min (max_bytes - 1) (max 0 (max_bytes / 20))
  in
  let result =
    Olar_mining.Threshold.optimized_bytes ?stats ?miner db
      ~budget_bytes:max_bytes ~slack_bytes
  in
  of_lattice (lattice_of_frequent result.Olar_mining.Threshold.itemsets)

let at_threshold ?stats ?(miner = Olar_mining.Threshold.Use_dhp) db
    ~primary_support =
  if primary_support <= 0.0 || primary_support > 1.0 then
    invalid_arg "Engine.at_threshold: primary_support";
  let minsup = Database.count_of_fraction db primary_support in
  let frequent =
    match miner with
    | Olar_mining.Threshold.Use_apriori -> Olar_mining.Apriori.mine ?stats db ~minsup
    | Olar_mining.Threshold.Use_dhp -> Olar_mining.Dhp.mine ?stats db ~minsup
    | Olar_mining.Threshold.Use_fpgrowth -> Olar_mining.Fpgrowth.mine ?stats db ~minsup
  in
  of_lattice (lattice_of_frequent frequent)

let lattice t = t.lattice
let db_size t = Lattice.db_size t.lattice
let primary_threshold_count t = Lattice.threshold t.lattice

let primary_threshold t =
  float_of_int (primary_threshold_count t) /. float_of_int (max 1 (db_size t))

let num_primary_itemsets t = Lattice.num_vertices t.lattice - 1
let stats t = Lattice.stats t.lattice

let count_of_support t s =
  if s < 0.0 || s > 1.0 || Float.is_nan s then
    invalid_arg "Engine.count_of_support";
  max 1 (int_of_float (ceil (s *. float_of_int (db_size t))))

let fraction t count = float_of_int count /. float_of_int (max 1 (db_size t))

let itemsets ?work ?(containing = Itemset.empty) t ~minsup =
  let minsup = count_of_support t minsup in
  let ids =
    Query.find_itemsets ?work ~scratch:t.scratch t.lattice ~containing ~minsup
  in
  List.map
    (fun (x, c) -> (x, fraction t c))
    (Query.to_entries t.lattice ids)

let count_itemsets ?work ?(containing = Itemset.empty) t ~minsup =
  let minsup = count_of_support t minsup in
  Query.count_itemsets ?work ~scratch:t.scratch t.lattice ~containing ~minsup

let essential_rules ?work ?containing ?constraints t ~minsup ~minconf =
  Rulegen.essential_rules ?work ~scratch:t.scratch ?containing ?constraints
    t.lattice
    ~minsup:(count_of_support t minsup)
    ~confidence:(Conf.of_float minconf)

let all_rules ?work ?containing ?constraints t ~minsup ~minconf =
  Rulegen.all_rules ?work ~scratch:t.scratch ?containing ?constraints t.lattice
    ~minsup:(count_of_support t minsup)
    ~confidence:(Conf.of_float minconf)

let single_consequent_rules ?work ?containing t ~minsup ~minconf =
  Rulegen.single_consequent_rules ?work ~scratch:t.scratch ?containing
    t.lattice
    ~minsup:(count_of_support t minsup)
    ~confidence:(Conf.of_float minconf)

let redundancy ?containing t ~minsup ~minconf =
  Rulegen.redundancy ~scratch:t.scratch ?containing t.lattice
    ~minsup:(count_of_support t minsup)
    ~confidence:(Conf.of_float minconf)

let support_for_k_itemsets ?work t ~containing ~k =
  let answer =
    Support_query.find_support ?work ~scratch:t.scratch t.lattice ~containing ~k
  in
  Option.map (fraction t) answer.Support_query.support_level

let support_for_k_rules ?work t ~involving ~minconf ~k =
  let answer =
    Support_query.find_support_for_rules ?work ~scratch:t.scratch t.lattice
      ~involving
      ~confidence:(Conf.of_float minconf) ~k
  in
  Option.map (fraction t) answer.Support_query.rule_support_level

let append t delta =
  let update = Maintenance.append t.lattice delta in
  (of_lattice update.Maintenance.lattice, update.Maintenance.promoted_candidates)

let save t path = Serialize.save t.lattice path
let load path = of_lattice (Serialize.load path)
