open Olar_data
module Obs = Olar_obs.Obs
module Trace = Olar_obs.Trace

(* The engine owns a scratch so steady-state queries reuse one set of
   marks/stack/heap instead of allocating per call, and an observability
   context shared by every entry point. Query methods dispatch on
   [t.obs] with a bare match: the [None] arm is the exact uninstrumented
   code path — closures for the instrumented arm are only allocated when
   telemetry is on. *)
type t = {
  lattice : Lattice.t;
  scratch : Scratch.t;
  obs : Obs.t;
  epoch : int;
}

(* Process-wide generation counter. Every [of_lattice] — and therefore
   every preprocess / append / rebuild / load — produces an engine with
   a fresh epoch, so a cache keyed on the epoch can never serve an
   answer computed against a different lattice. Atomic so engines may
   be built from any domain (the serving pool gives each worker its own
   engine view over the shared lattice). *)
let epoch_counter = Atomic.make 0

let next_epoch () = 1 + Atomic.fetch_and_add epoch_counter 1

let set_lattice_gauges obs lattice =
  match obs with
  | None -> ()
  | Some ctx ->
    let s = Lattice.stats lattice in
    let set name help v =
      Olar_obs.Metrics.Gauge.set_int (Obs.gauge ctx ~help name) v
    in
    set "olar_lattice_vertices" "Lattice vertices, including the root"
      s.Lattice.Stats.vertices;
    set "olar_lattice_edges" "Lattice edges (sum of primary itemset sizes)"
      s.Lattice.Stats.edges;
    set "olar_lattice_bytes" "Estimated resident bytes of the lattice"
      s.Lattice.Stats.bytes

let of_lattice ?(obs = Obs.disabled) lattice =
  set_lattice_gauges obs lattice;
  { lattice; scratch = Scratch.create lattice; obs; epoch = next_epoch () }

let epoch t = t.epoch

let obs t = t.obs

let with_obs t obs =
  set_lattice_gauges obs t.lattice;
  { t with obs }

(* A per-domain view: same lattice, same obs, same epoch — only the
   scratch is private. Views of one engine are interchangeable for
   answers (the lattice is immutable) and distinguishable for nothing:
   keeping the epoch shared is what lets the serving pool stamp every
   response of one published snapshot with one generation. *)
let view t = { t with scratch = Scratch.create t.lattice }

(* Surface the mining work counters in the registry. The attached
   counters ARE the [Stats.t] fields — the miner keeps bumping the same
   cells the registry reads, so there is no copying step to forget. *)
let attach_mining_stats obs stats =
  match obs with
  | None -> ()
  | Some ctx ->
    let module S = Olar_mining.Stats in
    let att name help c = Obs.attach_counter ctx ~help ~name c in
    att "olar_mining_db_passes_total" "Full database scans during mining"
      stats.S.passes;
    att "olar_mining_candidates_total"
      "Candidate itemsets whose support was counted" stats.S.candidates;
    att "olar_mining_frequent_total" "Itemsets found frequent" stats.S.frequent;
    att "olar_mining_hash_pruned_total"
      "Candidates discarded by the DHP hash filter" stats.S.hash_pruned;
    att "olar_mining_trimmed_items_total"
      "Item occurrences removed by transaction trimming" stats.S.trimmed_items

(* When telemetry is on, preprocessing always runs with a [Stats.t] so
   the database-pass and candidate counters have a live source. *)
let stats_for obs stats =
  match (obs, stats) with
  | Some _, None -> Some (Olar_mining.Stats.create ())
  | _, _ -> stats

let lattice_of_frequent frequent =
  assert (Olar_mining.Frequent.complete frequent);
  Lattice.of_entries
    ~db_size:(Olar_mining.Frequent.db_size frequent)
    ~threshold:(Olar_mining.Frequent.threshold frequent)
    (Array.of_list (Olar_mining.Frequent.to_list frequent))

let preprocess_span obs name f =
  match obs with
  | None -> f ()
  | Some ctx ->
    let out = ref None in
    Obs.span ctx name
      ~attrs:(fun () ->
        match !out with
        | None -> []
        | Some (r : Olar_mining.Threshold.result) ->
          [
            ("threshold", Trace.Int r.Olar_mining.Threshold.threshold);
            ( "itemsets",
              Trace.Int
                (Olar_mining.Frequent.total r.Olar_mining.Threshold.itemsets) );
            ("probes", Trace.Int (List.length r.Olar_mining.Threshold.probes));
          ])
      (fun () ->
        let r = f () in
        out := Some r;
        r)

let preprocess ?(obs = Obs.disabled) ?stats ?miner ?(search = `Optimized) ?slack
    ?domains db ~max_itemsets =
  if max_itemsets < 1 then invalid_arg "Engine.preprocess: max_itemsets";
  let slack =
    match slack with
    | Some s -> s
    | None -> min (max_itemsets - 1) (max 0 (max_itemsets / 20))
  in
  let stats = stats_for obs stats in
  let result =
    preprocess_span obs "preprocess" (fun () ->
        match search with
        | `Naive ->
          Olar_mining.Threshold.naive ~obs ?stats ?miner ?domains db
            ~target:max_itemsets ~slack
        | `Optimized ->
          Olar_mining.Threshold.optimized ~obs ?stats ?miner ?domains db
            ~target:max_itemsets ~slack)
  in
  Option.iter (attach_mining_stats obs) stats;
  of_lattice ~obs (lattice_of_frequent result.Olar_mining.Threshold.itemsets)

let preprocess_bytes ?(obs = Obs.disabled) ?stats ?miner ?slack_bytes ?domains
    db ~max_bytes =
  if max_bytes < 1 then invalid_arg "Engine.preprocess_bytes: max_bytes";
  let slack_bytes =
    match slack_bytes with
    | Some s -> s
    | None -> min (max_bytes - 1) (max 0 (max_bytes / 20))
  in
  let stats = stats_for obs stats in
  let result =
    preprocess_span obs "preprocess_bytes" (fun () ->
        Olar_mining.Threshold.optimized_bytes ~obs ?stats ?miner ?domains db
          ~budget_bytes:max_bytes ~slack_bytes)
  in
  Option.iter (attach_mining_stats obs) stats;
  of_lattice ~obs (lattice_of_frequent result.Olar_mining.Threshold.itemsets)

let at_threshold ?(obs = Obs.disabled) ?stats
    ?(miner = Olar_mining.Threshold.Use_dhp) ?domains db ~primary_support =
  if primary_support <= 0.0 || primary_support > 1.0 then
    invalid_arg "Engine.at_threshold: primary_support";
  let minsup = Database.count_of_fraction db primary_support in
  let stats = stats_for obs stats in
  let frequent =
    Obs.maybe_span obs "at_threshold"
      ~attrs:(fun () -> [ ("minsup", Trace.Int minsup) ])
      (fun () ->
        match miner with
        | Olar_mining.Threshold.Use_apriori ->
          Olar_mining.Apriori.mine ~obs ?stats ?domains db ~minsup
        | Olar_mining.Threshold.Use_dhp ->
          Olar_mining.Dhp.mine ~obs ?stats ?domains db ~minsup
        | Olar_mining.Threshold.Use_fpgrowth ->
          Olar_mining.Fpgrowth.mine ?stats db ~minsup)
  in
  Option.iter (attach_mining_stats obs) stats;
  of_lattice ~obs (lattice_of_frequent frequent)

let lattice t = t.lattice
let db_size t = Lattice.db_size t.lattice
let primary_threshold_count t = Lattice.threshold t.lattice

let primary_threshold t =
  float_of_int (primary_threshold_count t) /. float_of_int (max 1 (db_size t))

let num_primary_itemsets t = Lattice.num_vertices t.lattice - 1
let stats t = Lattice.stats t.lattice

let count_of_support t s =
  if s < 0.0 || s > 1.0 || Float.is_nan s then
    invalid_arg "Engine.count_of_support";
  max 1 (int_of_float (ceil (s *. float_of_int (db_size t))))

let fraction t count = float_of_int count /. float_of_int (max 1 (db_size t))

let itemsets ?(containing = Itemset.empty) t ~minsup =
  let minsup = count_of_support t minsup in
  let run work =
    let ids =
      Query.find_itemsets ?work ~scratch:t.scratch t.lattice ~containing ~minsup
    in
    List.map (fun (x, c) -> (x, fraction t c)) (Query.to_entries t.lattice ids)
  in
  match t.obs with
  | None -> run None
  | Some ctx -> Obs.query_span ctx ~name:"itemsets" ~work:Obs.Vertices run

let count_itemsets ?(containing = Itemset.empty) t ~minsup =
  let minsup = count_of_support t minsup in
  match t.obs with
  | None -> Query.count_itemsets ~scratch:t.scratch t.lattice ~containing ~minsup
  | Some ctx ->
    Obs.query_span ctx ~name:"count_itemsets" ~work:Obs.Vertices (fun work ->
        Query.count_itemsets ?work ~scratch:t.scratch t.lattice ~containing
          ~minsup)

let essential_rules ?containing ?constraints t ~minsup ~minconf =
  let minsup = count_of_support t minsup in
  let confidence = Conf.of_float minconf in
  let run work =
    Rulegen.essential_rules ?work ~scratch:t.scratch ?containing ?constraints
      t.lattice ~minsup ~confidence
  in
  match t.obs with
  | None -> run None
  | Some ctx -> Obs.query_span ctx ~name:"essential_rules" ~work:Obs.Vertices run

let all_rules ?containing ?constraints t ~minsup ~minconf =
  let minsup = count_of_support t minsup in
  let confidence = Conf.of_float minconf in
  let run work =
    Rulegen.all_rules ?work ~scratch:t.scratch ?containing ?constraints
      t.lattice ~minsup ~confidence
  in
  match t.obs with
  | None -> run None
  | Some ctx -> Obs.query_span ctx ~name:"all_rules" ~work:Obs.Vertices run

let single_consequent_rules ?containing t ~minsup ~minconf =
  let minsup = count_of_support t minsup in
  let confidence = Conf.of_float minconf in
  let run work =
    Rulegen.single_consequent_rules ?work ~scratch:t.scratch ?containing
      t.lattice ~minsup ~confidence
  in
  match t.obs with
  | None -> run None
  | Some ctx ->
    Obs.query_span ctx ~name:"single_consequent_rules" ~work:Obs.Vertices run

let redundancy ?containing t ~minsup ~minconf =
  let minsup = count_of_support t minsup in
  let confidence = Conf.of_float minconf in
  let run () =
    Rulegen.redundancy ~scratch:t.scratch ?containing t.lattice ~minsup
      ~confidence
  in
  match t.obs with
  | None -> run ()
  | Some ctx ->
    Obs.query_span ctx ~name:"redundancy" ~work:Obs.No_work (fun _ -> run ())

let boundary ?constraints t ~target ~minconf =
  let confidence = Conf.of_float minconf in
  match Lattice.find t.lattice target with
  | None -> []
  | Some v ->
    let run work =
      let ids =
        Boundary.find_boundary ?work ~scratch:t.scratch ?constraints t.lattice
          ~target:v ~confidence
      in
      List.map
        (fun id ->
          (Lattice.itemset t.lattice id, fraction t (Lattice.support t.lattice id)))
        ids
    in
    (match t.obs with
    | None -> run None
    | Some ctx -> Obs.query_span ctx ~name:"boundary" ~work:Obs.Vertices run)

let support_for_k_itemsets t ~containing ~k =
  let run work =
    let answer =
      Support_query.find_support ?work ~scratch:t.scratch t.lattice ~containing
        ~k
    in
    Option.map (fraction t) answer.Support_query.support_level
  in
  match t.obs with
  | None -> run None
  | Some ctx ->
    Obs.query_span ctx ~name:"support_for_k_itemsets" ~work:Obs.Heap_pops run

let support_for_k_rules t ~involving ~minconf ~k =
  let confidence = Conf.of_float minconf in
  let run work =
    let answer =
      Support_query.find_support_for_rules ?work ~scratch:t.scratch t.lattice
        ~involving ~confidence ~k
    in
    Option.map (fraction t) answer.Support_query.rule_support_level
  in
  match t.obs with
  | None -> run None
  | Some ctx ->
    Obs.query_span ctx ~name:"support_for_k_rules" ~work:Obs.Heap_pops run

let append ?domains t delta =
  let update =
    Obs.maybe_span t.obs "append"
      ~attrs:(fun () -> [ ("delta_size", Trace.Int (Database.size delta)) ])
      (fun () -> Maintenance.append ?domains t.lattice delta)
  in
  ( of_lattice ~obs:t.obs update.Maintenance.lattice,
    update.Maintenance.promoted_candidates )

let save t path =
  Obs.maybe_span t.obs "save"
    ~attrs:(fun () -> [ ("path", Trace.Str path) ])
    (fun () -> Serialize.save t.lattice path)

let load ?(obs = Obs.disabled) path =
  let lattice =
    Obs.maybe_span obs "load"
      ~attrs:(fun () -> [ ("path", Trace.Str path) ])
      (fun () -> Serialize.load path)
  in
  of_lattice ~obs lattice
