open Olar_data

exception Malformed of string

let magic_v2 = "# olar adjacency lattice v2"
let magic_v1 = "# olar adjacency lattice v1"
let magic = magic_v2

let malformed lineno fmt =
  Printf.ksprintf
    (fun s -> raise (Malformed (Printf.sprintf "line %d: %s" lineno s)))
    fmt

(* ------------------------------------------------------------------ *)
(* v2: the CSR image itself. Load revalidates every invariant through
   Lattice.of_packed but skips re-sorting and re-deriving the child
   adjacency from scratch. *)

let print_int_line out key a =
  output_string out key;
  Array.iter
    (fun x ->
      output_char out ' ';
      output_string out (string_of_int x))
    a;
  output_char out '\n'

let print lattice out =
  Printf.fprintf out "%s\n" magic_v2;
  Printf.fprintf out "dbsize %d\n" (Lattice.db_size lattice);
  Printf.fprintf out "threshold %d\n" (Lattice.threshold lattice);
  Printf.fprintf out "vertices %d\n" (Lattice.num_vertices lattice);
  Printf.fprintf out "edges %d\n" (Lattice.num_edges lattice);
  print_int_line out "itemoff" (Lattice.item_offsets lattice);
  print_int_line out "itembuf" (Lattice.item_buffer lattice);
  print_int_line out "supports" (Lattice.support_array lattice);
  print_int_line out "childoff" (Lattice.child_offsets lattice);
  print_int_line out "childbuf" (Lattice.child_edges lattice)

let save lattice path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> print lattice out)

let header_int ~lineno ~key line =
  match String.split_on_char ' ' (String.trim line) with
  | [ k; v ] when k = key -> (
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> malformed lineno "invalid %s value %S" key v)
  | _ -> malformed lineno "expected %S header, got %S" key line

(* "key i0 i1 ..." with exactly [expect] integers. *)
let int_line ~lineno ~key ~expect line =
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ' ' (String.trim line))
  in
  match fields with
  | k :: rest when k = key ->
    let n = List.length rest in
    if n <> expect then
      malformed lineno "%s: expected %d values, found %d" key expect n;
    let a = Array.make expect 0 in
    List.iteri
      (fun i f ->
        match int_of_string_opt f with
        | Some x -> a.(i) <- x
        | None -> malformed lineno "%s: invalid value %S" key f)
      rest;
    a
  | _ -> malformed lineno "expected %S row, got %S" key line

let parse_v2 lines =
  match lines with
  | [ dbsize_line; threshold_line; vertices_line; edges_line; itemoff_line;
      itembuf_line; supports_line; childoff_line; childbuf_line ] ->
    let db_size = header_int ~lineno:2 ~key:"dbsize" dbsize_line in
    let threshold = header_int ~lineno:3 ~key:"threshold" threshold_line in
    let n = header_int ~lineno:4 ~key:"vertices" vertices_line in
    let e = header_int ~lineno:5 ~key:"edges" edges_line in
    if n < 1 then malformed 4 "vertices must be at least 1";
    let item_off = int_line ~lineno:6 ~key:"itemoff" ~expect:(n + 1) itemoff_line in
    let item_buf = int_line ~lineno:7 ~key:"itembuf" ~expect:e itembuf_line in
    let supports = int_line ~lineno:8 ~key:"supports" ~expect:n supports_line in
    let child_off =
      int_line ~lineno:9 ~key:"childoff" ~expect:(n + 1) childoff_line
    in
    let child_buf =
      int_line ~lineno:10 ~key:"childbuf" ~expect:e childbuf_line
    in
    (try
       Lattice.of_packed ~db_size ~threshold ~item_off ~item_buf ~supports
         ~child_off ~child_buf
     with Invalid_argument msg -> raise (Malformed msg))
  | _ -> raise (Malformed "v2: expected exactly 9 lines after the magic")

(* ------------------------------------------------------------------ *)
(* v1 (backward compatibility): one "<support> <item...>" line per
   primary itemset; the lattice is rebuilt through of_entries. *)

let entry_of_line ~lineno line =
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ' ' (String.trim line))
  in
  match fields with
  | [] -> malformed lineno "empty itemset line"
  | count :: items -> (
    match int_of_string_opt count with
    | None -> malformed lineno "invalid support %S" count
    | Some c ->
      let items =
        List.map
          (fun f ->
            match int_of_string_opt f with
            | Some i when i >= 0 -> i
            | _ -> malformed lineno "invalid item %S" f)
          items
      in
      if items = [] then malformed lineno "itemset with no items";
      (Itemset.of_list items, c))

let parse_v1 lines =
  match lines with
  | dbsize_line :: threshold_line :: count_line :: body ->
    let db_size = header_int ~lineno:2 ~key:"dbsize" dbsize_line in
    let threshold = header_int ~lineno:3 ~key:"threshold" threshold_line in
    let expected = header_int ~lineno:4 ~key:"itemsets" count_line in
    let entries =
      List.mapi (fun k line -> entry_of_line ~lineno:(k + 5) line) body
    in
    if List.length entries <> expected then
      raise
        (Malformed
           (Printf.sprintf "expected %d itemsets, found %d" expected
              (List.length entries)));
    (try Lattice.of_entries ~db_size ~threshold (Array.of_list entries)
     with Invalid_argument msg -> raise (Malformed msg))
  | _ -> raise (Malformed "truncated header")

let parse lines =
  match lines with
  | magic_line :: rest ->
    let m = String.trim magic_line in
    if m = magic_v2 then parse_v2 rest
    else if m = magic_v1 then parse_v1 rest
    else malformed 1 "bad magic, expected %S or %S" magic_v2 magic_v1
  | [] -> raise (Malformed "truncated header")

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse (List.rev !lines))
