open Olar_data

exception Malformed of string

let magic = "# olar adjacency lattice v1"

let print lattice out =
  Printf.fprintf out "%s\n" magic;
  Printf.fprintf out "dbsize %d\n" (Lattice.db_size lattice);
  Printf.fprintf out "threshold %d\n" (Lattice.threshold lattice);
  let entries = Lattice.entries lattice in
  Printf.fprintf out "itemsets %d\n" (Array.length entries);
  Array.iter
    (fun (x, c) ->
      output_string out (string_of_int c);
      Itemset.iter
        (fun i ->
          output_char out ' ';
          output_string out (string_of_int i))
        x;
      output_char out '\n')
    entries

let save lattice path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> print lattice out)

let malformed lineno fmt =
  Printf.ksprintf
    (fun s -> raise (Malformed (Printf.sprintf "line %d: %s" lineno s)))
    fmt

let header_int ~lineno ~key line =
  match String.split_on_char ' ' (String.trim line) with
  | [ k; v ] when k = key -> (
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> malformed lineno "invalid %s value %S" key v)
  | _ -> malformed lineno "expected %S header, got %S" key line

let entry_of_line ~lineno line =
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ' ' (String.trim line))
  in
  match fields with
  | [] -> malformed lineno "empty itemset line"
  | count :: items -> (
    match int_of_string_opt count with
    | None -> malformed lineno "invalid support %S" count
    | Some c ->
      let items =
        List.map
          (fun f ->
            match int_of_string_opt f with
            | Some i when i >= 0 -> i
            | _ -> malformed lineno "invalid item %S" f)
          items
      in
      if items = [] then malformed lineno "itemset with no items";
      (Itemset.of_list items, c))

let parse lines =
  match lines with
  | magic_line :: dbsize_line :: threshold_line :: count_line :: body ->
    if String.trim magic_line <> magic then
      malformed 1 "bad magic, expected %S" magic;
    let db_size = header_int ~lineno:2 ~key:"dbsize" dbsize_line in
    let threshold = header_int ~lineno:3 ~key:"threshold" threshold_line in
    let expected = header_int ~lineno:4 ~key:"itemsets" count_line in
    let entries =
      List.mapi (fun k line -> entry_of_line ~lineno:(k + 5) line) body
    in
    if List.length entries <> expected then
      raise
        (Malformed
           (Printf.sprintf "expected %d itemsets, found %d" expected
              (List.length entries)));
    (try Lattice.of_entries ~db_size ~threshold (Array.of_list entries)
     with Invalid_argument msg -> raise (Malformed msg))
  | _ -> raise (Malformed "truncated header")

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse (List.rev !lines))
