(** Incremental maintenance of a preprocessed lattice.

    Transaction data grows; re-running the whole preprocessing for every
    batch of new sales defeats the preprocess-once economics. In the
    spirit of FUP (Cheung et al., ICDE 1996), {!append} refreshes a
    lattice against a batch of {e new} transactions in a single pass
    over the batch only:

    - the support count of every existing primary itemset is updated
      exactly (one trie-counting pass over the delta);
    - itemsets that were {e not} primary before cannot be discovered
      without touching the old data; {!append} therefore reports the
      {e promotion frontier} — the immediate extensions of surviving
      vertices whose delta counts alone prove they now clear the
      threshold — so the caller knows whether a full {!rebuild} is
      worth scheduling.

    The updated lattice keeps the same {e absolute} count threshold; as
    a fraction of the grown database it is lower, so previously-served
    query ranges remain served. Vertices whose itemsets are genuinely
    primary keep exact counts — queries against the updated lattice are
    exact over old ∪ delta for every itemset that was primary before
    the append. *)

open Olar_data

type update = {
  lattice : Lattice.t;  (** refreshed lattice over old ∪ delta *)
  delta_size : int;
  promoted_candidates : Itemset.t list;
      (** one-item extensions of retained vertices whose count {e within
          the delta alone} reaches the threshold — certainly frequent
          now, but absent from the lattice because their old-data counts
          were never stored; non-empty means {!rebuild} would add
          vertices *)
}

(** [append lattice delta] folds the batch into the lattice. The delta
    must use the same item universe semantics (item ids beyond the old
    universe are fine — they are new products — but they can only enter
    the lattice via {!rebuild}).
    @param domains parallel counting domains for the promotion-frontier
      mining pass over the delta (default 1 = sequential). *)
val append : ?domains:int -> Lattice.t -> Database.t -> update

(** [rebuild ~old_db ~delta] re-mines old ∪ delta at the lattice's
    threshold and returns the exact new lattice — the slow path
    {!append} avoids. [threshold] defaults to the count threshold of
    the lattice being replaced; pass it explicitly when rebuilding
    without one. *)
val rebuild :
  ?stats:Olar_mining.Stats.t ->
  ?domains:int ->
  threshold:int ->
  old_db:Database.t ->
  delta:Database.t ->
  unit ->
  Lattice.t
