type t = float

let of_float c =
  if Float.is_nan c || c <= 0.0 || c > 1.0 then invalid_arg "Conf.of_float";
  c

let to_float c = c

let satisfied c ~union_count ~antecedent_count =
  if antecedent_count <= 0 then invalid_arg "Conf.satisfied: antecedent_count";
  if union_count < 0 then invalid_arg "Conf.satisfied: union_count";
  (* Counts are exact in float up to 2^53; the tolerance only absorbs the
     rounding of the product. *)
  let bound = c *. float_of_int antecedent_count in
  float_of_int union_count >= bound -. (1e-12 *. bound)
