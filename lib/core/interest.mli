(** Interestingness measures beyond support and confidence.

    Support/confidence (the paper's two knobs) famously admit rules that
    are confident only because the consequent is common. These standard
    corrections are all computable from the lattice alone — the
    consequent of any generated rule is a subset of a primary itemset,
    hence primary itself (downward closure), so its exact count is one
    lookup away. *)


type t = {
  support : float;  (** fraction of transactions with antecedent ∪ consequent *)
  confidence : float;
  lift : float;
      (** confidence / P(consequent): 1 = independence, > 1 positive
          correlation *)
  leverage : float;
      (** P(A ∪ C) − P(A)·P(C): additive version of lift *)
  conviction : float;
      (** (1 − P(C)) / (1 − confidence); [infinity] for exact rules *)
}

(** [measures lattice rule] computes all measures. Raises
    [Invalid_argument] when the rule's parts are not primary in
    [lattice] (a rule produced by querying the same lattice always
    is). *)
val measures : Lattice.t -> Rule.t -> t

(** [pp] prints like "sup=0.012 conf=0.90 lift=3.41 lev=0.008 conv=7.50". *)
val pp : Format.formatter -> t -> unit

(** [annotate lattice rules] pairs each rule with its measures,
    preserving order. *)
val annotate : Lattice.t -> Rule.t list -> (Rule.t * t) list

(** [filter_by lattice rules ~min_lift] keeps rules whose lift reaches
    [min_lift] (use e.g. 1.0 to drop negatively-correlated rules).
    Raises [Invalid_argument] when [min_lift] is negative or NaN. *)
val filter_by : Lattice.t -> Rule.t list -> min_lift:float -> Rule.t list

(** [sort_by measure lattice rules] orders the rules by the chosen
    measure, strongest first (ties by {!Rule.compare}). *)
val sort_by :
  [ `Support | `Confidence | `Lift | `Leverage | `Conviction ] ->
  Lattice.t ->
  Rule.t list ->
  Rule.t list
