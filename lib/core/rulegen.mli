(** Online rule generation (Section 4, Figure 6).

    Phase 1 finds the large itemsets with [FindItemsets]; phase 2 turns
    each large itemset X into rules Y ⇒ X \ Y by computing its boundary
    F(X, c) — eliminating simple redundancy (Theorem 4.4) — and then
    pruning from F(X, c) everything that also lies in the boundary of a
    large child of X — eliminating strict redundancy (Theorem 4.5). What
    remains generates exactly the {e essential} rules of Definition 4.2.

    Boundaries are memoised across the itemset family: the boundary of a
    child is computed once, serving both as that child's own rule source
    and as the pruning set of its parents. *)

open Olar_data

(** [essential_rules lattice ~minsup ~confidence] is the essential rules
    at the given thresholds, sorted by {!Rule.compare}.

    @param containing restrict to rules generated from itemsets ⊇ this
      set (query type (2) of Section 1.2); default: no restriction.
    @param constraints antecedent/consequent inclusion sets (Section
      4.1). Their union must be contained in the generating itemsets for
      a rule to appear.
    @param work incremented as in {!Query.find_itemsets} and
      {!Boundary.find_boundary}.
    @param scratch reusable search state shared across the whole
      generation pass (see {!Scratch}).
    Raises {!Query.Below_primary_threshold} when [minsup] is below the
    primary threshold, [Invalid_argument] when [minsup < 1]. *)
val essential_rules :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  ?containing:Itemset.t ->
  ?constraints:Boundary.constraints ->
  Lattice.t ->
  minsup:int ->
  confidence:Conf.t ->
  Rule.t list

(** [all_rules lattice ~minsup ~confidence] generates every rule at the
    thresholds, redundant ones included — one rule per (large itemset X,
    satisfying ancestor Y) pair. Same parameters as {!essential_rules}. *)
val all_rules :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  ?containing:Itemset.t ->
  ?constraints:Boundary.constraints ->
  Lattice.t ->
  minsup:int ->
  confidence:Conf.t ->
  Rule.t list

(** [single_consequent_rules lattice ~minsup ~confidence] is every rule
    with a one-item consequent at the thresholds (Section 3.2's rule
    class, generated directly without boundary machinery). Sorted by
    {!Rule.compare}. *)
val single_consequent_rules :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  ?containing:Itemset.t ->
  Lattice.t ->
  minsup:int ->
  confidence:Conf.t ->
  Rule.t list

type redundancy_report = {
  total_rules : int;
  essential_count : int;
  redundancy_ratio : float;
      (** total / essential (Section 6.1's benchmark); 1.0 when no rules
          exist at all *)
}

(** [redundancy lattice ~minsup ~confidence] measures how many redundant
    rules the thresholds produce (Figures 11 and 12). *)
val redundancy :
  ?scratch:Scratch.t ->
  ?containing:Itemset.t ->
  Lattice.t ->
  minsup:int ->
  confidence:Conf.t ->
  redundancy_report
