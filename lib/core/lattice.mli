(** The adjacency lattice (Section 2 of the paper).

    One vertex per {e primary itemset} — every itemset whose support
    reaches the primary threshold — labelled with its exact support
    count, plus a root vertex for the empty itemset labelled with the
    database size. A directed edge runs from v(X) to v(Y) exactly when Y
    extends X by one item ("X is a parent of Y"), so ancestors are
    subsets and descendants are supersets, and supports are non-increasing
    along every edge (Remark 2.2).

    {2 Storage layout}

    The structure is immutable after construction and stored flat, in
    CSR (compressed sparse row) form, because the graph traversals of
    the online queries are the system's hot path:

    - itemsets are packed into one int buffer ([item_buffer]) addressed
      by per-vertex offsets ([item_offsets]) — no per-vertex boxed
      arrays;
    - child and parent adjacency are each one edge buffer plus one
      offset array;
    - the itemset → vertex index is an open-addressed table probing the
      packed item ranges directly.

    Vertex ids are dense integers in [0, num_vertices) assigned in
    (cardinality, lexicographic) itemset order with the root always id
    0, so searches can use O(1) array visited-marks and id order doubles
    as the canonical output order. Children of a vertex are exposed in
    decreasing order of support — the invariant the paper's search
    algorithms exploit to stop scanning a child list at the first child
    below the support cut.

    {2 Read-only after construction}

    A [Lattice.t] is {b immutable once built}: no function in this
    interface mutates an existing lattice, and the implementation holds
    no mutable state (incremental maintenance, [Maintenance.append],
    builds a {e new} lattice). This is a stated invariant, not an
    accident: the serving pool ({!module:Olar_serve} [Pool]) shares one
    lattice by reference across every worker domain with no locking,
    and each domain layers its own mutable state ({!Scratch},
    session caches) on top. The pool's non-blocking appends lean on it
    even harder: an append folds into a {e new} lattice published as an
    immutable snapshot by a single atomic pointer swap, while readers
    keep traversing the old one untouched — RCU with no read-side
    barrier, sound only because neither lattice ever changes under
    them. Any future change that adds interior mutability must also
    add synchronization there. Query kernels must route all per-query
    mutable state through {!Scratch}. *)

open Olar_data

type t

type vertex_id = int

(** [of_entries ~db_size ~threshold entries] builds the lattice over the
    given (itemset, support count) pairs — the primary itemsets, {e not}
    including the empty set. Requirements, checked, with
    [Invalid_argument] raised on violation:
    - [1 <= threshold], [threshold <= count <= db_size] for every entry;
    - no duplicate itemsets;
    - downward closure: every parent of an entry is an entry (the empty
      set is implicit) — this is what makes local parent checks
      sufficient for boundary maximality;
    - support monotonicity: an entry's count never exceeds a parent's.

    Complete level-wise mining output satisfies all four by construction. *)
val of_entries : db_size:int -> threshold:int -> (Itemset.t * int) array -> t

(** [of_packed ~db_size ~threshold ~item_off ~item_buf ~supports
    ~child_off ~child_buf] rebuilds a lattice from its serialized CSR
    representation. The input is untrusted: every structural invariant
    is revalidated — offsets monotone and spanning their buffers,
    itemsets strictly increasing and in strict (cardinality, lex) vertex
    order with the root at id 0, supports in range, downward closure and
    support monotonicity, and the supplied child adjacency equal to the
    one derived from the itemsets. Raises [Invalid_argument] on any
    violation. The arrays are adopted, not copied — the caller must not
    mutate them afterwards. *)
val of_packed :
  db_size:int ->
  threshold:int ->
  item_off:int array ->
  item_buf:int array ->
  supports:int array ->
  child_off:int array ->
  child_buf:int array ->
  t

(** [db_size t] is the number of transactions behind the supports. *)
val db_size : t -> int

(** [threshold t] is the primary threshold (absolute count). *)
val threshold : t -> int

(** [num_vertices t] includes the root. *)
val num_vertices : t -> int

(** [num_edges t] is the number of parent-child edges; by Theorem 2.1 it
    equals the sum of the cardinalities of the primary itemsets. *)
val num_edges : t -> int

(** [root t] is the vertex of the empty itemset (always id 0). *)
val root : t -> vertex_id

(** [find t x] is the vertex of itemset [x], if primary ([Some (root t)]
    for the empty set). *)
val find : t -> Itemset.t -> vertex_id option

(** [mem t x] is [find t x <> None]. *)
val mem : t -> Itemset.t -> bool

(** [itemset t v] is the itemset at [v], unpacked from the item buffer
    (allocates). Raises [Invalid_argument] on a bad id. *)
val itemset : t -> vertex_id -> Itemset.t

(** [support t v] is the support count label S at [v]. Raises
    [Invalid_argument] on a bad id. *)
val support : t -> vertex_id -> int

(** [support_of t x] is the support count of itemset [x] when primary. *)
val support_of : t -> Itemset.t -> int option

(** [cardinal t v] is the number of items at [v] (an O(1) offset
    difference). *)
val cardinal : t -> vertex_id -> int

(** [children t v] is a fresh array of the child vertices (supersets by
    one item) in decreasing order of support, ties broken
    lexicographically. Allocates a copy of the CSR row — traversal code
    should use {!child_offsets}/{!child_edges} or {!iter_children}
    instead. *)
val children : t -> vertex_id -> vertex_id array

(** [parents t v] is a fresh array of the parent vertices (subsets by
    one item) in increasing id order. Every non-root vertex has exactly
    [cardinal t v] parents. Allocates; see {!parent_offsets}. *)
val parents : t -> vertex_id -> vertex_id array

(** [iter_vertices f t] applies [f] to every vertex id, root first, then
    non-root vertices in (cardinality, lex) order. *)
val iter_vertices : (vertex_id -> unit) -> t -> unit

(** [entries t] is all non-root (itemset, support) pairs in
    (cardinality, lex) order — the inverse of {!of_entries} up to
    ordering. *)
val entries : t -> (Itemset.t * int) array

(** [fresh_marks t] is a cleared bitset sized for vertex ids — a
    standalone visited set for callers outside the query kernels (which
    use {!Scratch} epoch marks instead). *)
val fresh_marks : t -> Olar_util.Bitset.t

(** {2 Raw CSR access}

    The query kernels iterate these arrays directly so that a
    steady-state query performs no allocation. All returned arrays are
    owned by the lattice: never mutate them. *)

(** [child_offsets t] has length [num_vertices t + 1]; the children of
    [v] are [child_edges t].(i) for
    [child_offsets t.(v) <= i < child_offsets t.(v+1)], in decreasing
    support order (ties: ascending id = lexicographic). *)
val child_offsets : t -> int array

val child_edges : t -> int array

(** [parent_offsets t] / [parent_edges t]: same scheme for parent rows,
    each sorted by ascending id. *)
val parent_offsets : t -> int array

val parent_edges : t -> int array

(** [support_array t].(v) is [support t v] without the bounds check. *)
val support_array : t -> int array

(** [item_offsets t] / [item_buffer t]: the packed itemsets; the items
    of [v] are [item_buffer t].(i) for
    [item_offsets t.(v) <= i < item_offsets t.(v+1)], strictly
    increasing. *)
val item_offsets : t -> int array

val item_buffer : t -> int array

(** [iter_children t v f] applies [f] to each child of [v] in row order
    (decreasing support). Raises [Invalid_argument] on a bad id. *)
val iter_children : t -> vertex_id -> (vertex_id -> unit) -> unit

(** [iter_parents t v f] applies [f] to each parent of [v] in ascending
    id order. Raises [Invalid_argument] on a bad id. *)
val iter_parents : t -> vertex_id -> (vertex_id -> unit) -> unit

(** [compare_strength t a b] orders vertices by decreasing support, ties
    by ascending id. Because ids are assigned in (cardinality, lex)
    order this is exactly the paper's output order: strongest first,
    then smaller itemsets, then lexicographic.

    {b Canonical result order — a stated invariant.} Every query that
    returns a set of vertices sorts it with this comparator (see
    {!Query.find_itemsets}), and the comparator is a {e total} order
    (no two distinct vertices compare equal, since ids differ). Two
    consequences downstream code relies on: (1) equal-support runs are
    internally ordered by ascending id, deterministically; (2) for a
    fixed start itemset the answer at a {e higher} support cut [s' >= s]
    is a literal {b prefix} of the answer at [s] — raising the cut
    filters the tail of the support-descending sequence and cannot
    reorder the survivors. The cross-query cache
    ({!Olar_serve.Session}) refines cached answers by binary-searching
    that prefix; changing this order is a breaking change pinned by a
    qcheck property in the test suite. *)
val compare_strength : t -> vertex_id -> vertex_id -> int

(** [vertex_has_subset t v x] is [Itemset.subset x (itemset t v)]
    without unpacking the vertex's itemset. *)
val vertex_has_subset : t -> vertex_id -> Itemset.t -> bool

(** [vertex_disjoint t v x] is [Itemset.disjoint (itemset t v) x]
    without unpacking. *)
val vertex_disjoint : t -> vertex_id -> Itemset.t -> bool

(** {2 Size accounting} *)

(** [estimated_bytes t] estimates the resident size of the lattice: the
    eight flat arrays (offsets, buffers, supports), the open-addressed
    index, and the record itself, in 64-bit heap words. Theorem 2.1
    makes the edge count the sum of primary itemset sizes, so the whole
    structure costs a small constant factor over the itemsets it stores
    — the paper's observation that the lattice is about as cheap as its
    contents. An estimate, not an exact accounting; kept in sync with
    [Olar_mining.Threshold.estimate_bytes]. *)
val estimated_bytes : t -> int

module Stats : sig
  type t = {
    vertices : int;  (** including the root *)
    edges : int;  (** = sum of primary itemset sizes (Theorem 2.1) *)
    bytes : int;  (** {!estimated_bytes} *)
    max_fanout : int;  (** largest child row *)
    depth : int;  (** cardinality of the largest primary itemset *)
  }

  val pp : Format.formatter -> t -> unit
end

(** [stats t] summarises the lattice shape for monitoring and the CLI
    [stats] subcommand. *)
val stats : t -> Stats.t
