(** The adjacency lattice (Section 2 of the paper).

    One vertex per {e primary itemset} — every itemset whose support
    reaches the primary threshold — labelled with its exact support
    count, plus a root vertex for the empty itemset labelled with the
    database size. A directed edge runs from v(X) to v(Y) exactly when Y
    extends X by one item ("X is a parent of Y"), so ancestors are
    subsets and descendants are supersets, and supports are non-increasing
    along every edge (Remark 2.2).

    The structure is immutable after construction. Children of a vertex
    are exposed in decreasing order of support — the invariant the
    paper's search algorithms exploit to stop scanning a child list at
    the first child below the support cut. Vertex ids are dense integers
    in [0, num_vertices), with the root always id 0, so searches can use
    O(1) bitset visited-marks. *)

open Olar_data

type t

type vertex_id = int

(** [of_entries ~db_size ~threshold entries] builds the lattice over the
    given (itemset, support count) pairs — the primary itemsets, {e not}
    including the empty set. Requirements, checked, with
    [Invalid_argument] raised on violation:
    - [1 <= threshold], [threshold <= count <= db_size] for every entry;
    - no duplicate itemsets;
    - downward closure: every parent of an entry is an entry (the empty
      set is implicit) — this is what makes local parent checks
      sufficient for boundary maximality;
    - support monotonicity: an entry's count never exceeds a parent's.

    Complete level-wise mining output satisfies all four by construction. *)
val of_entries : db_size:int -> threshold:int -> (Itemset.t * int) array -> t

(** [db_size t] is the number of transactions behind the supports. *)
val db_size : t -> int

(** [threshold t] is the primary threshold (absolute count). *)
val threshold : t -> int

(** [num_vertices t] includes the root. *)
val num_vertices : t -> int

(** [num_edges t] is the number of parent-child edges; by Theorem 2.1 it
    equals the sum of the cardinalities of the primary itemsets. *)
val num_edges : t -> int

(** [root t] is the vertex of the empty itemset (always id 0). *)
val root : t -> vertex_id

(** [find t x] is the vertex of itemset [x], if primary ([Some (root t)]
    for the empty set). *)
val find : t -> Itemset.t -> vertex_id option

(** [mem t x] is [find t x <> None]. *)
val mem : t -> Itemset.t -> bool

(** [itemset t v] is the itemset at [v]. Raises [Invalid_argument] on a
    bad id. *)
val itemset : t -> vertex_id -> Itemset.t

(** [support t v] is the support count label S at [v]. Raises
    [Invalid_argument] on a bad id. *)
val support : t -> vertex_id -> int

(** [support_of t x] is the support count of itemset [x] when primary. *)
val support_of : t -> Itemset.t -> int option

(** [cardinal t v] is the number of items at [v]. *)
val cardinal : t -> vertex_id -> int

(** [children t v] are the child vertices (supersets by one item) in
    decreasing order of support, ties broken lexicographically. The
    returned array is owned by the lattice — do not mutate. *)
val children : t -> vertex_id -> vertex_id array

(** [parents t v] are the parent vertices (subsets by one item) in
    increasing id order. Owned by the lattice — do not mutate. Every
    non-root vertex has exactly [cardinal t v] parents. *)
val parents : t -> vertex_id -> vertex_id array

(** [iter_vertices f t] applies [f] to every vertex id, root first, then
    non-root vertices in (cardinality, lex) order. *)
val iter_vertices : (vertex_id -> unit) -> t -> unit

(** [entries t] is all non-root (itemset, support) pairs in
    (cardinality, lex) order — the inverse of {!of_entries} up to
    ordering. *)
val entries : t -> (Itemset.t * int) array

(** [fresh_marks t] is a cleared bitset sized for vertex ids — the
    visited set used by the graph searches. *)
val fresh_marks : t -> Olar_util.Bitset.t

(** [estimated_bytes t] estimates the resident size of the lattice: per
    vertex the itemset array, support label and adjacency slots; per
    edge one child and one parent slot (Theorem 2.1 makes the edge count
    the sum of primary itemset sizes, so this is dominated by the
    itemsets themselves — the paper's observation that the lattice costs
    about as much as the itemsets it stores). Heap words, boxed
    conservatively; an estimate, not an exact accounting. *)
val estimated_bytes : t -> int
