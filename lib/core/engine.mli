(** The online mining engine — the "preprocess once, query many" façade.

    Ties the pieces together: preprocessing (threshold search + mining +
    lattice construction, Section 5), then the online queries of Section
    1.2 against the resulting lattice, with supports expressed as
    fractions at this level. All query functions answer without touching
    the transaction data. *)

open Olar_data

type t

(** {1 Preprocessing} *)

(** [preprocess db ~max_itemsets] finds the lowest primary threshold
    fitting roughly [max_itemsets] itemsets (binary search of Section 5),
    mines the primary itemsets and builds the adjacency lattice.

    @param slack the search window Ns (default: [max_itemsets / 20]).
    @param miner mining subroutine (default DHP, as in the paper).
    @param search [`Optimized] (default) uses early termination and
      cross-probe reuse; [`Naive] is the paper's [NaiveFindThreshold].
    @param stats accumulates preprocessing work.
    Raises [Invalid_argument] when [max_itemsets < 1]. *)
val preprocess :
  ?stats:Olar_mining.Stats.t ->
  ?miner:Olar_mining.Threshold.miner ->
  ?search:[ `Naive | `Optimized ] ->
  ?slack:int ->
  Database.t ->
  max_itemsets:int ->
  t

(** [preprocess_bytes db ~max_bytes] is {!preprocess} with the paper's
    actual constraint — a memory budget in bytes rather than an itemset
    count. The binary search accepts a lattice whose estimated footprint
    lies within [slack_bytes] (default [max_bytes / 20]) of the budget
    and never exceeds it. Raises [Invalid_argument] when
    [max_bytes < 1]. *)
val preprocess_bytes :
  ?stats:Olar_mining.Stats.t ->
  ?miner:Olar_mining.Threshold.miner ->
  ?slack_bytes:int ->
  Database.t ->
  max_bytes:int ->
  t

(** [at_threshold db ~primary_support] skips the budget search and mines
    directly at the given fractional support (0 < s <= 1). Raises
    [Invalid_argument] outside that range. *)
val at_threshold :
  ?stats:Olar_mining.Stats.t ->
  ?miner:Olar_mining.Threshold.miner ->
  Database.t ->
  primary_support:float ->
  t

(** [of_lattice lattice] wraps an existing (e.g. deserialized) lattice. *)
val of_lattice : Lattice.t -> t

(** {1 Introspection} *)

val lattice : t -> Lattice.t
val db_size : t -> int

(** [primary_threshold_count t] / [primary_threshold t] are the primary
    threshold as a count and as a fraction of the database. *)
val primary_threshold_count : t -> int

val primary_threshold : t -> float

(** [num_primary_itemsets t] excludes the root. *)
val num_primary_itemsets : t -> int

(** [stats t] is the lattice shape summary ({!Lattice.stats}): vertices,
    edges, estimated bytes, max fanout, depth. *)
val stats : t -> Lattice.Stats.t

(** [count_of_support t s] converts a fractional minimum support into the
    absolute count the engine uses: ⌈s·db⌉, at least 1. Raises
    [Invalid_argument] outside [0, 1]. *)
val count_of_support : t -> float -> int

(** {1 Online queries (Section 1.2)}

    Every query takes fractional [minsup] and raises
    {!Query.Below_primary_threshold} when it lies below the primary
    threshold, [Invalid_argument] on values outside [0, 1] (or a
    confidence outside (0, 1]). *)

(** Query (1)/(2): itemsets ⊇ [containing] (default: all) at [minsup],
    with fractional supports, strongest first. *)
val itemsets :
  ?work:Olar_util.Timer.Counter.t ->
  ?containing:Itemset.t ->
  t ->
  minsup:float ->
  (Itemset.t * float) list

(** Query (3): the number of such itemsets, without materialising. *)
val count_itemsets :
  ?work:Olar_util.Timer.Counter.t ->
  ?containing:Itemset.t ->
  t ->
  minsup:float ->
  int

(** Query (1)/(2) for rules: the essential rules at ([minsup],
    [minconf]), optionally from itemsets ⊇ [containing] and under
    antecedent/consequent constraints. *)
val essential_rules :
  ?work:Olar_util.Timer.Counter.t ->
  ?containing:Itemset.t ->
  ?constraints:Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Rule.t list

(** All rules, redundant included. *)
val all_rules :
  ?work:Olar_util.Timer.Counter.t ->
  ?containing:Itemset.t ->
  ?constraints:Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Rule.t list

(** Rules with a one-item consequent. *)
val single_consequent_rules :
  ?work:Olar_util.Timer.Counter.t ->
  ?containing:Itemset.t ->
  t ->
  minsup:float ->
  minconf:float ->
  Rule.t list

(** Redundancy measurement (Figures 11-12). *)
val redundancy :
  ?containing:Itemset.t -> t -> minsup:float -> minconf:float -> Rulegen.redundancy_report

(** Query (4): the fractional support at which exactly [k] itemsets
    containing [containing] exist; [None] when the lattice holds fewer
    than [k]. *)
val support_for_k_itemsets :
  ?work:Olar_util.Timer.Counter.t ->
  t ->
  containing:Itemset.t ->
  k:int ->
  float option

(** Query (5): the fractional support at which [k] single-consequent
    rules at [minconf] involving [involving] exist. *)
val support_for_k_rules :
  ?work:Olar_util.Timer.Counter.t ->
  t ->
  involving:Itemset.t ->
  minconf:float ->
  k:int ->
  float option

(** {1 Maintenance} *)

(** [append t delta] folds a batch of new transactions into the engine in
    one pass over the batch (see {!Maintenance.append}): the returned
    engine serves old ∪ delta with exact counts for every previously
    primary itemset, and the itemset list reports the promotion frontier
    (new itemsets provably frequent from the batch alone — non-empty
    means a full re-preprocess would add vertices). *)
val append : t -> Database.t -> t * Itemset.t list

(** {1 Persistence} *)

(** [save t path] / [load path] persist the underlying lattice via
    {!Serialize}. *)
val save : t -> string -> unit

val load : string -> t
