(** The online mining engine — the "preprocess once, query many" façade.

    Ties the pieces together: preprocessing (threshold search + mining +
    lattice construction, Section 5), then the online queries of Section
    1.2 against the resulting lattice, with supports expressed as
    fractions at this level. All query functions answer without touching
    the transaction data.

    {2 Telemetry}

    An engine carries an {!Olar_obs.Obs.t}. With the default (disabled)
    context every query runs the exact uninstrumented code path and
    allocates nothing extra. With an enabled context each entry point
    increments [olar_queries_total], times itself into an
    [olar_query_<name>_seconds] histogram, feeds the traversal work
    counters ([olar_query_vertices_visited_total] for graph kernels,
    [olar_query_heap_pops_total] for the best-first support queries),
    and — when a trace sink is attached — emits a [query.<name>] span.
    Preprocessing additionally surfaces the mining counters
    ([olar_mining_db_passes_total], [olar_mining_candidates_total], …)
    and sets the [olar_lattice_vertices]/[_edges]/[_bytes] gauges. *)

open Olar_data

type t

(** {1 Preprocessing} *)

(** [preprocess db ~max_itemsets] finds the lowest primary threshold
    fitting roughly [max_itemsets] itemsets (binary search of Section 5),
    mines the primary itemsets and builds the adjacency lattice.

    @param obs telemetry context the engine keeps for its lifetime
      (default disabled). Preprocessing work lands in the registry and,
      when tracing, under a [preprocess] span with
      [threshold.probe]/[mine]/[mine.pass] children.
    @param slack the search window Ns (default: [max_itemsets / 20]).
    @param miner mining subroutine (default DHP, as in the paper).
    @param search [`Optimized] (default) uses early termination and
      cross-probe reuse; [`Naive] is the paper's [NaiveFindThreshold].
    @param stats accumulates preprocessing work. When [obs] is enabled a
      stats record is created internally if none is given, so the mining
      counters are always live in the registry.
    @param domains parallel counting domains every mining pass runs with
      (default 1 = sequential; ignored under [Use_fpgrowth]).
    Raises [Invalid_argument] when [max_itemsets < 1]. *)
val preprocess :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Olar_mining.Stats.t ->
  ?miner:Olar_mining.Threshold.miner ->
  ?search:[ `Naive | `Optimized ] ->
  ?slack:int ->
  ?domains:int ->
  Database.t ->
  max_itemsets:int ->
  t

(** [preprocess_bytes db ~max_bytes] is {!preprocess} with the paper's
    actual constraint — a memory budget in bytes rather than an itemset
    count. The binary search accepts a lattice whose estimated footprint
    lies within [slack_bytes] (default [max_bytes / 20]) of the budget
    and never exceeds it. Raises [Invalid_argument] when
    [max_bytes < 1]. *)
val preprocess_bytes :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Olar_mining.Stats.t ->
  ?miner:Olar_mining.Threshold.miner ->
  ?slack_bytes:int ->
  ?domains:int ->
  Database.t ->
  max_bytes:int ->
  t

(** [at_threshold db ~primary_support] skips the budget search and mines
    directly at the given fractional support (0 < s <= 1). Raises
    [Invalid_argument] outside that range. *)
val at_threshold :
  ?obs:Olar_obs.Obs.t ->
  ?stats:Olar_mining.Stats.t ->
  ?miner:Olar_mining.Threshold.miner ->
  ?domains:int ->
  Database.t ->
  primary_support:float ->
  t

(** [of_lattice lattice] wraps an existing (e.g. deserialized) lattice.
    When [obs] is enabled the lattice-shape gauges are set. *)
val of_lattice : ?obs:Olar_obs.Obs.t -> Lattice.t -> t

(** [epoch t] is the engine's {e generation number}: a process-wide
    monotone counter stamped at {!of_lattice} time, so every
    preprocess / {!append} / rebuild / {!load} yields a distinct epoch
    while {!with_obs} preserves it (same lattice, same answers). Result
    caches (see {!Olar_serve.Session}) tag entries with the epoch they
    were computed under and treat any mismatch as a miss — stale answers
    are structurally impossible. *)
val epoch : t -> int

(** [view t] is a per-domain view of [t]: the {b same} lattice, obs
    context and epoch, with a private {!Olar_core.Scratch}. Because the
    lattice is immutable once built (see [lattice.mli]), views answer
    identically to [t] and may run concurrently on other domains; the
    shared epoch means a result cache treats [t] and its views as the
    same database state. This is the unit the serving pool publishes:
    one snapshot = one engine + one view per worker domain. *)
val view : t -> t

(** {1 Telemetry access} *)

(** [obs t] is the engine's telemetry context (possibly disabled). *)
val obs : t -> Olar_obs.Obs.t

(** [with_obs t obs] is [t] observing through [obs] from now on; the
    lattice gauges are (re)set on the new context. *)
val with_obs : t -> Olar_obs.Obs.t -> t

(** {1 Introspection} *)

val lattice : t -> Lattice.t
val db_size : t -> int

(** [primary_threshold_count t] / [primary_threshold t] are the primary
    threshold as a count and as a fraction of the database. *)
val primary_threshold_count : t -> int

val primary_threshold : t -> float

(** [num_primary_itemsets t] excludes the root. *)
val num_primary_itemsets : t -> int

(** [stats t] is the lattice shape summary ({!Lattice.stats}): vertices,
    edges, estimated bytes, max fanout, depth. *)
val stats : t -> Lattice.Stats.t

(** [count_of_support t s] converts a fractional minimum support into the
    absolute count the engine uses: ⌈s·db⌉, at least 1. Raises
    [Invalid_argument] outside [0, 1]. *)
val count_of_support : t -> float -> int

(** {1 Online queries (Section 1.2)}

    Every query takes fractional [minsup] and raises
    {!Query.Below_primary_threshold} when it lies below the primary
    threshold, [Invalid_argument] on values outside [0, 1] (or a
    confidence outside (0, 1]). Work accounting goes through the
    engine's telemetry context; use {!Olar_core.Query} and friends
    directly for the raw kernels with explicit [?work] counters. *)

(** Query (1)/(2): itemsets ⊇ [containing] (default: all) at [minsup],
    with fractional supports, strongest first. *)
val itemsets : ?containing:Itemset.t -> t -> minsup:float -> (Itemset.t * float) list

(** Query (3): the number of such itemsets, without materialising. *)
val count_itemsets : ?containing:Itemset.t -> t -> minsup:float -> int

(** Query (1)/(2) for rules: the essential rules at ([minsup],
    [minconf]), optionally from itemsets ⊇ [containing] and under
    antecedent/consequent constraints. *)
val essential_rules :
  ?containing:Itemset.t ->
  ?constraints:Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Rule.t list

(** All rules, redundant included. *)
val all_rules :
  ?containing:Itemset.t ->
  ?constraints:Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Rule.t list

(** Rules with a one-item consequent. *)
val single_consequent_rules :
  ?containing:Itemset.t -> t -> minsup:float -> minconf:float -> Rule.t list

(** Redundancy measurement (Figures 11-12). *)
val redundancy :
  ?containing:Itemset.t -> t -> minsup:float -> minconf:float -> Rulegen.redundancy_report

(** FindBoundary (Figure 5): the boundary F(X, c) of primary itemset
    [target] at confidence [minconf] — the maximal-ancestor antecedents
    of the simple-redundancy-free rules from [target] — as
    (itemset, fractional support) pairs sorted by (cardinality,
    lexicographic), the kernel's canonical order. [[]] when [target] is
    not primary or no antecedent can satisfy [constraints]. *)
val boundary :
  ?constraints:Boundary.constraints ->
  t ->
  target:Itemset.t ->
  minconf:float ->
  (Itemset.t * float) list

(** Query (4): the fractional support at which exactly [k] itemsets
    containing [containing] exist; [None] when the lattice holds fewer
    than [k]. *)
val support_for_k_itemsets : t -> containing:Itemset.t -> k:int -> float option

(** Query (5): the fractional support at which [k] single-consequent
    rules at [minconf] involving [involving] exist. *)
val support_for_k_rules :
  t -> involving:Itemset.t -> minconf:float -> k:int -> float option

(** {1 Maintenance} *)

(** [append t delta] folds a batch of new transactions into the engine in
    one pass over the batch (see {!Maintenance.append}): the returned
    engine serves old ∪ delta with exact counts for every previously
    primary itemset, and the itemset list reports the promotion frontier
    (new itemsets provably frequent from the batch alone — non-empty
    means a full re-preprocess would add vertices). The returned engine
    keeps [t]'s telemetry context but carries a fresh {!epoch}.
    @param domains parallel counting domains for the promotion-frontier
      pass (default 1). *)
val append : ?domains:int -> t -> Database.t -> t * Itemset.t list

(** {1 Persistence} *)

(** [save t path] / [load path] persist the underlying lattice via
    {!Serialize}. *)
val save : t -> string -> unit

val load : ?obs:Olar_obs.Obs.t -> string -> t
