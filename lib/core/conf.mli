(** Confidence thresholds.

    A single comparison underlies every confidence test in the paper: the
    rule A ⇒ B holds at minimum confidence c iff
    S(A ∪ B) >= c · S(A), equivalently iff the ancestor label satisfies
    S(A) <= S(A ∪ B) / c (Section 4). Centralising it here keeps the
    float/int boundary — and its tolerance — in one place. *)

type t = private float

(** [of_float c] validates 0 < c <= 1. Raises [Invalid_argument]
    otherwise. *)
val of_float : float -> t

(** [to_float c] is the raw threshold. *)
val to_float : t -> float

(** [satisfied c ~union_count ~antecedent_count] is
    union_count >= c · antecedent_count, with a relative tolerance of
    1e-12 so that exact-ratio queries (e.g. c = 0.75 against 3/4) are not
    lost to float rounding. [antecedent_count] must be positive and
    [union_count] non-negative; raises [Invalid_argument] otherwise. *)
val satisfied : t -> union_count:int -> antecedent_count:int -> bool
