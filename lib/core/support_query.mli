(** Reverse queries — algorithm [FindSupport] (Figure 3, Theorem 3.1).

    "At what level of minsupport do exactly k itemsets containing Z
    exist?" A best-first search from v(Z) pops the highest-support vertex
    on the frontier; because descendants can only be weaker (Remark 2.2),
    after k pops the output holds the k itemsets containing Z of highest
    support, and the support of the last pop is the answer.

    Section 3.2's variant answers the same question for single-consequent
    rules at a fixed confidence level. *)

open Olar_data

type itemsets_answer = {
  itemsets : (Itemset.t * int) list;
      (** up to k itemsets containing Z, by decreasing support *)
  support_level : int option;
      (** the minsupport at which exactly k itemsets containing Z exist —
          the k-th highest support; [None] when fewer than k are
          represented in the lattice *)
}

(** [find_support lattice ~containing ~k] answers query type (4) of
    Section 1.2. The itemset Z = [containing] counts as its own first
    answer when non-empty (it contains itself); the empty itemset is
    never reported. When Z is not primary the lattice holds no itemset
    containing it: the answer is empty. Raises [Invalid_argument] when
    [k < 1].

    @param work incremented per vertex pop and per child inspection.
    @param scratch reusable search state (see {!Scratch}). *)
val find_support :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  Lattice.t ->
  containing:Itemset.t ->
  k:int ->
  itemsets_answer

(** [single_consequent_rules lattice ~confidence v] is the rules
    (X \ {i}) ⇒ {i} of the itemset X at vertex [v] whose confidence
    S(X)/S(X \ {i}) clears [confidence], listed by increasing dropped
    item; empty when |X| < 2. Antecedent supports are read off the
    parent CSR row — no index lookups. *)
val single_consequent_rules :
  Lattice.t -> confidence:Conf.t -> Lattice.vertex_id -> Rule.t list

type rules_answer = {
  rules : Rule.t list;
      (** the single-consequent rules discovered, in decreasing order of
          the generating itemset's support; all rules of the generating
          itemset popped last are included, so the list may hold slightly
          more than k rules *)
  rule_support_level : int option;
      (** the minsupport at which at least k single-consequent rules at
          the given confidence exist; [None] when the lattice cannot
          yield k such rules *)
}

(** [find_support_for_rules lattice ~involving ~confidence ~k] answers
    query type (5): pops itemsets X ⊇ [involving] best-first and counts
    the rules (X \ {i}) ⇒ {i} whose confidence S(X)/S(X \ {i}) clears
    [confidence], stopping once k rules have been found. Raises
    [Invalid_argument] when [k < 1]. *)
val find_support_for_rules :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  Lattice.t ->
  involving:Itemset.t ->
  confidence:Conf.t ->
  k:int ->
  rules_answer
