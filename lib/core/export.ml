open Olar_data

let item_text vocab i =
  match vocab with
  | None -> string_of_int i
  | Some v -> Item.Vocab.name v i

let itemset_words vocab x =
  String.concat " " (List.map (item_text vocab) (Itemset.to_list x))

(* RFC 4180: quote a field when it contains comma, quote or newline;
   double embedded quotes. *)
let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_row fields = String.concat "," (List.map csv_field fields) ^ "\r\n"

let check_db_size db_size name = if db_size <= 0 then invalid_arg name

let fraction ~db_size c = float_of_int c /. float_of_int db_size

let itemsets_to_csv ?vocab ~db_size entries =
  check_db_size db_size "Export.itemsets_to_csv";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (csv_row [ "itemset"; "size"; "count"; "support" ]);
  List.iter
    (fun (x, c) ->
      Buffer.add_string buf
        (csv_row
           [
             itemset_words vocab x;
             string_of_int (Itemset.cardinal x);
             string_of_int c;
             Printf.sprintf "%.6f" (fraction ~db_size c);
           ]))
    entries;
  Buffer.contents buf

let measure_fields measures r =
  match measures with
  | None -> []
  | Some lattice ->
    let m = Interest.measures lattice r in
    [
      Printf.sprintf "%.6f" m.Interest.lift;
      Printf.sprintf "%.6f" m.Interest.leverage;
      (if Float.is_finite m.Interest.conviction then
         Printf.sprintf "%.6f" m.Interest.conviction
       else "inf");
    ]

let rules_to_csv ?vocab ?measures ~db_size rules =
  check_db_size db_size "Export.rules_to_csv";
  let buf = Buffer.create 1024 in
  let header =
    [ "antecedent"; "consequent"; "support_count"; "support"; "confidence" ]
    @ (if measures = None then [] else [ "lift"; "leverage"; "conviction" ])
  in
  Buffer.add_string buf (csv_row header);
  List.iter
    (fun r ->
      Buffer.add_string buf
        (csv_row
           ([
              itemset_words vocab r.Rule.antecedent;
              itemset_words vocab r.Rule.consequent;
              string_of_int r.Rule.support_count;
              Printf.sprintf "%.6f" (fraction ~db_size r.Rule.support_count);
              Printf.sprintf "%.6f" (Rule.confidence r);
            ]
           @ measure_fields measures r)))
    rules;
  Buffer.contents buf

(* Minimal JSON printing: strings escape the two mandatory characters
   and control codes; numbers print in OCaml float/int syntax (valid
   JSON). *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_items vocab x =
  "["
  ^ String.concat ","
      (List.map
         (fun i ->
           match vocab with
           | None -> string_of_int i
           | Some v -> json_string (Item.Vocab.name v i))
         (Itemset.to_list x))
  ^ "]"

let json_array elements = "[" ^ String.concat ",\n " elements ^ "]\n"

let json_number f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else json_string "inf"

let itemsets_to_json ?vocab ~db_size entries =
  check_db_size db_size "Export.itemsets_to_json";
  json_array
    (List.map
       (fun (x, c) ->
         Printf.sprintf "{\"items\": %s, \"count\": %d, \"support\": %s}"
           (json_items vocab x) c
           (json_number (fraction ~db_size c)))
       entries)

let rules_to_json ?vocab ?measures ~db_size rules =
  check_db_size db_size "Export.rules_to_json";
  json_array
    (List.map
       (fun r ->
         let base =
           Printf.sprintf
             "{\"antecedent\": %s, \"consequent\": %s, \"support_count\": %d, \
              \"support\": %s, \"confidence\": %s"
             (json_items vocab r.Rule.antecedent)
             (json_items vocab r.Rule.consequent)
             r.Rule.support_count
             (json_number (fraction ~db_size r.Rule.support_count))
             (json_number (Rule.confidence r))
         in
         let extra =
           match measures with
           | None -> ""
           | Some lattice ->
             let m = Interest.measures lattice r in
             Printf.sprintf
               ", \"lift\": %s, \"leverage\": %s, \"conviction\": %s"
               (json_number m.Interest.lift)
               (json_number m.Interest.leverage)
               (json_number m.Interest.conviction)
         in
         base ^ extra ^ "}")
       rules)
