(** Persistence of preprocessed lattices ("preprocess once, query many").

    The lattice is stored as its primary itemsets with supports; edges
    are a function of the vertex set and are rebuilt on load (and with
    them every construction-time invariant is re-validated). Text format:
    {v
    # olar adjacency lattice v1
    dbsize <transactions>
    threshold <primary support count>
    itemsets <count>
    <support> <item> <item> ...   (one line per primary itemset)
    v} *)

(** Raised on malformed input, with the offending line. *)
exception Malformed of string

(** [save lattice path] writes the lattice, truncating [path]. *)
val save : Lattice.t -> string -> unit

(** [load path] reads a lattice back. Raises [Malformed] (bad syntax or
    invariant violation) or [Sys_error]. *)
val load : string -> Lattice.t

(** [print lattice out] / [parse lines] are the channel/string-level
    counterparts used by [save]/[load]. *)
val print : Lattice.t -> out_channel -> unit

val parse : string list -> Lattice.t
