(** Persistence of preprocessed lattices ("preprocess once, query many").

    {2 Version scheme}

    The first line is a magic string naming the format version; {!load}
    dispatches on it, so old files keep loading after format changes.

    {b v2} (current, written by {!save}): the flat CSR image itself —
    packed itemsets, supports and the child adjacency — so a load is one
    validation pass ({!Lattice.of_packed}) with no re-sorting and no
    per-vertex allocation. Parent rows and the hash index are cheap
    functions of the child data and are rebuilt rather than stored.
    {v
    # olar adjacency lattice v2
    dbsize <transactions>
    threshold <primary support count>
    vertices <count, root included>
    edges <count = total packed items (Theorem 2.1)>
    itemoff <vertices+1 offsets>
    itembuf <edges items>
    supports <vertices counts>
    childoff <vertices+1 offsets>
    childbuf <edges child vertex ids>
    v}

    {b v1} (read-only): one "<support> <item...>" line per primary
    itemset after the headers; edges are rebuilt from scratch via
    {!Lattice.of_entries}.

    Both paths re-validate every construction-time invariant, so a
    corrupted file raises {!Malformed}, never an array-bounds error. *)

(** Raised on malformed input, with the offending line. *)
exception Malformed of string

(** The magic line of the current (v2) format. *)
val magic : string

(** [save lattice path] writes the lattice in v2 form, truncating
    [path]. *)
val save : Lattice.t -> string -> unit

(** [load path] reads a lattice back (v2 or v1). Raises [Malformed] (bad
    syntax or invariant violation) or [Sys_error]. *)
val load : string -> Lattice.t

(** [print lattice out] / [parse lines] are the channel/string-level
    counterparts used by [save]/[load]; [parse] accepts both versions. *)
val print : Lattice.t -> out_channel -> unit

val parse : string list -> Lattice.t
