open Olar_data

type itemsets_answer = {
  itemsets : (Itemset.t * int) list;
  support_level : int option;
}

type rules_answer = {
  rules : Rule.t list;
  rule_support_level : int option;
}

let bump = Olar_util.Timer.Counter.bump

(* Best-first walk from v(Z): repeatedly pop the frontier vertex of
   highest support and feed it to [visit]; [visit] returns [true] to keep
   going. The root (empty itemset) is expanded but never visited. Vertices
   are marked when pushed, so each enters the heap once. The scratch heap
   is ordered by [Lattice.compare_strength] — decreasing support, ties by
   id, i.e. smaller itemsets first, then lexicographic. *)
let best_first ?work ?scratch lattice ~start ~visit =
  Scratch.use ?scratch lattice (fun s ->
      let child_off = Lattice.child_offsets lattice in
      let child_buf = Lattice.child_edges lattice in
      let marks = s.Scratch.marks in
      let epoch = s.Scratch.epoch in
      let heap = s.Scratch.heap in
      marks.(start) <- epoch;
      Olar_util.Heap.push heap start;
      let continue_search = ref true in
      while !continue_search && not (Olar_util.Heap.is_empty heap) do
        let v = Olar_util.Heap.pop_exn heap in
        bump work;
        if v <> Lattice.root lattice then continue_search := visit v;
        if !continue_search then
          for i = child_off.(v) to child_off.(v + 1) - 1 do
            let child = child_buf.(i) in
            bump work;
            if marks.(child) <> epoch then begin
              marks.(child) <- epoch;
              Olar_util.Heap.push heap child
            end
          done
      done)

let find_support ?work ?scratch lattice ~containing ~k =
  if k < 1 then invalid_arg "Support_query.find_support: k";
  match Lattice.find lattice containing with
  | None -> { itemsets = []; support_level = None }
  | Some start ->
    let found = Olar_util.Vec.create () in
    best_first ?work ?scratch lattice ~start ~visit:(fun v ->
        Olar_util.Vec.push found (Lattice.itemset lattice v, Lattice.support lattice v);
        Olar_util.Vec.length found < k);
    let itemsets = Olar_util.Vec.to_list found in
    let support_level =
      if Olar_util.Vec.length found = k then Some (snd (Olar_util.Vec.last found))
      else None
    in
    { itemsets; support_level }

(* The one item of [x] its parent [antecedent] is missing. *)
let dropped_item x antecedent =
  let n = Itemset.cardinal antecedent in
  let k = ref 0 in
  while !k < n && Itemset.nth x !k = Itemset.nth antecedent !k do
    incr k
  done;
  Itemset.nth x !k

(* All single-consequent rules of the itemset at [v] clearing
   [confidence]: each parent vertex is an antecedent X \ {i} (present by
   downward closure), and the rule confidence is S(X) / S(X \ {i}). The
   CSR parent row is ascending by id — descending by dropped item — so
   consing through a forward scan lists the rules by increasing dropped
   item. *)
let single_consequent_rules lattice ~confidence v =
  let x = Lattice.itemset lattice v in
  let sup_x = Lattice.support lattice v in
  if Itemset.cardinal x < 2 then []
  else begin
    let parent_off = Lattice.parent_offsets lattice in
    let parent_buf = Lattice.parent_edges lattice in
    let supports = Lattice.support_array lattice in
    let out = ref [] in
    for i = parent_off.(v) to parent_off.(v + 1) - 1 do
      let p = parent_buf.(i) in
      let sup_a = supports.(p) in
      if Conf.satisfied confidence ~union_count:sup_x ~antecedent_count:sup_a
      then begin
        let antecedent = Lattice.itemset lattice p in
        out :=
          Rule.make ~antecedent
            ~consequent:(Itemset.singleton (dropped_item x antecedent))
            ~support_count:sup_x ~antecedent_count:sup_a
          :: !out
      end
    done;
    !out
  end

let find_support_for_rules ?work ?scratch lattice ~involving ~confidence ~k =
  if k < 1 then invalid_arg "Support_query.find_support_for_rules: k";
  match Lattice.find lattice involving with
  | None -> { rules = []; rule_support_level = None }
  | Some start ->
    let rules = Olar_util.Vec.create () in
    let level = ref None in
    best_first ?work ?scratch lattice ~start ~visit:(fun v ->
        List.iter (Olar_util.Vec.push rules)
          (single_consequent_rules lattice ~confidence v);
        if Olar_util.Vec.length rules >= k then begin
          level := Some (Lattice.support lattice v);
          false
        end
        else true);
    { rules = Olar_util.Vec.to_list rules; rule_support_level = !level }
