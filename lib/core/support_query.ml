open Olar_data
module Counter = Olar_util.Timer.Counter

type itemsets_answer = {
  itemsets : (Itemset.t * int) list;
  support_level : int option;
}

type rules_answer = {
  rules : Rule.t list;
  rule_support_level : int option;
}

let bump work = match work with Some c -> Counter.incr c | None -> ()

(* Best-first walk from v(Z): repeatedly pop the frontier vertex of
   highest support and feed it to [visit]; [visit] returns [true] to keep
   going. The root (empty itemset) is expanded but never visited. Vertices
   are marked when pushed, so each enters the heap once. *)
let best_first ?work lattice ~start ~visit =
  let order a b =
    let c = Int.compare (Lattice.support lattice b) (Lattice.support lattice a) in
    if c <> 0 then c
    else
      let c = Int.compare (Lattice.cardinal lattice a) (Lattice.cardinal lattice b) in
      if c <> 0 then c
      else Itemset.compare_lex (Lattice.itemset lattice a) (Lattice.itemset lattice b)
  in
  let heap = Olar_util.Heap.create order in
  let marks = Lattice.fresh_marks lattice in
  Olar_util.Bitset.add marks start;
  Olar_util.Heap.push heap start;
  let continue_search = ref true in
  while !continue_search && not (Olar_util.Heap.is_empty heap) do
    let v = Olar_util.Heap.pop_exn heap in
    bump work;
    if v <> Lattice.root lattice then continue_search := visit v;
    if !continue_search then
      Array.iter
        (fun child ->
          bump work;
          if not (Olar_util.Bitset.mem marks child) then begin
            Olar_util.Bitset.add marks child;
            Olar_util.Heap.push heap child
          end)
        (Lattice.children lattice v)
  done

let find_support ?work lattice ~containing ~k =
  if k < 1 then invalid_arg "Support_query.find_support: k";
  match Lattice.find lattice containing with
  | None -> { itemsets = []; support_level = None }
  | Some start ->
    let found = Olar_util.Vec.create () in
    best_first ?work lattice ~start ~visit:(fun v ->
        Olar_util.Vec.push found (Lattice.itemset lattice v, Lattice.support lattice v);
        Olar_util.Vec.length found < k);
    let itemsets = Olar_util.Vec.to_list found in
    let support_level =
      if Olar_util.Vec.length found = k then Some (snd (Olar_util.Vec.last found))
      else None
    in
    { itemsets; support_level }

(* All single-consequent rules of the itemset at [v] clearing
   [confidence]: for each item i, antecedent X \ {i} is a parent vertex
   (present by downward closure), and the rule confidence is
   S(X) / S(X \ {i}). *)
let single_consequent_rules lattice ~confidence v =
  let x = Lattice.itemset lattice v in
  let sup_x = Lattice.support lattice v in
  if Itemset.cardinal x < 2 then []
  else
    List.filter_map
      (fun (dropped, antecedent) ->
        let sup_a =
          match Lattice.support_of lattice antecedent with
          | Some s -> s
          | None -> assert false (* downward closure *)
        in
        if Conf.satisfied confidence ~union_count:sup_x ~antecedent_count:sup_a
        then
          Some
            (Rule.make ~antecedent ~consequent:(Itemset.singleton dropped)
               ~support_count:sup_x ~antecedent_count:sup_a)
        else None)
      (Itemset.parents x)

let find_support_for_rules ?work lattice ~involving ~confidence ~k =
  if k < 1 then invalid_arg "Support_query.find_support_for_rules: k";
  match Lattice.find lattice involving with
  | None -> { rules = []; rule_support_level = None }
  | Some start ->
    let rules = Olar_util.Vec.create () in
    let level = ref None in
    best_first ?work lattice ~start ~visit:(fun v ->
        List.iter (Olar_util.Vec.push rules)
          (single_consequent_rules lattice ~confidence v);
        if Olar_util.Vec.length rules >= k then begin
          level := Some (Lattice.support lattice v);
          false
        end
        else true);
    { rules = Olar_util.Vec.to_list rules; rule_support_level = !level }
