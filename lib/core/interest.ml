open Olar_data

type t = {
  support : float;
  confidence : float;
  lift : float;
  leverage : float;
  conviction : float;
}

let count_of lattice x what =
  if Itemset.is_empty x then Lattice.db_size lattice
  else
    match Lattice.support_of lattice x with
    | Some c -> c
    | None -> invalid_arg ("Interest.measures: " ^ what ^ " not primary")

let measures lattice rule =
  let n = float_of_int (Lattice.db_size lattice) in
  if n = 0.0 then invalid_arg "Interest.measures: empty database";
  let p_union = float_of_int rule.Rule.support_count /. n in
  let p_ante = float_of_int rule.Rule.antecedent_count /. n in
  let p_cons =
    float_of_int (count_of lattice rule.Rule.consequent "consequent") /. n
  in
  let confidence = Rule.confidence rule in
  let lift = if p_cons = 0.0 then Float.infinity else confidence /. p_cons in
  let leverage = p_union -. (p_ante *. p_cons) in
  let conviction =
    if confidence >= 1.0 then Float.infinity
    else (1.0 -. p_cons) /. (1.0 -. confidence)
  in
  { support = p_union; confidence; lift; leverage; conviction }

let pp fmt m =
  Format.fprintf fmt "sup=%.4f conf=%.2f lift=%.2f lev=%.4f conv=%s" m.support
    m.confidence m.lift m.leverage
    (if Float.is_integer m.conviction || Float.is_nan m.conviction then
       Printf.sprintf "%.0f" m.conviction
     else Printf.sprintf "%.2f" m.conviction)

let annotate lattice rules = List.map (fun r -> (r, measures lattice r)) rules

let filter_by lattice rules ~min_lift =
  if Float.is_nan min_lift || min_lift < 0.0 then
    invalid_arg "Interest.filter_by: min_lift";
  List.filter (fun r -> (measures lattice r).lift >= min_lift) rules

let sort_by measure lattice rules =
  let key m =
    match measure with
    | `Support -> m.support
    | `Confidence -> m.confidence
    | `Lift -> m.lift
    | `Leverage -> m.leverage
    | `Conviction -> m.conviction
  in
  let annotated = annotate lattice rules in
  List.map fst
    (List.sort
       (fun (r1, m1) (r2, m2) ->
         let c = Float.compare (key m2) (key m1) in
         if c <> 0 then c else Rule.compare r1 r2)
       annotated)
