(** Online itemset generation — algorithm [FindItemsets] (Figure 2).

    Given a starting itemset I and a minimum support s, find every primary
    itemset J ⊇ I with S(J) >= s by a forward graph search from v(I):
    only children whose support clears s are expanded, and since child
    lists are sorted by decreasing support the scan of each list stops at
    the first failure. The work — and hence the response time — is
    proportional to the size of the output, not to the number of itemsets
    prestored (Problem 3.1). *)

open Olar_data

(** Raised when a query asks for a support below the primary threshold:
    itemsets in that range were never prestored, so the lattice cannot
    answer (Section 1.1 of the paper). *)
exception Below_primary_threshold of { requested : int; primary : int }

(** [check_minsup lattice s] raises {!Below_primary_threshold} when
    [s < Lattice.threshold lattice], and [Invalid_argument] when
    [s < 1]. *)
val check_minsup : Lattice.t -> int -> unit

(** [find_itemsets lattice ~containing ~minsup] is the vertices of all
    itemsets J ⊇ [containing] with support count >= [minsup], sorted by
    decreasing support (ties: smaller cardinality first, then
    lexicographic). The starting itemset itself is included when it
    qualifies and [include_start] is true (default) — the empty itemset is
    never included. Raises {!Below_primary_threshold} as per
    {!check_minsup}.

    {b Canonical order invariant.} The result is sorted by
    {!Lattice.compare_strength} (support desc, ties ascending id) — a
    total order, so the output for a given (lattice, [containing],
    [minsup], [include_start]) is unique. Because the result at
    [minsup = s] is exactly the supports-[>= s] filter of a fixed
    support-descending sequence, the result at any [s' >= s] is a
    {e prefix} of the result at [s]. {!Olar_serve.Session} depends on
    both properties; a qcheck test pins them.

    When [containing] is not primary the result is empty: every superset
    has support below the primary threshold <= [minsup].

    @param work incremented once per vertex expanded and once per child
      link inspected — the paper's output-sensitivity metric.
    @param scratch reusable search state (see {!Scratch}); when omitted
      a fresh scratch is allocated for this query. *)
val find_itemsets :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  ?include_start:bool ->
  Lattice.t ->
  containing:Itemset.t ->
  minsup:int ->
  Lattice.vertex_id list

(** [count_itemsets lattice ~containing ~minsup] is
    [List.length (find_itemsets ...)] without building the list — query
    type (3) of Section 1.2. *)
val count_itemsets :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  ?include_start:bool ->
  Lattice.t ->
  containing:Itemset.t ->
  minsup:int ->
  int

(** [to_entries lattice ids] resolves vertices to (itemset, support)
    pairs, preserving order. *)
val to_entries : Lattice.t -> Lattice.vertex_id list -> (Itemset.t * int) list
