(** Boundary computation — algorithm [FindBoundary] (Figure 5) and its
    constrained form (Section 4.1).

    The boundary F(X, c) of a large itemset X at confidence c is the set
    of {e maximal ancestors} of v(X): ancestors Y with
    S(Y) <= S(X) / c such that no strict ancestor of Y also satisfies the
    bound. By Theorem 4.4 the rules Y ⇒ X \ Y for Y in the boundary are
    exactly the rules from X free of simple redundancy.

    Constraints: with an antecedent inclusion set P and a consequent
    inclusion set Q, only ancestors Y ⊇ P with Y ∩ Q = ∅ qualify, and
    maximality is relative to ancestors satisfying the same constraints.
    Because supports rise monotonically toward the root and both
    constraints transport along some parent path, checking a vertex's
    immediate parents suffices for maximality (and downward closure of
    the primary set guarantees those parents are present). *)

open Olar_data

type constraints = {
  antecedent_includes : Itemset.t;  (** P — items the antecedent must contain *)
  consequent_includes : Itemset.t;  (** Q — items the consequent must contain *)
  allow_empty_antecedent : bool;
      (** admit the degenerate rule ∅ ⇒ X (default in {!unconstrained}:
          false) *)
}

(** No inclusion sets, empty antecedents rejected. *)
val unconstrained : constraints

(** [find_boundary lattice ~target ~confidence] is F(X, c) for the
    itemset X at vertex [target], as vertex ids sorted by (cardinality,
    lexicographic). The target itself is never a member (the consequent
    would be empty). Returns [] when P ⊄ X, Q ⊄ X, or P ∩ Q ≠ ∅ — no
    antecedent can satisfy the constraints.

    Raises [Invalid_argument] on a bad vertex id.

    @param work incremented per vertex expansion and per parent
      inspection.
    @param scratch reusable search state (see {!Scratch}). *)
val find_boundary :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  ?constraints:constraints ->
  Lattice.t ->
  target:Lattice.vertex_id ->
  confidence:Conf.t ->
  Lattice.vertex_id list

(** [all_ancestor_antecedents lattice ~target ~confidence] drops the
    maximality requirement: every ancestor Y of X satisfying the
    confidence bound and the constraints — the antecedents of {e all}
    rules (redundant ones included) that X generates at confidence c.
    Used to measure the redundancy ratio of Section 6. Same conventions
    as {!find_boundary}. *)
val all_ancestor_antecedents :
  ?work:Olar_util.Timer.Counter.t ->
  ?scratch:Scratch.t ->
  ?constraints:constraints ->
  Lattice.t ->
  target:Lattice.vertex_id ->
  confidence:Conf.t ->
  Lattice.vertex_id list
