(** Reusable per-lattice query scratch state.

    Every graph search needs a visited set, a stack or a heap. Creating
    them per query costs an O(num_vertices) allocation; an interactive
    session issuing thousands of queries against one lattice should pay
    that once. A [Scratch.t] bundles the three and is handed to the
    query kernels, which reset it in O(1) at the start of each query:

    - visited marks are an epoch-stamped int array — a vertex is marked
      iff [marks.(v) = epoch], so bumping [epoch] clears every mark
      without touching memory; when the epoch reaches [max_int] the
      next reset zeroes the mark array and restarts the epoch at 1, so
      wraparound can never resurrect stale marks;
    - the DFS stack and best-first heap are cleared (capacity
      retained).

    {2 Contract}

    A scratch is bound to the lattice it was created for (the heap
    comparator closes over it); {!use} falls back to a fresh scratch
    when handed a scratch for a different lattice (physical equality) or
    one already in use, so sharing is always safe, never required.
    Scratches are not thread-safe — one concurrent query per scratch. *)

type t = {
  lattice : Lattice.t;
  marks : int array;  (** vertex [v] is marked iff [marks.(v) = epoch] *)
  mutable epoch : int;
  stack : int Olar_util.Vec.t;
  heap : int Olar_util.Heap.t;  (** ordered by {!Lattice.compare_strength} *)
  mutable busy : bool;
}

(** [create lattice] is a fresh scratch sized for [lattice]. *)
val create : Lattice.t -> t

(** [use ?scratch lattice f] runs [f] with a scratch valid for
    [lattice]: [scratch] itself — reset, with marks cleared — when it
    belongs to [lattice] and is free, otherwise a fresh one. The busy
    flag is held for the duration of [f], so a nested [use] of the same
    scratch (e.g. a query issued from an [emit] callback) silently gets
    its own state instead of corrupting the outer walk. *)
val use : ?scratch:t -> Lattice.t -> (t -> 'a) -> 'a
