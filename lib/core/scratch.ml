type t = {
  lattice : Lattice.t;
  marks : int array;
  mutable epoch : int;
  stack : int Olar_util.Vec.t;
  heap : int Olar_util.Heap.t;
  mutable busy : bool;
}

let create lattice =
  {
    lattice;
    marks = Array.make (Lattice.num_vertices lattice) 0;
    epoch = 0;
    stack = Olar_util.Vec.create ();
    heap = Olar_util.Heap.create (Lattice.compare_strength lattice);
    busy = false;
  }

(* marks start at 0 and the epoch is bumped before first use, so a
   fresh epoch never collides with a stale mark. *)
let reset s =
  s.epoch <- s.epoch + 1;
  Olar_util.Vec.clear s.stack;
  Olar_util.Heap.clear s.heap

let use ?scratch lattice f =
  match scratch with
  | Some s when s.lattice == lattice && not s.busy ->
    s.busy <- true;
    reset s;
    Fun.protect ~finally:(fun () -> s.busy <- false) (fun () -> f s)
  | _ ->
    let s = create lattice in
    reset s;
    f s
