type t = {
  lattice : Lattice.t;
  marks : int array;
  mutable epoch : int;
  stack : int Olar_util.Vec.t;
  heap : int Olar_util.Heap.t;
  mutable busy : bool;
}

let create lattice =
  {
    lattice;
    marks = Array.make (Lattice.num_vertices lattice) 0;
    epoch = 0;
    stack = Olar_util.Vec.create ();
    heap = Olar_util.Heap.create (Lattice.compare_strength lattice);
    busy = false;
  }

(* marks start at 0 and the epoch is bumped before first use, so a
   fresh epoch never collides with a stale mark. When the epoch reaches
   [max_int] the increment would wrap to [min_int] and march back up
   through values still sitting in [marks], silently treating stale
   marks as current; instead we zero the mark array and restart the
   epoch at 1, re-establishing the creation-time invariant. The wipe
   costs one O(vertices) pass every [max_int] queries — never in
   practice, but the invariant no longer depends on that. *)
let reset s =
  if s.epoch = max_int then begin
    Array.fill s.marks 0 (Array.length s.marks) 0;
    s.epoch <- 0
  end;
  s.epoch <- s.epoch + 1;
  Olar_util.Vec.clear s.stack;
  Olar_util.Heap.clear s.heap

let use ?scratch lattice f =
  match scratch with
  | Some s when s.lattice == lattice && not s.busy ->
    s.busy <- true;
    reset s;
    Fun.protect ~finally:(fun () -> s.busy <- false) (fun () -> f s)
  | _ ->
    let s = create lattice in
    reset s;
    f s
