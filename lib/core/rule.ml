open Olar_data

type t = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  support_count : int;
  antecedent_count : int;
}

let make ~antecedent ~consequent ~support_count ~antecedent_count =
  if Itemset.is_empty consequent then invalid_arg "Rule.make: empty consequent";
  if not (Itemset.disjoint antecedent consequent) then
    invalid_arg "Rule.make: overlapping antecedent and consequent";
  if support_count < 0 then invalid_arg "Rule.make: negative support";
  if antecedent_count < support_count then
    invalid_arg "Rule.make: support exceeds antecedent support";
  if antecedent_count <= 0 then invalid_arg "Rule.make: zero antecedent support";
  { antecedent; consequent; support_count; antecedent_count }

let union r = Itemset.union r.antecedent r.consequent

let confidence r = float_of_int r.support_count /. float_of_int r.antecedent_count

let support r ~db_size =
  if db_size <= 0 || db_size < r.support_count then invalid_arg "Rule.support";
  float_of_int r.support_count /. float_of_int db_size

let single_consequent r = Itemset.cardinal r.consequent = 1

let simple_redundant ~candidate ~wrt =
  Itemset.equal (union candidate) (union wrt)
  && Itemset.strict_subset wrt.antecedent candidate.antecedent

let strict_redundant ~candidate ~wrt =
  Itemset.strict_subset (union candidate) (union wrt)
  && Itemset.subset wrt.antecedent candidate.antecedent

let redundant ~candidate ~wrt =
  simple_redundant ~candidate ~wrt || strict_redundant ~candidate ~wrt

let check_consequent_size m name =
  if m < 1 || m > 30 then invalid_arg name

let pow base e =
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e

let count_simple_redundant ~consequent_size =
  check_consequent_size consequent_size "Rule.count_simple_redundant";
  pow 2 consequent_size - 2

let count_all_redundant ~consequent_size =
  check_consequent_size consequent_size "Rule.count_all_redundant";
  (pow 3 consequent_size - pow 2 consequent_size) - 1

let compare a b =
  let c = Itemset.compare (union a) (union b) in
  if c <> 0 then c else Itemset.compare a.antecedent b.antecedent

let equal a b = compare a b = 0

let pp fmt r =
  Format.fprintf fmt "%a => %a (sup=%d, conf=%.4f)" Itemset.pp r.antecedent
    Itemset.pp r.consequent r.support_count (confidence r)

let pp_named vocab fmt r =
  Format.fprintf fmt "%a => %a (sup=%d, conf=%.4f)" (Itemset.pp_named vocab)
    r.antecedent (Itemset.pp_named vocab) r.consequent r.support_count
    (confidence r)

let to_string r = Format.asprintf "%a" pp r
