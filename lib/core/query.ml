open Olar_data
module Counter = Olar_util.Timer.Counter

exception Below_primary_threshold of { requested : int; primary : int }

let check_minsup lattice s =
  if s < 1 then invalid_arg "Query: minsup must be positive";
  let primary = Lattice.threshold lattice in
  if s < primary then raise (Below_primary_threshold { requested = s; primary })

let bump work = match work with Some c -> Counter.incr c | None -> ()

(* Core search (Figure 2). Calls [emit] on every reachable vertex with
   support >= minsup, the start vertex excluded. Children are scanned in
   decreasing-support order, so the scan of a child list stops at the
   first child below the threshold. *)
let search ?work lattice ~start ~minsup ~emit =
  let marks = Lattice.fresh_marks lattice in
  let stack = Olar_util.Vec.create () in
  Olar_util.Bitset.add marks start;
  Olar_util.Vec.push stack start;
  while not (Olar_util.Vec.is_empty stack) do
    let v = Olar_util.Vec.pop stack in
    bump work;
    let kids = Lattice.children lattice v in
    let continue_scan = ref true in
    let i = ref 0 in
    let n = Array.length kids in
    while !continue_scan && !i < n do
      let child = kids.(!i) in
      bump work;
      if Lattice.support lattice child >= minsup then begin
        if not (Olar_util.Bitset.mem marks child) then begin
          Olar_util.Bitset.add marks child;
          emit child;
          Olar_util.Vec.push stack child
        end;
        incr i
      end
      else continue_scan := false (* all later children are weaker *)
    done
  done

let order lattice a b =
  let c = Int.compare (Lattice.support lattice b) (Lattice.support lattice a) in
  if c <> 0 then c
  else
    let c = Int.compare (Lattice.cardinal lattice a) (Lattice.cardinal lattice b) in
    if c <> 0 then c
    else Itemset.compare_lex (Lattice.itemset lattice a) (Lattice.itemset lattice b)

let find_itemsets ?work ?(include_start = true) lattice ~containing ~minsup =
  check_minsup lattice minsup;
  match Lattice.find lattice containing with
  | None -> []
  | Some start ->
    let out = Olar_util.Vec.create () in
    if
      include_start
      && (not (Itemset.is_empty containing))
      && Lattice.support lattice start >= minsup
    then Olar_util.Vec.push out start;
    search ?work lattice ~start ~minsup ~emit:(Olar_util.Vec.push out);
    let result = Olar_util.Vec.to_array out in
    Array.sort (order lattice) result;
    Array.to_list result

let count_itemsets ?work ?(include_start = true) lattice ~containing ~minsup =
  check_minsup lattice minsup;
  match Lattice.find lattice containing with
  | None -> 0
  | Some start ->
    let count = ref 0 in
    if
      include_start
      && (not (Itemset.is_empty containing))
      && Lattice.support lattice start >= minsup
    then incr count;
    search ?work lattice ~start ~minsup ~emit:(fun _ -> incr count);
    !count

let to_entries lattice ids =
  List.map (fun v -> (Lattice.itemset lattice v, Lattice.support lattice v)) ids
