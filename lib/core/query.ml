open Olar_data

exception Below_primary_threshold of { requested : int; primary : int }

let check_minsup lattice s =
  if s < 1 then invalid_arg "Query: minsup must be positive";
  let primary = Lattice.threshold lattice in
  if s < primary then raise (Below_primary_threshold { requested = s; primary })

let bump = Olar_util.Timer.Counter.bump

(* Core search (Figure 2). Calls [emit] on every reachable vertex with
   support >= minsup, the start vertex excluded. Child rows are scanned
   in decreasing-support order directly off the CSR buffers, so the scan
   of a row stops at the first child below the threshold and a
   steady-state query (shared scratch) allocates nothing. *)
let search ?work ?scratch lattice ~start ~minsup ~emit =
  Scratch.use ?scratch lattice (fun s ->
      let child_off = Lattice.child_offsets lattice in
      let child_buf = Lattice.child_edges lattice in
      let supports = Lattice.support_array lattice in
      let marks = s.Scratch.marks in
      let epoch = s.Scratch.epoch in
      let stack = s.Scratch.stack in
      marks.(start) <- epoch;
      Olar_util.Vec.push stack start;
      while not (Olar_util.Vec.is_empty stack) do
        let v = Olar_util.Vec.pop stack in
        bump work;
        let i = ref child_off.(v) in
        let stop = child_off.(v + 1) in
        let continue_scan = ref true in
        while !continue_scan && !i < stop do
          let child = child_buf.(!i) in
          bump work;
          if supports.(child) >= minsup then begin
            if marks.(child) <> epoch then begin
              marks.(child) <- epoch;
              emit child;
              Olar_util.Vec.push stack child
            end;
            incr i
          end
          else continue_scan := false (* all later children are weaker *)
        done
      done)

let find_itemsets ?work ?scratch ?(include_start = true) lattice ~containing
    ~minsup =
  check_minsup lattice minsup;
  match Lattice.find lattice containing with
  | None -> []
  | Some start ->
    let out = Olar_util.Vec.create () in
    if
      include_start
      && (not (Itemset.is_empty containing))
      && Lattice.support lattice start >= minsup
    then Olar_util.Vec.push out start;
    search ?work ?scratch lattice ~start ~minsup ~emit:(Olar_util.Vec.push out);
    let result = Olar_util.Vec.to_array out in
    Array.sort (Lattice.compare_strength lattice) result;
    Array.to_list result

let count_itemsets ?work ?scratch ?(include_start = true) lattice ~containing
    ~minsup =
  check_minsup lattice minsup;
  match Lattice.find lattice containing with
  | None -> 0
  | Some start ->
    let count = ref 0 in
    if
      include_start
      && (not (Itemset.is_empty containing))
      && Lattice.support lattice start >= minsup
    then incr count;
    search ?work ?scratch lattice ~start ~minsup ~emit:(fun _ -> incr count);
    !count

let to_entries lattice ids =
  List.map (fun v -> (Lattice.itemset lattice v, Lattice.support lattice v)) ids
