open Olar_data

let rule_of lattice ~target antecedent_vertex =
  let x = Lattice.itemset lattice target in
  let y = Lattice.itemset lattice antecedent_vertex in
  Rule.make ~antecedent:y
    ~consequent:(Itemset.diff x y)
    ~support_count:(Lattice.support lattice target)
    ~antecedent_count:(Lattice.support lattice antecedent_vertex)

(* The generating itemsets of a query: all large itemsets big enough to
   split into a non-empty antecedent and consequent under [cs]. *)
let generating_itemsets ?work ?scratch ?containing lattice ~minsup cs =
  let containing = Option.value containing ~default:Itemset.empty in
  let min_cardinal = if cs.Boundary.allow_empty_antecedent then 1 else 2 in
  List.filter
    (fun v -> Lattice.cardinal lattice v >= min_cardinal)
    (Query.find_itemsets ?work ?scratch lattice ~containing ~minsup)

let essential_rules ?work ?scratch ?containing
    ?(constraints = Boundary.unconstrained) lattice ~minsup ~confidence =
  let large =
    generating_itemsets ?work ?scratch ?containing lattice ~minsup constraints
  in
  let boundaries : (Lattice.vertex_id, Lattice.vertex_id list) Hashtbl.t =
    Hashtbl.create 64
  in
  let boundary_of v =
    match Hashtbl.find_opt boundaries v with
    | Some b -> b
    | None ->
      let b =
        Boundary.find_boundary ?work ?scratch ~constraints lattice ~target:v
          ~confidence
      in
      Hashtbl.add boundaries v b;
      b
  in
  let rules = ref [] in
  List.iter
    (fun x ->
      let own = boundary_of x in
      if own <> [] then begin
        (* Theorem 4.5: prune the boundary of X against the boundaries of
           its large children. Children of X contain X, hence contain the
           [containing] filter as well — they are all in scope. *)
        let pruned = Hashtbl.create 16 in
        Lattice.iter_children lattice x (fun child ->
            if Lattice.support lattice child >= minsup then
              List.iter
                (fun y -> Hashtbl.replace pruned y ())
                (boundary_of child));
        List.iter
          (fun y ->
            if not (Hashtbl.mem pruned y) then
              rules := rule_of lattice ~target:x y :: !rules)
          own
      end)
    large;
  List.sort Rule.compare !rules

let all_rules ?work ?scratch ?containing ?(constraints = Boundary.unconstrained)
    lattice ~minsup ~confidence =
  let large =
    generating_itemsets ?work ?scratch ?containing lattice ~minsup constraints
  in
  let rules = ref [] in
  List.iter
    (fun x ->
      List.iter
        (fun y -> rules := rule_of lattice ~target:x y :: !rules)
        (Boundary.all_ancestor_antecedents ?work ?scratch ~constraints lattice
           ~target:x ~confidence))
    large;
  List.sort Rule.compare !rules

let single_consequent_rules ?work ?scratch ?containing lattice ~minsup
    ~confidence =
  let containing = Option.value containing ~default:Itemset.empty in
  let large = Query.find_itemsets ?work ?scratch lattice ~containing ~minsup in
  let rules = ref [] in
  List.iter
    (fun v ->
      List.iter
        (fun r -> rules := r :: !rules)
        (Support_query.single_consequent_rules lattice ~confidence v))
    large;
  List.sort Rule.compare !rules

type redundancy_report = {
  total_rules : int;
  essential_count : int;
  redundancy_ratio : float;
}

let redundancy ?scratch ?containing lattice ~minsup ~confidence =
  let total =
    List.length (all_rules ?scratch ?containing lattice ~minsup ~confidence)
  in
  let essential =
    List.length
      (essential_rules ?scratch ?containing lattice ~minsup ~confidence)
  in
  let redundancy_ratio =
    if essential = 0 then 1.0 else float_of_int total /. float_of_int essential
  in
  { total_rules = total; essential_count = essential; redundancy_ratio }
