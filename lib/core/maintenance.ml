open Olar_data

type update = {
  lattice : Lattice.t;
  delta_size : int;
  promoted_candidates : Itemset.t list;
}

(* Count every primary itemset over the delta in one pass: one trie per
   cardinality, filled from the lattice entries. *)
let delta_counts lattice delta =
  let by_level = Hashtbl.create 8 in
  Array.iter
    (fun (x, _) ->
      let k = Itemset.cardinal x in
      let trie =
        match Hashtbl.find_opt by_level k with
        | Some t -> t
        | None ->
          let t = Olar_mining.Trie.create ~depth:k in
          Hashtbl.add by_level k t;
          t
      in
      Olar_mining.Trie.insert trie x)
    (Lattice.entries lattice);
  Database.iter
    (fun txn ->
      Hashtbl.iter
        (fun _ trie -> Olar_mining.Trie.count_transaction trie txn)
        by_level)
    delta;
  let counts = Itemset.Table.create 1024 in
  Hashtbl.iter
    (fun _ trie ->
      Array.iter
        (fun (x, c) -> Itemset.Table.replace counts x c)
        (Olar_mining.Trie.to_sorted_array trie))
    by_level;
  fun x -> Option.value ~default:0 (Itemset.Table.find_opt counts x)

(* Itemsets certainly frequent now but absent from the lattice: frequent
   within the delta alone (counts in the old data can only help) and
   minimal, i.e. every parent already primary. *)
let promotion_frontier ?domains lattice delta =
  let threshold = Lattice.threshold lattice in
  if Database.size delta < threshold then []
  else begin
    let delta_frequent =
      Olar_mining.Apriori.mine ?domains delta ~minsup:threshold
    in
    let candidates = ref [] in
    Olar_mining.Frequent.iter
      (fun x _ ->
        if
          (not (Lattice.mem lattice x))
          && List.for_all
               (fun (_, parent) -> Lattice.mem lattice parent)
               (Itemset.parents x)
        then candidates := x :: !candidates)
      delta_frequent;
    List.sort Itemset.compare !candidates
  end

let append ?domains lattice delta =
  let count = delta_counts lattice delta in
  let entries =
    Array.map
      (fun (x, c) -> (x, c + count x))
      (Lattice.entries lattice)
  in
  let lattice' =
    Lattice.of_entries
      ~db_size:(Lattice.db_size lattice + Database.size delta)
      ~threshold:(Lattice.threshold lattice) entries
  in
  {
    lattice = lattice';
    delta_size = Database.size delta;
    promoted_candidates = promotion_frontier ?domains lattice delta;
  }

let rebuild ?stats ?domains ~threshold ~old_db ~delta () =
  let num_items = max (Database.num_items old_db) (Database.num_items delta) in
  let merged =
    Database.create ~num_items
      (Array.append
         (Array.init (Database.size old_db) (Database.get old_db))
         (Array.init (Database.size delta) (Database.get delta)))
  in
  let frequent = Olar_mining.Dhp.mine ?stats ?domains merged ~minsup:threshold in
  Lattice.of_entries ~db_size:(Database.size merged) ~threshold
    (Array.of_list (Olar_mining.Frequent.to_list frequent))
