open Olar_data

type constraints = {
  antecedent_includes : Itemset.t;
  consequent_includes : Itemset.t;
  allow_empty_antecedent : bool;
}

let unconstrained =
  {
    antecedent_includes = Itemset.empty;
    consequent_includes = Itemset.empty;
    allow_empty_antecedent = false;
  }

let bump = Olar_util.Timer.Counter.bump

(* The inclusion sets can only be met when P ⊆ X, Q ⊆ X and P ∩ Q = ∅:
   the antecedent and consequent partition a subset of X. *)
let feasible lattice cs target =
  Lattice.vertex_has_subset lattice target cs.antecedent_includes
  && Lattice.vertex_has_subset lattice target cs.consequent_includes
  && Itemset.disjoint cs.antecedent_includes cs.consequent_includes

(* Reverse search from [target] through every ancestor satisfying the
   confidence bound and containing P; [emit] receives each such vertex
   (the target itself included — callers filter). The satisfying region
   is connected through parent edges (supports only grow upward, and P
   can be preserved by dropping non-P items first), so this simple marked
   walk visits it all. The caller supplies the scratch. *)
let walk ?work lattice s ~target ~confidence cs ~emit =
  let sup_x = Lattice.support lattice target in
  let parent_off = Lattice.parent_offsets lattice in
  let parent_buf = Lattice.parent_edges lattice in
  let supports = Lattice.support_array lattice in
  let marks = s.Scratch.marks in
  let epoch = s.Scratch.epoch in
  let stack = s.Scratch.stack in
  marks.(target) <- epoch;
  Olar_util.Vec.push stack target;
  while not (Olar_util.Vec.is_empty stack) do
    let v = Olar_util.Vec.pop stack in
    bump work;
    emit v;
    for i = parent_off.(v) to parent_off.(v + 1) - 1 do
      let p = parent_buf.(i) in
      bump work;
      if marks.(p) <> epoch then begin
        let ok =
          Conf.satisfied confidence ~union_count:sup_x
            ~antecedent_count:supports.(p)
          && Lattice.vertex_has_subset lattice p cs.antecedent_includes
        in
        if ok then begin
          marks.(p) <- epoch;
          Olar_util.Vec.push stack p
        end
      end
    done
  done

(* A visited vertex is an admissible antecedent when it is a proper
   ancestor, avoids Q, and is non-empty unless empty antecedents are
   allowed. (P-inclusion and the confidence bound hold by traversal.) *)
let admissible lattice cs ~target v =
  v <> target
  && (cs.allow_empty_antecedent || v <> Lattice.root lattice)
  && Lattice.vertex_disjoint lattice v cs.consequent_includes

(* Maximality (Definition 4.3, constrained form): no parent that is an
   admissible antecedent satisfies the confidence bound. Parents of an
   admissible vertex automatically avoid Q; only the P-inclusion and
   non-emptiness need rechecking. *)
let maximal ?work lattice cs ~confidence ~sup_x v =
  let parent_off = Lattice.parent_offsets lattice in
  let parent_buf = Lattice.parent_edges lattice in
  let supports = Lattice.support_array lattice in
  let ok = ref true in
  let i = ref parent_off.(v) in
  let hi = parent_off.(v + 1) in
  while !ok && !i < hi do
    let p = parent_buf.(!i) in
    bump work;
    let p_admissible =
      (cs.allow_empty_antecedent || p <> Lattice.root lattice)
      && Lattice.vertex_has_subset lattice p cs.antecedent_includes
    in
    if
      p_admissible
      && Conf.satisfied confidence ~union_count:sup_x
           ~antecedent_count:supports.(p)
    then ok := false;
    incr i
  done;
  !ok

(* Vertex ids follow (cardinality, lex) itemset order, so plain id order
   is the output order. *)
let sorted ids = List.sort Int.compare ids

let collect ?work ?scratch ?(constraints = unconstrained) ~keep_maximal_only
    lattice ~target ~confidence =
  if target < 0 || target >= Lattice.num_vertices lattice then
    invalid_arg "Boundary: bad vertex id";
  let cs = constraints in
  if not (feasible lattice cs target) then []
  else
    Scratch.use ?scratch lattice (fun s ->
        let sup_x = Lattice.support lattice target in
        let out = ref [] in
        walk ?work lattice s ~target ~confidence cs ~emit:(fun v ->
            if
              admissible lattice cs ~target v
              && ((not keep_maximal_only)
                 || maximal ?work lattice cs ~confidence ~sup_x v)
            then out := v :: !out);
        sorted !out)

let find_boundary ?work ?scratch ?constraints lattice ~target ~confidence =
  collect ?work ?scratch ?constraints ~keep_maximal_only:true lattice ~target
    ~confidence

let all_ancestor_antecedents ?work ?scratch ?constraints lattice ~target
    ~confidence =
  collect ?work ?scratch ?constraints ~keep_maximal_only:false lattice ~target
    ~confidence
