open Olar_data
module Counter = Olar_util.Timer.Counter

type constraints = {
  antecedent_includes : Itemset.t;
  consequent_includes : Itemset.t;
  allow_empty_antecedent : bool;
}

let unconstrained =
  {
    antecedent_includes = Itemset.empty;
    consequent_includes = Itemset.empty;
    allow_empty_antecedent = false;
  }

let bump work = match work with Some c -> Counter.incr c | None -> ()

(* The inclusion sets can only be met when P ⊆ X, Q ⊆ X and P ∩ Q = ∅:
   the antecedent and consequent partition a subset of X. *)
let feasible cs x =
  Itemset.subset cs.antecedent_includes x
  && Itemset.subset cs.consequent_includes x
  && Itemset.disjoint cs.antecedent_includes cs.consequent_includes

(* Reverse search from [target] through every ancestor satisfying the
   confidence bound and containing P; [emit] receives each such vertex
   (the target itself included — callers filter). The satisfying region
   is connected through parent edges (supports only grow upward, and P
   can be preserved by dropping non-P items first), so this simple marked
   walk visits it all. *)
let walk ?work lattice ~target ~confidence cs ~emit =
  let sup_x = Lattice.support lattice target in
  let marks = Lattice.fresh_marks lattice in
  let stack = Olar_util.Vec.create () in
  Olar_util.Bitset.add marks target;
  Olar_util.Vec.push stack target;
  while not (Olar_util.Vec.is_empty stack) do
    let v = Olar_util.Vec.pop stack in
    bump work;
    emit v;
    Array.iter
      (fun p ->
        bump work;
        if not (Olar_util.Bitset.mem marks p) then begin
          let ok =
            Conf.satisfied confidence ~union_count:sup_x
              ~antecedent_count:(Lattice.support lattice p)
            && Itemset.subset cs.antecedent_includes (Lattice.itemset lattice p)
          in
          if ok then begin
            Olar_util.Bitset.add marks p;
            Olar_util.Vec.push stack p
          end
        end)
      (Lattice.parents lattice v)
  done

(* A visited vertex is an admissible antecedent when it is a proper
   ancestor, avoids Q, and is non-empty unless empty antecedents are
   allowed. (P-inclusion and the confidence bound hold by traversal.) *)
let admissible lattice cs ~target v =
  v <> target
  && (cs.allow_empty_antecedent || v <> Lattice.root lattice)
  && Itemset.disjoint (Lattice.itemset lattice v) cs.consequent_includes

(* Maximality (Definition 4.3, constrained form): no parent that is an
   admissible antecedent satisfies the confidence bound. Parents of an
   admissible vertex automatically avoid Q; only the P-inclusion and
   non-emptiness need rechecking. *)
let maximal ?work lattice cs ~confidence ~sup_x v =
  Array.for_all
    (fun p ->
      bump work;
      let p_admissible =
        (cs.allow_empty_antecedent || p <> Lattice.root lattice)
        && Itemset.subset cs.antecedent_includes (Lattice.itemset lattice p)
      in
      not
        (p_admissible
        && Conf.satisfied confidence ~union_count:sup_x
             ~antecedent_count:(Lattice.support lattice p)))
    (Lattice.parents lattice v)

let sorted lattice ids =
  List.sort
    (fun a b ->
      let c = Int.compare (Lattice.cardinal lattice a) (Lattice.cardinal lattice b) in
      if c <> 0 then c
      else Itemset.compare_lex (Lattice.itemset lattice a) (Lattice.itemset lattice b))
    ids

let collect ?work ?(constraints = unconstrained) ~keep_maximal_only lattice
    ~target ~confidence =
  if target < 0 || target >= Lattice.num_vertices lattice then
    invalid_arg "Boundary: bad vertex id";
  let cs = constraints in
  if not (feasible cs (Lattice.itemset lattice target)) then []
  else begin
    let sup_x = Lattice.support lattice target in
    let out = ref [] in
    walk ?work lattice ~target ~confidence cs ~emit:(fun v ->
        if
          admissible lattice cs ~target v
          && ((not keep_maximal_only)
             || maximal ?work lattice cs ~confidence ~sup_x v)
        then out := v :: !out);
    sorted lattice !out
  end

let find_boundary ?work ?constraints lattice ~target ~confidence =
  collect ?work ?constraints ~keep_maximal_only:true lattice ~target ~confidence

let all_ancestor_antecedents ?work ?constraints lattice ~target ~confidence =
  collect ?work ?constraints ~keep_maximal_only:false lattice ~target ~confidence
