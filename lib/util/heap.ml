type 'a t = {
  cmp : 'a -> 'a -> int;
  elts : 'a Vec.t;
}

let create cmp = { cmp; elts = Vec.create () }

let length h = Vec.length h.elts
let is_empty h = Vec.is_empty h.elts

let swap h i j =
  let x = Vec.get h.elts i in
  Vec.set h.elts i (Vec.get h.elts j);
  Vec.set h.elts j x

(* Standard sift-up: restore the heap invariant along the path from leaf
   [i] to the root after an insertion at [i]. *)
let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (Vec.get h.elts i) (Vec.get h.elts parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

(* Sift-down from [i]: push the element down while a child orders before
   it, always descending into the smaller child. *)
let rec sift_down h i =
  let n = length h in
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < n && h.cmp (Vec.get h.elts left) (Vec.get h.elts !smallest) < 0
  then smallest := left;
  if right < n && h.cmp (Vec.get h.elts right) (Vec.get h.elts !smallest) < 0
  then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  Vec.push h.elts x;
  sift_up h (length h - 1)

let peek h = if is_empty h then None else Some (Vec.get h.elts 0)

let pop h =
  if is_empty h then None
  else begin
    let top = Vec.get h.elts 0 in
    let last = Vec.pop h.elts in
    if not (is_empty h) then begin
      Vec.set h.elts 0 last;
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = Vec.clear h.elts

let of_list cmp l =
  let h = create cmp in
  List.iter (push h) l;
  h

let to_sorted_list h =
  let rec loop acc =
    match pop h with
    | None -> List.rev acc
    | Some x -> loop (x :: acc)
  in
  loop []
