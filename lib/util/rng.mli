(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the system (the synthetic data generator,
    property tests, workload samplers) draws from an explicit [Rng.t] so
    that a run is reproducible from its seed alone. SplitMix64 is a small,
    well-distributed 64-bit generator (Steele, Lea & Flood, OOPSLA 2014);
    it passes BigCrush on its intended output and is more than adequate for
    workload synthesis. Not cryptographically secure. *)

type t

(** [create seed] is a generator whose stream is a pure function of
    [seed]. *)
val create : int64 -> t

(** [of_int seed] is [create (Int64.of_int seed)]. *)
val of_int : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new generator from [t], advancing [t]; the two
    streams are statistically independent. *)
val split : t -> t

(** [next_int64 t] is the next raw 64-bit output. *)
val next_int64 : t -> int64

(** [bits t] is a non-negative 61-bit integer. *)
val bits : t -> int

(** [int t n] is uniform in [0, n-1]. Raises [Invalid_argument] if
    [n <= 0]. Uses rejection sampling, so it is exactly uniform. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool
