(** Wall-clock timing and work counters for the experiment harness.

    The paper reports wall-clock seconds on 1998 hardware; absolute numbers
    are not reproducible, so each experiment additionally reports
    machine-independent work counters (vertices visited, candidates
    counted, database passes). [Timer] provides both primitives. *)

type t

(** [start ()] is a running timer. *)
val start : unit -> t

(** [elapsed_s t] is the wall-clock seconds since [start]. *)
val elapsed_s : t -> float

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [monotonic_s ()] is a monotone wall clock: seconds that never
    decrease across calls, even when the system clock is stepped
    backwards, and never decrease as observed from any domain (the
    floor is a process-global atomic high-water mark). Use this for
    latency measurement; use [gettimeofday] only for timestamps meant
    to correlate with the outside world. *)
val monotonic_s : unit -> float

(** Named monotone counters for machine-independent cost accounting.

    Hot-path invariant: query kernels only ever call {!incr} (via
    {!bump}), which is a single fetch-and-add — it neither validates
    nor saturates. Counts live in [Atomic.t] cells so the serving pool
    can bump shared interned counters from several domains without
    torn or lost updates. The negative-delta check lives only in
    {!add}, which the mining layer calls a handful of times per pass,
    never per vertex or per edge, so the guard costs nothing where it
    matters. Counts are [int]s: at one increment per nanosecond a
    63-bit counter lasts ~292 years, so overflow is not a practical
    concern and no saturation is done. *)
module Counter : sig
  type t

  (** [create name] is a zeroed counter. *)
  val create : string -> t

  (** [name c] is the label given at creation. *)
  val name : t -> string

  (** [incr c] adds 1. Branch-free; the hot-path primitive. *)
  val incr : t -> unit

  (** [bump c] is [incr] on [Some c] and a no-op on [None] — the single
      implementation of the optional [?work] threading used by every
      query kernel (previously copied into each module). *)
  val bump : t option -> unit

  (** [add c n] adds [n]. Raises [Invalid_argument] if [n < 0]; see the
      module comment for why this check is absent from [incr]. *)
  val add : t -> int -> unit

  (** [value c] is the current count. *)
  val value : t -> int

  (** [reset c] zeroes the counter. *)
  val reset : t -> unit
end
