(** Wall-clock timing and work counters for the experiment harness.

    The paper reports wall-clock seconds on 1998 hardware; absolute numbers
    are not reproducible, so each experiment additionally reports
    machine-independent work counters (vertices visited, candidates
    counted, database passes). [Timer] provides both primitives. *)

type t

(** [start ()] is a running timer. *)
val start : unit -> t

(** [elapsed_s t] is the wall-clock seconds since [start]. *)
val elapsed_s : t -> float

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** Named monotone counters for machine-independent cost accounting. *)
module Counter : sig
  type t

  (** [create name] is a zeroed counter. *)
  val create : string -> t

  (** [name c] is the label given at creation. *)
  val name : t -> string

  (** [incr c] adds 1. *)
  val incr : t -> unit

  (** [add c n] adds [n]. Raises [Invalid_argument] if [n < 0]. *)
  val add : t -> int -> unit

  (** [value c] is the current count. *)
  val value : t -> int

  (** [reset c] zeroes the counter. *)
  val reset : t -> unit
end
