(** Samplers for the distributions used by the synthetic data generator.

    Section 6.1 of the paper draws itemset and transaction sizes from
    Poisson distributions, itemset weights from an exponential
    distribution, corruption lengths from geometric distributions, and
    per-itemset noise levels from a normal distribution. Each sampler
    consumes randomness from an explicit {!Rng.t}. *)

(** [poisson rng mean] samples a Poisson variate with the given [mean].
    Uses Knuth's product method for small means and a normal approximation
    with rounding for means above 30 (never triggered by the paper's
    parameter ranges but kept for robustness). Raises [Invalid_argument]
    if [mean <= 0]. *)
val poisson : Rng.t -> float -> int

(** [exponential rng mean] samples an exponential variate (inverse-CDF
    method). Raises [Invalid_argument] if [mean <= 0]. *)
val exponential : Rng.t -> float -> float

(** [geometric rng p] samples the number of failures before the first
    success of a Bernoulli([p]) process (support {0, 1, 2, ...}).
    Raises [Invalid_argument] unless [0 < p <= 1]. *)
val geometric : Rng.t -> float -> int

(** [normal rng ~mean ~stddev] samples a Gaussian variate via the
    Box-Muller transform. Raises [Invalid_argument] if [stddev < 0]. *)
val normal : Rng.t -> mean:float -> stddev:float -> float

(** [normal_clamped rng ~mean ~stddev ~lo ~hi] resamples a Gaussian until
    it falls inside the open interval ([lo], [hi]) — the paper's noise
    level n_I must lie in (0, 1). Raises [Invalid_argument] if
    [lo >= hi]. *)
val normal_clamped : Rng.t -> mean:float -> stddev:float -> lo:float -> hi:float -> float

(** [weighted_index rng weights] samples an index with probability
    proportional to [weights.(i)] — the paper's "L-sided weighted die".
    Raises [Invalid_argument] on an empty array, a negative weight, or a
    zero total. O(n); for repeated draws build a {!Cdf.t} instead. *)
val weighted_index : Rng.t -> float array -> int

(** Precomputed cumulative distribution over indices, for O(log n)
    repeated weighted draws. *)
module Cdf : sig
  type t

  (** [of_weights w] precomputes the running sums of [w]. Raises
      [Invalid_argument] under the same conditions as
      {!val:weighted_index}. *)
  val of_weights : float array -> t

  (** [length t] is the number of indices. *)
  val length : t -> int

  (** [sample t rng] draws an index with probability proportional to its
      weight, by binary search on the running sums. *)
  val sample : t -> Rng.t -> int
end
