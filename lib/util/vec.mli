(** Growable arrays (dynamic vectors).

    A [Vec.t] is a mutable sequence with amortised O(1) [push] at the end,
    O(1) random access, and in-place sorting. It is the workhorse container
    for building adjacency lists and candidate pools whose final size is not
    known in advance. Indices are 0-based. Not thread-safe. *)

type 'a t

(** [create ()] is a fresh empty vector. *)
val create : unit -> 'a t

(** [with_capacity n] is an empty vector preallocated for [n] elements.
    Raises [Invalid_argument] if [n < 0]. *)
val with_capacity : int -> 'a t

(** [make n x] is a vector holding [n] copies of [x]. *)
val make : int -> 'a -> 'a t

(** [init n f] is a vector holding [f 0; ...; f (n-1)]. *)
val init : int -> (int -> 'a) -> 'a t

(** [length v] is the number of elements stored in [v]. *)
val length : 'a t -> int

(** [is_empty v] is [length v = 0]. *)
val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element. Raises [Invalid_argument] when [i] is
    out of bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element with [x]. Raises
    [Invalid_argument] when [i] is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x] at the end of [v]. *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    Raises [Invalid_argument] on an empty vector. *)
val pop : 'a t -> 'a

(** [last v] is the last element without removing it.
    Raises [Invalid_argument] on an empty vector. *)
val last : 'a t -> 'a

(** [clear v] removes all elements (capacity is retained). *)
val clear : 'a t -> unit

(** [append dst src] pushes all elements of [src] onto [dst]. *)
val append : 'a t -> 'a t -> unit

(** [iter f v] applies [f] to every element in index order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] applies [f i x] to every element [x] at index [i]. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [map f v] is a fresh vector of the images of [v]'s elements. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [fold_left f init v] folds over the elements in index order. *)
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [exists p v] is [true] iff some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [for_all p v] is [true] iff every element satisfies [p]. *)
val for_all : ('a -> bool) -> 'a t -> bool

(** [filter p v] is a fresh vector of elements satisfying [p], in order. *)
val filter : ('a -> bool) -> 'a t -> 'a t

(** [find_opt p v] is the first element satisfying [p], if any. *)
val find_opt : ('a -> bool) -> 'a t -> 'a option

(** [sort cmp v] sorts [v] in place (not stable). *)
val sort : ('a -> 'a -> int) -> 'a t -> unit

(** [to_array v] is a fresh array with the elements of [v]. *)
val to_array : 'a t -> 'a array

(** [to_list v] is the elements of [v] as a list, in index order. *)
val to_list : 'a t -> 'a list

(** [of_array a] is a vector with the elements of [a]. *)
val of_array : 'a array -> 'a t

(** [of_list l] is a vector with the elements of [l]. *)
val of_list : 'a list -> 'a t
