(** Binary heaps (priority queues).

    A [Heap.t] is a mutable priority queue over elements ordered by a
    comparison function supplied at creation time. The element for which
    [cmp] reports the smallest value is at the top; to obtain a max-heap
    pass a reversed comparison. Used by the best-first searches of the
    adjacency lattice ([FindSupport], Section 3.1 of the paper), which
    repeatedly extract the pre-stored itemset of highest support. *)

type 'a t

(** [create cmp] is an empty heap ordered by [cmp] (smallest on top). *)
val create : ('a -> 'a -> int) -> 'a t

(** [length h] is the number of queued elements. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** [push h x] inserts [x]. O(log n). *)
val push : 'a t -> 'a -> unit

(** [peek h] is the top element without removing it, or [None] when empty. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the top element, or [None] when empty.
    O(log n). *)
val pop : 'a t -> 'a option

(** [pop_exn h] is like {!pop} but raises [Invalid_argument] when empty. *)
val pop_exn : 'a t -> 'a

(** [clear h] removes all elements. *)
val clear : 'a t -> unit

(** [of_list cmp l] is a heap containing the elements of [l]. *)
val of_list : ('a -> 'a -> int) -> 'a list -> 'a t

(** [to_sorted_list h] drains [h], returning its elements in heap order
    (ascending under [cmp]). The heap is empty afterwards. *)
val to_sorted_list : 'a t -> 'a list
