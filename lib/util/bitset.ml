type t = {
  n : int;
  words : Bytes.t; (* bit i lives in byte i/8, bit i mod 8 *)
}

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Bytes.make ((n + 7) / 8) '\000' }

let capacity s = s.n

let check s i name = if i < 0 || i >= s.n then invalid_arg name

let add s i =
  check s i "Bitset.add";
  let byte = Char.code (Bytes.get s.words (i lsr 3)) in
  Bytes.set s.words (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let remove s i =
  check s i "Bitset.remove";
  let byte = Char.code (Bytes.get s.words (i lsr 3)) in
  Bytes.set s.words (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7)) land 0xff))

let mem s i =
  check s i "Bitset.mem";
  let byte = Char.code (Bytes.get s.words (i lsr 3)) in
  byte land (1 lsl (i land 7)) <> 0

let popcount_byte b =
  let rec loop b acc = if b = 0 then acc else loop (b lsr 1) (acc + (b land 1)) in
  loop b 0

let cardinal s =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte (Char.code c)) s.words;
  !total

let clear s = Bytes.fill s.words 0 (Bytes.length s.words) '\000'

let copy s = { n = s.n; words = Bytes.copy s.words }

let iter f s =
  for i = 0 to s.n - 1 do
    if mem s i then f i
  done

let check_same a b name = if a.n <> b.n then invalid_arg name

let inter_cardinal a b =
  check_same a b "Bitset.inter_cardinal";
  let total = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    total :=
      !total
      + popcount_byte (Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i))
  done;
  !total

let inter a b =
  check_same a b "Bitset.inter";
  let out = create a.n in
  for i = 0 to Bytes.length a.words - 1 do
    Bytes.set out.words i
      (Char.chr (Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i)))
  done;
  out

let to_list s =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (if mem s i then i :: acc else acc) in
  loop (s.n - 1) []
