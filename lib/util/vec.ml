(* Backing store: an [Obj.t array] that is ALWAYS a regular (non-flat)
   array. Creating it from an immediate dummy guarantees the runtime
   never specialises it to a flat float array, so a [float Vec.t] works:
   elements are stored as (boxed) [Obj.t] values and converted at the
   boundary. Slots beyond [len] hold the dummy and are never read. *)
type 'a t = {
  mutable data : Obj.t array;
  mutable len : int;
}

let dummy : Obj.t = Obj.repr 0

(* A fresh non-flat backing array: the immediate dummy fixes the tag. *)
let backing n = Array.make n dummy

let create () = { data = [||]; len = 0 }

let with_capacity n =
  if n < 0 then invalid_arg "Vec.with_capacity";
  if n = 0 then create () else { data = backing n; len = 0 }

let length v = v.len
let is_empty v = v.len = 0

let get (v : 'a t) i : 'a =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  Obj.obj (Array.unsafe_get v.data i)

let set (v : 'a t) i (x : 'a) =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  Array.unsafe_set v.data i (Obj.repr x)

let ensure_capacity v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let data = backing (max 8 (max n (2 * cap))) in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push (v : 'a t) (x : 'a) =
  ensure_capacity v (v.len + 1);
  Array.unsafe_set v.data v.len (Obj.repr x);
  v.len <- v.len + 1

let pop (v : 'a t) : 'a =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = Array.unsafe_get v.data v.len in
  Array.unsafe_set v.data v.len dummy;
  Obj.obj x

let last (v : 'a t) : 'a =
  if v.len = 0 then invalid_arg "Vec.last";
  Obj.obj (Array.unsafe_get v.data (v.len - 1))

let clear v =
  (* Drop references so the GC can reclaim popped elements. *)
  Array.fill v.data 0 v.len dummy;
  v.len <- 0

let make n x =
  if n < 0 then invalid_arg "Vec.make";
  let v = with_capacity n in
  for _ = 1 to n do
    push v x
  done;
  v

let init n f =
  if n < 0 then invalid_arg "Vec.init";
  let v = with_capacity n in
  for i = 0 to n - 1 do
    push v (f i)
  done;
  v

let iter f v =
  for i = 0 to v.len - 1 do
    f (Obj.obj (Array.unsafe_get v.data i))
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Obj.obj (Array.unsafe_get v.data i))
  done

let append dst src = iter (push dst) src

let map f v = init v.len (fun i -> f (get v i))

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (Obj.obj (Array.unsafe_get v.data i))
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p (get v i) || loop (i + 1)) in
  loop 0

let for_all p v =
  let rec loop i = i >= v.len || (p (get v i) && loop (i + 1)) in
  loop 0

let filter p v =
  let out = create () in
  iter (fun x -> if p x then push out x) v;
  out

let find_opt p v =
  let rec loop i =
    if i >= v.len then None
    else
      let x = get v i in
      if p x then Some x else loop (i + 1)
  in
  loop 0

let to_array (v : 'a t) : 'a array =
  (* Build through the element type so callers get a normally-
     represented array (flat for floats, as they expect). *)
  if v.len = 0 then [||]
  else begin
    let first : 'a = get v 0 in
    let out = Array.make v.len first in
    for i = 1 to v.len - 1 do
      out.(i) <- get v i
    done;
    out
  end

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.iteri (fun i x -> Array.unsafe_set v.data i (Obj.repr x)) a

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get v i :: acc) in
  loop (v.len - 1) []

let of_array a =
  let v = with_capacity (Array.length a) in
  Array.iter (push v) a;
  v

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v
