(** Fixed-capacity bit sets over the integers [0 .. capacity-1].

    Used for visited-vertex marks during lattice searches (dense integer
    ids) and for per-transaction item membership tests during support
    counting. All operations besides {!create} and {!copy} are O(1) or
    O(capacity/64). *)

type t

(** [create n] is an empty bit set over [0 .. n-1].
    Raises [Invalid_argument] if [n < 0]. *)
val create : int -> t

(** [capacity s] is the [n] the set was created with. *)
val capacity : t -> int

(** [add s i] inserts [i]. Raises [Invalid_argument] when out of range. *)
val add : t -> int -> unit

(** [remove s i] deletes [i]. Raises [Invalid_argument] when out of range. *)
val remove : t -> int -> unit

(** [mem s i] tests membership. Raises [Invalid_argument] when out of
    range. *)
val mem : t -> int -> bool

(** [cardinal s] is the number of members (O(capacity/64)). *)
val cardinal : t -> int

(** [clear s] removes every member. *)
val clear : t -> unit

(** [copy s] is an independent copy of [s]. *)
val copy : t -> t

(** [iter f s] applies [f] to every member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [to_list s] is the members in increasing order. *)
val to_list : t -> int list

(** [inter_cardinal a b] is |a ∩ b|, word-wise. Raises
    [Invalid_argument] when capacities differ. *)
val inter_cardinal : t -> t -> int

(** [inter a b] is a fresh set a ∩ b. Raises [Invalid_argument] when
    capacities differ. *)
val inter : t -> t -> t
