type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then apply the
   variant-13 mix of Stafford's MurmurHash3 finalizer. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 3)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling over the largest multiple of [n] below 2^61 keeps
     the result exactly uniform even when [n] does not divide 2^61. *)
  let bound = 1 lsl 61 in
  let limit = bound - (bound mod n) in
  let rec draw () =
    let x = bits t in
    if x < limit then x mod n else draw ()
  in
  draw ()

let float t =
  (* 53 random mantissa bits scaled into [0,1). *)
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int x *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L
