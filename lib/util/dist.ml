let poisson rng mean =
  if mean <= 0.0 then invalid_arg "Dist.poisson";
  if mean < 30.0 then begin
    (* Knuth: count multiplications of uniforms until the product drops
       below e^-mean. *)
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. Rng.float rng in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation, adequate for large means. *)
    let rec draw () =
      let u1 = Rng.float rng and u2 = Rng.float rng in
      let u1 = if u1 = 0.0 then epsilon_float else u1 in
      let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
      let x = mean +. (sqrt mean *. z) in
      if x < 0.0 then draw () else int_of_float (Float.round x)
    in
    draw ()
  end

let exponential rng mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential";
  let u = 1.0 -. Rng.float rng in
  (* u in (0,1]: log u is finite *)
  -.mean *. log u

let geometric rng p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric";
  if p = 1.0 then 0
  else begin
    let u = 1.0 -. Rng.float rng in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let normal rng ~mean ~stddev =
  if stddev < 0.0 then invalid_arg "Dist.normal";
  let u1 = Rng.float rng and u2 = Rng.float rng in
  let u1 = if u1 = 0.0 then epsilon_float else u1 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let normal_clamped rng ~mean ~stddev ~lo ~hi =
  if lo >= hi then invalid_arg "Dist.normal_clamped";
  let rec draw budget =
    (* After many rejections (pathological parameters) fall back to the
       interval midpoint rather than looping forever. *)
    if budget = 0 then (lo +. hi) /. 2.0
    else
      let x = normal rng ~mean ~stddev in
      if x > lo && x < hi then x else draw (budget - 1)
  in
  draw 10_000

let check_weights w =
  if Array.length w = 0 then invalid_arg "Dist.weighted_index: empty";
  let total = ref 0.0 in
  Array.iter
    (fun x ->
      if x < 0.0 || Float.is_nan x then invalid_arg "Dist.weighted_index: bad weight";
      total := !total +. x)
    w;
  if !total <= 0.0 then invalid_arg "Dist.weighted_index: zero total";
  !total

let weighted_index rng w =
  let total = check_weights w in
  let target = Rng.float rng *. total in
  let n = Array.length w in
  let rec loop i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else loop (i + 1) acc
  in
  loop 0 0.0

module Cdf = struct
  type t = { sums : float array (* sums.(i) = w.(0) + ... + w.(i) *) }

  let of_weights w =
    let total = check_weights w in
    ignore total;
    let sums = Array.make (Array.length w) 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        acc := !acc +. x;
        sums.(i) <- !acc)
      w;
    { sums }

  let length t = Array.length t.sums

  let sample t rng =
    let n = Array.length t.sums in
    let total = t.sums.(n - 1) in
    let target = Rng.float rng *. total in
    (* Smallest index whose running sum exceeds [target]. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.sums.(mid) > target then search lo mid else search (mid + 1) hi
    in
    search 0 (n - 1)
end
