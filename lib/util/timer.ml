type t = { t0 : float }

let start () = { t0 = Unix.gettimeofday () }

let elapsed_s t = Unix.gettimeofday () -. t.t0

let time f =
  let t = start () in
  let x = f () in
  (x, elapsed_s t)

(* Monotone clock built over [gettimeofday]: a process-global high-water
   mark advanced with a CAS loop, so concurrent readers from several
   domains all observe a non-decreasing sequence even if the system
   clock is stepped backwards (NTP, VM migration). [Unix.clock_gettime]
   is not exposed by this OCaml's unix binding, so the high-water mark
   is the portable equivalent: it cannot go backwards, at the cost of
   standing still for the duration of a backwards step. *)
let monotonic_floor = Atomic.make neg_infinity

let monotonic_s () =
  let now = Unix.gettimeofday () in
  let rec raise_floor () =
    let floor = Atomic.get monotonic_floor in
    if now <= floor then floor
    else if Atomic.compare_and_set monotonic_floor floor now then now
    else raise_floor ()
  in
  raise_floor ()

module Counter = struct
  type t = {
    name : string;
    count : int Atomic.t;
  }

  let create name = { name; count = Atomic.make 0 }
  let name c = c.name

  (* [incr] and [bump] are the hot-path primitives: a single
     fetch-and-add (one lock-prefixed instruction on x86), never
     validating. Atomic cells make the counters safe to bump from
     several domains at once — the serving pool shares interned obs
     counters across workers. The negative check lives only in [add],
     which is called O(passes) times by the mining layer, never per
     vertex or per edge. *)
  let incr c = ignore (Atomic.fetch_and_add c.count 1)

  let[@inline] bump = function Some c -> incr c | None -> ()

  let add c n =
    if n < 0 then invalid_arg "Timer.Counter.add";
    ignore (Atomic.fetch_and_add c.count n)

  let value c = Atomic.get c.count
  let reset c = Atomic.set c.count 0
end
