type t = { t0 : float }

let start () = { t0 = Unix.gettimeofday () }

let elapsed_s t = Unix.gettimeofday () -. t.t0

let time f =
  let t = start () in
  let x = f () in
  (x, elapsed_s t)

module Counter = struct
  type t = {
    name : string;
    mutable count : int;
  }

  let create name = { name; count = 0 }
  let name c = c.name
  let incr c = c.count <- c.count + 1

  let add c n =
    if n < 0 then invalid_arg "Timer.Counter.add";
    c.count <- c.count + n

  let value c = c.count
  let reset c = c.count <- 0
end
