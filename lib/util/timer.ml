type t = { t0 : float }

let start () = { t0 = Unix.gettimeofday () }

let elapsed_s t = Unix.gettimeofday () -. t.t0

let time f =
  let t = start () in
  let x = f () in
  (x, elapsed_s t)

module Counter = struct
  type t = {
    name : string;
    mutable count : int;
  }

  let create name = { name; count = 0 }
  let name c = c.name

  (* [incr] and [bump] are the hot-path primitives: branch-free (modulo
     the option dispatch in [bump]) and never validating. The negative
     check lives only in [add], which is called O(passes) times by the
     mining layer, never per vertex or per edge. *)
  let incr c = c.count <- c.count + 1

  let[@inline] bump = function Some c -> incr c | None -> ()

  let add c n =
    if n < 0 then invalid_arg "Timer.Counter.add";
    c.count <- c.count + n

  let value c = c.count
  let reset c = c.count <- 0
end
