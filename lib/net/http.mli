(** Hand-rolled HTTP/1.1 message parsing and serialization.

    The serving daemon ({!Server}) speaks plain HTTP/1.1 over Unix
    sockets with zero external dependencies, so the wire format lives
    here: an incremental request parser (the server side), a response
    serializer, and the mirror pair — request serializer and incremental
    response parser — used by loopback clients in the tests and the
    bench harness.

    {2 Parsing model}

    The parsers are {e pull} parsers over a caller-owned receive buffer:
    [parse_request buf ~off] inspects [buf] from byte [off] and either
    returns a complete message plus the number of bytes it consumed,
    asks for more input ([Incomplete]), or rejects the prefix
    ([Failed]). The caller appends whatever the socket delivers —
    one byte at a time is fine — and re-parses; after a [Complete] it
    advances [off] by the consumed count and parses again, which is all
    pipelining requires. Parsers {b never raise} on any input; malformed
    bytes always surface as [Failed] with a suggested status code.

    {2 Accepted grammar}

    Request-line [METHOD SP TARGET SP HTTP/1.x]; header lines terminated
    by CRLF (a bare LF is tolerated); obs-fold continuation lines
    (leading SP/HTAB) are unfolded into the previous header value with a
    single space, per RFC 7230 §3.2.4. Header names are lowercased.
    Bodies are delimited by [Content-Length] only — a missing
    [Content-Length] means an empty body, conflicting duplicates are
    rejected, and values that are non-numeric, negative, overflowing, or
    larger than [max_body] are rejected before any body byte is
    buffered. [Transfer-Encoding] is not implemented and is rejected
    with 501. *)

type request = {
  meth : string;  (** verbatim, e.g. ["GET"] — method names are case-sensitive *)
  target : string;
  headers : (string * string) list;
      (** in arrival order; names lowercased, values trimmed of
          surrounding whitespace, folded continuations joined by [" "] *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;  (** names lowercased *)
  resp_body : string;
}

(** Parse failure: [status] is the HTTP status the server should answer
    with (400 malformed, 413 oversized body, 431 oversized header
    section, 501 transfer-encoding, 505 unknown version). *)
type error = { status : int; reason : string }

type 'a parse =
  | Complete of 'a * int  (** the message and the bytes consumed from [off] *)
  | Incomplete  (** a valid prefix; feed more bytes and re-parse *)
  | Failed of error

(** [parse_request buf ~off] parses one request starting at [off].
    @param max_head byte budget for request line + headers (default 16 KiB)
    @param max_body largest accepted [Content-Length] (default 4 MiB) *)
val parse_request :
  ?max_head:int -> ?max_body:int -> string -> off:int -> request parse

(** [parse_response buf ~off] parses one response starting at [off];
    same budgets and tolerances as {!parse_request}. A response with
    neither [Content-Length] nor a close-delimited body is taken as
    empty-bodied (the server side here always sends [Content-Length]). *)
val parse_response :
  ?max_head:int -> ?max_body:int -> string -> off:int -> response parse

(** [header req name] is the value of the first header named [name]
    (give [name] lowercased). *)
val header : request -> string -> string option

val response_header : response -> string -> string option

(** [reason_phrase status] is the canonical phrase, ["Unknown"] for
    unregistered codes. *)
val reason_phrase : int -> string

(** [render_response ~status ~headers body] serializes a response with
    [Content-Length] computed from [body]; a [Connection] header is
    emitted only if present in [headers]. With [head:true] the body
    bytes are omitted while [Content-Length] still reflects them — the
    HEAD answer to the corresponding GET. *)
val render_response :
  ?headers:(string * string) list -> ?head:bool -> status:int -> string -> string

(** [render_request ~meth ~target ~headers body] serializes a request
    with [Content-Length] appended when [body] is non-empty. *)
val render_request :
  ?headers:(string * string) list -> meth:string -> target:string -> string -> string
