(** Windowed SLO checks behind [GET /healthz].

    A pure decision engine: the server folds its sliding-window
    telemetry into a {!reading}, [evaluate] grades it against
    {!thresholds}, and the endpoint renders the resulting {!state}.
    Keeping the grading side-effect-free is what makes the
    ok→degraded→unhealthy→recovered transitions unit-testable without
    standing up a server.

    Each check (shed rate, 5xx rate, execute-phase p99) carries two
    limits: crossing [degraded] marks the server degraded (still
    [200], so naive probes keep routing to it while operators see the
    reason), crossing [unhealthy] answers [503] so load balancers pull
    it. Every rate is over {!arrivals} — executed {b plus} shed — so
    shed traffic is graded: a server shedding 100% of its load is
    unhealthy even when nothing executes. A reading over fewer than
    [min_events] windowed arrivals is never judged unhealthy — a cold
    or idle server is [Ok], and one unlucky request out of three
    cannot flip the fleet. *)

(** Two severity cut-offs for one check; [nan]/[infinity] disable a
    level. *)
type limits = {
  degraded : float;
  unhealthy : float;
}

type thresholds = {
  shed_rate : limits;
      (** shed (429 + 503-deadline) queries / windowed {!arrivals} *)
  error_rate : limits;  (** 5xx responses / windowed {!arrivals} *)
  p99_s : limits;
      (** windowed execute-phase p99 in seconds — wire [--slo-p99-ms]
          to [degraded] and a multiple of it to [unhealthy] *)
  min_events : int;
      (** below this many windowed {!arrivals} the rates and p99 are
          not judged (default 20) *)
}

(** Defaults: shed 1% / 25%, 5xx 1% / 25%, p99 disabled,
    [min_events = 20]. *)
val default_thresholds : thresholds

(** [with_slo_p99 thresholds ~slo_s] enables the latency check:
    [degraded] at [slo_s], [unhealthy] at [4 *. slo_s]. [slo_s <= 0]
    returns [thresholds] unchanged. *)
val with_slo_p99 : thresholds -> slo_s:float -> thresholds

(** One windowed snapshot of the server's load-bearing signals. *)
type reading = {
  window_s : float;  (** seconds of telemetry the window covers *)
  executed : int;
      (** /query requests executed to completion in the window
          (including 422 query errors) *)
  shed : int;  (** 429 + deadline-503 sheds in the window *)
  errors_5xx : int;  (** 5xx responses in the window *)
  exec_p99_s : float;
      (** windowed execute-phase p99; [nan] when no sample *)
}

(** [arrivals r] is [r.executed + r.shed]: every request decided in the
    window. The denominator of all rates and the [min_events] floor —
    both counted at decision time, so a full-shed outage with no
    executed queries still trips the floor and grades unhealthy. *)
val arrivals : reading -> int

type state =
  | Ok
  | Degraded of string list  (** human-readable reasons, worst first *)
  | Unhealthy of string list

val evaluate : thresholds -> reading -> state

(** ["ok"], ["degraded"], ["unhealthy"]. *)
val state_name : state -> string

(** HTTP status for the /healthz answer: 200, 200, 503. *)
val status_code : state -> int

(** Gauge encoding for [olar_health_state]: 0, 1, 2. *)
val state_value : state -> int

val reasons : state -> string list
