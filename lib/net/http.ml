type request = {
  meth : string;
  target : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

type error = { status : int; reason : string }

type 'a parse =
  | Complete of 'a * int
  | Incomplete
  | Failed of error

(* Internal control flow: [Err] aborts the current parse with a status;
   [More] means the buffer holds a valid but incomplete prefix. Both are
   caught at the single public boundary, so no exception ever escapes. *)
exception Err of error
exception More

let err status reason = raise (Err { status; reason })

let default_max_head = 16 * 1024
let default_max_body = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Lexical helpers                                                    *)
(* ------------------------------------------------------------------ *)

let is_ws c = c = ' ' || c = '\t'

let trim s =
  let n = String.length s in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi && is_ws s.[!lo] do incr lo done;
  while !hi > !lo && is_ws s.[!hi - 1] do decr hi done;
  String.sub s !lo (!hi - !lo)

(* RFC 7230 token characters, the legal alphabet of methods and header
   names. Anything else in those positions is a malformed message, not
   a message we misread. *)
let is_tchar c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
    true
  | _ -> false

let is_token s = s <> "" && String.for_all is_tchar s

(* One head line starting at [pos]: the line's content (terminator
   stripped) and the offset just past the terminator. CRLF is the
   grammar; a bare LF is tolerated. A CR not followed by LF is rejected
   rather than smuggled into a value. Raises [More] when no terminator
   is in the buffer yet. *)
let read_line buf ~len pos =
  let nl = try String.index_from buf pos '\n' with Not_found -> raise More in
  if nl >= len then raise More;
  let stop = if nl > pos && buf.[nl - 1] = '\r' then nl - 1 else nl in
  let line = String.sub buf pos (stop - pos) in
  (match String.index_opt line '\r' with
  | Some _ -> err 400 "bare CR in header line"
  | None -> ());
  (line, nl + 1)

(* Header block: (name, value) pairs in arrival order, names lowercased,
   obs-fold continuations joined into the previous value with a single
   space. Returns the pairs and the offset just past the blank line. *)
let read_headers buf ~len ~max_head ~head_start pos0 =
  let rec go pos acc =
    if pos - head_start > max_head then err 431 "header section too large";
    let line, pos' = read_line buf ~len pos in
    if line = "" then (List.rev acc, pos')
    else if is_ws line.[0] then (
      match acc with
      | [] -> err 400 "continuation line before any header"
      | (name, value) :: rest ->
        go pos' ((name, value ^ " " ^ trim line) :: rest))
    else
      match String.index_opt line ':' with
      | None -> err 400 "header line without a colon"
      | Some colon ->
        let name = String.sub line 0 colon in
        if not (is_token name) then err 400 "malformed header name";
        let value = trim (String.sub line (colon + 1) (String.length line - colon - 1)) in
        go pos' ((String.lowercase_ascii name, value) :: acc)
  in
  go pos0 []

let find_all headers name =
  List.filter_map (fun (n, v) -> if n = name then Some v else None) headers

(* Content-Length per RFC 7230 §3.3.2: digits only; duplicates must
   agree; a value field can also be a comma-list of identical copies.
   Parsed with an explicit overflow check — a 30-digit length must be
   rejected, not wrapped into something plausible. *)
let content_length ~max_body headers =
  let parse_one v =
    let v = trim v in
    if v = "" || not (String.for_all (fun c -> c >= '0' && c <= '9') v) then
      err 400 "malformed Content-Length";
    let n =
      String.fold_left
        (fun acc c ->
          let acc = (acc * 10) + (Char.code c - Char.code '0') in
          if acc < 0 || acc > max_int / 2 then
            err 413 "Content-Length overflows";
          acc)
        0 v
    in
    n
  in
  match find_all headers "content-length" with
  | [] -> 0
  | values ->
    let parts =
      List.concat_map (fun v -> String.split_on_char ',' v) values
    in
    let lengths = List.map parse_one parts in
    (match lengths with
    | n :: rest ->
      if List.exists (fun m -> m <> n) rest then
        err 400 "conflicting Content-Length";
      if n > max_body then err 413 "body exceeds limit";
      n
    | [] -> err 400 "empty Content-Length")

let reject_transfer_encoding headers =
  if find_all headers "transfer-encoding" <> [] then
    err 501 "Transfer-Encoding is not supported"

let check_version v =
  if not (v = "HTTP/1.1" || v = "HTTP/1.0") then
    err 505 "unsupported HTTP version"

(* Split on single spaces into exactly [n] fields; sloppier whitespace
   (double spaces, tabs) is malformed. *)
let fields line n =
  let parts = String.split_on_char ' ' line in
  if List.length parts <> n || List.exists (fun p -> p = "") parts then None
  else Some parts

let body_slice buf ~len ~max_body headers pos =
  reject_transfer_encoding headers;
  let blen = content_length ~max_body headers in
  if len - pos < blen then raise More;
  (String.sub buf pos blen, pos + blen)

(* ------------------------------------------------------------------ *)
(* Public parsers                                                     *)
(* ------------------------------------------------------------------ *)

let guard f =
  try f () with
  | More -> Incomplete
  | Err e -> Failed e
  | _ -> Failed { status = 400; reason = "malformed message" }

let parse_request ?(max_head = default_max_head) ?(max_body = default_max_body)
    buf ~off =
  guard (fun () ->
      let len = String.length buf in
      if off < 0 || off > len then err 400 "offset out of bounds";
      let line, pos = read_line buf ~len off in
      if pos - off > max_head then err 431 "request line too long"
      else if line = "" then err 400 "empty request line"
      else
        match fields line 3 with
        | None -> err 400 "malformed request line"
        | Some [ meth; target; version ] ->
          if not (is_token meth) then err 400 "malformed method";
          check_version version;
          let headers, pos =
            read_headers buf ~len ~max_head ~head_start:off pos
          in
          let body, pos = body_slice buf ~len ~max_body headers pos in
          Complete ({ meth; target; headers; body }, pos - off)
        | Some _ -> err 400 "malformed request line")

let parse_response ?(max_head = default_max_head)
    ?(max_body = default_max_body) buf ~off =
  guard (fun () ->
      let len = String.length buf in
      if off < 0 || off > len then err 400 "offset out of bounds";
      let line, pos = read_line buf ~len off in
      if pos - off > max_head then err 431 "status line too long";
      let version, status, reason =
        (* status line: HTTP/1.x SP 3DIGIT SP reason (reason may hold
           spaces, or be empty) *)
        match String.index_opt line ' ' with
        | None -> err 400 "malformed status line"
        | Some sp1 ->
          let version = String.sub line 0 sp1 in
          let rest = String.sub line (sp1 + 1) (String.length line - sp1 - 1) in
          let code, reason =
            match String.index_opt rest ' ' with
            | None -> (rest, "")
            | Some sp2 ->
              ( String.sub rest 0 sp2,
                String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) )
          in
          if
            String.length code <> 3
            || not (String.for_all (fun c -> c >= '0' && c <= '9') code)
          then err 400 "malformed status code";
          (version, int_of_string code, reason)
      in
      check_version version;
      let resp_headers, pos = read_headers buf ~len ~max_head ~head_start:off pos in
      let resp_body, pos = body_slice buf ~len ~max_body resp_headers pos in
      Complete ({ status; reason; resp_headers; resp_body }, pos - off))

let header req name = List.assoc_opt name req.headers
let response_header resp name = List.assoc_opt name resp.resp_headers

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Unknown"

(* [head:true] renders a HEAD answer: status, headers and the
   Content-Length the GET body would have, but no body bytes. *)
let render_response ?(headers = []) ?(head = false) ~status body =
  let b = Buffer.create (String.length body + 128) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_phrase status));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length body));
  if not head then Buffer.add_string b body;
  Buffer.contents b

let render_request ?(headers = []) ~meth ~target body =
  let b = Buffer.create (String.length body + 128) in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  if body <> "" || meth = "POST" then
    Buffer.add_string b
      (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b
