open Olar_data
module Pool = Olar_serve.Pool
module Record = Olar_replay.Record
module Replay = Olar_replay.Replay
module Fnv = Olar_replay.Fnv
module Jsonx = Olar_obs.Jsonx
module Metrics = Olar_obs.Metrics
module Exposition = Olar_obs.Exposition
module Obs = Olar_obs.Obs
module Engine = Olar_core.Engine
module Rule = Olar_core.Rule
module Timer = Olar_util.Timer
module Counter = Timer.Counter
module Window = Olar_obs.Window
module Runtime_obs = Olar_obs.Runtime_obs

type config = {
  host : string;
  port : int;
  backlog : int;
  queue_depth : int;
  deadline_s : float;
  max_body_bytes : int;
  record : string option;
  trace_sample : int;
  slow_s : float;
  slow_ring : int;
  slo_p99_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    queue_depth = 256;
    deadline_s = 0.0;
    max_body_bytes = 4 * 1024 * 1024;
    record = None;
    trace_sample = 0;
    slow_s = infinity;
    slow_ring = 64;
    slo_p99_s = 0.0;
  }

(* The six attribution phases of one wire request, in wall-clock order.
   parse:    HTTP parse + query-key decode on the connection thread
   queue:    arrival to the drainer claiming this ticket (per-request —
             the drainer pops one ticket at a time, so queue wait is
             each request's own, not its round's)
   dispatch: claim to a pool domain starting execution (submission-shard
             wait + wakeup; the pool histograms the same window as
             olar_pool_dispatch_wait_seconds)
   execute:  the pool's claim-to-completion service time
   deliver:  execution done to the connection thread waking
   write:    rendering + writing the response bytes *)
let phase_names = [| "parse"; "queue"; "dispatch"; "execute"; "deliver"; "write" |]

let num_phases = Array.length phase_names

(* One admitted query. The connection thread parks on [cv] until the
   drainer (deadline drop) or a pool domain (completion) writes the
   outcome. Tickets are pooled: every field is mutable so a retired
   ticket — mutex, condvar and all — is reset and reused for a later
   request instead of allocated fresh on the hot path. *)
type outcome =
  | Pending
  | Served of Pool.response * float
  | Shed of int * string  (* HTTP status, message *)

type ticket = {
  mutable id : int; (* server-global request id, from the HTTP front door *)
  mutable key : Record.t;
  mutable req : Pool.request;
  mutable t0 : float; (* monotonic at parse start on the connection thread *)
  mutable parse_s : float; (* HTTP parse + key decode *)
  mutable arrival : float;
  mutable deadline : float;  (* [infinity] when deadlines are off *)
  tmu : Mutex.t;
  tcv : Condition.t;
  mutable outcome : outcome;
  (* phase stamps, written by the drainer / executing domain *)
  mutable t_claim : float; (* drainer claimed the ticket from the queue *)
  mutable t_exec_start : float; (* a pool domain began executing *)
  mutable t_exec_done : float; (* execution finished *)
  mutable exec_domain : int; (* Domain.self of the executing domain *)
}

(* One entry of the slow-request ring: everything /statusz needs to
   show about a request that crossed the --slow-ms threshold. *)
type slow_entry = {
  s_id : int;
  s_kind : string;
  s_status : int;
  s_domain : int;
  s_total_s : float;
  s_phases : float array; (* length num_phases, seconds *)
  s_uptime_s : float; (* server uptime at completion *)
  (* absolute execute window, for lazy GC-pause tainting at /statusz
     render time (the eventring poller may record a pause after this
     entry is pushed; matching at read time misses nothing) *)
  s_exec_t0 : float;
  s_exec_t1 : float;
}

type t = {
  cfg : config;
  pool : Pool.t;
  lsock : Unix.file_descr;
  bound_port : int;
  registry : Metrics.t;
  obs_ctx : Obs.ctx option;
  (* instruments *)
  c_conns : Counter.t;
  c_requests : Counter.t;
  c_queries : Counter.t;
  c_bad : Counter.t;
  c_shed_queue : Counter.t;
  c_shed_deadline : Counter.t;
  c_5xx : Counter.t;
  g_queue_depth : Metrics.Gauge.t;
  g_queue_peak : Metrics.Gauge.t;
  g_health : Metrics.Gauge.t;
  h_request : Metrics.Histogram.t;
  h_phase : Metrics.Histogram.t array; (* indexed by phase, length num_phases *)
  (* sliding-window views over the cumulative instruments above: the
     health engine and /statusz's "window" section read rates and
     rolling quantiles from these; the ticker thread advances the
     boundaries *)
  win : Window.t;
  w_queries : Window.counter_view;
  w_shed_queue : Window.counter_view;
  w_shed_deadline : Window.counter_view;
  w_5xx : Window.counter_view;
  w_request : Window.histogram_view;
  w_phase : Window.histogram_view array;
  w_gc : Window.histogram_view option;
  thresholds : Health.thresholds;
  runtime_obs : Runtime_obs.t option;
  (* request identity and tracing *)
  req_seq : int Atomic.t;
  started_s : float; (* monotonic at create; anchors /statusz uptime *)
  (* slow-request ring (newest overwrite oldest) *)
  slow_mu : Mutex.t;
  slow_ring : slow_entry option array;
  mutable slow_seen : int; (* total requests over the threshold *)
  (* drainer-side runtime-gauge sampling throttle *)
  mutable last_sample_s : float;
  (* admission queue *)
  qmu : Mutex.t;
  qcv : Condition.t;
  queue : ticket Queue.t;
  mutable stopping : bool;
  mutable stopped : bool;
  (* capture *)
  rec_oc : out_channel option;
  rec_mu : Mutex.t;
  mutable rec_seq : int;
  (* ticket freelist (bounded): retired tickets come back here *)
  free_mu : Mutex.t;
  mutable free_tickets : ticket list;
  mutable free_count : int;
  (* threads *)
  mutable accept_thread : Thread.t option;
  mutable drainer_thread : Thread.t option;
  mutable ticker_thread : Thread.t option;
  conns_mu : Mutex.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
}

(* ------------------------------------------------------------------ *)
(* Response payloads                                                  *)
(* ------------------------------------------------------------------ *)

let itemset_json x =
  Jsonx.Arr (List.map (fun i -> Jsonx.Int i) (Itemset.to_list x))

(* Mirrors {!Olar_replay.Recorder}'s result_size per kind, so captured
   records look exactly like CLI --record ones. *)
let result_size = function
  | Pool.R_items entries -> Array.length entries
  | Pool.R_count c -> c
  | Pool.R_rules rules -> List.length rules
  | Pool.R_level (Some _) -> 1
  | Pool.R_level None -> 0
  | Pool.R_entries entries -> List.length entries
  | Pool.R_promoted { promoted; _ } -> List.length promoted
  | Pool.R_error _ -> 0

let result_fields = function
  | Pool.R_items entries ->
    [
      ( "items",
        Jsonx.Arr
          (Array.to_list entries
          |> List.map (fun (x, c) ->
                 Jsonx.Obj
                   [ ("itemset", itemset_json x); ("count", Jsonx.Int c) ])) );
    ]
  | Pool.R_count c -> [ ("count", Jsonx.Int c) ]
  | Pool.R_rules rules ->
    [
      ( "rules",
        Jsonx.Arr
          (List.map
             (fun (r : Rule.t) ->
               Jsonx.Obj
                 [
                   ("antecedent", itemset_json r.antecedent);
                   ("consequent", itemset_json r.consequent);
                   ("support_count", Jsonx.Int r.support_count);
                   ("antecedent_count", Jsonx.Int r.antecedent_count);
                 ])
             rules) );
    ]
  | Pool.R_level level ->
    [
      ( "level",
        match level with Some f -> Jsonx.Float f | None -> Jsonx.Null );
    ]
  | Pool.R_entries entries ->
    [
      ( "entries",
        Jsonx.Arr
          (List.map
             (fun (x, s) ->
               Jsonx.Obj
                 [ ("itemset", itemset_json x); ("support", Jsonx.Float s) ])
             entries) );
    ]
  | Pool.R_promoted { promoted; db_size } ->
    [
      ("promoted", Jsonx.Arr (List.map itemset_json promoted));
      ("db_size", Jsonx.Int db_size);
    ]
  | Pool.R_error _ -> []

let json_headers = [ ("content-type", "application/json") ]

let json_response ?(headers = json_headers) ~status fields =
  Http.render_response ~headers ~status
    (Jsonx.to_string (Jsonx.Obj fields) ^ "\n")

let error_response ~status msg =
  json_response ~status
    [
      ( "status",
        Jsonx.Str
          (match status with
          | 429 | 503 -> "shed"
          | 404 -> "not_found"
          | 422 -> "error"
          | _ -> "bad_request") );
      ("error", Jsonx.Str msg);
    ]

(* [lat_s] stays the pool's claim-to-completion service time (what
   capture/replay compares); [total_s] is the wire-side account —
   parse + queue + dispatch + execute + deliver. The write phase can't
   be in the body that reports it; it lands in the phase histogram
   after the bytes are out. *)
let ok_response resp ~id ~latency_s ~total_s =
  let digest =
    match Replay.digest_response resp with
    | Some d -> d
    | None -> Fnv.empty (* unreachable: R_error never takes this path *)
  in
  json_response ~status:200
    ([
       ("status", Jsonx.Str "ok");
       ("id", Jsonx.Int id);
       ("digest", Jsonx.Str (Fnv.to_hex digest));
       ("size", Jsonx.Int (result_size resp));
       ("lat_s", Jsonx.Float latency_s);
       ("total_s", Jsonx.Float total_s);
     ]
    @ result_fields resp)

(* ------------------------------------------------------------------ *)
(* Admission and the drainer                                          *)
(* ------------------------------------------------------------------ *)

let resolve ticket outcome =
  Mutex.lock ticket.tmu;
  ticket.outcome <- outcome;
  Condition.signal ticket.tcv;
  Mutex.unlock ticket.tmu

let await ticket =
  Mutex.lock ticket.tmu;
  while ticket.outcome = Pending do
    Condition.wait ticket.tcv ticket.tmu
  done;
  let o = ticket.outcome in
  Mutex.unlock ticket.tmu;
  o

(* Admit under the queue bound. 429 at capacity, 503 once shutdown has
   begun; on success the drainer is signalled. *)
let admit t ticket =
  Mutex.lock t.qmu;
  let verdict =
    if t.stopping then Error (503, "server is shutting down")
    else if Queue.length t.queue >= t.cfg.queue_depth then begin
      Counter.incr t.c_shed_queue;
      Error (429, "queue full")
    end
    else begin
      Queue.add ticket t.queue;
      let depth = Queue.length t.queue in
      Metrics.Gauge.set_int t.g_queue_depth depth;
      (* CAS-max: a read-then-set here raced between admission threads
         and could lose the higher peak *)
      Metrics.Gauge.max_int t.g_queue_peak depth;
      Condition.signal t.qcv;
      Ok ()
    end
  in
  Mutex.unlock t.qmu;
  verdict

(* Append one captured record. Runs on the executing domain, before the
   ticket is resolved (a resolved ticket may be reused immediately), so
   capture lands in completion order: for a single client — one
   outstanding request at a time — that is exactly submission order,
   preserving the digest-exact replay property of single-client
   captures. Mirrors Recorder: a query that errored emits nothing and
   does not advance the sequence. *)
let record_one t (ticket : ticket) resp (c : Pool.completion) =
  match t.rec_oc with
  | None -> ()
  | Some oc -> (
    match Replay.digest_response resp with
    | None -> ()
    | Some digest ->
      Mutex.lock t.rec_mu;
      let r =
        {
          ticket.key with
          Record.seq = t.rec_seq;
          cache = Record.Passthrough;
          digest;
          result_size = result_size resp;
          latency_s = c.Pool.latency_s;
          vertices = 0;
          heap_pops = 0;
          (* the executing domain's adopted view, never the
             coordinator's: with non-blocking appends,
             [Pool.engine t.pool] may already be a generation ahead of
             the snapshot this response was computed on *)
          epoch = c.Pool.epoch;
        }
      in
      t.rec_seq <- t.rec_seq + 1;
      output_string oc (Record.to_json_line r);
      output_char oc '\n';
      flush oc;
      Mutex.unlock t.rec_mu)

(* Dispatch one claimed ticket: drop it if it already missed its
   deadline (the 503 shed — no query work is spent on a request nobody
   is waiting for), otherwise hand it straight to the pool's
   submission shards. No batch is materialized anywhere: the
   completion callback stamps the execution window on the executing
   domain and unblocks the one connection thread waiting on this
   ticket. *)
let dispatch_one t ticket =
  let now = Timer.monotonic_s () in
  if now > ticket.deadline then begin
    Counter.incr t.c_shed_deadline;
    resolve ticket (Shed (503, "deadline exceeded"))
  end
  else begin
    ticket.t_claim <- now;
    Pool.submit t.pool ticket.req (fun resp c ->
        let dt = c.Pool.latency_s in
        let done_s = Timer.monotonic_s () in
        ticket.t_exec_done <- done_s;
        ticket.t_exec_start <- done_s -. dt;
        ticket.exec_domain <- (Domain.self () :> int);
        (try record_one t ticket resp c
         with e ->
           Printf.eprintf "olar-serve: capture write failed: %s\n%!"
             (Printexc.to_string e));
        resolve ticket (Served (resp, dt)))
  end

(* Refresh per-domain utilization and per-shard depth gauges from the
   pool's accounting. *)
let refresh_domain_gauges t =
  Array.iteri
    (fun k (st : Pool.domain_stat) ->
      let labels = [ ("domain", string_of_int k) ] in
      Metrics.Gauge.set
        (Metrics.gauge t.registry ~labels
           ~help:"Seconds each pool slot spent executing requests"
           "olar_pool_domain_busy_seconds")
        st.Pool.busy_s;
      Metrics.Gauge.set_int
        (Metrics.gauge t.registry ~labels
           ~help:"Requests each pool slot has executed"
           "olar_pool_domain_requests")
        st.Pool.requests)
    (Pool.domain_stats t.pool);
  Array.iteri
    (fun k depth ->
      Metrics.Gauge.set_int
        (Metrics.gauge t.registry
           ~labels:[ ("shard", string_of_int k) ]
           ~help:"Requests queued in each pool submission shard"
           "olar_pool_shard_depth")
        depth)
    (Pool.shard_depths t.pool)

(* ------------------------------------------------------------------ *)
(* Windowed health                                                    *)
(* ------------------------------------------------------------------ *)

(* Fold the sliding windows into one reading for the health engine.
   Ticks first so a reading taken after an idle stretch reflects the
   idle window, not the last busy one. *)
let health_reading t =
  Window.tick t.win;
  {
    (* [executed] comes from the request histogram — observed only on
       Served outcomes — not from [c_queries], which stamps arrivals at
       intake: health rates divide by executed + shed, both counted at
       decision time, so a wedged server shedding its backlog with no
       fresh intake still trips the [min_events] floor. *)
    Health.window_s = Window.covered_s t.win;
    executed = (Window.histogram_window t.w_request).Window.count;
    shed =
      Window.counter_delta t.w_shed_queue
      + Window.counter_delta t.w_shed_deadline;
    errors_5xx = Window.counter_delta t.w_5xx;
    exec_p99_s = (Window.histogram_window t.w_phase.(3)).Window.p99;
  }

(* Evaluate and publish: the [olar_health_state] gauge follows every
   evaluation, whether a probe or the ticker asked. *)
let health_state t =
  let reading = health_reading t in
  let state = Health.evaluate t.thresholds reading in
  Metrics.Gauge.set_int t.g_health (Health.state_value state);
  (state, reading)

(* Keep runtime/domain gauges fresh and merge buffered trace shards
   even when nobody scrapes /metrics: called from the drainer between
   dispatches and from the ticker thread when the drainer is parked,
   at most once a second. [last_sample_s] is a benign float race
   between those two writers — worst case one extra sample. *)
let sample_runtime t =
  let now = Timer.monotonic_s () in
  if now -. t.last_sample_s >= 1.0 then begin
    t.last_sample_s <- now;
    Option.iter Obs.update_runtime_gauges t.obs_ctx;
    refresh_domain_gauges t;
    ignore (health_state t);
    Option.iter Obs.flush t.obs_ctx
  end

(* The GC-observer systhread: the eventring consumer's poll loop, the
   window ticker, and the idle-time heartbeat in one. The drainer only
   samples while dispatching (it parks on the queue condvar when
   idle), so without this thread an idle server's windows and gauges
   would freeze at the last request. Recalibrates the eventring clock
   offset about once a minute against gettimeofday drift. *)
let ticker_loop t =
  let rec go n =
    if not t.stopping then begin
      Thread.delay 0.05;
      Window.tick t.win;
      (match t.runtime_obs with
      | None -> ()
      | Some ro ->
        (try ignore (Runtime_obs.poll ro)
         with _ -> () (* a torn ring must not kill the heartbeat *));
        if n mod 1200 = 0 then Runtime_obs.calibrate ro);
      sample_runtime t;
      go (n + 1)
    end
  in
  go 1

(* The drainer is a thin submit loop: pop one ticket, stamp its claim
   time, submit, repeat. The pool's bounded shards carry the
   in-flight window; when they are full, [Pool.submit] executes one
   queued request inline on this thread — backpressure that keeps the
   admission queue (and its 429 bound) the only unbounded-offered-load
   buffer in the process. *)
let drainer_loop t =
  let rec go () =
    Mutex.lock t.qmu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qcv t.qmu
    done;
    if Queue.is_empty t.queue then begin
      (* stopping with nothing queued: wait out what is already in the
         shards, then exit — every admitted request has delivered *)
      Mutex.unlock t.qmu;
      Pool.drain t.pool
    end
    else begin
      let ticket = Queue.pop t.queue in
      Metrics.Gauge.set_int t.g_queue_depth (Queue.length t.queue);
      Mutex.unlock t.qmu;
      dispatch_one t ticket;
      sample_runtime t;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Phase accounting, slow log, sampled traces                         *)
(* ------------------------------------------------------------------ *)

let clamp0 x = Float.max 0.0 x

(* Per-phase durations for one served ticket, indexed as
   [phase_names]. The write slot stays 0 here; the connection thread
   fills it after the response bytes are out. *)
let phase_durations ticket ~t_awake =
  let p = Array.make num_phases 0.0 in
  p.(0) <- clamp0 ticket.parse_s;
  p.(1) <- clamp0 (ticket.t_claim -. ticket.arrival);
  p.(2) <- clamp0 (ticket.t_exec_start -. ticket.t_claim);
  p.(3) <- clamp0 (ticket.t_exec_done -. ticket.t_exec_start);
  p.(4) <- clamp0 (t_awake -. ticket.t_exec_done);
  p

let push_slow t entry =
  Mutex.lock t.slow_mu;
  let cap = Array.length t.slow_ring in
  if cap > 0 then t.slow_ring.(t.slow_seen mod cap) <- Some entry;
  t.slow_seen <- t.slow_seen + 1;
  Mutex.unlock t.slow_mu;
  let ms i = entry.s_phases.(i) *. 1e3 in
  Printf.eprintf
    "olar-serve: slow request id=%d kind=%s status=%d domain=%d total=%.1fms \
     (parse=%.1f queue=%.1f dispatch=%.1f execute=%.1f deliver=%.1f \
     write=%.1f)\n\
     %!"
    entry.s_id entry.s_kind entry.s_status entry.s_domain
    (entry.s_total_s *. 1e3)
    (ms 0) (ms 1) (ms 2) (ms 3) (ms 4) (ms 5)

(* Emit one sampled per-request trace: six phase children (child-first)
   under an [http.request] root spanning the whole wire latency. The
   connection thread never touches the stack tracer — domain 0's stack
   belongs to the drainer — so the spans are injected prebuilt into the
   calling thread's shard. *)
let inject_request_trace t ticket ~status ~phases ~total_s =
  match Option.bind t.obs_ctx Obs.tracing with
  | None -> ()
  | Some sh ->
    let root = Olar_obs.Trace.Sharded.alloc_id sh in
    let start = ref ticket.t0 in
    Array.iteri
      (fun i name ->
        ignore
          (Olar_obs.Trace.Sharded.inject sh ~parent:root ~depth:1
             ~name:("phase." ^ name) ~start_s:!start ~duration_s:phases.(i) []);
        start := !start +. phases.(i))
      phase_names;
    ignore
      (Olar_obs.Trace.Sharded.inject sh ~id:root ~depth:0 ~name:"http.request"
         ~start_s:ticket.t0 ~duration_s:total_s
         [
           ("request", Olar_obs.Trace.Int ticket.id);
           ("kind", Olar_obs.Trace.Str (Record.kind_to_string ticket.key.Record.kind));
           ("status", Olar_obs.Trace.Int status);
           ("exec_domain", Olar_obs.Trace.Int ticket.exec_domain);
         ])

(* After the response bytes are out: close the books on one served
   query — write-phase histogram, sampled trace, slow-request log. *)
let finish_query t ticket ~status ~sampled ~phases ~write_s =
  let write_s = clamp0 write_s in
  phases.(5) <- write_s;
  Metrics.Histogram.observe t.h_phase.(5) write_s;
  let total_s = Array.fold_left ( +. ) 0.0 phases in
  if sampled then inject_request_trace t ticket ~status ~phases ~total_s;
  if total_s >= t.cfg.slow_s then
    push_slow t
      {
        s_id = ticket.id;
        s_kind = Record.kind_to_string ticket.key.Record.kind;
        s_status = status;
        s_domain = ticket.exec_domain;
        s_total_s = total_s;
        s_phases = phases;
        s_uptime_s = clamp0 (Timer.monotonic_s () -. t.started_s);
        s_exec_t0 = ticket.t_exec_start;
        s_exec_t1 = ticket.t_exec_done;
      }

(* ------------------------------------------------------------------ *)
(* /statusz                                                           *)
(* ------------------------------------------------------------------ *)

(* Phase-histogram summaries: a Jsonx-parseable view of the six
   olar_http_phase_seconds series, so tooling (the bench harness) can
   read phase latencies without parsing Prometheus text. *)
let phases_json t =
  let us x = Jsonx.Float (if Float.is_finite x then x *. 1e6 else 0.0) in
  Jsonx.Obj
    (Array.to_list
       (Array.mapi
          (fun i name ->
            let h = t.h_phase.(i) in
            ( name,
              Jsonx.Obj
                [
                  ("count", Jsonx.Int (Metrics.Histogram.count h));
                  ("sum_s", Jsonx.Float (Metrics.Histogram.sum h));
                  ("p50_us", us (Metrics.Histogram.quantile h 0.5));
                  ("p90_us", us (Metrics.Histogram.quantile h 0.9));
                  ("p99_us", us (Metrics.Histogram.quantile h 0.99));
                ] ))
          phase_names))

(* One windowed-histogram summary in the same shape as [phases_json]'s
   cumulative ones, plus the window's event rate. *)
let hist_window_json (w : Window.hist_window) =
  let us x = Jsonx.Float (if Float.is_finite x then x *. 1e6 else 0.0) in
  Jsonx.Obj
    [
      ("count", Jsonx.Int w.Window.count);
      ("rate", Jsonx.Float w.Window.rate);
      ("p50_us", us w.Window.p50);
      ("p90_us", us w.Window.p90);
      ("p99_us", us w.Window.p99);
    ]

(* The rolling view: per-second rates and windowed quantiles over the
   last window span, where everything above is process-cumulative. *)
let window_json t =
  Window.tick t.win;
  Jsonx.Obj
    [
      ("span_s", Jsonx.Float (Window.span_s t.win));
      ("covered_s", Jsonx.Float (Window.covered_s t.win));
      ("qps", Jsonx.Float (Window.counter_rate t.w_queries));
      ("queries", Jsonx.Int (Window.counter_delta t.w_queries));
      (* decided-to-completion in the window — what health grades
         against, where [queries] above is stamped at intake *)
      ("executed", Jsonx.Int (Window.histogram_window t.w_request).Window.count);
      ( "shed",
        Jsonx.Int
          (Window.counter_delta t.w_shed_queue
          + Window.counter_delta t.w_shed_deadline) );
      ("http_5xx", Jsonx.Int (Window.counter_delta t.w_5xx));
      ("request", hist_window_json (Window.histogram_window t.w_request));
      ( "phases",
        Jsonx.Obj
          (Array.to_list
             (Array.mapi
                (fun i name ->
                  (name, hist_window_json (Window.histogram_window t.w_phase.(i))))
                phase_names)) );
    ]

let gc_json t =
  match (t.runtime_obs, t.w_gc) with
  | Some ro, Some wg ->
    Jsonx.Obj
      [
        ("pauses", Jsonx.Int (Runtime_obs.pause_count ro));
        ("calibrated", Jsonx.Bool (Runtime_obs.calibrated ro));
        ("window", hist_window_json (Window.histogram_window wg));
      ]
  | _ -> Jsonx.Null

let health_json t =
  let state, reading = health_state t in
  Jsonx.Obj
    [
      ("state", Jsonx.Str (Health.state_name state));
      ( "reasons",
        Jsonx.Arr (List.map (fun r -> Jsonx.Str r) (Health.reasons state)) );
      ("window_s", Jsonx.Float reading.Health.window_s);
      ("queries", Jsonx.Int (Health.arrivals reading));
      ("executed", Jsonx.Int reading.Health.executed);
      ("shed", Jsonx.Int reading.Health.shed);
      ("http_5xx", Jsonx.Int reading.Health.errors_5xx);
      ( "exec_p99_ms",
        let p = reading.Health.exec_p99_s in
        if Float.is_finite p then Jsonx.Float (p *. 1e3) else Jsonx.Null );
    ]

(* [gc_pause_s] is the tainting verdict: the longest recorded GC pause
   overlapping this entry's execute window, resolved lazily at render
   time so pauses polled after the entry was pushed still count. *)
let slow_entry_json ?gc_pause_s e =
  Jsonx.Obj
    [
      ("id", Jsonx.Int e.s_id);
      ("kind", Jsonx.Str e.s_kind);
      ("status", Jsonx.Int e.s_status);
      ("domain", Jsonx.Int e.s_domain);
      ("total_ms", Jsonx.Float (e.s_total_s *. 1e3));
      ( "phases_ms",
        Jsonx.Obj
          (Array.to_list
             (Array.mapi
                (fun i name -> (name, Jsonx.Float (e.s_phases.(i) *. 1e3)))
                phase_names)) );
      ( "gc_pause_ms",
        match gc_pause_s with
        | Some s -> Jsonx.Float (s *. 1e3)
        | None -> Jsonx.Null );
      ("uptime_s", Jsonx.Float e.s_uptime_s);
    ]

let taint_slow t e =
  match t.runtime_obs with
  | None -> None
  | Some ro ->
    Runtime_obs.pause_overlapping ro ~t0:e.s_exec_t0 ~t1:e.s_exec_t1 ()

(* Snapshot the slow ring, newest first. *)
let slow_snapshot t =
  Mutex.lock t.slow_mu;
  let seen = t.slow_seen in
  let cap = Array.length t.slow_ring in
  let n = if cap = 0 then 0 else min seen cap in
  let entries =
    List.filter_map
      (fun k -> t.slow_ring.((seen - 1 - k) mod cap))
      (List.init n Fun.id)
  in
  Mutex.unlock t.slow_mu;
  (seen, entries)

let statusz_json t =
  let version =
    match Metrics.find t.registry "olar_build_info" with
    | Some { Metrics.labels; _ } -> (
      match List.assoc_opt "version" labels with
      | Some v -> v
      | None -> "unknown")
    | None -> "unknown"
  in
  let uptime = clamp0 (Timer.monotonic_s () -. t.started_s) in
  let pool_json =
    Jsonx.Arr
      (Array.to_list
         (Array.mapi
            (fun k (st : Pool.domain_stat) ->
              Jsonx.Obj
                [
                  ("domain", Jsonx.Int k);
                  ("requests", Jsonx.Int st.Pool.requests);
                  ("busy_s", Jsonx.Float st.Pool.busy_s);
                  ( "utilization",
                    Jsonx.Float
                      (if uptime > 0.0 then st.Pool.busy_s /. uptime else 0.0)
                  );
                ])
            (Pool.domain_stats t.pool)))
  in
  let dispatch_json =
    let h = Pool.dispatch_wait t.pool in
    let us x = Jsonx.Float (if Float.is_finite x then x *. 1e6 else 0.0) in
    Jsonx.Obj
      [
        ("count", Jsonx.Int (Metrics.Histogram.count h));
        ("sum_s", Jsonx.Float (Metrics.Histogram.sum h));
        ("p50_us", us (Metrics.Histogram.quantile h 0.5));
        ("p90_us", us (Metrics.Histogram.quantile h 0.9));
        ("p99_us", us (Metrics.Histogram.quantile h 0.99));
      ]
  in
  let shards_json =
    Jsonx.Arr
      (Array.to_list
         (Array.map (fun d -> Jsonx.Int d) (Pool.shard_depths t.pool)))
  in
  let seen, slow_entries = slow_snapshot t in
  Jsonx.Obj
    [
      ("version", Jsonx.Str version);
      ("uptime_s", Jsonx.Float uptime);
      ("domains", Jsonx.Int (Pool.domains t.pool));
      ( "queue",
        Jsonx.Obj
          [
            ( "depth",
              Jsonx.Int (int_of_float (Metrics.Gauge.value t.g_queue_depth)) );
            ( "peak",
              Jsonx.Int (int_of_float (Metrics.Gauge.value t.g_queue_peak)) );
            ("limit", Jsonx.Int t.cfg.queue_depth);
          ] );
      ( "counters",
        Jsonx.Obj
          [
            ("connections", Jsonx.Int (Counter.value t.c_conns));
            ("requests", Jsonx.Int (Counter.value t.c_requests));
            ("queries", Jsonx.Int (Counter.value t.c_queries));
            ("bad_requests", Jsonx.Int (Counter.value t.c_bad));
            ("shed_queue", Jsonx.Int (Counter.value t.c_shed_queue));
            ("shed_deadline", Jsonx.Int (Counter.value t.c_shed_deadline));
          ] );
      ("pool", pool_json);
      ("dispatch", dispatch_json);
      ("shards", shards_json);
      ("phases", phases_json t);
      ("window", window_json t);
      ("gc", gc_json t);
      ("health", health_json t);
      ( "slow",
        Jsonx.Obj
          [
            ( "threshold_ms",
              if Float.is_finite t.cfg.slow_s then
                Jsonx.Float (t.cfg.slow_s *. 1e3)
              else Jsonx.Null );
            ("capacity", Jsonx.Int (Array.length t.slow_ring));
            ("seen", Jsonx.Int seen);
            ( "entries",
              Jsonx.Arr
                (List.map
                   (fun e -> slow_entry_json ?gc_pause_s:(taint_slow t e) e)
                   slow_entries) );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

(* The ticket freelist. A retired ticket keeps its last key/req until
   the next reuse overwrite — bounded retention, capped below — in
   exchange for never allocating a mutex/condvar pair on the serving
   hot path. *)
let free_cap = 64

let acquire_ticket t ~rid ~key ~req ~t0 ~parse_s ~arrival ~deadline =
  Mutex.lock t.free_mu;
  let recycled =
    match t.free_tickets with
    | tk :: rest ->
      t.free_tickets <- rest;
      t.free_count <- t.free_count - 1;
      Some tk
    | [] -> None
  in
  Mutex.unlock t.free_mu;
  match recycled with
  | Some tk ->
    tk.id <- rid;
    tk.key <- key;
    tk.req <- req;
    tk.t0 <- t0;
    tk.parse_s <- parse_s;
    tk.arrival <- arrival;
    tk.deadline <- deadline;
    tk.outcome <- Pending;
    tk.t_claim <- arrival;
    tk.t_exec_start <- arrival;
    tk.t_exec_done <- arrival;
    tk.exec_domain <- -1;
    tk
  | None ->
    {
      id = rid;
      key;
      req;
      t0;
      parse_s;
      arrival;
      deadline;
      tmu = Mutex.create ();
      tcv = Condition.create ();
      outcome = Pending;
      t_claim = arrival;
      t_exec_start = arrival;
      t_exec_done = arrival;
      exec_domain = -1;
    }

(* Only after the connection thread is completely done with the ticket
   — the response is written and the phase books are closed — may it go
   back on the freelist; the pool side never touches a ticket after
   [resolve]. *)
let release_ticket t tk =
  Mutex.lock t.free_mu;
  if t.free_count < free_cap then begin
    t.free_tickets <- tk :: t.free_tickets;
    t.free_count <- t.free_count + 1
  end;
  Mutex.unlock t.free_mu

(* [handle_query] returns the response string plus an optional
   post-write hook: phase accounting can only complete once the write
   phase is measured, which happens on the connection thread after
   [send]. *)
let handle_query t ~rid ~t0 body =
  let fail e =
    Counter.incr t.c_bad;
    (error_response ~status:400 e, None)
  in
  match Record.key_of_json_line body with
  | Error e -> fail ("invalid query key: " ^ e)
  | Ok key -> (
    match Replay.request_of_record key with
    | Error e -> fail ("incomplete query key: " ^ e)
    | Ok req ->
      Counter.incr t.c_queries;
      let arrival = Timer.monotonic_s () in
      let sampled =
        t.cfg.trace_sample > 0
        && Option.bind t.obs_ctx Obs.tracing <> None
        && rid mod t.cfg.trace_sample = 0
      in
      let ticket =
        acquire_ticket t ~rid ~key ~req ~t0 ~parse_s:(arrival -. t0) ~arrival
          ~deadline:
            (if t.cfg.deadline_s > 0.0 then arrival +. t.cfg.deadline_s
             else infinity)
      in
      (match admit t ticket with
      | Error (status, msg) ->
        if status >= 500 then Counter.incr t.c_5xx;
        release_ticket t ticket;
        (error_response ~status msg, None)
      | Ok () -> (
        match await ticket with
        | Pending -> assert false
        | Shed (status, msg) ->
          (* shed before execution: no phase account to close *)
          if status >= 500 then Counter.incr t.c_5xx;
          release_ticket t ticket;
          (error_response ~status msg, None)
        | Served (resp, latency_s) ->
          let t_awake = Timer.monotonic_s () in
          Metrics.Histogram.observe t.h_request (clamp0 (t_awake -. arrival));
          let phases = phase_durations ticket ~t_awake in
          for i = 0 to 4 do
            Metrics.Histogram.observe t.h_phase.(i) phases.(i)
          done;
          let total_s = Array.fold_left ( +. ) 0.0 phases in
          let status, body =
            match resp with
            | Pool.R_error msg -> (422, error_response ~status:422 msg)
            | resp -> (200, ok_response resp ~id:rid ~latency_s ~total_s)
          in
          ( body,
            Some
              (fun write_s ->
                finish_query t ticket ~status ~sampled ~phases ~write_s;
                release_ticket t ticket) ))))

(* /healthz: the health engine's verdict as JSON. Degraded stays 200 —
   naive probes keep routing while the reasons are on display —
   unhealthy answers 503 so load balancers pull the instance. *)
let healthz t =
  let state, reading = health_state t in
  let body =
    Jsonx.to_string
      (Jsonx.Obj
         [
           ("state", Jsonx.Str (Health.state_name state));
           ( "reasons",
             Jsonx.Arr (List.map (fun r -> Jsonx.Str r) (Health.reasons state))
           );
           ("window_s", Jsonx.Float reading.Health.window_s);
           ("queries", Jsonx.Int (Health.arrivals reading));
           ("executed", Jsonx.Int reading.Health.executed);
           ("shed", Jsonx.Int reading.Health.shed);
         ])
    ^ "\n"
  in
  (Health.status_code state, json_headers, body)

(* The GET status/headers/body of each read-only endpoint, shared by
   HEAD (which renders the same status/headers with the body
   omitted). *)
let endpoint_get t target =
  match target with
  | "/metrics" ->
    Option.iter Obs.update_runtime_gauges t.obs_ctx;
    refresh_domain_gauges t;
    Some
      ( 200,
        [ ("content-type", "text/plain; version=0.0.4; charset=utf-8") ],
        Exposition.to_prometheus t.registry )
  | "/healthz" -> Some (healthz t)
  | "/statusz" ->
    Option.iter Obs.update_runtime_gauges t.obs_ctx;
    refresh_domain_gauges t;
    Some (200, json_headers, Jsonx.to_string (statusz_json t) ^ "\n")
  | _ -> None

let handle t (req : Http.request) ~rid ~t0 =
  let close =
    match Http.header req "connection" with
    | Some v -> String.lowercase_ascii (String.trim v) = "close"
    | None -> false
  in
  let resp, post =
    match (req.meth, req.target) with
    | "POST", "/query" -> handle_query t ~rid ~t0 req.body
    | ("GET" | "HEAD"), target -> (
      match endpoint_get t target with
      | Some (status, headers, body) ->
        ( Http.render_response ~headers ~head:(req.meth = "HEAD") ~status body,
          None )
      | None -> (error_response ~status:404 "no such endpoint", None))
    | "POST", _ -> (error_response ~status:404 "no such endpoint", None)
    | _ -> (error_response ~status:405 "method not allowed", None)
  in
  (resp, close, post)

(* ------------------------------------------------------------------ *)
(* Connection I/O                                                     *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

let conn_loop t fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let off = ref 0 in
  let closed = ref false in
  let send s = try write_all fd s with _ -> closed := true in
  (try
     while not !closed do
       (* serve every complete pipelined request already buffered *)
       let progress = ref true in
       while !progress && not !closed do
         (* parse-phase start for the request this attempt completes;
            earlier Incomplete attempts (partial reads) are not
            attributed — parse covers the final parse + key decode *)
         let pt0 = Timer.monotonic_s () in
         match
           Http.parse_request ~max_body:t.cfg.max_body_bytes
             (Buffer.contents buf) ~off:!off
         with
         | Http.Complete (req, used) ->
           off := !off + used;
           Counter.incr t.c_requests;
           let rid = Atomic.fetch_and_add t.req_seq 1 in
           let resp, close, post = handle t req ~rid ~t0:pt0 in
           let w0 = Timer.monotonic_s () in
           send resp;
           (match post with
           | None -> ()
           | Some finish -> finish (Timer.monotonic_s () -. w0));
           if close then closed := true
         | Http.Incomplete ->
           progress := false;
           if !off > 0 then begin
             (* compact the consumed prefix before reading more *)
             let rest = Buffer.sub buf !off (Buffer.length buf - !off) in
             Buffer.clear buf;
             Buffer.add_string buf rest;
             off := 0
           end
         | Http.Failed e ->
           Counter.incr t.c_bad;
           send
             (Http.render_response
                ~headers:(("connection", "close") :: json_headers)
                ~status:e.Http.status
                (Jsonx.to_string
                   (Jsonx.Obj
                      [
                        ("status", Jsonx.Str "bad_request");
                        ("error", Jsonx.Str e.Http.reason);
                      ])
                ^ "\n"));
           closed := true
       done;
       if not !closed then
         match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> closed := true
         | n -> Buffer.add_subbytes buf chunk 0 n
         | exception _ -> closed := true
     done
   with _ -> ());
  (try Unix.close fd with _ -> ())

(* Poll with a short select so shutdown can stop the loop: closing a
   socket does not wake a thread blocked in accept(2), so a blocking
   accept here would make [stop] hang. *)
let accept_loop t =
  let rec go () =
    if t.stopping then ()
    else
      let ready =
        match Unix.select [ t.lsock ] [] [] 0.05 with
        | r, _, _ -> r <> []
        | exception _ -> false
      in
      if t.stopping then ()
      else if not ready then go ()
      else
        match Unix.accept ~cloexec:true t.lsock with
        | exception _ -> if not t.stopping then go ()
        | fd, _addr ->
          Counter.incr t.c_conns;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
          let th = Thread.create (fun () -> conn_loop t fd) () in
          Mutex.lock t.conns_mu;
          t.conns <- (fd, th) :: t.conns;
          Mutex.unlock t.conns_mu;
          go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) ?domains ?budget_bytes engine =
  if config.slow_ring < 0 then
    invalid_arg "Server.create: slow_ring must be >= 0";
  if config.slo_p99_s < 0.0 || Float.is_nan config.slo_p99_s then
    invalid_arg "Server.create: slo_p99_s must be >= 0";
  (* a client hanging up mid-response must surface as EPIPE on the
     write, not kill the process *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let pool = Pool.create ?domains ?budget_bytes engine in
  let registry, obs_ctx =
    match Engine.obs engine with
    | Some ctx -> (Obs.metrics ctx, Some ctx)
    | None -> (Metrics.create (), None)
  in
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lsock config.backlog
   with e ->
     (try Unix.close lsock with _ -> ());
     Pool.shutdown pool;
     raise e);
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let rec_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.record
  in
  let counter name help = Metrics.counter registry ~help name in
  let c_conns = counter "olar_http_connections_total" "TCP connections accepted" in
  let c_requests = counter "olar_http_requests_total" "HTTP requests parsed" in
  let c_queries = counter "olar_http_queries_total" "well-formed /query requests" in
  let c_bad =
    counter "olar_http_bad_requests_total"
      "malformed requests answered 400/413/431/501"
  in
  let c_shed_queue =
    counter "olar_http_shed_queue_total"
      "queries shed with 429 (admission queue full)"
  in
  let c_shed_deadline =
    counter "olar_http_shed_deadline_total"
      "queries shed with 503 (deadline passed while queued)"
  in
  let c_5xx =
    counter "olar_http_5xx_total" "responses answered with a 5xx status"
  in
  let h_request =
    Metrics.histogram registry
      ~help:"end-to-end /query latency (admission to response build)"
      "olar_http_request_seconds"
  in
  let h_phase =
    Array.map
      (fun phase ->
        Metrics.histogram registry ~help:"per-phase /query latency attribution"
          ~labels:[ ("phase", phase) ]
          "olar_http_phase_seconds")
      phase_names
  in
  (* The eventring consumer rides the obs gate: a bare test server
     (no --metrics/--trace) pays nothing for GC attribution. Start
     failure (an exotic runtime without eventring support) degrades to
     the unattributed server rather than refusing to serve. *)
  let runtime_obs =
    match obs_ctx with
    | None -> None
    | Some _ -> (
      try
        Some (Runtime_obs.start ~metrics:registry ~clock:Timer.monotonic_s ())
      with _ -> None)
  in
  (* 60 one-second buckets over the same monotonic clock the tickets
     are stamped with. *)
  let win = Window.create ~clock:Timer.monotonic_s () in
  let t =
    {
      cfg = config;
      pool;
      lsock;
      bound_port;
      registry;
      obs_ctx;
      c_conns;
      c_requests;
      c_queries;
      c_bad;
      c_shed_queue;
      c_shed_deadline;
      c_5xx;
      g_queue_depth =
        Metrics.gauge registry ~help:"admission queue depth at last change"
          "olar_http_queue_depth";
      g_queue_peak =
        Metrics.gauge registry ~help:"peak admission queue depth"
          "olar_http_queue_depth_peak";
      g_health =
        Metrics.gauge registry
          ~help:"health engine verdict: 0 ok, 1 degraded, 2 unhealthy"
          "olar_health_state";
      h_request;
      h_phase;
      win;
      w_queries = Window.track_counter win c_queries;
      w_shed_queue = Window.track_counter win c_shed_queue;
      w_shed_deadline = Window.track_counter win c_shed_deadline;
      w_5xx = Window.track_counter win c_5xx;
      w_request = Window.track_histogram win h_request;
      w_phase = Array.map (Window.track_histogram win) h_phase;
      w_gc =
        Option.map
          (fun ro -> Window.track_histogram win (Runtime_obs.pauses ro))
          runtime_obs;
      thresholds =
        Health.with_slo_p99 Health.default_thresholds ~slo_s:config.slo_p99_s;
      runtime_obs;
      req_seq = Atomic.make 0;
      started_s = Timer.monotonic_s ();
      slow_mu = Mutex.create ();
      slow_ring = Array.make config.slow_ring None;
      slow_seen = 0;
      last_sample_s = neg_infinity;
      qmu = Mutex.create ();
      qcv = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      stopped = false;
      rec_oc;
      rec_mu = Mutex.create ();
      rec_seq = 0;
      free_mu = Mutex.create ();
      free_tickets = [];
      free_count = 0;
      accept_thread = None;
      drainer_thread = None;
      ticker_thread = None;
      conns_mu = Mutex.create ();
      conns = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.drainer_thread <- Some (Thread.create drainer_loop t);
  t.ticker_thread <- Some (Thread.create ticker_loop t);
  t

let port t = t.bound_port
let url t = Printf.sprintf "http://%s:%d" t.cfg.host t.bound_port
let pool t = t.pool

let stop t =
  Mutex.lock t.qmu;
  if t.stopped then Mutex.unlock t.qmu
  else begin
    t.stopped <- true;
    t.stopping <- true;
    (* wake the drainer so it drains the remaining queue and exits *)
    Condition.broadcast t.qcv;
    Mutex.unlock t.qmu;
    (* the accept loop notices [stopping] within one select tick; only
       close the listener after it exits so the fd cannot be reused
       under a racing accept *)
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.lsock with _ -> ());
    (* every already-admitted query is served before the drainer exits *)
    Option.iter Thread.join t.drainer_thread;
    (* the ticker notices [stopping] within one 50ms delay *)
    Option.iter Thread.join t.ticker_thread;
    Option.iter Runtime_obs.stop t.runtime_obs;
    (* unblock idle keep-alive readers; in-flight responses still go
       out because only the receive side is shut down *)
    Mutex.lock t.conns_mu;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_mu;
    List.iter
      (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    Option.iter close_out_noerr t.rec_oc;
    Pool.shutdown t.pool;
    (* every producer thread is joined: merge whatever spans are still
       buffered so a trace file is complete when [stop] returns *)
    Option.iter Obs.flush t.obs_ctx
  end

let with_server ?config ?domains ?budget_bytes engine f =
  let t = create ?config ?domains ?budget_bytes engine in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
