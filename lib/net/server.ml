open Olar_data
module Pool = Olar_serve.Pool
module Record = Olar_replay.Record
module Replay = Olar_replay.Replay
module Fnv = Olar_replay.Fnv
module Jsonx = Olar_obs.Jsonx
module Metrics = Olar_obs.Metrics
module Exposition = Olar_obs.Exposition
module Obs = Olar_obs.Obs
module Engine = Olar_core.Engine
module Rule = Olar_core.Rule
module Timer = Olar_util.Timer
module Counter = Timer.Counter

type config = {
  host : string;
  port : int;
  backlog : int;
  queue_depth : int;
  deadline_s : float;
  max_body_bytes : int;
  record : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    queue_depth = 256;
    deadline_s = 0.0;
    max_body_bytes = 4 * 1024 * 1024;
    record = None;
  }

(* One admitted query. The connection thread parks on [cv] until the
   drainer (deadline drop) or a pool domain (completion) writes the
   outcome. *)
type outcome =
  | Pending
  | Served of Pool.response * float
  | Shed of int * string  (* HTTP status, message *)

type ticket = {
  key : Record.t;
  req : Pool.request;
  arrival : float;
  deadline : float;  (* [infinity] when deadlines are off *)
  tmu : Mutex.t;
  tcv : Condition.t;
  mutable outcome : outcome;
}

type t = {
  cfg : config;
  pool : Pool.t;
  lsock : Unix.file_descr;
  bound_port : int;
  registry : Metrics.t;
  obs_ctx : Obs.ctx option;
  (* instruments *)
  c_conns : Counter.t;
  c_requests : Counter.t;
  c_queries : Counter.t;
  c_bad : Counter.t;
  c_shed_queue : Counter.t;
  c_shed_deadline : Counter.t;
  g_queue_depth : Metrics.Gauge.t;
  g_queue_peak : Metrics.Gauge.t;
  h_request : Metrics.Histogram.t;
  (* admission queue *)
  qmu : Mutex.t;
  qcv : Condition.t;
  queue : ticket Queue.t;
  mutable stopping : bool;
  mutable stopped : bool;
  (* capture *)
  rec_oc : out_channel option;
  rec_mu : Mutex.t;
  mutable rec_seq : int;
  (* threads *)
  mutable accept_thread : Thread.t option;
  mutable drainer_thread : Thread.t option;
  conns_mu : Mutex.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
}

(* ------------------------------------------------------------------ *)
(* Response payloads                                                  *)
(* ------------------------------------------------------------------ *)

let itemset_json x =
  Jsonx.Arr (List.map (fun i -> Jsonx.Int i) (Itemset.to_list x))

(* Mirrors {!Olar_replay.Recorder}'s result_size per kind, so captured
   records look exactly like CLI --record ones. *)
let result_size = function
  | Pool.R_items entries -> Array.length entries
  | Pool.R_count c -> c
  | Pool.R_rules rules -> List.length rules
  | Pool.R_level (Some _) -> 1
  | Pool.R_level None -> 0
  | Pool.R_entries entries -> List.length entries
  | Pool.R_promoted { promoted; _ } -> List.length promoted
  | Pool.R_error _ -> 0

let result_fields = function
  | Pool.R_items entries ->
    [
      ( "items",
        Jsonx.Arr
          (Array.to_list entries
          |> List.map (fun (x, c) ->
                 Jsonx.Obj
                   [ ("itemset", itemset_json x); ("count", Jsonx.Int c) ])) );
    ]
  | Pool.R_count c -> [ ("count", Jsonx.Int c) ]
  | Pool.R_rules rules ->
    [
      ( "rules",
        Jsonx.Arr
          (List.map
             (fun (r : Rule.t) ->
               Jsonx.Obj
                 [
                   ("antecedent", itemset_json r.antecedent);
                   ("consequent", itemset_json r.consequent);
                   ("support_count", Jsonx.Int r.support_count);
                   ("antecedent_count", Jsonx.Int r.antecedent_count);
                 ])
             rules) );
    ]
  | Pool.R_level level ->
    [
      ( "level",
        match level with Some f -> Jsonx.Float f | None -> Jsonx.Null );
    ]
  | Pool.R_entries entries ->
    [
      ( "entries",
        Jsonx.Arr
          (List.map
             (fun (x, s) ->
               Jsonx.Obj
                 [ ("itemset", itemset_json x); ("support", Jsonx.Float s) ])
             entries) );
    ]
  | Pool.R_promoted { promoted; db_size } ->
    [
      ("promoted", Jsonx.Arr (List.map itemset_json promoted));
      ("db_size", Jsonx.Int db_size);
    ]
  | Pool.R_error _ -> []

let json_headers = [ ("content-type", "application/json") ]

let json_response ?(headers = json_headers) ~status fields =
  Http.render_response ~headers ~status
    (Jsonx.to_string (Jsonx.Obj fields) ^ "\n")

let error_response ~status msg =
  json_response ~status
    [
      ( "status",
        Jsonx.Str
          (match status with
          | 429 | 503 -> "shed"
          | 404 -> "not_found"
          | 422 -> "error"
          | _ -> "bad_request") );
      ("error", Jsonx.Str msg);
    ]

let ok_response resp ~latency_s =
  let digest =
    match Replay.digest_response resp with
    | Some d -> d
    | None -> Fnv.empty (* unreachable: R_error never takes this path *)
  in
  json_response ~status:200
    ([
       ("status", Jsonx.Str "ok");
       ("digest", Jsonx.Str (Fnv.to_hex digest));
       ("size", Jsonx.Int (result_size resp));
       ("lat_s", Jsonx.Float latency_s);
     ]
    @ result_fields resp)

(* ------------------------------------------------------------------ *)
(* Admission and the drainer                                          *)
(* ------------------------------------------------------------------ *)

let resolve ticket outcome =
  Mutex.lock ticket.tmu;
  ticket.outcome <- outcome;
  Condition.signal ticket.tcv;
  Mutex.unlock ticket.tmu

let await ticket =
  Mutex.lock ticket.tmu;
  while ticket.outcome = Pending do
    Condition.wait ticket.tcv ticket.tmu
  done;
  let o = ticket.outcome in
  Mutex.unlock ticket.tmu;
  o

(* Admit under the queue bound. 429 at capacity, 503 once shutdown has
   begun; on success the drainer is signalled. *)
let admit t ticket =
  Mutex.lock t.qmu;
  let verdict =
    if t.stopping then Error (503, "server is shutting down")
    else if Queue.length t.queue >= t.cfg.queue_depth then begin
      Counter.incr t.c_shed_queue;
      Error (429, "queue full")
    end
    else begin
      Queue.add ticket t.queue;
      let depth = Queue.length t.queue in
      Metrics.Gauge.set_int t.g_queue_depth depth;
      if float_of_int depth > Metrics.Gauge.value t.g_queue_peak then
        Metrics.Gauge.set_int t.g_queue_peak depth;
      Condition.signal t.qcv;
      Ok ()
    end
  in
  Mutex.unlock t.qmu;
  verdict

(* Append captured records for one completed round, in submission
   order. Mirrors Recorder: a query that errored emits nothing and
   does not advance the sequence. *)
let record_round t tickets out =
  match t.rec_oc with
  | None -> ()
  | Some oc ->
    Mutex.lock t.rec_mu;
    let epoch = Engine.epoch (Pool.engine t.pool) in
    Array.iteri
      (fun i (ticket : ticket) ->
        let resp, latency_s = out.(i) in
        match Replay.digest_response resp with
        | None -> ()
        | Some digest ->
          let r =
            {
              ticket.key with
              Record.seq = t.rec_seq;
              cache = Record.Passthrough;
              digest;
              result_size = result_size resp;
              latency_s;
              vertices = 0;
              heap_pops = 0;
              epoch;
            }
          in
          t.rec_seq <- t.rec_seq + 1;
          output_string oc (Record.to_json_line r);
          output_char oc '\n')
      tickets;
    flush oc;
    Mutex.unlock t.rec_mu

(* One drainer round: claim everything queued, drop what already
   missed its deadline (the 503 shed — no query work is spent on a
   request nobody is waiting for), and run the rest as one coalesced
   pool batch. Per-completion delivery unblocks each connection thread
   the moment its own answer exists instead of at the batch tail. *)
let serve_round t tickets =
  let now = Timer.monotonic_s () in
  let live =
    Array.of_list
      (List.filter
         (fun ticket ->
           if now > ticket.deadline then begin
             Counter.incr t.c_shed_deadline;
             resolve ticket (Shed (503, "deadline exceeded"));
             false
           end
           else true)
         (Array.to_list tickets))
  in
  if Array.length live > 0 then begin
    let reqs = Array.map (fun ticket -> ticket.req) live in
    let out =
      Pool.run_deliver t.pool
        ~on_complete:(fun i (resp, dt) -> resolve live.(i) (Served (resp, dt)))
        reqs
    in
    record_round t live out
  end

let drainer_loop t =
  let rec go () =
    Mutex.lock t.qmu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qcv t.qmu
    done;
    if Queue.is_empty t.queue then
      (* stopping with nothing left: the queue is drained, exit *)
      Mutex.unlock t.qmu
    else begin
      let n = Queue.length t.queue in
      let tickets = Array.init n (fun _ -> Queue.pop t.queue) in
      Metrics.Gauge.set_int t.g_queue_depth 0;
      Mutex.unlock t.qmu;
      serve_round t tickets;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let handle_query t body =
  match Record.key_of_json_line body with
  | Error e ->
    Counter.incr t.c_bad;
    error_response ~status:400 ("invalid query key: " ^ e)
  | Ok key -> (
    match Replay.request_of_record key with
    | Error e ->
      Counter.incr t.c_bad;
      error_response ~status:400 ("incomplete query key: " ^ e)
    | Ok req ->
      Counter.incr t.c_queries;
      let arrival = Timer.monotonic_s () in
      let ticket =
        {
          key;
          req;
          arrival;
          deadline =
            (if t.cfg.deadline_s > 0.0 then arrival +. t.cfg.deadline_s
             else infinity);
          tmu = Mutex.create ();
          tcv = Condition.create ();
          outcome = Pending;
        }
      in
      (match admit t ticket with
      | Error (status, msg) -> error_response ~status msg
      | Ok () -> (
        match await ticket with
        | Pending -> assert false
        | Shed (status, msg) -> error_response ~status msg
        | Served (Pool.R_error msg, _) -> error_response ~status:422 msg
        | Served (resp, latency_s) ->
          Metrics.Histogram.observe t.h_request
            (Float.max 0.0 (Timer.monotonic_s () -. arrival));
          ok_response resp ~latency_s)))

let handle t (req : Http.request) =
  let close =
    match Http.header req "connection" with
    | Some v -> String.lowercase_ascii (String.trim v) = "close"
    | None -> false
  in
  let resp =
    match (req.meth, req.target) with
    | "POST", "/query" -> handle_query t req.body
    | "GET", "/metrics" ->
      Option.iter Obs.update_runtime_gauges t.obs_ctx;
      Http.render_response
        ~headers:
          [ ("content-type", "text/plain; version=0.0.4; charset=utf-8") ]
        ~status:200
        (Exposition.to_prometheus t.registry)
    | "GET", "/healthz" ->
      Http.render_response
        ~headers:[ ("content-type", "text/plain") ]
        ~status:200 "ok\n"
    | ("GET" | "POST" | "HEAD"), _ -> error_response ~status:404 "no such endpoint"
    | _ -> error_response ~status:405 "method not allowed"
  in
  (resp, close)

(* ------------------------------------------------------------------ *)
(* Connection I/O                                                     *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

let conn_loop t fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let off = ref 0 in
  let closed = ref false in
  let send s = try write_all fd s with _ -> closed := true in
  (try
     while not !closed do
       (* serve every complete pipelined request already buffered *)
       let progress = ref true in
       while !progress && not !closed do
         match
           Http.parse_request ~max_body:t.cfg.max_body_bytes
             (Buffer.contents buf) ~off:!off
         with
         | Http.Complete (req, used) ->
           off := !off + used;
           Counter.incr t.c_requests;
           let resp, close = handle t req in
           send resp;
           if close then closed := true
         | Http.Incomplete ->
           progress := false;
           if !off > 0 then begin
             (* compact the consumed prefix before reading more *)
             let rest = Buffer.sub buf !off (Buffer.length buf - !off) in
             Buffer.clear buf;
             Buffer.add_string buf rest;
             off := 0
           end
         | Http.Failed e ->
           Counter.incr t.c_bad;
           send
             (Http.render_response
                ~headers:(("connection", "close") :: json_headers)
                ~status:e.Http.status
                (Jsonx.to_string
                   (Jsonx.Obj
                      [
                        ("status", Jsonx.Str "bad_request");
                        ("error", Jsonx.Str e.Http.reason);
                      ])
                ^ "\n"));
           closed := true
       done;
       if not !closed then
         match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> closed := true
         | n -> Buffer.add_subbytes buf chunk 0 n
         | exception _ -> closed := true
     done
   with _ -> ());
  (try Unix.close fd with _ -> ())

(* Poll with a short select so shutdown can stop the loop: closing a
   socket does not wake a thread blocked in accept(2), so a blocking
   accept here would make [stop] hang. *)
let accept_loop t =
  let rec go () =
    if t.stopping then ()
    else
      let ready =
        match Unix.select [ t.lsock ] [] [] 0.05 with
        | r, _, _ -> r <> []
        | exception _ -> false
      in
      if t.stopping then ()
      else if not ready then go ()
      else
        match Unix.accept ~cloexec:true t.lsock with
        | exception _ -> if not t.stopping then go ()
        | fd, _addr ->
          Counter.incr t.c_conns;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
          let th = Thread.create (fun () -> conn_loop t fd) () in
          Mutex.lock t.conns_mu;
          t.conns <- (fd, th) :: t.conns;
          Mutex.unlock t.conns_mu;
          go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) ?domains ?budget_bytes engine =
  (* a client hanging up mid-response must surface as EPIPE on the
     write, not kill the process *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let pool = Pool.create ?domains ?budget_bytes engine in
  let registry, obs_ctx =
    match Engine.obs engine with
    | Some ctx -> (Obs.metrics ctx, Some ctx)
    | None -> (Metrics.create (), None)
  in
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lsock config.backlog
   with e ->
     (try Unix.close lsock with _ -> ());
     Pool.shutdown pool;
     raise e);
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let rec_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.record
  in
  let counter name help = Metrics.counter registry ~help name in
  let t =
    {
      cfg = config;
      pool;
      lsock;
      bound_port;
      registry;
      obs_ctx;
      c_conns =
        counter "olar_http_connections_total" "TCP connections accepted";
      c_requests = counter "olar_http_requests_total" "HTTP requests parsed";
      c_queries =
        counter "olar_http_queries_total" "well-formed /query requests";
      c_bad =
        counter "olar_http_bad_requests_total"
          "malformed requests answered 400/413/431/501";
      c_shed_queue =
        counter "olar_http_shed_queue_total"
          "queries shed with 429 (admission queue full)";
      c_shed_deadline =
        counter "olar_http_shed_deadline_total"
          "queries shed with 503 (deadline passed while queued)";
      g_queue_depth =
        Metrics.gauge registry ~help:"admission queue depth at last change"
          "olar_http_queue_depth";
      g_queue_peak =
        Metrics.gauge registry ~help:"peak admission queue depth"
          "olar_http_queue_depth_peak";
      h_request =
        Metrics.histogram registry
          ~help:"end-to-end /query latency (admission to response build)"
          "olar_http_request_seconds";
      qmu = Mutex.create ();
      qcv = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      stopped = false;
      rec_oc;
      rec_mu = Mutex.create ();
      rec_seq = 0;
      accept_thread = None;
      drainer_thread = None;
      conns_mu = Mutex.create ();
      conns = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.drainer_thread <- Some (Thread.create drainer_loop t);
  t

let port t = t.bound_port
let url t = Printf.sprintf "http://%s:%d" t.cfg.host t.bound_port
let pool t = t.pool

let stop t =
  Mutex.lock t.qmu;
  if t.stopped then Mutex.unlock t.qmu
  else begin
    t.stopped <- true;
    t.stopping <- true;
    (* wake the drainer so it drains the remaining queue and exits *)
    Condition.broadcast t.qcv;
    Mutex.unlock t.qmu;
    (* the accept loop notices [stopping] within one select tick; only
       close the listener after it exits so the fd cannot be reused
       under a racing accept *)
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.lsock with _ -> ());
    (* every already-admitted query is served before the drainer exits *)
    Option.iter Thread.join t.drainer_thread;
    (* unblock idle keep-alive readers; in-flight responses still go
       out because only the receive side is shut down *)
    Mutex.lock t.conns_mu;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_mu;
    List.iter
      (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    Option.iter close_out_noerr t.rec_oc;
    Pool.shutdown t.pool
  end

let with_server ?config ?domains ?budget_bytes engine f =
  let t = create ?config ?domains ?budget_bytes engine in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
