(** Minimal blocking HTTP/1.1 client for olar's own endpoints.

    Just enough client to let [olar top], the health smoke bench and
    tests poll a running daemon's [/statusz]-family endpoints without
    an external HTTP dependency: one request per call over a fresh
    connection, [Content-Length] bodies only (which is all the server
    emits), no TLS, no redirects. *)

(** [parse_url url] splits ["http://host:port/path"] into
    [(host, port, path)]. The scheme is optional; the port defaults to
    80; the path defaults to ["/"]. *)
val parse_url : string -> (string * int * string, string) result

(** [get ~url path] issues [GET path] against the host/port of [url]
    (any path inside [url] itself is ignored) and returns
    [(status, body)]. [timeout_s] bounds connect and each read
    (default 5s). Errors — refused connection, timeout, malformed
    response — come back as [Error message], never an exception. *)
val get : ?timeout_s:float -> url:string -> string -> (int * string, string) result

(** [post ~url path body] likewise, with a request body. *)
val post :
  ?timeout_s:float -> url:string -> string -> string -> (int * string, string) result
