(** Minimal blocking HTTP/1.1 client for olar's own endpoints.

    Just enough client to let [olar top], the health smoke bench and
    tests poll a running daemon's [/statusz]-family endpoints without
    an external HTTP dependency: one request per call over a fresh
    connection, [Content-Length] bodies only (which is all the server
    emits), no TLS, no redirects. *)

(** [parse_url url] splits ["http://host:port/path"] into
    [(host, port, path)]. The scheme is optional; the port defaults to
    80; the path defaults to ["/"]. *)
val parse_url : string -> (string * int * string, string) result

(** {1 Wire-level helpers}

    The send/receive halves of {!get}/{!post}, exposed so the loopback
    tests can drive them against raw sockets (tiny [SO_SNDBUF],
    half-closed peers) without a server in the way. *)

(** [write_all fd s] writes all of [s], looping over short writes and
    retrying [EINTR]. A send timeout ([SO_SNDTIMEO] expiring as
    [EAGAIN]/[EWOULDBLOCK]) raises [Failure "send timeout"] — which
    {!get}/{!post} surface as [Error "send timeout"]. *)
val write_all : Unix.file_descr -> string -> unit

(** [read_response fd] reads one HTTP/1.1 response: headers, then
    [Content-Length] bytes of body (or to EOF without the header).
    A peer that closes before [Content-Length] bytes arrive yields
    [Error "truncated body (got N of M bytes)"], never a silently
    short [Ok]. [EINTR] is retried; a receive timeout raises
    [Failure "receive timeout"]. *)
val read_response : Unix.file_descr -> (int * string, string) result

(** [get ~url path] issues [GET path] against the host/port of [url]
    (any path inside [url] itself is ignored) and returns
    [(status, body)]. [timeout_s] bounds connect and each read
    (default 5s). Errors — refused connection, timeout, malformed
    response — come back as [Error message], never an exception. *)
val get : ?timeout_s:float -> url:string -> string -> (int * string, string) result

(** [post ~url path body] likewise, with a request body. *)
val post :
  ?timeout_s:float -> url:string -> string -> string -> (int * string, string) result
