(** The serving daemon: HTTP/1.1 front-end over {!Olar_serve.Pool}.

    The ROADMAP's online half is a long-lived process answering
    interactive mining queries; this module is its network front door.
    One listening TCP socket, one lightweight thread per accepted
    connection, one {b bounded admission queue} in the middle, and one
    {b drainer} thread behind it that streams each admitted request
    into the pool via {!Olar_serve.Pool.submit} — continuous per-domain
    dispatch, no batch materialization between admission and execution.
    Systhreads carry the blocking socket I/O (a blocked read releases
    the domain lock); the domains do the query work. Ticket records
    (one per in-flight query, carrying its mutex/condvar pair) are
    pooled and reused, so the steady-state serving path allocates no
    synchronization objects.

    {2 Endpoints}

    - [POST /query] — body is an {!Olar_replay.Record} query key
      ({!Olar_replay.Record.key_of_json_line}); the response is a JSON
      object carrying the result, its FNV-1a digest (hex), result size
      and service latency. A query whose execution fails (e.g. below
      the primary threshold) answers 422 with the error text — the same
      text the pool's [R_error] carries, so wire answers stay
      digest-comparable with serial runs.
    - [GET /metrics] — Prometheus text exposition of the engine's
      metrics registry (plus the server's own [olar_http_*] series,
      including the six [olar_http_phase_seconds{phase="..."}]
      histograms, the pool's dispatch-wait histogram
      [olar_pool_dispatch_wait_seconds], per-domain
      [olar_pool_domain_busy_seconds]/[olar_pool_domain_requests]
      gauges and per-shard [olar_pool_shard_depth{shard="..."}] depth
      gauges). When the engine has an obs context, an
      {!Olar_obs.Runtime_obs} eventring consumer additionally exports
      per-domain GC pause histograms
      [olar_gc_pause_seconds{domain="..."}] and collection counters
      [olar_gc_minor_total]/[olar_gc_major_total], polled by a
      dedicated systhread that doubles as the idle-time heartbeat for
      the sliding windows and sampled gauges.
    - [GET /healthz] — the {!Health} engine's verdict over the last
      minute of sliding-window telemetry, as JSON
      ([{"state":..,"reasons":[..],..}]): [200] with state ["ok"] or
      ["degraded"] (reasons listed, e.g. a shed rate over 1%), [503]
      with state ["unhealthy"] once a check crosses its hard limit —
      so load balancers pull the instance while operators read why.
      The same verdict is exported as the [olar_health_state] gauge
      (0/1/2).
    - [GET /statusz] — JSON debug state: build version, uptime, queue
      depth/peak/limit, request counters, per-domain utilization, a
      dispatch-wait histogram summary, per-shard submission-queue
      depths, the six phase-histogram summaries, a ["window"] section
      (per-second qps/shed/5xx rates and rolling p50/p90/p99 per phase
      over the last 60 s, from {!Olar_obs.Window}), a ["gc"] section
      (eventring pause count, clock-calibration state, windowed pause
      quantiles), a ["health"] section mirroring /healthz, and the
      last N requests over the [slow_s] threshold (a bounded ring,
      newest first) — each slow entry carrying [gc_pause_ms], the
      longest recorded GC pause overlapping its execute window ([null]
      when none did).
    - [HEAD] on any of the three read-only endpoints answers with the
      GET status and headers (including the GET body's
      [Content-Length]) and an empty body.

    {2 Request identity and phase attribution}

    Every parsed HTTP request gets a server-global id. For served
    queries the response carries it ([id]) and the wire latency splits
    into six phases — parse, queue, dispatch, execute, deliver, write —
    observed into labelled histograms; [total_s] in the response is the
    sum of the first five (the write phase cannot be inside the body
    that reports it). With [trace_sample = N] and tracing enabled,
    every Nth request additionally emits an [http.request] span with
    six [phase.*] children into the engine's trace sink, tagged with
    the request id, kind, HTTP status and executing domain.

    {2 Load shedding}

    Admission is refused with {b 429} when the queue holds
    [queue_depth] requests (the flood simply never reaches the pool:
    memory stays bounded by [queue_depth], not by offered load). A
    request that waited in the queue past its deadline
    ([deadline_s] after arrival) is dropped by the drainer with
    {b 503} before any query work is spent on it. Both sheds are
    counted ([olar_http_shed_queue_total],
    [olar_http_shed_deadline_total]).

    {2 Capture}

    With [record] set, every successfully served query appends one
    {!Olar_replay.Record} line to the file — the same jsonl the
    [--record] CLI flag writes — so production traffic replays through
    [olar replay] against the pre-serving lattice. Captured seq numbers
    are server-global in completion order (which, for a single
    sequential client, is submission order — the case replay verifies
    digest-exactly); queries that shed or
    error are not recorded (mirroring {!Olar_replay.Recorder}, which
    emits nothing for a query that raises).

    {2 Shutdown}

    {!stop} is graceful: the listening socket closes first (no new
    connections), new admissions are refused with 503, the drainer
    {b drains every already-admitted request} and their responses are
    written, then connections are closed and all threads joined. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] binds an ephemeral port — read it back with {!port} *)
  backlog : int;  (** listen backlog, default 64 *)
  queue_depth : int;
      (** admission-queue bound; at capacity new queries shed with 429 *)
  deadline_s : float;
      (** per-request deadline from arrival; [0.] disables (default) *)
  max_body_bytes : int;  (** request-body cap, default 4 MiB *)
  record : string option;  (** append served queries to this jsonl file *)
  trace_sample : int;
      (** emit a per-request trace for every Nth query (request ids
          divisible by N); [0] disables sampling (default). Only
          effective when the engine's obs context has tracing on. *)
  slow_s : float;
      (** log requests whose wire total reaches this many seconds to
          stderr and the /statusz ring ([>=], the {!Olar_replay.Recorder}
          slow-query convention — [0.] logs everything); [infinity]
          disables (default) *)
  slow_ring : int;
      (** capacity of the /statusz slow-request ring (default 64);
          [0] disables the ring while keeping the stderr log and the
          over-threshold count *)
  slo_p99_s : float;
      (** latency SLO for the health engine: the windowed execute-phase
          p99 crossing this marks the server degraded, crossing four
          times it marks it unhealthy; [0.] disables the latency check
          (default) *)
}

val default_config : config

type t

(** [create engine] binds, listens, and starts serving in background
    threads; returns once the socket is live (so {!port} is valid
    immediately). [domains]/[budget_bytes] size the underlying
    {!Olar_serve.Pool} (the pool is owned — {!stop} shuts it down).
    Raises [Invalid_argument] as {!Olar_serve.Pool.create} does, and
    [Unix.Unix_error] if the bind fails. *)
val create :
  ?config:config -> ?domains:int -> ?budget_bytes:int -> Olar_core.Engine.t -> t

(** [port t] is the bound TCP port (the actual one when [config.port]
    was [0]). *)
val port : t -> int

(** [url t] is ["http://host:port"]. *)
val url : t -> string

val pool : t -> Olar_serve.Pool.t

(** [stop t] performs the graceful shutdown described above. Idempotent;
    blocks until every thread is joined and the record file (if any) is
    closed. *)
val stop : t -> unit

(** [with_server engine f] is [f server] with a guaranteed {!stop}. *)
val with_server :
  ?config:config ->
  ?domains:int ->
  ?budget_bytes:int ->
  Olar_core.Engine.t ->
  (t -> 'a) ->
  'a
