type limits = {
  degraded : float;
  unhealthy : float;
}

type thresholds = {
  shed_rate : limits;
  error_rate : limits;
  p99_s : limits;
  min_events : int;
}

let default_thresholds =
  {
    shed_rate = { degraded = 0.01; unhealthy = 0.25 };
    error_rate = { degraded = 0.01; unhealthy = 0.25 };
    p99_s = { degraded = infinity; unhealthy = infinity };
    min_events = 20;
  }

let with_slo_p99 t ~slo_s =
  if slo_s > 0.0 then
    { t with p99_s = { degraded = slo_s; unhealthy = 4.0 *. slo_s } }
  else t

type reading = {
  window_s : float;
  queries : int;
  shed : int;
  errors_5xx : int;
  exec_p99_s : float;
}

type state =
  | Ok
  | Degraded of string list
  | Unhealthy of string list

(* A measured value only trips a limit when the limit is a real number:
   [nan] and [infinity] both read as "check disabled", and a [nan]
   value (empty windowed histogram) trips nothing. *)
let over value limit = Float.is_finite limit && value > limit

(* Grade one check against its two limits; worst verdict wins overall.
   Reason strings are stable prefixes ("shed_rate ...") so tests and
   operators can match on them without parsing numbers. *)
let check name value fmt limits (degraded, unhealthy) =
  if over value limits.unhealthy then
    ( degraded,
      Printf.sprintf "%s %s > %s" name (fmt value) (fmt limits.unhealthy)
      :: unhealthy )
  else if over value limits.degraded then
    ( Printf.sprintf "%s %s > %s" name (fmt value) (fmt limits.degraded)
      :: degraded,
      unhealthy )
  else (degraded, unhealthy)

let evaluate t r =
  if r.queries < t.min_events then Ok
  else begin
    let rate n = float_of_int n /. float_of_int (max 1 r.queries) in
    let pct v = Printf.sprintf "%.1f%%" (v *. 100.0) in
    let ms v = Printf.sprintf "%.1fms" (v *. 1e3) in
    let acc = ([], []) in
    let acc = check "shed_rate" (rate r.shed) pct t.shed_rate acc in
    let acc = check "5xx_rate" (rate r.errors_5xx) pct t.error_rate acc in
    let acc = check "exec_p99" r.exec_p99_s ms t.p99_s acc in
    match acc with
    (* an unhealthy verdict keeps the degraded reasons too — the 503
       body should show everything that is wrong, worst first *)
    | degraded, (_ :: _ as unhealthy) ->
      Unhealthy (List.rev unhealthy @ List.rev degraded)
    | (_ :: _ as degraded), [] -> Degraded (List.rev degraded)
    | [], [] -> Ok
  end

let state_name = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Unhealthy _ -> "unhealthy"

let status_code = function
  | Ok | Degraded _ -> 200
  | Unhealthy _ -> 503

let state_value = function
  | Ok -> 0
  | Degraded _ -> 1
  | Unhealthy _ -> 2

let reasons = function
  | Ok -> []
  | Degraded r | Unhealthy r -> r
