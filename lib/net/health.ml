type limits = {
  degraded : float;
  unhealthy : float;
}

type thresholds = {
  shed_rate : limits;
  error_rate : limits;
  p99_s : limits;
  min_events : int;
}

let default_thresholds =
  {
    shed_rate = { degraded = 0.01; unhealthy = 0.25 };
    error_rate = { degraded = 0.01; unhealthy = 0.25 };
    p99_s = { degraded = infinity; unhealthy = infinity };
    min_events = 20;
  }

let with_slo_p99 t ~slo_s =
  if slo_s > 0.0 then
    { t with p99_s = { degraded = slo_s; unhealthy = 4.0 *. slo_s } }
  else t

type reading = {
  window_s : float;
  executed : int;
  shed : int;
  errors_5xx : int;
  exec_p99_s : float;
}

(* Everything that arrived and was decided in the window: executed to
   completion or shed. The denominator of every rate, and the
   [min_events] activity floor. Using executed alone for either is the
   bug this replaces: sheds land at decision time while arrivals are
   stamped on intake, so a wedged server shedding 100% of its backlog
   with no fresh intake would never trip the floor and grade Ok — and
   windowed skew between the two stamps could push shed_rate past
   100%. *)
let arrivals r = r.executed + r.shed

type state =
  | Ok
  | Degraded of string list
  | Unhealthy of string list

(* A measured value only trips a limit when the limit is a real number:
   [nan] and [infinity] both read as "check disabled", and a [nan]
   value (empty windowed histogram) trips nothing. *)
let over value limit = Float.is_finite limit && value > limit

(* Grade one check against its two limits; worst verdict wins overall.
   Reason strings are stable prefixes ("shed_rate ...") so tests and
   operators can match on them without parsing numbers. *)
let check name value fmt limits (degraded, unhealthy) =
  if over value limits.unhealthy then
    ( degraded,
      Printf.sprintf "%s %s > %s" name (fmt value) (fmt limits.unhealthy)
      :: unhealthy )
  else if over value limits.degraded then
    ( Printf.sprintf "%s %s > %s" name (fmt value) (fmt limits.degraded)
      :: degraded,
      unhealthy )
  else (degraded, unhealthy)

let evaluate t r =
  let events = arrivals r in
  if events < t.min_events then Ok
  else begin
    let rate n = float_of_int n /. float_of_int (max 1 events) in
    let pct v = Printf.sprintf "%.1f%%" (v *. 100.0) in
    let ms v = Printf.sprintf "%.1fms" (v *. 1e3) in
    let acc = ([], []) in
    let acc = check "shed_rate" (rate r.shed) pct t.shed_rate acc in
    let acc = check "5xx_rate" (rate r.errors_5xx) pct t.error_rate acc in
    let acc = check "exec_p99" r.exec_p99_s ms t.p99_s acc in
    match acc with
    (* an unhealthy verdict keeps the degraded reasons too — the 503
       body should show everything that is wrong, worst first *)
    | degraded, (_ :: _ as unhealthy) ->
      Unhealthy (List.rev unhealthy @ List.rev degraded)
    | (_ :: _ as degraded), [] -> Degraded (List.rev degraded)
    | [], [] -> Ok
  end

let state_name = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Unhealthy _ -> "unhealthy"

let status_code = function
  | Ok | Degraded _ -> 200
  | Unhealthy _ -> 503

let state_value = function
  | Ok -> 0
  | Degraded _ -> 1
  | Unhealthy _ -> 2

let reasons = function
  | Ok -> []
  | Degraded r | Unhealthy r -> r
