let parse_url url =
  let rest =
    match String.index_opt url ':' with
    | Some i
      when i + 2 < String.length url
           && url.[i + 1] = '/'
           && url.[i + 2] = '/' ->
      String.sub url (i + 3) (String.length url - i - 3)
    | _ -> url
  in
  if rest = "" then Error "empty url"
  else begin
    let hostport, path =
      match String.index_opt rest '/' with
      | Some i ->
        (String.sub rest 0 i, String.sub rest i (String.length rest - i))
      | None -> (rest, "/")
    in
    match String.index_opt hostport ':' with
    | None -> Ok (hostport, 80, path)
    | Some i -> (
      let host = String.sub hostport 0 i in
      let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p, path)
      | _ -> Error ("invalid host:port: " ^ hostport))
  end

(* A signal mid-send must not abort the request (EINTR: written = 0,
   retry), and a send that times out against a peer that stopped
   reading (SO_SNDTIMEO surfaces it as EAGAIN/EWOULDBLOCK) must come
   back as a message callers can match on — [request] turns the
   [Failure] into [Error "send timeout"]. *)
let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n =
        try Unix.write fd b off (len - off) with
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          failwith "send timeout"
      in
      go (off + n)
  in
  go 0

(* The read-side mirror: retry EINTR, name a receive timeout. *)
let read_chunk fd chunk =
  let rec go () =
    try Unix.read fd chunk 0 (Bytes.length chunk) with
    | Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      failwith "receive timeout"
  in
  go ()

(* Read until the header/body split, then until Content-Length bytes of
   body are in (or EOF for a response without the header). *)
let read_response fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let header_end b =
    let s = Buffer.contents b in
    let rec find i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec fill_headers () =
    match header_end buf with
    | Some split -> Some split
    | None -> (
      match read_chunk fd chunk with
      | 0 -> None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        fill_headers ())
  in
  match fill_headers () with
  | None -> Error "connection closed before response headers"
  | Some split -> (
    let head = Buffer.sub buf 0 split in
    let lines = String.split_on_char '\n' head in
    let status =
      match lines with
      | first :: _ -> (
        match String.split_on_char ' ' (String.trim first) with
        | _ :: code :: _ -> int_of_string_opt code
        | _ -> None)
      | [] -> None
    in
    match status with
    | None -> Error "malformed status line"
    | Some status ->
      let content_length =
        List.fold_left
          (fun acc line ->
            match String.index_opt line ':' with
            | Some i
              when String.lowercase_ascii (String.trim (String.sub line 0 i))
                   = "content-length" ->
              int_of_string_opt
                (String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)))
            | _ -> acc)
          None lines
      in
      let rec fill_body target =
        if Buffer.length buf - split >= target then ()
        else
          match read_chunk fd chunk with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            fill_body target
      in
      (match content_length with
      | Some n ->
        fill_body n;
        (* a peer that closes before Content-Length bytes arrive has
           truncated the body — an error, never an Ok with a short
           body the caller would misparse downstream *)
        let got = Buffer.length buf - split in
        if got < n then
          Error (Printf.sprintf "truncated body (got %d of %d bytes)" got n)
        else Ok (status, Buffer.sub buf split n)
      | None ->
        (* no Content-Length: read to EOF *)
        let rec drain () =
          match read_chunk fd chunk with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        in
        drain ();
        Ok (status, Buffer.sub buf split (Buffer.length buf - split))))

let request ?(timeout_s = 5.0) ~url ~meth ?(body = "") path =
  match parse_url url with
  | Error e -> Error e
  | Ok (host, port, _) -> (
    match
      try Ok (Unix.inet_addr_of_string host)
      with _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> Ok a
        | _ -> Error ("cannot resolve host: " ^ host))
    with
    | Error e -> Error e
    | Ok addr -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      let finally () = try Unix.close fd with _ -> () in
      try
        Fun.protect ~finally (fun () ->
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
            Unix.connect fd (Unix.ADDR_INET (addr, port));
            (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
            let extra =
              if body = "" then ""
              else Printf.sprintf "content-length: %d\r\n" (String.length body)
            in
            write_all fd
              (Printf.sprintf
                 "%s %s HTTP/1.1\r\nhost: %s:%d\r\nconnection: close\r\n%s\r\n%s"
                 meth path host port extra body);
            read_response fd)
      with
      | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | Failure e -> Error e))

let get ?timeout_s ~url path = request ?timeout_s ~url ~meth:"GET" path
let post ?timeout_s ~url path body = request ?timeout_s ~url ~meth:"POST" ~body path
