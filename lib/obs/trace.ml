type value =
  | Int of int
  | Float of float
  | Str of string

type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * value) list;
}

type frame = {
  f_id : int;
  f_parent : int option;
  f_depth : int;
  f_name : string;
  f_start : float;
}

type t = {
  clock : unit -> float;
  emit : span -> unit;
  mutable next_id : int;
  mutable stack : frame list; (* innermost open span first *)
}

let create ?(clock = Unix.gettimeofday) ~emit () =
  { clock; emit; next_id = 0; stack = [] }

let enter t name =
  let parent, depth =
    match t.stack with
    | [] -> (None, 0)
    | f :: _ -> (Some f.f_id, f.f_depth + 1)
  in
  let f =
    {
      f_id = t.next_id;
      f_parent = parent;
      f_depth = depth;
      f_name = name;
      f_start = t.clock ();
    }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- f :: t.stack;
  f.f_id

(* Spans are emitted when they close, so a child always reaches the sink
   before its parent; consumers rebuild the tree from [parent]. *)
let exit t ~id attrs =
  match t.stack with
  | f :: rest when f.f_id = id ->
    t.stack <- rest;
    t.emit
      {
        id = f.f_id;
        parent = f.f_parent;
        depth = f.f_depth;
        name = f.f_name;
        start_s = f.f_start;
        duration_s = t.clock () -. f.f_start;
        attrs;
      }
  | _ -> invalid_arg "Trace.exit: span is not innermost open span"

let with_span t name ?(attrs = fun () -> []) f =
  let id = enter t name in
  Fun.protect ~finally:(fun () -> exit t ~id (attrs ())) f

let depth t = List.length t.stack
