type value =
  | Int of int
  | Float of float
  | Str of string

type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * value) list;
}

type frame = {
  f_id : int;
  f_parent : int option;
  f_depth : int;
  f_name : string;
  f_start : float;
}

type t = {
  clock : unit -> float;
  emit : span -> unit;
  alloc : unit -> int;
  mutable stack : frame list; (* innermost open span first *)
}

let create ?(clock = Unix.gettimeofday) ?alloc ~emit () =
  let alloc =
    match alloc with
    | Some f -> f
    | None ->
      let next = ref 0 in
      fun () ->
        let i = !next in
        incr next;
        i
  in
  { clock; emit; alloc; stack = [] }

let enter t name =
  let parent, depth =
    match t.stack with
    | [] -> (None, 0)
    | f :: _ -> (Some f.f_id, f.f_depth + 1)
  in
  let f =
    {
      f_id = t.alloc ();
      f_parent = parent;
      f_depth = depth;
      f_name = name;
      f_start = t.clock ();
    }
  in
  t.stack <- f :: t.stack;
  f.f_id

let emit_frame t f attrs =
  t.emit
    {
      id = f.f_id;
      parent = f.f_parent;
      depth = f.f_depth;
      name = f.f_name;
      start_s = f.f_start;
      duration_s = t.clock () -. f.f_start;
      attrs;
    }

(* Spans are emitted when they close, so a child always reaches the sink
   before its parent; consumers rebuild the tree from [parent].

   [exit] tolerates abandoned descendants: if an exception escaped a
   manually paired enter/exit deeper in the stack, the orphaned frames
   are closed (child-first, tagged [abandoned]) before the target, so
   one raising query can never corrupt the emission order of later
   spans. *)
let exit t ~id attrs =
  if not (List.exists (fun f -> f.f_id = id) t.stack) then
    invalid_arg "Trace.exit: span is not open";
  let rec unwind () =
    match t.stack with
    | [] -> assert false
    | f :: rest ->
      t.stack <- rest;
      if f.f_id = id then emit_frame t f attrs
      else begin
        emit_frame t f [ ("abandoned", Int 1) ];
        unwind ()
      end
  in
  unwind ()

let with_span t name ?(attrs = fun () -> []) f =
  let id = enter t name in
  Fun.protect
    ~finally:(fun () ->
      (* The span must close even when the attribute thunk itself raises;
         otherwise one bad attrs closure would leave the frame open and
         skew every later span's parentage. *)
      let attrs =
        try attrs ()
        with exn -> [ ("attrs_error", Str (Printexc.to_string exn)) ]
      in
      exit t ~id attrs)
    f

let depth t = List.length t.stack

(* ------------------------------------------------------------------ *)
(* Sharded tracing: one stack tracer per domain over buffered shards. *)

module Sharded = struct
  (* Each shard owns a disjoint span-id block, so ids allocated by
     different domains never collide and parentage stays unambiguous
     after the merge. 2^40 spans per shard leaves room for ~4M shards
     in a 62-bit int. *)
  let id_block = 1 lsl 40

  type shard = {
    sh_domain : int; (* Domain.self of the owner *)
    sh_base : int; (* first span id of this shard's block *)
    sh_mu : Mutex.t; (* guards sh_next and sh_buf *)
    mutable sh_next : int;
    mutable sh_buf : span list; (* newest first *)
    mutable sh_tracer : t option; (* always Some after make_shard *)
  }

  type sharded = {
    s_clock : unit -> float;
    s_emit : span -> unit;
    s_mu : Mutex.t; (* guards the shard table and serialises flushes *)
    s_shards : (int, shard) Hashtbl.t; (* keyed by domain id *)
    mutable s_order : shard list; (* interning order, newest first *)
  }

  let shard_alloc sh =
    Mutex.lock sh.sh_mu;
    let i = sh.sh_next in
    sh.sh_next <- i + 1;
    Mutex.unlock sh.sh_mu;
    sh.sh_base + i

  (* Every buffered span is tagged with its shard's domain id; the tag
     survives the merge, which is what lets consumers of a multi-domain
     trace group spans back into per-domain child-first runs. *)
  let shard_push sh span =
    let span = { span with attrs = ("domain", Int sh.sh_domain) :: span.attrs } in
    Mutex.lock sh.sh_mu;
    sh.sh_buf <- span :: sh.sh_buf;
    Mutex.unlock sh.sh_mu

  let make_shard s domain_id slot =
    let sh =
      {
        sh_domain = domain_id;
        sh_base = slot * id_block;
        sh_mu = Mutex.create ();
        sh_next = 0;
        sh_buf = [];
        sh_tracer = None;
      }
    in
    sh.sh_tracer <-
      Some
        (create ~clock:s.s_clock
           ~alloc:(fun () -> shard_alloc sh)
           ~emit:(fun sp -> shard_push sh sp)
           ());
    sh

  let create ?(clock = Unix.gettimeofday) ~emit () =
    {
      s_clock = clock;
      s_emit = emit;
      s_mu = Mutex.create ();
      s_shards = Hashtbl.create 8;
      s_order = [];
    }

  let shard_for s =
    let d = (Domain.self () :> int) in
    Mutex.lock s.s_mu;
    let sh =
      match Hashtbl.find_opt s.s_shards d with
      | Some sh -> sh
      | None ->
        let sh = make_shard s d (Hashtbl.length s.s_shards) in
        Hashtbl.add s.s_shards d sh;
        s.s_order <- sh :: s.s_order;
        sh
    in
    Mutex.unlock s.s_mu;
    sh

  let tracer s =
    match (shard_for s).sh_tracer with
    | Some t -> t
    | None -> assert false

  let alloc_id s = shard_alloc (shard_for s)

  let inject s ?id ?parent ~depth ~name ~start_s ~duration_s attrs =
    let sh = shard_for s in
    let id = match id with Some i -> i | None -> shard_alloc sh in
    shard_push sh { id; parent; depth; name; start_s; duration_s; attrs };
    id

  let flush s =
    Mutex.lock s.s_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.s_mu)
      (fun () ->
        List.iter
          (fun sh ->
            Mutex.lock sh.sh_mu;
            let spans = List.rev sh.sh_buf in
            sh.sh_buf <- [];
            Mutex.unlock sh.sh_mu;
            List.iter s.s_emit spans)
          (List.rev s.s_order))

  let shards s =
    Mutex.lock s.s_mu;
    let n = Hashtbl.length s.s_shards in
    Mutex.unlock s.s_mu;
    n
end
