type value =
  | Int of int
  | Float of float
  | Str of string

type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * value) list;
}

type frame = {
  f_id : int;
  f_parent : int option;
  f_depth : int;
  f_name : string;
  f_start : float;
}

type t = {
  clock : unit -> float;
  emit : span -> unit;
  mutable next_id : int;
  mutable stack : frame list; (* innermost open span first *)
}

let create ?(clock = Unix.gettimeofday) ~emit () =
  { clock; emit; next_id = 0; stack = [] }

let enter t name =
  let parent, depth =
    match t.stack with
    | [] -> (None, 0)
    | f :: _ -> (Some f.f_id, f.f_depth + 1)
  in
  let f =
    {
      f_id = t.next_id;
      f_parent = parent;
      f_depth = depth;
      f_name = name;
      f_start = t.clock ();
    }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- f :: t.stack;
  f.f_id

let emit_frame t f attrs =
  t.emit
    {
      id = f.f_id;
      parent = f.f_parent;
      depth = f.f_depth;
      name = f.f_name;
      start_s = f.f_start;
      duration_s = t.clock () -. f.f_start;
      attrs;
    }

(* Spans are emitted when they close, so a child always reaches the sink
   before its parent; consumers rebuild the tree from [parent].

   [exit] tolerates abandoned descendants: if an exception escaped a
   manually paired enter/exit deeper in the stack, the orphaned frames
   are closed (child-first, tagged [abandoned]) before the target, so
   one raising query can never corrupt the emission order of later
   spans. *)
let exit t ~id attrs =
  if not (List.exists (fun f -> f.f_id = id) t.stack) then
    invalid_arg "Trace.exit: span is not open";
  let rec unwind () =
    match t.stack with
    | [] -> assert false
    | f :: rest ->
      t.stack <- rest;
      if f.f_id = id then emit_frame t f attrs
      else begin
        emit_frame t f [ ("abandoned", Int 1) ];
        unwind ()
      end
  in
  unwind ()

let with_span t name ?(attrs = fun () -> []) f =
  let id = enter t name in
  Fun.protect
    ~finally:(fun () ->
      (* The span must close even when the attribute thunk itself raises;
         otherwise one bad attrs closure would leave the frame open and
         skew every later span's parentage. *)
      let attrs =
        try attrs ()
        with exn -> [ ("attrs_error", Str (Printexc.to_string exn)) ]
      in
      exit t ~id attrs)
    f

let depth t = List.length t.stack
