module Counter = Olar_util.Timer.Counter

(* A tracked counter: one ring slot per boundary holding the cumulative
   value at that boundary. *)
type counter_view = {
  cw : t;
  c : Counter.t;
  csnaps : int array; (* ring, indexed boundary_seq mod buckets *)
}

(* A tracked histogram: cumulative bucket counts and sum per boundary.
   Bucket arrays are copied whole at each tick — 47 ints per tracked
   histogram per second is nothing next to one served query. *)
and histogram_view = {
  hw : t;
  h : Metrics.Histogram.t;
  hsnaps : int array array; (* ring of cumulative per-bucket counts *)
  ssnaps : float array; (* ring of cumulative sums *)
}

and t = {
  clock : unit -> float;
  buckets : int;
  width_s : float;
  mu : Mutex.t;
  times : float array; (* ring of boundary timestamps *)
  mutable seq : int; (* boundaries pushed since create; slot = (seq-1) mod buckets *)
  mutable counters : counter_view list; (* newest first; order is irrelevant *)
  mutable histograms : histogram_view list;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let span_s t = float_of_int t.buckets *. t.width_s

let snapshot_counter v slot = v.csnaps.(slot) <- Counter.value v.c

let snapshot_histogram v slot =
  v.hsnaps.(slot) <- Metrics.Histogram.counts v.h;
  v.ssnaps.(slot) <- Metrics.Histogram.sum v.h

(* Push one boundary at [now]: stamp the slot and snapshot every
   tracked instrument into it. Call under the lock. *)
let push_locked t now =
  let slot = t.seq mod t.buckets in
  t.times.(slot) <- now;
  t.seq <- t.seq + 1;
  List.iter (fun v -> snapshot_counter v slot) t.counters;
  List.iter (fun v -> snapshot_histogram v slot) t.histograms

let create ?(clock = Olar_util.Timer.monotonic_s) ?(buckets = 60)
    ?(width_s = 1.0) () =
  if buckets < 1 then invalid_arg "Window.create: buckets < 1";
  if not (width_s > 0.0) then invalid_arg "Window.create: width_s <= 0";
  let t =
    {
      clock;
      buckets;
      width_s;
      mu = Mutex.create ();
      times = Array.make buckets neg_infinity;
      seq = 0;
      counters = [];
      histograms = [];
    }
  in
  push_locked t (clock ());
  t

let tick t =
  locked t (fun () ->
      let now = t.clock () in
      let newest = t.times.((t.seq - 1) mod t.buckets) in
      if now -. newest >= t.width_s then push_locked t now)

(* The start boundary for a reading at [now]: the oldest retained
   boundary still inside the span, or the newest boundary when a
   stalled ticker / clock jump has aged them all out (a short fresh
   window beats a stale long one). Call under the lock; at least one
   boundary always exists ([create] pushes the first). *)
let start_slot_locked t now =
  let retained = min t.seq t.buckets in
  let horizon = now -. span_s t in
  let rec go k =
    (* k-th oldest retained boundary, k = 0 the oldest *)
    if k = retained - 1 then (t.seq - 1) mod t.buckets
    else
      let slot = (t.seq - retained + k) mod t.buckets in
      if t.times.(slot) >= horizon then slot else go (k + 1)
  in
  go 0

let covered_s t =
  locked t (fun () ->
      let now = t.clock () in
      Float.max 0.0 (now -. t.times.(start_slot_locked t now)))

let track_counter t c =
  locked t (fun () ->
      let v = { cw = t; c; csnaps = Array.make t.buckets (Counter.value c) } in
      t.counters <- v :: t.counters;
      v)

let track_histogram t h =
  locked t (fun () ->
      let v =
        {
          hw = t;
          h;
          hsnaps = Array.make t.buckets (Metrics.Histogram.counts h);
          ssnaps = Array.make t.buckets (Metrics.Histogram.sum h);
        }
      in
      t.histograms <- v :: t.histograms;
      v)

(* Clamped at 0: an external [Counter.reset] between boundaries would
   otherwise read as a negative burst. *)
let counter_delta v =
  locked v.cw (fun () ->
      let now = v.cw.clock () in
      let slot = start_slot_locked v.cw now in
      max 0 (Counter.value v.c - v.csnaps.(slot)))

let counter_rate v =
  locked v.cw (fun () ->
      let now = v.cw.clock () in
      let slot = start_slot_locked v.cw now in
      let dt = now -. v.cw.times.(slot) in
      if dt > 0.0 then float_of_int (max 0 (Counter.value v.c - v.csnaps.(slot))) /. dt
      else 0.0)

type hist_window = {
  count : int;
  sum : float;
  rate : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Windowed bucket counts: current cumulative minus the start
   boundary's snapshot, per bucket (clamped like the counter delta). *)
let window_counts_locked v now =
  let slot = start_slot_locked v.hw now in
  let cur = Metrics.Histogram.counts v.h in
  let base = v.hsnaps.(slot) in
  Array.iteri (fun i c -> cur.(i) <- max 0 (c - base.(i))) cur;
  (cur, slot)

let histogram_window v =
  locked v.hw (fun () ->
      let now = v.hw.clock () in
      let counts, slot = window_counts_locked v now in
      let count = Array.fold_left ( + ) 0 counts in
      let sum = Metrics.Histogram.sum v.h -. v.ssnaps.(slot) in
      let dt = now -. v.hw.times.(slot) in
      let bounds = Metrics.Histogram.bounds v.h in
      let q p = Metrics.Histogram.quantile_of ~bounds ~counts p in
      {
        count;
        sum = (if count = 0 then 0.0 else Float.max 0.0 sum);
        rate = (if dt > 0.0 then float_of_int count /. dt else 0.0);
        p50 = q 0.5;
        p90 = q 0.9;
        p99 = q 0.99;
      })

let histogram_quantile v q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Window.histogram_quantile";
  locked v.hw (fun () ->
      let now = v.hw.clock () in
      let counts, _ = window_counts_locked v now in
      Metrics.Histogram.quantile_of
        ~bounds:(Metrics.Histogram.bounds v.h)
        ~counts q)
