(** Engine-facing façade over {!Metrics}, {!Trace}, and {!Sink}.

    An {!type-t} is [ctx option], exposed concretely on purpose: the
    engine dispatches on it with a bare [match], so the disabled path
    ([None]) runs the exact uninstrumented code and allocates nothing —
    closures for the instrumented path only exist inside the [Some]
    branch. This is what keeps the null-sink overhead on the query hot
    path at zero (see DESIGN.md, Observability).

    Domain safety: the metrics side of a context — counters, gauges,
    histograms, the registry — is safe to share across domains (see
    {!Metrics}). The trace side is sharded per domain
    ({!Trace.Sharded}): each domain gets its own span stack and buffer,
    tagged with the domain id, and {!flush} merges the buffers into the
    sink on the calling (coordinator) thread. Within one domain the
    stack tracer is still single-threaded — systhreads sharing a domain
    must not interleave enter/exit on it (use
    {!Trace.Sharded.inject} for prebuilt spans instead). *)

module Counter = Olar_util.Timer.Counter

type ctx

type t = ctx option

val disabled : t

(** [create ()] is an enabled context with a fresh registry holding the
    shared query counters. [trace] turns on span collection into the
    given sink; [clock] (default [Unix.gettimeofday]) feeds both span
    timing and latency histograms — inject a fake for deterministic
    tests. *)
val create : ?clock:(unit -> float) -> ?trace:Sink.t -> unit -> t

val metrics : ctx -> Metrics.t

(** The sharded tracing fabric, when [?trace] was given — for callers
    that inject prebuilt spans or merge buffers themselves. *)
val tracing : ctx -> Trace.Sharded.sharded option

(** The {e calling domain's} tracer, interned on first use. Distinct
    domains get distinct tracers over disjoint span-id blocks. *)
val tracer : ctx -> Trace.t option

(** [flush ctx] merges every domain's buffered spans into the trace
    sink (in shard order, child-first within each shard) and flushes
    the sink. Call from one coordinator thread. *)
val flush : ctx -> unit

val flush_opt : t -> unit

(** Which work counter a query kernel reports through its [?work]
    argument: graph-traversal kernels count vertex expansions,
    best-first support queries count heap pops. *)
type work =
  | Vertices
  | Heap_pops
  | No_work

(** [query_span ctx ~name ~work f] wraps one engine entry point:
    increments [olar_queries_total], times [f] into the
    [olar_query_<name>_seconds] histogram, passes the selected work
    counter to [f] as its [?work] argument, and — when tracing — emits
    a [query.<name>] span carrying the work delta. The histogram is
    recorded even if [f] raises. *)
val query_span : ctx -> name:string -> work:work -> (Counter.t option -> 'a) -> 'a

(** [span ctx name f] is a plain trace span ([f ()] unchanged when
    tracing is off). [attrs] is evaluated at close time. *)
val span :
  ctx -> string -> ?attrs:(unit -> (string * Trace.value) list) -> (unit -> 'a) -> 'a

(** [maybe_span obs name f] is {!span} when [obs] is enabled and a bare
    [f ()] otherwise — for cold paths (mining passes, threshold probes)
    where building the closure costs nothing relative to the work. *)
val maybe_span :
  t -> string -> ?attrs:(unit -> (string * Trace.value) list) -> (unit -> 'a) -> 'a

(** Registry shorthands. *)
val counter : ctx -> ?help:string -> string -> Counter.t

val gauge :
  ctx -> ?help:string -> ?labels:(string * string) list -> string -> Metrics.Gauge.t

(** [update_runtime_gauges ctx] samples process-level state into gauges:
    [olar_gc_minor_collections_total], [olar_gc_major_collections_total],
    [olar_heap_words] (from [Gc.quick_stat]) and [olar_uptime_seconds]
    (clock now minus clock at [create]). Sampled, not maintained — call
    right before exposition. *)
val update_runtime_gauges : ctx -> unit

(** [set_build_info ctx ~version] registers the Prometheus-style info
    gauge [olar_build_info{version="..."} 1]. *)
val set_build_info : ctx -> version:string -> unit

(** [attach_counter ctx c] adopts an externally created counter (e.g. a
    mining [Stats] field) into the registry; see
    {!Metrics.attach_counter}. *)
val attach_counter : ctx -> ?help:string -> ?name:string -> Counter.t -> unit
