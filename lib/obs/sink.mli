(** Destinations for closed trace spans.

    A sink is the [emit] half of a {!Trace.t} plus a [flush] hook the
    engine calls at the end of a traced operation. Sinks receive spans
    in close order (children before parents). *)

type t

val emit : t -> Trace.span -> unit
val flush : t -> unit

(** Discards everything. Shared value; emitting to it allocates
    nothing. *)
val null : t

(** [memory ()] is a sink plus an accessor returning the spans received
    so far, in emission (close) order. *)
val memory : unit -> t * (unit -> Trace.span list)

(** [span_to_json s] is the JSON object written by the jsonl sinks —
    keys [id], [parent] (null for roots), [depth], [name], [start_s],
    [duration_s], [attrs]. *)
val span_to_json : Trace.span -> Jsonx.t

(** [jsonl_writer write] emits one compact JSON object per line through
    [write]. [flush] defaults to a no-op. *)
val jsonl_writer : ?flush:(unit -> unit) -> (string -> unit) -> t

(** [jsonl oc] writes JSON lines to a channel; [flush] flushes it. *)
val jsonl : out_channel -> t
