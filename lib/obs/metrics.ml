module Counter = Olar_util.Timer.Counter

module Gauge = struct
  type t = {
    name : string;
    mutable value : float;
  }

  let create name = { name; value = 0.0 }
  let name g = g.name
  let set g v = g.value <- v
  let set_int g v = g.value <- float_of_int v
  let value g = g.value
end

module Histogram = struct
  type t = {
    name : string;
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int array; (* length bounds + 1; the last slot is overflow *)
    mutable sum : float;
    mutable total : int;
  }

  let log_bounds ?(lo = 1e-6) ?(decades = 9) ?(per_decade = 5) () =
    if lo <= 0.0 || decades < 1 || per_decade < 1 then
      invalid_arg "Histogram.log_bounds";
    Array.init
      ((decades * per_decade) + 1)
      (fun i -> lo *. (10.0 ** (float_of_int i /. float_of_int per_decade)))

  let of_bounds name bounds =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Histogram.of_bounds: empty";
    for i = 1 to n - 1 do
      if not (bounds.(i) > bounds.(i - 1)) then
        invalid_arg "Histogram.of_bounds: bounds must increase strictly"
    done;
    { name; bounds; counts = Array.make (n + 1) 0; sum = 0.0; total = 0 }

  let create ?lo ?decades ?per_decade name =
    of_bounds name (log_bounds ?lo ?decades ?per_decade ())

  let name h = h.name

  (* Index of the first bound >= v; [Array.length bounds] = overflow. *)
  let bucket_index h v =
    let n = Array.length h.bounds in
    if v <= h.bounds.(0) then 0
    else if v > h.bounds.(n - 1) then n
    else begin
      (* invariant: bounds.(lo) < v <= bounds.(hi) *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if h.bounds.(mid) < v then lo := mid else hi := mid
      done;
      !hi
    end

  let observe h v =
    let i = bucket_index h v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.total <- h.total + 1

  let count h = h.total
  let sum h = h.sum
  let mean h = if h.total = 0 then Float.nan else h.sum /. float_of_int h.total
  let bounds h = Array.copy h.bounds
  let counts h = Array.copy h.counts

  (* Upper bound of the smallest bucket at which the cumulative count
     reaches q * total (Prometheus-style upper-bound estimate). The
     overflow bucket reports [infinity]; an empty histogram [nan]. *)
  let quantile h q =
    if not (q >= 0.0 && q <= 1.0) then invalid_arg "Histogram.quantile";
    if h.total = 0 then Float.nan
    else begin
      let target =
        max 1 (int_of_float (ceil ((q *. float_of_int h.total) -. 1e-9)))
      in
      let last = Array.length h.counts - 1 in
      let i = ref 0 in
      let cum = ref h.counts.(0) in
      while !cum < target && !i < last do
        incr i;
        cum := !cum + h.counts.(!i)
      done;
      if !i < Array.length h.bounds then h.bounds.(!i) else Float.infinity
    end
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type entry = {
  name : string;
  help : string;
  labels : (string * string) list;
  metric : metric;
}

type t = {
  by_name : (string, entry) Hashtbl.t;
  mutable order_rev : string list; (* registration order, newest first *)
}

let create () = { by_name = Hashtbl.create 32; order_rev = [] }

let register t name help labels metric =
  Hashtbl.replace t.by_name name { name; help; labels; metric };
  t.order_rev <- name :: t.order_rev

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " registered with another kind")

let counter t ?(help = "") name =
  match Hashtbl.find_opt t.by_name name with
  | Some { metric = M_counter c; _ } -> c
  | Some _ -> kind_error name
  | None ->
    let c = Counter.create name in
    register t name help [] (M_counter c);
    c

let gauge t ?(help = "") ?(labels = []) name =
  match Hashtbl.find_opt t.by_name name with
  | Some { metric = M_gauge g; _ } -> g
  | Some _ -> kind_error name
  | None ->
    let g = Gauge.create name in
    register t name help labels (M_gauge g);
    g

let histogram t ?(help = "") ?bounds name =
  match Hashtbl.find_opt t.by_name name with
  | Some { metric = M_histogram h; _ } -> h
  | Some _ -> kind_error name
  | None ->
    let h =
      match bounds with
      | Some b -> Histogram.of_bounds name b
      | None -> Histogram.create name
    in
    register t name help [] (M_histogram h);
    h

(* Adopt a counter created elsewhere (e.g. a mining [Stats.t] field) so
   its counts surface in the registry without copying — the attached
   counter IS the registered one. A later attach under the same name
   replaces the earlier metric but keeps its registration slot. *)
let attach_counter t ?(help = "") ?name c =
  let name = match name with Some n -> n | None -> Counter.name c in
  (match Hashtbl.find_opt t.by_name name with
  | Some { metric = M_counter _; _ } | None -> ()
  | Some _ -> kind_error name);
  if Hashtbl.mem t.by_name name then
    Hashtbl.replace t.by_name name { name; help; labels = []; metric = M_counter c }
  else register t name help [] (M_counter c)

let find t name = Hashtbl.find_opt t.by_name name

let iter t f =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.by_name name with
      | Some e -> f e
      | None -> ())
    (List.rev t.order_rev)

let to_list t =
  let out = ref [] in
  iter t (fun e -> out := e :: !out);
  List.rev !out
