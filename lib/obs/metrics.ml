module Counter = Olar_util.Timer.Counter

module Gauge = struct
  type t = {
    name : string;
    value : float Atomic.t;
  }

  let create name = { name; value = Atomic.make 0.0 }
  let name g = g.name
  let set g v = Atomic.set g.value v
  let set_int g v = Atomic.set g.value (float_of_int v)
  let value g = Atomic.get g.value

  (* Lock-free monotone maximum: raise the cell to [v] unless a racing
     writer already raised it higher. This is what high-water marks
     (queue-depth peak) need — a read-then-set from two admission
     threads can lose the larger value; CAS-max cannot. *)
  let max_float g v =
    let rec go () =
      let cur = Atomic.get g.value in
      if v > cur && not (Atomic.compare_and_set g.value cur v) then go ()
    in
    go ()

  let max_int g v = max_float g (float_of_int v)
end

module Histogram = struct
  type t = {
    name : string;
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int Atomic.t array; (* length bounds + 1; last slot overflow *)
    sum : float Atomic.t;
    total : int Atomic.t;
  }

  let log_bounds ?(lo = 1e-6) ?(decades = 9) ?(per_decade = 5) () =
    if lo <= 0.0 || decades < 1 || per_decade < 1 then
      invalid_arg "Histogram.log_bounds";
    Array.init
      ((decades * per_decade) + 1)
      (fun i -> lo *. (10.0 ** (float_of_int i /. float_of_int per_decade)))

  let of_bounds name bounds =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Histogram.of_bounds: empty";
    for i = 1 to n - 1 do
      if not (bounds.(i) > bounds.(i - 1)) then
        invalid_arg "Histogram.of_bounds: bounds must increase strictly"
    done;
    {
      name;
      bounds;
      counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
      sum = Atomic.make 0.0;
      total = Atomic.make 0;
    }

  let create ?lo ?decades ?per_decade name =
    of_bounds name (log_bounds ?lo ?decades ?per_decade ())

  let name h = h.name

  (* Index of the first bound >= v; [Array.length bounds] = overflow. *)
  let bucket_index h v =
    let n = Array.length h.bounds in
    if v <= h.bounds.(0) then 0
    else if v > h.bounds.(n - 1) then n
    else begin
      (* invariant: bounds.(lo) < v <= bounds.(hi) *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if h.bounds.(mid) < v then lo := mid else hi := mid
      done;
      !hi
    end

  (* The float sum has no fetch-and-add, so it takes a CAS loop. Bucket
     and total increments are plain fetch-and-adds. A reader between a
     bucket bump and the total bump can observe a sum/total one sample
     behind the buckets — acceptable for exposition, which never claims
     a consistent snapshot across instruments anyway. *)
  let add_sum h v =
    let rec go () =
      let cur = Atomic.get h.sum in
      if not (Atomic.compare_and_set h.sum cur (cur +. v)) then go ()
    in
    go ()

  let observe h v =
    let i = bucket_index h v in
    ignore (Atomic.fetch_and_add h.counts.(i) 1);
    add_sum h v;
    ignore (Atomic.fetch_and_add h.total 1)

  let count h = Atomic.get h.total
  let sum h = Atomic.get h.sum

  let mean h =
    let total = Atomic.get h.total in
    if total = 0 then Float.nan else Atomic.get h.sum /. float_of_int total

  let bounds h = Array.copy h.bounds
  let counts h = Array.map Atomic.get h.counts

  (* Upper bound of the smallest bucket at which the cumulative count
     reaches q * total (Prometheus-style upper-bound estimate). The
     overflow bucket reports [infinity]; an empty histogram [nan].
     Shared by the live [quantile] below and by {!Window}, which walks
     diffed (windowed) bucket counts against the same bounds. *)
  let quantile_of ~bounds ~counts q =
    if not (q >= 0.0 && q <= 1.0) then invalid_arg "Histogram.quantile";
    if Array.length counts <> Array.length bounds + 1 then
      invalid_arg "Histogram.quantile_of: counts/bounds length mismatch";
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then Float.nan
    else begin
      let target =
        max 1 (int_of_float (ceil ((q *. float_of_int total) -. 1e-9)))
      in
      let last = Array.length counts - 1 in
      let i = ref 0 in
      let cum = ref counts.(0) in
      while !cum < target && !i < last do
        incr i;
        cum := !cum + counts.(!i)
      done;
      if !i < Array.length bounds then bounds.(!i) else Float.infinity
    end

  (* Bucket counts are snapshotted once so a concurrent [observe]
     cannot make the cumulative walk inconsistent. *)
  let quantile h q =
    quantile_of ~bounds:h.bounds ~counts:(Array.map Atomic.get h.counts) q
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type entry = {
  name : string;
  help : string;
  labels : (string * string) list;
  metric : metric;
}

(* The registry's hashtable is shared by every domain that interns or
   looks up an instrument (the serving pool's workers all hold the same
   obs ctx), so every access goes through [lock]. Interning is off the
   query hot path — kernels hold direct instrument handles — except for
   [Obs.query_span]'s per-query histogram lookup, which is a single
   short critical section. *)
type t = {
  mu : Mutex.t;
  by_name : (string, entry) Hashtbl.t;
  mutable order_rev : string list; (* registration order, newest first *)
  mutable collect_hooks : (unit -> unit) list; (* newest first *)
}

let create () =
  {
    mu = Mutex.create ();
    by_name = Hashtbl.create 32;
    order_rev = [];
    collect_hooks = [];
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Instruments with constant labels intern under name + rendered labels,
   so one metric name can carry several labelled series (the phase
   histograms olar_http_phase_seconds{phase="..."}). Label-free
   instruments keep their bare name as the key. *)
let series_key name labels =
  match labels with
  | [] -> name
  | kvs ->
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
    ^ "}"

(* First registered series of a base name, in registration order. An
   unlabelled lookup that misses falls back here, preserving the
   pre-series contract that [gauge t "olar_build_info"] finds the cell
   registered with labels. Call under the lock. *)
let find_base_locked t name =
  let rec go = function
    | [] -> None
    | key :: rest -> (
      match Hashtbl.find_opt t.by_name key with
      | Some e when e.name = name -> Some e
      | _ -> go rest)
  in
  go (List.rev t.order_rev)

let register t ~key name help labels metric =
  Hashtbl.replace t.by_name key { name; help; labels; metric };
  t.order_rev <- key :: t.order_rev

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " registered with another kind")

let counter t ?(help = "") ?(labels = []) name =
  locked t (fun () ->
      let key = series_key name labels in
      match Hashtbl.find_opt t.by_name key with
      | Some { metric = M_counter c; _ } -> c
      | Some _ -> kind_error name
      | None -> (
        match if labels = [] then find_base_locked t name else None with
        | Some { metric = M_counter c; _ } -> c
        | Some _ -> kind_error name
        | None ->
          let c = Counter.create name in
          register t ~key name help labels (M_counter c);
          c))

let gauge t ?(help = "") ?(labels = []) name =
  locked t (fun () ->
      let key = series_key name labels in
      match Hashtbl.find_opt t.by_name key with
      | Some { metric = M_gauge g; _ } -> g
      | Some _ -> kind_error name
      | None -> (
        match if labels = [] then find_base_locked t name else None with
        | Some { metric = M_gauge g; _ } -> g
        | Some _ -> kind_error name
        | None ->
          let g = Gauge.create name in
          register t ~key name help labels (M_gauge g);
          g))

let histogram t ?(help = "") ?(labels = []) ?bounds name =
  locked t (fun () ->
      let key = series_key name labels in
      match Hashtbl.find_opt t.by_name key with
      | Some { metric = M_histogram h; _ } -> h
      | Some _ -> kind_error name
      | None -> (
        match if labels = [] then find_base_locked t name else None with
        | Some { metric = M_histogram h; _ } -> h
        | Some _ -> kind_error name
        | None ->
          let h =
            match bounds with
            | Some b -> Histogram.of_bounds name b
            | None -> Histogram.create name
          in
          register t ~key name help labels (M_histogram h);
          h))

(* Adopt a counter created elsewhere (e.g. a mining [Stats.t] field) so
   its counts surface in the registry without copying — the attached
   counter IS the registered one. A later attach under the same name
   replaces the earlier metric but keeps its registration slot. *)
let attach_counter t ?(help = "") ?name c =
  let name = match name with Some n -> n | None -> Counter.name c in
  locked t (fun () ->
      (match Hashtbl.find_opt t.by_name name with
      | Some { metric = M_counter _; _ } | None -> ()
      | Some _ -> kind_error name);
      if Hashtbl.mem t.by_name name then
        Hashtbl.replace t.by_name name
          { name; help; labels = []; metric = M_counter c }
      else register t ~key:name name help [] (M_counter c))

let find t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_name name with
      | Some e -> Some e
      | None -> find_base_locked t name)

(* Collect hooks run right before a registry is exposed, so sampled
   state (GC gauges, uptime, domain utilization) is fresh on every
   scrape without the hot path maintaining it. Registration takes the
   lock; [collect] runs the hooks outside it — a hook typically
   interns/sets gauges, which re-enters the registry. *)
let on_collect t hook =
  locked t (fun () -> t.collect_hooks <- hook :: t.collect_hooks)

let collect t =
  let hooks = locked t (fun () -> List.rev t.collect_hooks) in
  List.iter (fun hook -> hook ()) hooks

(* Snapshot under the lock, then visit outside it, so [f] may intern
   further instruments without deadlocking. *)
let to_list t =
  locked t (fun () ->
      List.filter_map
        (fun name -> Hashtbl.find_opt t.by_name name)
        (List.rev t.order_rev))

let iter t f = List.iter f (to_list t)
