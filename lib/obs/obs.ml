module Counter = Olar_util.Timer.Counter

type ctx = {
  metrics : Metrics.t;
  tracing : Trace.Sharded.sharded option;
  sink : Sink.t option;
  clock : unit -> float;
  start_s : float; (* clock reading at [create]; anchors uptime *)
  queries : Counter.t;
  vertices_visited : Counter.t;
  heap_pops : Counter.t;
}

(* [t = ctx option] is exposed concretely so the engine can dispatch with
   a bare [match]: the [None] arm runs the uninstrumented body and
   allocates nothing — closures for the instrumented path are only
   built inside the [Some] arm. *)
type t = ctx option

let disabled : t = None

let counter ctx ?help name = Metrics.counter ctx.metrics ?help name
let gauge ctx ?help ?labels name = Metrics.gauge ctx.metrics ?help ?labels name

(* Process-level gauges are sampled, not incrementally maintained.
   Registered as a collect hook in [create], so any exposition of the
   registry refreshes them; callers may also invoke it directly. *)
let update_runtime_gauges ctx =
  let s = Gc.quick_stat () in
  Metrics.Gauge.set_int
    (gauge ctx ~help:"Minor collections since process start"
       "olar_gc_minor_collections_total")
    s.Gc.minor_collections;
  Metrics.Gauge.set_int
    (gauge ctx ~help:"Major collection cycles since process start"
       "olar_gc_major_collections_total")
    s.Gc.major_collections;
  Metrics.Gauge.set_int
    (gauge ctx ~help:"Major-heap size in words" "olar_heap_words")
    s.Gc.heap_words;
  Metrics.Gauge.set
    (gauge ctx ~help:"Seconds since this context was created"
       "olar_uptime_seconds")
    (ctx.clock () -. ctx.start_s)

let create ?(clock = Unix.gettimeofday) ?trace () : t =
  let metrics = Metrics.create () in
  let queries =
    Metrics.counter metrics ~help:"Online queries served" "olar_queries_total"
  in
  let vertices_visited =
    Metrics.counter metrics
      ~help:"Lattice vertices expanded by traversal kernels"
      "olar_query_vertices_visited_total"
  in
  let heap_pops =
    Metrics.counter metrics
      ~help:"Best-first heap pops in support queries"
      "olar_query_heap_pops_total"
  in
  let tracing =
    Option.map
      (fun sink -> Trace.Sharded.create ~clock ~emit:(Sink.emit sink) ())
      trace
  in
  let ctx =
    {
      metrics;
      tracing;
      sink = trace;
      clock;
      start_s = clock ();
      queries;
      vertices_visited;
      heap_pops;
    }
  in
  (* Exposition triggers [Metrics.collect], so a one-shot CLI run that
     renders the registry (olar metrics, --metrics) sees live GC/heap/
     uptime gauges without anyone remembering to sample them first. *)
  Metrics.on_collect metrics (fun () -> update_runtime_gauges ctx);
  Some ctx

let metrics ctx = ctx.metrics
let tracing ctx = ctx.tracing
let tracer ctx = Option.map Trace.Sharded.tracer ctx.tracing

(* Merge every domain's buffered spans into the sink, then flush the
   sink itself. Call from one coordinator thread. *)
let flush ctx =
  Option.iter Trace.Sharded.flush ctx.tracing;
  Option.iter Sink.flush ctx.sink
let flush_opt = function None -> () | Some ctx -> flush ctx

(* Which work counter a query kernel reports through its [?work] arg. *)
type work =
  | Vertices
  | Heap_pops
  | No_work

let work_counter ctx = function
  | Vertices -> Some ctx.vertices_visited
  | Heap_pops -> Some ctx.heap_pops
  | No_work -> None

let span ctx name ?attrs f =
  match ctx.tracing with
  | None -> f ()
  | Some sh -> Trace.with_span (Trace.Sharded.tracer sh) name ?attrs f

let maybe_span obs name ?attrs f =
  match obs with
  | None -> f ()
  | Some ctx -> span ctx name ?attrs f

(* One query entry point: counts the query, times it into a per-entry
   histogram, reports the work delta, and wraps it all in a trace span
   when tracing is on. [f] receives the [?work] argument to pass down to
   the kernel. *)
let query_span ctx ~name ~work f =
  Counter.incr ctx.queries;
  let hist =
    Metrics.histogram ctx.metrics
      ~help:("Latency of " ^ name ^ " queries")
      ("olar_query_" ^ name ^ "_seconds")
  in
  let counter = work_counter ctx work in
  let before = match counter with Some c -> Counter.value c | None -> 0 in
  let run () =
    let t0 = ctx.clock () in
    Fun.protect
      ~finally:(fun () -> Metrics.Histogram.observe hist (ctx.clock () -. t0))
      (fun () -> f counter)
  in
  match ctx.tracing with
  | None -> run ()
  | Some sh ->
    let attrs () =
      match counter with
      | None -> []
      | Some c -> [ ("work", Trace.Int (Counter.value c - before)) ]
    in
    Trace.with_span (Trace.Sharded.tracer sh) ("query." ^ name) ~attrs run

let attach_counter ctx ?help ?name c = Metrics.attach_counter ctx.metrics ?help ?name c

let set_build_info ctx ~version =
  Metrics.Gauge.set
    (gauge ctx ~help:"Constant 1; build metadata lives in the labels"
       ~labels:[ ("version", version) ]
       "olar_build_info")
    1.0
