(** Minimal JSON values with a printer and a strict parser.

    The observability layer emits machine-readable output (trace spans,
    registry dumps, bench results) and the CI checker re-parses it; both
    sides go through this module so the repo needs no external JSON
    dependency. Printing is compact (no whitespace); numbers keep
    int/float identity where the text allows it; [nan] and infinities
    have no JSON representation and degrade to [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [to_string v] is the compact JSON text of [v]. *)
val to_string : t -> string

(** [to_buffer buf v] appends the compact JSON text of [v] to [buf]. *)
val to_buffer : Buffer.t -> t -> unit

(** [of_string s] parses one JSON document, rejecting trailing garbage.
    Escapes (including surrogate pairs) are decoded to UTF-8. Integer
    literals without fraction or exponent parse as [Int]; everything
    else numeric parses as [Float]. *)
val of_string : string -> (t, string) result

(** {1 Accessors for checkers and tests} *)

(** [member k v] is the value under key [k] when [v] is an object. *)
val member : string -> t -> t option

(** [path ks v] follows a key path through nested objects. *)
val path : string list -> t -> t option

(** [number v] is the numeric value of an [Int] or [Float]. *)
val number : t -> float option

val to_list : t -> t list option
val to_str : t -> string option
