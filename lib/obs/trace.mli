(** Nested trace spans with wall-clock attribution.

    A tracer maintains a stack of open spans; closing a span emits it to
    a caller-supplied [emit] function (see {!Sink} for ready-made
    destinations). Spans are emitted at close time, so children reach
    the sink before their parents — consumers rebuild the tree from the
    [parent] ids, which are assigned in open order. *)

type value =
  | Int of int
  | Float of float
  | Str of string

type span = {
  id : int;  (** unique within one tracer, assigned in open order *)
  parent : int option;
  depth : int;  (** 0 for root spans *)
  name : string;
  start_s : float;  (** clock reading at open *)
  duration_s : float;
  attrs : (string * value) list;
}

type t

(** [create ~emit ()] is a tracer delivering closed spans to [emit].
    [clock] defaults to [Unix.gettimeofday]; inject a fake for
    deterministic tests. *)
val create : ?clock:(unit -> float) -> emit:(span -> unit) -> unit -> t

(** [with_span t name f] runs [f ()] inside a span. [attrs] is evaluated
    once, at close time (after [f] returns), so attributes can report
    work done inside the span. The span is emitted even if [f] raises;
    if the [attrs] thunk itself raises, the span still closes, carrying
    an [attrs_error] attribute instead of the thunk's result. *)
val with_span : t -> string -> ?attrs:(unit -> (string * value) list) -> (unit -> 'a) -> 'a

(** Lower-level pairing for callers that cannot use a closure. [exit]
    raises [Invalid_argument] if [id] is not an open span. If [id] is
    open but not innermost (an exception escaped a manually paired
    [enter] deeper in the stack), the abandoned descendants are closed
    first — child-first, each tagged with an [abandoned] attribute — so
    emission order stays consistent for consumers rebuilding the tree. *)
val enter : t -> string -> int

val exit : t -> id:int -> (string * value) list -> unit

(** [depth t] is the number of currently open spans. *)
val depth : t -> int
