(** Nested trace spans with wall-clock attribution.

    A tracer maintains a stack of open spans; closing a span emits it to
    a caller-supplied [emit] function (see {!Sink} for ready-made
    destinations). Spans are emitted at close time, so children reach
    the sink before their parents — consumers rebuild the tree from the
    [parent] ids, which are assigned in open order. *)

type value =
  | Int of int
  | Float of float
  | Str of string

type span = {
  id : int;  (** unique within one tracer, assigned in open order *)
  parent : int option;
  depth : int;  (** 0 for root spans *)
  name : string;
  start_s : float;  (** clock reading at open *)
  duration_s : float;
  attrs : (string * value) list;
}

type t

(** [create ~emit ()] is a tracer delivering closed spans to [emit].
    [clock] defaults to [Unix.gettimeofday]; inject a fake for
    deterministic tests. [alloc] overrides the span-id allocator (by
    default a private counter starting at 0) — {!Sharded} uses it to
    hand each per-domain tracer a disjoint id block. *)
val create :
  ?clock:(unit -> float) ->
  ?alloc:(unit -> int) ->
  emit:(span -> unit) ->
  unit ->
  t

(** [with_span t name f] runs [f ()] inside a span. [attrs] is evaluated
    once, at close time (after [f] returns), so attributes can report
    work done inside the span. The span is emitted even if [f] raises;
    if the [attrs] thunk itself raises, the span still closes, carrying
    an [attrs_error] attribute instead of the thunk's result. *)
val with_span : t -> string -> ?attrs:(unit -> (string * value) list) -> (unit -> 'a) -> 'a

(** Lower-level pairing for callers that cannot use a closure. [exit]
    raises [Invalid_argument] if [id] is not an open span. If [id] is
    open but not innermost (an exception escaped a manually paired
    [enter] deeper in the stack), the abandoned descendants are closed
    first — child-first, each tagged with an [abandoned] attribute — so
    emission order stays consistent for consumers rebuilding the tree. *)
val enter : t -> string -> int

val exit : t -> id:int -> (string * value) list -> unit

(** [depth t] is the number of currently open spans. *)
val depth : t -> int

(** Domain-safe tracing: one stack tracer per domain, each writing into
    its own mutex-protected buffer, merged into the downstream [emit] by
    {!Sharded.flush} on a coordinator thread.

    Each shard draws span ids from a disjoint block ([slot * 2^40]), so
    ids are unique across domains and a span's parentage is unambiguous
    after the merge. Every buffered span is tagged with a [("domain",
    Int d)] attribute identifying the domain that produced it. Flush
    emits shard by shard in interning order, each shard's spans in
    emission (child-first) order — so per-domain child-first ordering
    survives the merge even though spans from different domains
    interleave at shard granularity.

    The per-domain stack tracer is still single-threaded: when several
    systhreads share a domain (e.g. socket threads on domain 0), only
    one of them may use {!tracer}'s enter/exit stack; the others must
    use {!inject}, which never touches a stack. *)
module Sharded : sig
  type sharded

  val create : ?clock:(unit -> float) -> emit:(span -> unit) -> unit -> sharded

  (** The calling domain's tracer, interned on first use. Spans it
      closes are buffered in this domain's shard until {!flush}. *)
  val tracer : sharded -> t

  (** Reserve a span id from the calling domain's block without opening
      a span — for callers that build a parent span after its children
      (e.g. a request root emitted once the response is written). *)
  val alloc_id : sharded -> int

  (** [inject s ~depth ~name ~start_s ~duration_s attrs] appends a
      fully-formed span to the calling domain's buffer, bypassing the
      stack. [id] defaults to a freshly allocated one; pass an
      {!alloc_id}-reserved id to emit a parent after its children.
      Returns the span's id. Safe from any thread. *)
  val inject :
    sharded ->
    ?id:int ->
    ?parent:int ->
    depth:int ->
    name:string ->
    start_s:float ->
    duration_s:float ->
    (string * value) list ->
    int

  (** Drain every shard's buffer into the downstream [emit], shard by
      shard in interning order. Call from one coordinator thread; spans
      emitted concurrently land in the next flush. *)
  val flush : sharded -> unit

  (** Number of shards interned so far (= distinct domains seen). *)
  val shards : sharded -> int
end
