(** Sliding-window aggregation over interned metric cells.

    Everything in {!Metrics} is cumulative-since-start: after an hour
    of uptime, a ten-second burst of shed requests moves the counters
    by an invisible fraction. A [Window.t] is a ring of bucket
    boundaries (default 60 × 1 s) holding {e snapshots} of existing
    instruments, so the serving stack can answer "what happened over
    the last minute": windowed rates for counters, rolling
    p50/p90/p99 for histograms.

    The design is snapshot-based on purpose: the query/serving hot
    path keeps bumping the very same interned {!Metrics} cells it
    already bumps — attaching a window adds {b zero} work per
    observation (and when observability is disabled no window exists
    at all). A periodic {!tick} — the serving daemon's sampler thread,
    at most once per bucket width — copies each tracked instrument's
    cumulative state into the newest ring slot; windowed readings diff
    the current state against the oldest in-range boundary.

    {2 Semantics}

    [tick] pushes a boundary (timestamp + snapshots) whenever at least
    [width_s] has elapsed since the newest boundary; creation pushes
    the first. The ring retains the newest [buckets] boundaries. A
    windowed reading at time [now] measures from the {b start
    boundary}: the oldest retained boundary with
    [time >= now - span_s] — or, when every retained boundary is older
    (the ticker stalled, the clock jumped), the {e newest} boundary,
    so a reading after a gap covers a short fresh window rather than a
    stale long one. Readings are exact diffs of cumulative state, not
    estimates: windowed count = current count − count at the start
    boundary.

    Thread-safety: [tick] and every reading take the window's mutex;
    tracked instruments stay lock-free. Call [tick] from one sampler
    thread; read from any thread. *)

module Counter = Olar_util.Timer.Counter

type t

(** [create ()] is an empty window ring with one boundary at the
    current clock reading. [buckets] (default 60) and [width_s]
    (default 1.0) size the ring: the window spans up to
    [buckets * width_s] seconds. [clock] defaults to
    {!Olar_util.Timer.monotonic_s}; inject a fake for deterministic
    tests. Raises [Invalid_argument] when [buckets < 1] or
    [width_s <= 0]. *)
val create : ?clock:(unit -> float) -> ?buckets:int -> ?width_s:float -> unit -> t

(** [span_s t] is [buckets * width_s] — the maximum window coverage. *)
val span_s : t -> float

(** [covered_s t] is the seconds actually covered by a reading taken
    now: clock minus the start boundary's time (less than {!span_s}
    while the ring warms up or right after a stall). *)
val covered_s : t -> float

(** [tick t] pushes a new boundary if at least [width_s] has elapsed
    since the newest one, snapshotting every tracked instrument;
    otherwise it is a cheap no-op. *)
val tick : t -> unit

(** A counter tracked by a window. *)
type counter_view

(** A histogram tracked by a window. *)
type histogram_view

(** [track_counter t c] starts windowing [c]. Boundaries already in
    the ring are back-filled with the counter's current value, so the
    view's deltas count only from attachment. *)
val track_counter : t -> Counter.t -> counter_view

val track_histogram : t -> Metrics.Histogram.t -> histogram_view

(** [counter_delta v] is the events recorded over the window (current
    value minus the start boundary's snapshot, clamped at 0 so an
    external [Counter.reset] cannot yield a negative reading). *)
val counter_delta : counter_view -> int

(** [counter_rate v] is {!counter_delta} divided by the covered
    seconds; [0.] when the window covers no time yet. *)
val counter_rate : counter_view -> float

(** One windowed histogram reading. Quantiles follow
    {!Metrics.Histogram.quantile}: bucket-upper-bound estimates,
    [nan] when the window holds no samples, [infinity] when the
    quantile falls in the overflow bucket. *)
type hist_window = {
  count : int;  (** samples observed over the window *)
  sum : float;  (** their summed value *)
  rate : float;  (** samples per covered second *)
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram_window : histogram_view -> hist_window

(** [histogram_quantile v q] is the windowed [q]-quantile alone.
    Raises [Invalid_argument] unless [0. <= q <= 1.]. *)
val histogram_quantile : histogram_view -> float -> float
