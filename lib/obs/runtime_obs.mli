(** GC pause attribution from the OCaml 5 eventring.

    A consumer over [Runtime_events] that turns the runtime's own
    instrumentation into metrics: per-domain minor/major pause
    histograms ([olar_gc_pause_seconds{domain="0"}]), per-domain
    collection counters, and a bounded ring of recent pauses that the
    serving layer queries to taint slow requests whose execute phase
    overlapped a GC pause.

    The consumer does not own a thread: [olar serve] polls it from its
    GC-observer systhread; one-shot tools may poll it inline. All
    public operations are safe to call from any thread — the pause
    ring and clock calibration are mutex-protected, and the metric
    instruments are the registry's atomics — but [poll] itself must
    only run from one thread at a time (the cursor is not shared).

    Eventring timestamps are [CLOCK_MONOTONIC] nanoseconds, a
    different epoch from the wall-ish clock the serving stack stamps
    requests with. [start] bridges the two with a calibration user
    event: it writes a registered unit event, brackets the write with
    readings of [clock], and the first [poll] that sees the event
    computes [offset = mid(wall window) - ring timestamp]. Until that
    first poll completes, {!pause_overlapping} answers [None]
    (uncalibrated beats wrongly calibrated). [calibrate] may be called
    again at any time to refresh the offset against clock drift. *)

type t

(** [start ~metrics ()] enables this process's eventring
    ([Runtime_events.start]), attaches a consumer cursor, interns the
    GC metric instruments in [metrics], and writes the first
    calibration event. [clock] (default [Unix.gettimeofday]) must be
    the same clock the caller stamps request phases with, else
    {!pause_overlapping} windows are meaningless. [ring_capacity]
    bounds the recent-pause ring (default 512 pauses; older entries
    are overwritten). Raises [Failure] if the eventring cannot be
    started. *)
val start :
  metrics:Metrics.t ->
  ?clock:(unit -> float) ->
  ?ring_capacity:int ->
  unit ->
  t

(** [poll t] drains pending events, updating histograms, counters and
    the pause ring; returns the number of events consumed. Call from
    one thread only. *)
val poll : t -> int

(** [calibrate t] writes a fresh clock-sync event; the pairing happens
    on a later [poll]. *)
val calibrate : t -> unit

(** [calibrated t] is true once at least one calibration pair has been
    observed. *)
val calibrated : t -> bool

(** [pause_overlapping t ~t0 ~t1 ()] is the longest recorded GC pause
    whose span overlaps the wall-clock interval [\[t0, t1\]], in
    seconds — [None] when no pause overlaps or the clock offset is not
    yet calibrated. [domain] restricts the match to one eventring
    domain slot; omitted, any domain counts, which is the right
    default for pause-tainting requests: OCaml 5 minor collections are
    stop-the-world across domains, and [Domain.self]'s unique id (what
    the serving layer stamps on tickets) is not the eventring slot, so
    a cross-clock exact-domain match would be spuriously precise. *)
val pause_overlapping :
  t -> ?domain:int -> t0:float -> t1:float -> unit -> float option

(** The cross-domain aggregate pause histogram. Not registered in the
    metrics registry (the per-domain [olar_gc_pause_seconds{domain=…}]
    series are the exposition truth; an unlabelled twin would
    double-count in aggregations) — exposed so the server can attach
    it to a sliding {!Window} for rolling pause quantiles. *)
val pauses : t -> Metrics.Histogram.t

(** Total pauses recorded since [start] (all domains, minor + major) —
    a cheap liveness probe for tests and /statusz. *)
val pause_count : t -> int

(** [stop t] frees the consumer cursor. The eventring itself stays on
    (other consumers may be attached); [poll] after [stop] is a no-op
    returning 0. *)
val stop : t -> unit
