(* Three views over one registry: human text, JSON, and Prometheus text
   exposition (version 0.0.4 of the format). *)

let quantiles = [ 0.5; 0.9; 0.99 ]

(* ------------------------------------------------------------------ *)
(* Human-readable table *)

let pp_value ppf v =
  if Float.is_nan v then Format.fprintf ppf "-"
  else if Float.abs v = Float.infinity then Format.fprintf ppf "+Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.6g" v

(* Constant labels render the same way in the text table as in the
   Prometheus exposition: [name{k="v",...}]. *)
let labelled name labels =
  match labels with
  | [] -> name
  | kvs ->
    name ^ "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
    ^ "}"

let pp ppf registry =
  Metrics.collect registry;
  Metrics.iter registry (fun { Metrics.name; labels; metric; _ } ->
      let name = labelled name labels in
      match metric with
      | Metrics.M_counter c ->
        Format.fprintf ppf "%-44s %d@." name (Metrics.Counter.value c)
      | Metrics.M_gauge g ->
        Format.fprintf ppf "%-44s %a@." name pp_value (Metrics.Gauge.value g)
      | Metrics.M_histogram h ->
        Format.fprintf ppf "%-44s count=%d mean=%a" name
          (Metrics.Histogram.count h) pp_value (Metrics.Histogram.mean h);
        List.iter
          (fun q ->
            Format.fprintf ppf " p%g=%a" (q *. 100.0) pp_value
              (Metrics.Histogram.quantile h q))
          quantiles;
        Format.fprintf ppf "@.")

let to_text registry = Format.asprintf "%a" pp registry

(* ------------------------------------------------------------------ *)
(* JSON *)

let histogram_json h =
  let open Jsonx in
  Obj
    ([
       ("type", Str "histogram");
       ("count", Int (Metrics.Histogram.count h));
       ("sum", Float (Metrics.Histogram.sum h));
       ("mean", Float (Metrics.Histogram.mean h));
     ]
    @ List.map
        (fun q ->
          ( Printf.sprintf "p%g" (q *. 100.0),
            Float (Metrics.Histogram.quantile h q) ))
        quantiles)

let to_json registry =
  Metrics.collect registry;
  let fields = ref [] in
  Metrics.iter registry (fun { Metrics.name; labels; metric; _ } ->
      let v =
        match metric with
        | Metrics.M_counter c -> Jsonx.Int (Metrics.Counter.value c)
        | Metrics.M_gauge g -> Jsonx.Float (Metrics.Gauge.value g)
        | Metrics.M_histogram h -> histogram_json h
      in
      let v =
        match labels with
        | [] -> v
        | kvs ->
          Jsonx.Obj
            [
              ("labels", Jsonx.Obj (List.map (fun (k, l) -> (k, Jsonx.Str l)) kvs));
              ("value", v);
            ]
      in
      fields := (name, v) :: !fields);
  Jsonx.Obj (List.rev !fields)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition *)

let sanitize_name name =
  let buf = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char buf c
      | '0' .. '9' when i > 0 -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  if Buffer.length buf = 0 then "_" else Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_prometheus registry =
  Metrics.collect registry;
  let buf = Buffer.create 1024 in
  (* With labelled series, one metric name may appear as several entries
     (olar_http_phase_seconds{phase="..."}); HELP/TYPE must be emitted
     once per name, before its first series. *)
  let announced = Hashtbl.create 16 in
  let header name help kind =
    if not (Hashtbl.mem announced name) then begin
      Hashtbl.add announced name ();
      if help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let render_labels kvs =
    match kvs with
    | [] -> ""
    | kvs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label v))
             kvs)
      ^ "}"
  in
  Metrics.iter registry (fun { Metrics.name; help; labels; metric } ->
      let name = sanitize_name name in
      let series = name ^ render_labels labels in
      match metric with
      | Metrics.M_counter c ->
        header name help "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" series (Metrics.Counter.value c))
      | Metrics.M_gauge g ->
        header name help "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" series (prom_float (Metrics.Gauge.value g)))
      | Metrics.M_histogram h ->
        header name help "histogram";
        (* A labelled histogram merges its constant labels with the
           per-bucket [le]: name_bucket{phase="parse",le="0.001"}. *)
        let bucket_labels le = render_labels (labels @ [ ("le", le) ]) in
        let bounds = Metrics.Histogram.bounds h in
        let counts = Metrics.Histogram.counts h in
        let cum = ref 0 in
        Array.iteri
          (fun i b ->
            cum := !cum + counts.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (bucket_labels (prom_float b))
                 !cum))
          bounds;
        cum := !cum + counts.(Array.length counts - 1);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" name (bucket_labels "+Inf") !cum);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
             (prom_float (Metrics.Histogram.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
             (Metrics.Histogram.count h)));
  Buffer.contents buf
