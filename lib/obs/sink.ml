type t = {
  emit : Trace.span -> unit;
  flush : unit -> unit;
}

let emit t span = t.emit span
let flush t = t.flush ()

(* The null sink never allocates per span; both closures are shared. *)
let null =
  let nop_span (_ : Trace.span) = () in
  let nop () = () in
  { emit = nop_span; flush = nop }

let memory () =
  let spans = ref [] in
  ( { emit = (fun s -> spans := s :: !spans); flush = (fun () -> ()) },
    fun () -> List.rev !spans )

let value_to_json : Trace.value -> Jsonx.t = function
  | Trace.Int i -> Jsonx.Int i
  | Trace.Float f -> Jsonx.Float f
  | Trace.Str s -> Jsonx.Str s

let span_to_json (s : Trace.span) =
  Jsonx.Obj
    [
      ("id", Jsonx.Int s.id);
      ("parent", match s.parent with Some p -> Jsonx.Int p | None -> Jsonx.Null);
      ("depth", Jsonx.Int s.depth);
      ("name", Jsonx.Str s.name);
      ("start_s", Jsonx.Float s.start_s);
      ("duration_s", Jsonx.Float s.duration_s);
      ("attrs", Jsonx.Obj (List.map (fun (k, v) -> (k, value_to_json v)) s.attrs));
    ]

let jsonl_writer ?(flush = fun () -> ()) write =
  {
    emit =
      (fun s ->
        write (Jsonx.to_string (span_to_json s));
        write "\n");
    flush;
  }

let jsonl oc =
  jsonl_writer ~flush:(fun () -> Stdlib.flush oc) (Stdlib.output_string oc)
