(** Metrics registry: counters, gauges, and log-scale latency histograms.

    A registry is a name-indexed collection of metric instruments that the
    engine and CLI expose through {!Exposition}. Counters are the repo's
    existing {!Olar_util.Timer.Counter} — the registry adopts them rather
    than wrapping them, so the query kernels' [?work] threading and the
    registry observe the very same cells (no dual bookkeeping).

    Instruments are interned by (name, labels): asking twice for the
    same name and constant labels returns the same instrument; distinct
    label sets under one name are distinct series (the Prometheus
    model, e.g. [olar_http_phase_seconds{phase="parse"}] vs
    [{phase="queue"}]). An unlabelled request that finds no exact match
    falls back to the first registered series of that name, so
    label-unaware callers keep finding labelled cells. Asking for an
    existing name with a different kind raises [Invalid_argument].

    Domain safety: every instrument stores its state in [Atomic.t]
    cells (counters via {!Olar_util.Timer.Counter}, gauge values,
    histogram buckets/sum/total), and the registry's name table is
    mutex-protected, so one registry may be shared by all domains of a
    serving pool. Exposition reads are per-instrument snapshots — no
    cross-instrument consistency is claimed. *)

module Counter = Olar_util.Timer.Counter

(** A gauge is a point-in-time float (lattice size, memory estimate). *)
module Gauge : sig
  type t

  val create : string -> t
  val name : t -> string
  val set : t -> float -> unit
  val set_int : t -> int -> unit
  val value : t -> float

  (** [max_float g v] raises the cell to [v] unless it is already
      higher — a lock-free monotone maximum (CAS loop), safe against
      racing writers where a read-then-[set] would lose updates. Used
      for high-water marks like the admission queue's depth peak. *)
  val max_float : t -> float -> unit

  val max_int : t -> int -> unit
end

(** Fixed-bucket histogram with logarithmic default bounds, sized for
    latencies in seconds: 46 buckets spanning 1µs to 1000s at five per
    decade, plus an overflow bucket. [observe] is allocation-free (a
    binary search over the bound array plus three mutations). *)
module Histogram : sig
  type t

  (** [log_bounds ?lo ?decades ?per_decade ()] is the default bound
      array: [lo *. 10. ** (i /. per_decade)] for [i] in
      [0 .. decades * per_decade]. Defaults: [lo = 1e-6], [decades = 9],
      [per_decade = 5]. *)
  val log_bounds : ?lo:float -> ?decades:int -> ?per_decade:int -> unit -> float array

  (** [of_bounds name bounds] requires strictly increasing [bounds];
      raises [Invalid_argument] otherwise. *)
  val of_bounds : string -> float array -> t

  val create : ?lo:float -> ?decades:int -> ?per_decade:int -> string -> t
  val name : t -> string

  (** [observe h v] records one sample. Allocation-free and safe to
      call from several domains at once (atomic bucket/total bumps; the
      float sum is a CAS loop). *)
  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float

  (** [mean h] is [nan] when empty. *)
  val mean : t -> float

  (** [bounds h] and [counts h] are copies; [counts] has one more slot
      than [bounds] — the final slot counts overflow samples. *)
  val bounds : t -> float array

  val counts : t -> int array

  (** [quantile h q] is the upper bound of the smallest bucket at which
      the cumulative count reaches [q * total] — an upper-bound estimate
      in the Prometheus style. Overflow samples report [infinity]; an
      empty histogram reports [nan]. Raises [Invalid_argument] unless
      [0. <= q <= 1.]. *)
  val quantile : t -> float -> float

  (** [quantile_of ~bounds ~counts q] is the same walk over an explicit
      counts array (one more slot than [bounds]; the final slot is
      overflow) — the primitive {!Window} uses to take quantiles of
      windowed (diffed) bucket counts. Raises [Invalid_argument] on a
      length mismatch or [q] outside [0, 1]. *)
  val quantile_of : bounds:float array -> counts:int array -> float -> float
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type entry = {
  name : string;
  help : string;
  labels : (string * string) list;
      (** constant key/value pairs rendered on every exposition of the
          metric (e.g. [olar_build_info{version="1.4.0"}]); empty for
          most instruments *)
  metric : metric;
}

type t

val create : unit -> t

(** [counter t name] interns a counter. [help] is kept from the first
    registration. [labels] selects a labelled series of [name], as for
    {!gauge} (e.g. the per-domain GC collection counters). *)
val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t

(** [gauge t name] interns a gauge. [labels] (constant key/value pairs,
    in the Prometheus style) selects a labelled series of [name]; the
    same name with different labels is a different cell. *)
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

(** [histogram t name] interns a histogram with {!Histogram.log_bounds}
    defaults unless [bounds] is given (only consulted on first
    registration). [labels] selects a labelled series of [name], as for
    {!gauge}. *)
val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?bounds:float array ->
  string ->
  Histogram.t

(** [attach_counter t c] registers an externally created counter under
    [name] (default: [Counter.name c]). The attached counter IS the
    registered metric — mutations made through the original handle are
    visible in the registry. A second attach under the same name
    replaces the metric but keeps its registration order slot. *)
val attach_counter : t -> ?help:string -> ?name:string -> Counter.t -> unit

(** [find t name] is the entry registered under [name] — for a name
    that only exists as labelled series, the first registered one. *)
val find : t -> string -> entry option

(** [on_collect t hook] registers [hook] to run at every {!collect} —
    i.e. right before the registry is exposed. Hooks refresh sampled
    state (GC/heap/uptime gauges, pool utilization) so one-shot CLI
    runs and scrapes alike see current values without any caller
    remembering to sample first. Hooks run in registration order,
    outside the registry lock (they may intern instruments), and must
    not raise. *)
val on_collect : t -> (unit -> unit) -> unit

(** [collect t] runs the registered hooks. {!Exposition} calls this
    before rendering any format. *)
val collect : t -> unit

(** [iter t f] visits entries in registration order. *)
val iter : t -> (entry -> unit) -> unit

val to_list : t -> entry list
