module RE = Runtime_events

(* The clock-sync user event is registered once per process:
   [Runtime_events.User.register] owns a global name table, and tests
   start/stop several servers in one binary. *)
type RE.User.tag += Clock_sync

let clock_sync_ev =
  lazy (RE.User.register "olar.clock_sync" Clock_sync RE.Type.unit)

(* One recorded pause, in eventring time (CLOCK_MONOTONIC ns). Wall
   conversion happens at query time so pauses recorded before the
   first calibration pair still become attributable afterwards. *)
type pause = {
  dom : int;
  t0_ns : int64;
  t1_ns : int64;
}

type kind =
  | Minor
  | Major

(* Per-domain instruments, interned lazily the first time a domain
   reports a pause. *)
type dom_cells = {
  hist : Metrics.Histogram.t;
  minor : Metrics.Counter.t;
  major : Metrics.Counter.t;
}

type t = {
  metrics : Metrics.t;
  clock : unit -> float;
  mutable cursor : RE.cursor option; (* None once stopped *)
  callbacks : RE.Callbacks.t Lazy.t;
  all_pauses : Metrics.Histogram.t;
      (* cross-domain aggregate, deliberately NOT registered: the
         per-domain series are the exposition truth, and a registered
         unlabelled twin would double-count in PromQL sums. The server
         window-tracks this cell for its rolling GC pause p99. *)
  (* poller-thread-only state *)
  opens : (int * kind, int64) Hashtbl.t; (* (domain, kind) -> begin ts *)
  cells : (int, dom_cells) Hashtbl.t;
  (* shared state: pause ring + calibration, guarded by [mu] *)
  mu : Mutex.t;
  ring : pause array;
  mutable ring_len : int; (* pauses recorded; slot = (len-1) mod cap *)
  mutable pending_mid : float list; (* wall midpoints of unseen sync writes, oldest first *)
  mutable offset_s : float option; (* wall = ring_seconds + offset *)
  lost : Metrics.Counter.t;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let no_pause = { dom = -1; t0_ns = 0L; t1_ns = 0L }

let dom_cells t dom =
  match Hashtbl.find_opt t.cells dom with
  | Some c -> c
  | None ->
    let labels = [ ("domain", string_of_int dom) ] in
    let c =
      {
        hist =
          Metrics.histogram t.metrics ~labels
            ~help:"GC pause durations from the runtime eventring"
            "olar_gc_pause_seconds";
        minor =
          Metrics.counter t.metrics ~labels
            ~help:"Minor collections observed on the eventring"
            "olar_gc_minor_total";
        major =
          Metrics.counter t.metrics ~labels
            ~help:"Major GC slices observed on the eventring"
            "olar_gc_major_total";
      }
    in
    Hashtbl.add t.cells dom c;
    c

let record_pause t dom kind t0_ns t1_ns =
  let dur_s = Int64.to_float (Int64.sub t1_ns t0_ns) *. 1e-9 in
  let cells = dom_cells t dom in
  Metrics.Histogram.observe cells.hist dur_s;
  Metrics.Histogram.observe t.all_pauses dur_s;
  Metrics.Counter.incr (match kind with Minor -> cells.minor | Major -> cells.major);
  locked t (fun () ->
      t.ring.(t.ring_len mod Array.length t.ring) <- { dom; t0_ns; t1_ns };
      t.ring_len <- t.ring_len + 1)

let kind_of_phase = function
  | RE.EV_MINOR -> Some Minor
  | RE.EV_MAJOR -> Some Major
  | _ -> None

let on_begin t ring_id ts phase =
  match kind_of_phase phase with
  | None -> ()
  | Some k -> Hashtbl.replace t.opens (ring_id, k) (RE.Timestamp.to_int64 ts)

let on_end t ring_id ts phase =
  match kind_of_phase phase with
  | None -> ()
  | Some k -> (
    let key = (ring_id, k) in
    match Hashtbl.find_opt t.opens key with
    | None -> () (* begin predates our cursor; skip the partial span *)
    | Some t0_ns ->
      Hashtbl.remove t.opens key;
      record_pause t ring_id k t0_ns (RE.Timestamp.to_int64 ts))

(* Pair the oldest outstanding sync write with this event's ring
   timestamp. Writes and polls happen on different threads, so the
   pending queue is under the mutex; pairing oldest-first is correct
   because the ring delivers our own writes in order. *)
let on_clock_sync t _ring_id ts ev () =
  match RE.User.tag ev with
  | Clock_sync ->
    locked t (fun () ->
        match t.pending_mid with
        | [] -> ()
        | mid :: rest ->
          t.pending_mid <- rest;
          t.offset_s <-
            Some (mid -. (Int64.to_float (RE.Timestamp.to_int64 ts) *. 1e-9)))
  | _ -> ()

let calibrate t =
  let ev = Lazy.force clock_sync_ev in
  let before = t.clock () in
  RE.User.write ev ();
  let after = t.clock () in
  let mid = (before +. after) /. 2.0 in
  locked t (fun () -> t.pending_mid <- t.pending_mid @ [ mid ])

let start ~metrics ?(clock = Unix.gettimeofday) ?(ring_capacity = 512) () =
  if ring_capacity < 1 then invalid_arg "Runtime_obs.start: ring_capacity < 1";
  (try RE.start ()
   with exn ->
     failwith ("Runtime_obs.start: eventring unavailable: " ^ Printexc.to_string exn));
  let cursor = RE.create_cursor None in
  let rec t =
    {
      metrics;
      clock;
      cursor = Some cursor;
      callbacks =
        lazy
          (RE.Callbacks.create
             ~runtime_begin:(fun ring_id ts phase -> on_begin t ring_id ts phase)
             ~runtime_end:(fun ring_id ts phase -> on_end t ring_id ts phase)
             ~lost_events:(fun _ring_id n -> Metrics.Counter.add t.lost n)
             ()
          |> RE.Callbacks.add_user_event RE.Type.unit (fun ring_id ts ev v ->
                 on_clock_sync t ring_id ts ev v));
      all_pauses = Metrics.Histogram.create "olar_gc_pause_seconds_all";
      opens = Hashtbl.create 16;
      cells = Hashtbl.create 16;
      mu = Mutex.create ();
      ring = Array.make ring_capacity no_pause;
      ring_len = 0;
      pending_mid = [];
      offset_s = None;
      lost =
        Metrics.counter metrics
          ~help:"Eventring events dropped before this consumer read them"
          "olar_gc_events_lost_total";
    }
  in
  calibrate t;
  t

let poll t =
  match t.cursor with
  | None -> 0
  | Some cursor -> RE.read_poll cursor (Lazy.force t.callbacks) None

let calibrated t = locked t (fun () -> t.offset_s <> None)

let pause_count t = locked t (fun () -> t.ring_len)

let pauses t = t.all_pauses

let pause_overlapping t ?domain ~t0 ~t1 () =
  locked t (fun () ->
      match t.offset_s with
      | None -> None
      | Some off ->
        let cap = Array.length t.ring in
        let n = min t.ring_len cap in
        let best = ref None in
        for i = 0 to n - 1 do
          let p = t.ring.((t.ring_len - 1 - i) mod cap) in
          if domain = None || domain = Some p.dom then begin
            let w0 = (Int64.to_float p.t0_ns *. 1e-9) +. off in
            let w1 = (Int64.to_float p.t1_ns *. 1e-9) +. off in
            if w0 <= t1 && w1 >= t0 then begin
              let dur = Int64.to_float (Int64.sub p.t1_ns p.t0_ns) *. 1e-9 in
              match !best with
              | Some b when b >= dur -> ()
              | _ -> best := Some dur
            end
          end
        done;
        !best)

let stop t =
  match t.cursor with
  | None -> ()
  | Some cursor ->
    t.cursor <- None;
    RE.free_cursor cursor
