type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest float form that survives a round-trip; JSON has no
   nan/infinity, so those degrade to null. *)
let float_repr f =
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a string. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | None -> fail "bad \\u escape"
    | Some v ->
      pos := !pos + 4;
      v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' -> Buffer.add_char buf '"'; loop ()
        | '\\' -> Buffer.add_char buf '\\'; loop ()
        | '/' -> Buffer.add_char buf '/'; loop ()
        | 'n' -> Buffer.add_char buf '\n'; loop ()
        | 't' -> Buffer.add_char buf '\t'; loop ()
        | 'r' -> Buffer.add_char buf '\r'; loop ()
        | 'b' -> Buffer.add_char buf '\b'; loop ()
        | 'f' -> Buffer.add_char buf '\012'; loop ()
        | 'u' ->
          let cp = parse_hex4 () in
          let cp =
            (* surrogate pair *)
            if cp >= 0xD800 && cp <= 0xDBFF
               && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = parse_hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              else fail "invalid low surrogate"
            end
            else cp
          in
          (match Uchar.of_int cp with
          | u -> Buffer.add_utf_8_uchar buf u
          | exception Invalid_argument _ -> fail "invalid code point");
          loop ()
        | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    let int_start = !pos in
    digits ();
    if s.[int_start] = '0' && !pos - int_start > 1 then
      fail "leading zero in number";
    let fractional = peek () = Some '.' in
    if fractional then begin
      advance ();
      digits ()
    end;
    let exponent = match peek () with Some ('e' | 'E') -> true | _ -> false in
    if exponent then begin
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    end;
    let text = String.sub s start (!pos - start) in
    if not (fractional || exponent) then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let path keys v =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some v) keys

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let to_str = function Str s -> Some s | _ -> None
