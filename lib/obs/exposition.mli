(** Render a {!Metrics.t} registry as human text, JSON, or
    Prometheus-style text exposition. *)

(** Quantiles reported for histograms in every format: p50, p90, p99. *)
val quantiles : float list

(** Human-readable table, one metric per line in registration order. *)
val pp : Format.formatter -> Metrics.t -> unit

val to_text : Metrics.t -> string

(** One JSON object: counter → int, gauge → float, histogram → object
    with [count]/[sum]/[mean]/[p50]/[p90]/[p99] ([nan] and infinities
    degrade to [null], per {!Jsonx}). *)
val to_json : Metrics.t -> Jsonx.t

(** Prometheus text exposition (format 0.0.4): [# HELP]/[# TYPE]
    comments, cumulative [_bucket{le="..."}] series ending in [+Inf],
    [_sum] and [_count] for histograms. *)
val to_prometheus : Metrics.t -> string

(** {1 Escaping helpers} (exposed for direct testing) *)

(** Maps characters outside [[a-zA-Z0-9_:]] to ['_']; a leading digit is
    also replaced. *)
val sanitize_name : string -> string

(** Escapes backslash and newline for HELP text. *)
val escape_help : string -> string

(** Escapes backslash, newline, and double quote for label values. *)
val escape_label : string -> string
