open Olar_data
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Query = Olar_core.Query
module Support_query = Olar_core.Support_query
module Boundary = Olar_core.Boundary
module Rule = Olar_core.Rule
module Conf = Olar_core.Conf
module Scratch = Olar_core.Scratch
module Obs = Olar_obs.Obs
module Metrics = Olar_obs.Metrics
module Counter = Olar_util.Timer.Counter

(* ------------------------------------------------------------------ *)
(* Canonical query keys                                               *)
(* ------------------------------------------------------------------ *)

type rule_kind = Essential | All | Single

(* One key per canonical query. [K_find] deliberately omits the support
   cut: a single entry per start itemset holds the widest answer seen so
   far (its [floor]) and serves every higher cut as a prefix. Rule
   queries key on the full (kind, start, constraints, thresholds) tuple
   — essential rules are not refinable across minsup because strict
   redundancy depends on which children are large at the lower cut. *)
type key =
  | K_find of Itemset.t
  | K_rules of {
      kind : rule_kind;
      containing : Itemset.t;
      constraints : Boundary.constraints;
      minsup : int;
      minconf : float;
    }
  | K_topk of Itemset.t
  | K_topk_rules of {
      involving : Itemset.t;
      minconf : float;
    }

let constraints_equal a b =
  Itemset.equal a.Boundary.antecedent_includes b.Boundary.antecedent_includes
  && Itemset.equal a.Boundary.consequent_includes b.Boundary.consequent_includes
  && Bool.equal a.Boundary.allow_empty_antecedent b.Boundary.allow_empty_antecedent

let key_equal a b =
  match (a, b) with
  | K_find x, K_find y -> Itemset.equal x y
  | K_rules a, K_rules b ->
    a.kind = b.kind && a.minsup = b.minsup
    && Float.equal a.minconf b.minconf
    && Itemset.equal a.containing b.containing
    && constraints_equal a.constraints b.constraints
  | K_topk x, K_topk y -> Itemset.equal x y
  | K_topk_rules a, K_topk_rules b ->
    Float.equal a.minconf b.minconf && Itemset.equal a.involving b.involving
  | _, _ -> false

let mix h x = ((h * 0x01000193) lxor x) land max_int

let key_hash = function
  | K_find x -> mix 1 (Itemset.hash x)
  | K_rules { kind; containing; constraints; minsup; minconf } ->
    let h = mix 2 (match kind with Essential -> 11 | All -> 13 | Single -> 17) in
    let h = mix h (Itemset.hash containing) in
    let h = mix h (Itemset.hash constraints.Boundary.antecedent_includes) in
    let h = mix h (Itemset.hash constraints.Boundary.consequent_includes) in
    let h = mix h (if constraints.Boundary.allow_empty_antecedent then 1 else 0) in
    let h = mix h minsup in
    mix h (Hashtbl.hash minconf)
  | K_topk x -> mix 3 (Itemset.hash x)
  | K_topk_rules { involving; minconf } ->
    mix (mix 4 (Itemset.hash involving)) (Hashtbl.hash minconf)

module Tbl = Hashtbl.Make (struct
  type t = key

  let equal = key_equal
  let hash = key_hash
end)

(* ------------------------------------------------------------------ *)
(* Payloads and size accounting                                       *)
(* ------------------------------------------------------------------ *)

type payload =
  | P_find of { floor : int; ids : int array }
      (** canonical-order vertex ids at support cut [floor] *)
  | P_rules of Rule.t list
  | P_topk of { exhausted : bool; items : (Itemset.t * int) array }
      (** best-first pops, strongest first; [exhausted] when the run
          drained every itemset containing the start *)
  | P_topk_rules of { exhausted : bool; rules : Rule.t array }
      (** rules in pop order of their generating itemsets *)

(* Rough resident-size estimates in bytes (64-bit words), the same
   spirit as [Lattice.estimated_bytes]: headers cost ~2 words, an
   itemset is a sorted int array, a rule is a 4-field record. *)
let word = 8
let itemset_bytes x = word * (3 + Itemset.cardinal x)

let rule_bytes r =
  word * 5 + itemset_bytes r.Rule.antecedent + itemset_bytes r.Rule.consequent

let entry_overhead = word * 16

let key_bytes = function
  | K_find x | K_topk x -> itemset_bytes x
  | K_rules { containing; constraints; _ } ->
    (word * 8) + itemset_bytes containing
    + itemset_bytes constraints.Boundary.antecedent_includes
    + itemset_bytes constraints.Boundary.consequent_includes
  | K_topk_rules { involving; _ } -> (word * 4) + itemset_bytes involving

let payload_bytes = function
  | P_find { ids; _ } -> word * (3 + Array.length ids)
  | P_rules rules ->
    List.fold_left (fun acc r -> acc + (word * 3) + rule_bytes r) 0 rules
  | P_topk { items; _ } ->
    Array.fold_left
      (fun acc (x, _) -> acc + (word * 4) + itemset_bytes x)
      (word * 3) items
  | P_topk_rules { rules; _ } ->
    Array.fold_left (fun acc r -> acc + word + rule_bytes r) (word * 3) rules

let entry_bytes key payload =
  entry_overhead + key_bytes key + payload_bytes payload

(* ------------------------------------------------------------------ *)
(* Intrusive LRU over a byte budget                                   *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_key : key;
  e_epoch : int;
  mutable e_payload : payload;
  mutable e_bytes : int;
  mutable e_prev : entry option;
  mutable e_next : entry option;
}

type cache = {
  table : entry Tbl.t;
  budget : int;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* eviction end *)
  mutable resident : int;
  hits : Counter.t;
  misses : Counter.t;
  refines : Counter.t;
  evictions : Counter.t;
  resident_gauge : Metrics.Gauge.t option;
  hist_find : Metrics.Histogram.t option;
  hist_rules : Metrics.Histogram.t option;
  hist_topk : Metrics.Histogram.t option;
}

let update_gauge c =
  match c.resident_gauge with
  | None -> ()
  | Some g -> Metrics.Gauge.set_int g c.resident

let unlink c e =
  (match e.e_prev with
  | Some p -> p.e_next <- e.e_next
  | None -> c.head <- e.e_next);
  (match e.e_next with
  | Some n -> n.e_prev <- e.e_prev
  | None -> c.tail <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_front c e =
  e.e_prev <- None;
  e.e_next <- c.head;
  (match c.head with Some h -> h.e_prev <- Some e | None -> c.tail <- Some e);
  c.head <- Some e

let touch c e =
  match c.head with
  | Some h when h == e -> ()
  | _ ->
    unlink c e;
    push_front c e

let remove c e =
  unlink c e;
  Tbl.remove c.table e.e_key;
  c.resident <- c.resident - e.e_bytes

let enforce_budget c =
  let continue = ref true in
  while c.resident > c.budget && !continue do
    match c.tail with
    | None -> continue := false
    | Some e ->
      remove c e;
      Counter.incr c.evictions
  done;
  update_gauge c

let insert c key epoch payload =
  (match Tbl.find_opt c.table key with Some old -> remove c old | None -> ());
  let e =
    {
      e_key = key;
      e_epoch = epoch;
      e_payload = payload;
      e_bytes = entry_bytes key payload;
      e_prev = None;
      e_next = None;
    }
  in
  Tbl.replace c.table key e;
  push_front c e;
  c.resident <- c.resident + e.e_bytes;
  enforce_budget c

(* Widen an entry in place (same key, same epoch, broader payload). *)
let replace_payload c e payload =
  let bytes = entry_bytes e.e_key payload in
  c.resident <- c.resident - e.e_bytes + bytes;
  e.e_payload <- payload;
  e.e_bytes <- bytes;
  touch c e;
  enforce_budget c

(* A stale entry (older engine epoch) is structurally unservable: drop
   it on sight and report a clean miss. *)
let lookup c ~epoch key =
  match Tbl.find_opt c.table key with
  | None -> None
  | Some e when e.e_epoch <> epoch ->
    remove c e;
    update_gauge c;
    None
  | Some e ->
    touch c e;
    Some e

(* ------------------------------------------------------------------ *)
(* Session                                                            *)
(* ------------------------------------------------------------------ *)

(* How the last query on a session was served; read back by the workload
   recorder (lib/replay) right after the call returns. *)
type path =
  | Hit
  | Refine
  | Miss
  | Passthrough

type t = {
  mutable engine : Engine.t;
  mutable scratch : Scratch.t;
      (* session-owned scratch for the id-level kernels the Engine
         facade does not expose; replaced together with the engine *)
  cache : cache option;
  work_vertices : Counter.t option;
  work_heap : Counter.t option;
      (* the engine obs context's shared work counters, interned once so
         the cached compute paths attribute kernel work exactly like the
         passthrough paths that go through [Engine.query_span] *)
  mutable last_path : path;
}

type stats = {
  hits : int;
  misses : int;
  refines : int;
  evictions : int;
  resident_bytes : int;
  entries : int;
  budget_bytes : int;
}

let default_budget_bytes = 32 * 1024 * 1024

let create ?budget_bytes engine =
  let budget = Option.value ~default:default_budget_bytes budget_bytes in
  if budget < 0 then invalid_arg "Session.create: budget_bytes";
  let obs = Engine.obs engine in
  let cache =
    if budget = 0 then None
    else begin
      let counter name help =
        match obs with
        | Some ctx -> Obs.counter ctx ~help name
        | None -> Counter.create name
      in
      let gauge name help =
        match obs with
        | Some ctx -> Some (Obs.gauge ctx ~help name)
        | None -> None
      in
      let hist name help =
        match obs with
        | Some ctx -> Some (Metrics.histogram (Obs.metrics ctx) ~help name)
        | None -> None
      in
      Some
        {
          table = Tbl.create 256;
          budget;
          head = None;
          tail = None;
          resident = 0;
          hits = counter "olar_cache_hits_total" "Queries answered from the session cache";
          misses =
            counter "olar_cache_misses_total"
              "Queries that recomputed and populated the session cache";
          refines =
            counter "olar_cache_refines_total"
              "Cache hits served by prefix/top-k subsumption of a broader entry";
          evictions =
            counter "olar_cache_evictions_total"
              "Entries evicted to keep the cache within its byte budget";
          resident_gauge =
            gauge "olar_cache_resident_bytes"
              "Estimated resident bytes of cached results";
          hist_find =
            hist "olar_cache_hit_find_seconds" "Latency of FindItemsets cache hits";
          hist_rules =
            hist "olar_cache_hit_rules_seconds" "Latency of rule-query cache hits";
          hist_topk =
            hist "olar_cache_hit_topk_seconds" "Latency of FindSupport cache hits";
        }
    end
  in
  {
    engine;
    scratch = Scratch.create (Engine.lattice engine);
    cache;
    work_vertices =
      Option.map
        (fun ctx -> Obs.counter ctx "olar_query_vertices_visited_total")
        obs;
    work_heap =
      Option.map (fun ctx -> Obs.counter ctx "olar_query_heap_pops_total") obs;
    last_path = Passthrough;
  }

let engine t = t.engine
let enabled t = t.cache <> None
let last_path t = t.last_path
let lattice t = Engine.lattice t.engine

let fraction t count =
  float_of_int count /. float_of_int (max 1 (Engine.db_size t.engine))

(* Record a hit's latency into the per-kind histogram (telemetry on)
   or just run it (telemetry off). *)
let observe hist f =
  match hist with
  | None -> f ()
  | Some h ->
    let clock = Olar_util.Timer.start () in
    let r = f () in
    Metrics.Histogram.observe h (Olar_util.Timer.elapsed_s clock);
    r

(* ------------------------------------------------------------------ *)
(* FindItemsets family: one entry per start itemset, prefix-refined    *)
(* ------------------------------------------------------------------ *)

(* Length of the prefix of [ids] (canonical order: support descending)
   whose support clears [minsup] — the refinement binary search. *)
let prefix_length lat ids minsup =
  let sup = Lattice.support_array lat in
  let n = Array.length ids in
  if n = 0 || sup.(ids.(0)) < minsup then 0
  else if sup.(ids.(n - 1)) >= minsup then n
  else begin
    (* sup ids.(lo) >= minsup > sup ids.(hi) *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if sup.(ids.(mid)) >= minsup then lo := mid else hi := mid
    done;
    !hi
  end

let compute_find t ~containing ~minsup =
  Array.of_list
    (Query.find_itemsets ?work:t.work_vertices ~scratch:t.scratch (lattice t)
       ~containing ~minsup)

(* The cached array plus the prefix length serving this cut. *)
let find_prefix t c ~containing ~minsup =
  let epoch = Engine.epoch t.engine in
  let key = K_find containing in
  match lookup c ~epoch key with
  | Some e -> (
    match e.e_payload with
    | P_find { floor; ids } when minsup >= floor ->
      Counter.incr c.hits;
      if minsup > floor then begin
        Counter.incr c.refines;
        t.last_path <- Refine
      end
      else t.last_path <- Hit;
      observe c.hist_find (fun () -> (ids, prefix_length (lattice t) ids minsup))
    | P_find _ ->
      (* below every cached floor: recompute and widen the entry *)
      Counter.incr c.misses;
      t.last_path <- Miss;
      let ids = compute_find t ~containing ~minsup in
      replace_payload c e (P_find { floor = minsup; ids });
      (ids, Array.length ids)
    | _ -> assert false)
  | None ->
    Counter.incr c.misses;
    t.last_path <- Miss;
    let ids = compute_find t ~containing ~minsup in
    insert c key epoch (P_find { floor = minsup; ids });
    (ids, Array.length ids)

(* [?containing] is forwarded as the option it arrived as on the
   passthrough paths — wrapping the default in [Some] here would box on
   every disabled-cache call. *)
let itemsets ?containing t ~minsup =
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Engine.itemsets ?containing t.engine ~minsup
  | Some c ->
    let containing = Option.value ~default:Itemset.empty containing in
    let cut = Engine.count_of_support t.engine minsup in
    Query.check_minsup (lattice t) cut;
    let ids, p = find_prefix t c ~containing ~minsup:cut in
    let lat = lattice t in
    List.init p (fun i ->
        let v = ids.(i) in
        (Lattice.itemset lat v, fraction t (Lattice.support lat v)))

let itemset_ids ?containing t ~minsup =
  let cut = Engine.count_of_support t.engine minsup in
  Query.check_minsup (lattice t) cut;
  let containing = Option.value ~default:Itemset.empty containing in
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Array.of_list
      (Query.find_itemsets ?work:t.work_vertices ~scratch:t.scratch (lattice t)
         ~containing ~minsup:cut)
  | Some c ->
    let ids, p = find_prefix t c ~containing ~minsup:cut in
    Array.sub ids 0 p

let count_itemsets ?containing t ~minsup =
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Engine.count_itemsets ?containing t.engine ~minsup
  | Some c ->
    let containing = Option.value ~default:Itemset.empty containing in
    let cut = Engine.count_of_support t.engine minsup in
    Query.check_minsup (lattice t) cut;
    let _, p = find_prefix t c ~containing ~minsup:cut in
    p

(* ------------------------------------------------------------------ *)
(* Rule queries: exact-key caching, shared immutable lists            *)
(* ------------------------------------------------------------------ *)

let rules_cached t c key compute =
  let epoch = Engine.epoch t.engine in
  match lookup c ~epoch key with
  | Some e ->
    Counter.incr c.hits;
    t.last_path <- Hit;
    observe c.hist_rules (fun () ->
        match e.e_payload with P_rules rs -> rs | _ -> assert false)
  | None ->
    Counter.incr c.misses;
    t.last_path <- Miss;
    let rs = compute () in
    insert c key epoch (P_rules rs);
    rs

let rules_key t kind ?containing ?constraints ~minsup ~minconf () =
  let cut = Engine.count_of_support t.engine minsup in
  ignore (Conf.of_float minconf);
  Query.check_minsup (lattice t) cut;
  K_rules
    {
      kind;
      containing = Option.value ~default:Itemset.empty containing;
      constraints = Option.value ~default:Boundary.unconstrained constraints;
      minsup = cut;
      minconf;
    }

let essential_rules ?containing ?constraints t ~minsup ~minconf =
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Engine.essential_rules ?containing ?constraints t.engine ~minsup ~minconf
  | Some c ->
    let key = rules_key t Essential ?containing ?constraints ~minsup ~minconf () in
    rules_cached t c key (fun () ->
        Engine.essential_rules ?containing ?constraints t.engine ~minsup
          ~minconf)

let all_rules ?containing ?constraints t ~minsup ~minconf =
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Engine.all_rules ?containing ?constraints t.engine ~minsup ~minconf
  | Some c ->
    let key = rules_key t All ?containing ?constraints ~minsup ~minconf () in
    rules_cached t c key (fun () ->
        Engine.all_rules ?containing ?constraints t.engine ~minsup ~minconf)

let single_consequent_rules ?containing t ~minsup ~minconf =
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Engine.single_consequent_rules ?containing t.engine ~minsup ~minconf
  | Some c ->
    let key = rules_key t Single ?containing ~minsup ~minconf () in
    rules_cached t c key (fun () ->
        Engine.single_consequent_rules ?containing t.engine ~minsup ~minconf)

(* ------------------------------------------------------------------ *)
(* FindSupport top-k subsumption                                      *)
(* ------------------------------------------------------------------ *)

(* A cached best-first run of length L answers every k' <= L (the level
   is the support of the k'-th pop) and, when the run exhausted the
   reachable set, every k' > L as well (the answer is None). Only a
   longer, non-exhausted prefix forces a recompute, which widens the
   entry. *)

let support_for_k_itemsets t ~containing ~k =
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Engine.support_for_k_itemsets t.engine ~containing ~k
  | Some c -> (
    if k < 1 then invalid_arg "Session.support_for_k_itemsets: k";
    let epoch = Engine.epoch t.engine in
    let key = K_topk containing in
    let compute () =
      let answer =
        Support_query.find_support ?work:t.work_heap ~scratch:t.scratch
          (lattice t) ~containing ~k
      in
      let payload =
        P_topk
          {
            exhausted = answer.Support_query.support_level = None;
            items = Array.of_list answer.Support_query.itemsets;
          }
      in
      (payload, Option.map (fraction t) answer.Support_query.support_level)
    in
    match lookup c ~epoch key with
    | Some e -> (
      match e.e_payload with
      | P_topk { exhausted; items } when k <= Array.length items || exhausted ->
        Counter.incr c.hits;
        if k <> Array.length items then begin
          Counter.incr c.refines;
          t.last_path <- Refine
        end
        else t.last_path <- Hit;
        observe c.hist_topk (fun () ->
            if k <= Array.length items then
              Some (fraction t (snd items.(k - 1)))
            else None)
      | P_topk _ ->
        Counter.incr c.misses;
        t.last_path <- Miss;
        let payload, level = compute () in
        replace_payload c e payload;
        level
      | _ -> assert false)
    | None ->
      Counter.incr c.misses;
      t.last_path <- Miss;
      let payload, level = compute () in
      insert c key epoch payload;
      level)

let support_for_k_rules t ~involving ~minconf ~k =
  match t.cache with
  | None ->
    t.last_path <- Passthrough;
    Engine.support_for_k_rules t.engine ~involving ~minconf ~k
  | Some c -> (
    let confidence = Conf.of_float minconf in
    if k < 1 then invalid_arg "Session.support_for_k_rules: k";
    let epoch = Engine.epoch t.engine in
    let key = K_topk_rules { involving; minconf } in
    let compute () =
      let answer =
        Support_query.find_support_for_rules ?work:t.work_heap
          ~scratch:t.scratch (lattice t) ~involving ~confidence ~k
      in
      let payload =
        P_topk_rules
          {
            exhausted = answer.Support_query.rule_support_level = None;
            rules = Array.of_list answer.Support_query.rules;
          }
      in
      ( payload,
        Option.map (fraction t) answer.Support_query.rule_support_level )
    in
    match lookup c ~epoch key with
    | Some e -> (
      match e.e_payload with
      | P_topk_rules { exhausted; rules } when k <= Array.length rules || exhausted
        ->
        Counter.incr c.hits;
        if k <> Array.length rules then begin
          Counter.incr c.refines;
          t.last_path <- Refine
        end
        else t.last_path <- Hit;
        observe c.hist_topk (fun () ->
            if k <= Array.length rules then
              (* the k-th rule in pop order comes from the run's stopping
                 vertex, whose support is exactly the k-rule level *)
              Some (fraction t rules.(k - 1).Rule.support_count)
            else None)
      | P_topk_rules _ ->
        Counter.incr c.misses;
        t.last_path <- Miss;
        let payload, level = compute () in
        replace_payload c e payload;
        level
      | _ -> assert false)
    | None ->
      Counter.incr c.misses;
      t.last_path <- Miss;
      let payload, level = compute () in
      insert c key epoch payload;
      level)

(* ------------------------------------------------------------------ *)
(* Boundary (uncached)                                                *)
(* ------------------------------------------------------------------ *)

(* FindBoundary answers are cheap relative to their keys (full
   constraint tuples) and rarely repeat within a session, so they are
   never cached — the session only forwards, for uniform recording. *)
let boundary ?constraints t ~target ~minconf =
  t.last_path <- Passthrough;
  Engine.boundary ?constraints t.engine ~target ~minconf

(* ------------------------------------------------------------------ *)
(* Maintenance                                                        *)
(* ------------------------------------------------------------------ *)

let append ?domains t delta =
  t.last_path <- Passthrough;
  let engine', promoted = Engine.append ?domains t.engine delta in
  t.engine <- engine';
  t.scratch <- Scratch.create (Engine.lattice engine');
  (* entries from the old epoch are now unservable; [lookup] drops them
     lazily and the LRU budget bounds them meanwhile *)
  promoted

(* Adopt an engine built elsewhere. The pool folds an append delta once
   on the coordinator and publishes the result as a snapshot; each
   worker session adopts its per-domain view of that snapshot at its
   next claim. The new epoch makes the old entries unservable exactly
   as in [append]. *)
let adopt_engine t engine' =
  t.engine <- engine';
  t.scratch <- Scratch.create (Engine.lattice engine')

let flush t =
  match t.cache with
  | None -> ()
  | Some c ->
    Tbl.reset c.table;
    c.head <- None;
    c.tail <- None;
    c.resident <- 0;
    update_gauge c

let stats t =
  match t.cache with
  | None ->
    {
      hits = 0;
      misses = 0;
      refines = 0;
      evictions = 0;
      resident_bytes = 0;
      entries = 0;
      budget_bytes = 0;
    }
  | Some c ->
    {
      hits = Counter.value c.hits;
      misses = Counter.value c.misses;
      refines = Counter.value c.refines;
      evictions = Counter.value c.evictions;
      resident_bytes = c.resident;
      entries = Tbl.length c.table;
      budget_bytes = c.budget;
    }
