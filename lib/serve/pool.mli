(** Domain-parallel query serving over one shared lattice.

    The paper's economics — preprocess once, query many — makes the
    serving path the thing to scale: the lattice is built offline and
    every online query is a cheap, read-only graph search. A [Pool.t]
    runs those searches on N OCaml 5 domains at once:

    - the CSR {!Olar_core.Lattice.t} is shared by reference across all
      domains with no locking — it is immutable post-build, a stated
      invariant of [lattice.mli];
    - everything mutable is per-domain: each domain owns a private
      {!Olar_core.Engine} view (its own {!Olar_core.Scratch}) wrapped
      in a private {!Session} cache, so query state and cached results
      never cross domains;
    - telemetry is shared safely: all sessions bump the same atomic
      {!Olar_obs.Metrics} instruments, and tracing is sharded per
      domain ({!Olar_obs.Trace.Sharded}): each domain's spans land in
      its own buffer, domain-tagged, and merge into the sink when the
      coordinator calls {!Olar_obs.Obs.flush}.

    {2 Continuous dispatch}

    Requests are dispatched {b continuously}, not in rounds: each
    worker domain owns a bounded submission shard (a fixed ring of
    pooled cells, so the steady-state dispatch path allocates nothing),
    and {!submit} places each request into the least-loaded shard. An
    idle worker drains its own shard first, then {b steals} from
    sibling shards, and only parks — on its own condvar, nobody else's —
    when every shard is empty. Waking is therefore one signal to one
    domain; there is no global broadcast and no batch barrier between
    requests. The submitting thread is the {e coordinator}: exactly one
    thread may call {!submit} / {!run} / {!drain} on a pool (the
    single-producer invariant of the shard rings). When every shard is
    full, {!submit} applies backpressure by executing one queued
    request inline on the coordinator's own session before retrying.

    {2 The append barrier}

    An {!Append} request is a {b barrier}, preserved under continuous
    dispatch by a quiesce protocol: the coordinator (the only intake)
    stops submitting, helps drain the shards, waits for the last
    in-flight request to deliver, folds the delta exactly once, hands
    every worker session a fresh engine view over the new lattice, and
    only then resumes intake. Queries after an append therefore see the
    new epoch on every domain — the same sequential semantics a single
    {!Session} gives, which is what makes pool-vs-serial digest
    equality a meaningful stress invariant.

    A request that raises (e.g. {!Olar_core.Query.Below_primary_threshold})
    yields {!R_error} rather than poisoning the stream; the same
    exception raises identically in serial execution, so error
    responses are digest-stable too. *)

open Olar_data

type t

(** One query, by value — the pool-side mirror of the
    {!Olar_replay.Record} key. [Append] folds a delta into the store
    and acts as a stream-wide barrier. *)
type request =
  | Find_itemsets of { containing : Itemset.t; minsup : float }
  | Count_itemsets of { containing : Itemset.t; minsup : float }
  | Essential_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | All_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | Single_consequent_rules of {
      containing : Itemset.t;
      minsup : float;
      minconf : float;
    }
  | Support_for_k_itemsets of { containing : Itemset.t; k : int }
  | Support_for_k_rules of { involving : Itemset.t; minconf : float; k : int }
  | Boundary of {
      target : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minconf : float;
    }
  | Append of Database.t

(** A result, materialized by value at execution time (itemsets and
    support counts, not vertex ids) so it stays meaningful after a
    later append swaps the lattice. [R_items] is in canonical order
    (support descending, id ascending); [R_promoted] carries the
    promotion frontier and the post-append database size — exactly the
    inputs to the {!Olar_replay.Recorder} digest for each kind. *)
type response =
  | R_items of (Itemset.t * int) array
  | R_count of int
  | R_rules of Olar_core.Rule.t list
  | R_level of float option
  | R_entries of (Itemset.t * float) list
  | R_promoted of { promoted : Itemset.t list; db_size : int }
  | R_error of string

(** [create engine] spawns the pool.
    @param domains total domains serving queries, including the
      caller's (default [Domain.recommended_domain_count ()]); [1]
      means no domains are spawned and every request executes inline
      in {!submit}. Raises [Invalid_argument] when [< 1].
    @param budget_bytes per-domain session-cache budget, as
      {!Session.create} (so a pool holds [domains] caches of this size
      each); [0] disables caching.
    Engines whose obs context carries a tracer are fully supported:
    each domain traces into its own shard (see {!Olar_obs.Trace.Sharded});
    the caller is responsible for flushing the merged spans. *)
val create : ?domains:int -> ?budget_bytes:int -> Olar_core.Engine.t -> t

(** [domains t] is the serving width, including the caller's domain. *)
val domains : t -> int

(** [engine t] is the coordinator's current engine (replaced at every
    append barrier). *)
val engine : t -> Olar_core.Engine.t

(** {1 Continuous submission}

    The hot path of the {!Olar_net.Server} drainer: one request in, one
    callback out, no batch arrays in between. *)

(** [submit t req k] dispatches [req] into a worker shard and returns
    immediately; [k resp dt] fires when the request completes, on
    {b whichever domain} executed it, with [dt] the execution seconds
    (claim-to-completion, shard wait excluded). Coordinator-only (the
    single-producer invariant above); callbacks must be domain-safe and
    fast, and should not raise — an exception from [k] is recorded and
    re-raised at the next {!drain}, never propagated into a worker
    loop. An [Append] quiesces as described above and is folded (and
    delivered) synchronously before [submit] returns; with
    [domains = 1] every request is synchronous. Raises
    [Invalid_argument] after {!shutdown}. *)
val submit : t -> request -> (response -> float -> unit) -> unit

(** [drain t] blocks until every submitted request has delivered. While
    shards are non-empty the coordinator executes queued requests
    itself (it only parks for requests already claimed by a worker), so
    a drain is never slower than serial execution of the backlog.
    Re-raises the first callback exception recorded since the last
    drain, after the pool is quiet. *)
val drain : t -> unit

(** {1 Batch wrappers}

    Thin compatibility layers over {!submit} + {!drain}; same
    coordinator-only constraint. *)

(** [run t reqs] submits the batch and returns responses in submission
    order: [(run t reqs).(i)] answers [reqs.(i)]. Raises
    [Invalid_argument] after {!shutdown}. *)
val run : t -> request array -> response array

(** [run_timed t reqs] is {!run} with each response paired with its
    service latency in seconds (monotonic clock, shard wait excluded —
    the time from a domain claiming the request to its completion). *)
val run_timed : t -> request array -> (response * float) array

(** [run_deliver t ~on_complete reqs] is {!run_timed} with
    per-completion delivery: [on_complete i (resp, dt)] fires the
    moment request [i] finishes, on {b whichever domain} executed it —
    possibly concurrently with other completions and in any order. The
    returned array is still the full batch in submission order
    ([out.(i)] answers [reqs.(i)], always), so the two views are
    redundant by construction; the callback exists for callers that
    unblock per-request waiters without paying the whole batch's tail
    latency first.

    Constraints on [on_complete] are those of {!submit}'s callback. It
    is called exactly once per request, including [Append] barriers
    (delivered by the coordinator) and [R_error] responses. If it
    raises, the exception is swallowed at the delivery site — letting
    it escape would kill a worker loop — and the first such exception
    is re-raised on the caller's domain after the batch completes. *)
val run_deliver :
  t ->
  on_complete:(int -> response * float -> unit) ->
  request array ->
  (response * float) array

(** {1 Introspection} *)

(** [stats t] is each domain's session-cache accounting, index 0 the
    coordinator. *)
val stats : t -> Session.stats array

(** Cumulative execution accounting for one pool slot: how many
    requests the slot has executed since {!create} and the seconds it
    spent executing them (claim-to-completion, shard wait excluded).
    Appends are charged to the coordinator (slot 0). Internally the
    seconds accumulate as integer nanoseconds under
    [Atomic.fetch_and_add] — no CAS retry under contention — and
    convert on read. *)
type domain_stat = {
  requests : int;
  busy_s : float;
}

(** [domain_stats t] samples each slot's accounting, index 0 the
    coordinator. Safe to call from any thread at any time; each field
    is an independent atomic read. *)
val domain_stats : t -> domain_stat array

(** [dispatch_wait t] is the pool's dispatch-wait histogram
    ([olar_pool_dispatch_wait_seconds]): for every request that crossed
    a shard, the seconds between {!submit} placing it and a domain
    claiming it. Registered in the engine's metrics registry when its
    obs context is enabled; maintained privately (for this accessor)
    otherwise. Inline executions (a 1-domain pool, append barriers,
    backpressure) never waited and are not observed. *)
val dispatch_wait : t -> Olar_obs.Metrics.Histogram.t

(** [shard_depths t] samples each worker shard's queued-request count,
    index [k] the shard owned by pool slot [k+1]; empty for a 1-domain
    pool. Racy-but-consistent snapshot reads, safe from any thread. *)
val shard_depths : t -> int array

(** [shutdown t] drains outstanding requests, then joins the worker
    domains. Idempotent; the pool rejects new work afterwards. *)
val shutdown : t -> unit

(** [with_pool engine f] is [f pool] with a guaranteed {!shutdown}. *)
val with_pool :
  ?domains:int -> ?budget_bytes:int -> Olar_core.Engine.t -> (t -> 'a) -> 'a
