(** Domain-parallel query serving over one shared lattice.

    The paper's economics — preprocess once, query many — makes the
    serving path the thing to scale: the lattice is built offline and
    every online query is a cheap, read-only graph search. A [Pool.t]
    runs those searches on N OCaml 5 domains at once:

    - the CSR {!Olar_core.Lattice.t} is shared by reference across all
      domains with no locking — it is immutable post-build, a stated
      invariant of [lattice.mli];
    - everything mutable is per-domain: each domain owns a private
      {!Olar_core.Engine} view (its own {!Olar_core.Scratch}) wrapped
      in a private {!Session} cache, so query state and cached results
      never cross domains;
    - telemetry is shared safely: all sessions bump the same atomic
      {!Olar_obs.Metrics} instruments, and tracing is sharded per
      domain ({!Olar_obs.Trace.Sharded}): each domain's spans land in
      its own buffer, domain-tagged, and merge into the sink when the
      coordinator calls {!Olar_obs.Obs.flush}.

    {2 Continuous dispatch}

    Requests are dispatched {b continuously}, not in rounds: each
    worker domain owns a bounded submission shard (a fixed ring of
    pooled cells, so the steady-state dispatch path allocates nothing),
    and {!submit} places each request into the least-loaded shard. An
    idle worker drains its own shard first, then {b steals} from
    sibling shards, and only parks — on its own condvar, nobody else's —
    when every shard is empty. Waking is therefore one signal to one
    domain; there is no global broadcast and no batch barrier between
    requests. The submitting thread is the {e coordinator}: exactly one
    thread may call {!submit} / {!run} / {!drain} on a pool (the
    single-producer invariant of the shard rings). When every shard is
    full, {!submit} applies backpressure by executing one queued
    request inline on the coordinator's own session before retrying.

    {2 Snapshot publication (non-blocking appends)}

    An {!Append} does {b not} quiesce the pool. The coordinator folds
    the delta through its own serial {!Session.append} — the single
    mutation path — into a {e new} immutable engine, wraps it with one
    {!Olar_core.Engine.view} per worker as a {e snapshot} (generation
    [g+1]), and publishes it with a single atomic pointer swap. Reads
    in flight keep traversing the old snapshot untouched; a worker
    adopts the newest published snapshot at its next claim (and before
    parking), so reads never block on an append and an append never
    waits for reads — RCU over the lattice's immutability invariant.
    Retired snapshots are reclaimed by generation: each slot records
    the generation it has adopted, and a retired snapshot is dropped
    once every slot has advanced past it (no future claim can reach it,
    since adoption only moves forward).

    Ordering is still deterministic where it matters: the pointer swap
    happens before the append's {!submit} returns, so every request
    submitted {e after} an append executes on generation [>= g+1]
    (the claim's stamp read pairs with the publish). Each completion
    records the generation and engine epoch its request actually
    executed on, which is what the differential tests check digests
    against. The batch wrappers ({!run} and friends) additionally drain
    before each [Append], preserving the old sequential semantics —
    positional digest equality with a serial {!Session} — for batch
    callers and capture replay.

    A request that raises (e.g. {!Olar_core.Query.Below_primary_threshold})
    yields {!R_error} rather than poisoning the stream; the same
    exception raises identically in serial execution, so error
    responses are digest-stable too. *)

open Olar_data

type t

(** One query, by value — the pool-side mirror of the
    {!Olar_replay.Record} key. [Append] folds a delta into the store
    and publishes a new snapshot generation. *)
type request =
  | Find_itemsets of { containing : Itemset.t; minsup : float }
  | Count_itemsets of { containing : Itemset.t; minsup : float }
  | Essential_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | All_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | Single_consequent_rules of {
      containing : Itemset.t;
      minsup : float;
      minconf : float;
    }
  | Support_for_k_itemsets of { containing : Itemset.t; k : int }
  | Support_for_k_rules of { involving : Itemset.t; minconf : float; k : int }
  | Boundary of {
      target : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minconf : float;
    }
  | Append of Database.t

(** A result, materialized by value at execution time (itemsets and
    support counts, not vertex ids) so it stays meaningful after a
    later append swaps the lattice. [R_items] is in canonical order
    (support descending, id ascending); [R_promoted] carries the
    promotion frontier and the post-append database size — exactly the
    inputs to the {!Olar_replay.Recorder} digest for each kind. *)
type response =
  | R_items of (Itemset.t * int) array
  | R_count of int
  | R_rules of Olar_core.Rule.t list
  | R_level of float option
  | R_entries of (Itemset.t * float) list
  | R_promoted of { promoted : Itemset.t list; db_size : int }
  | R_error of string

(** What a delivery callback learns about the execution it is being
    handed: [latency_s] is the execution seconds (claim-to-completion,
    shard wait excluded); [gen] is the snapshot generation the request
    executed on (0 before any append, +1 per append); [epoch] is the
    {!Olar_core.Engine.epoch} of that snapshot's engine — the value a
    capture records, taken from the {b executing} domain's adopted
    view, never from a coordinator that may already have published a
    newer one. *)
type completion = {
  latency_s : float;
  epoch : int;
  gen : int;
}

(** [create engine] spawns the pool.
    @param domains total domains serving queries, including the
      caller's (default [Domain.recommended_domain_count ()]); [1]
      means no domains are spawned and every request executes inline
      in {!submit}. Raises [Invalid_argument] when [< 1].
    @param budget_bytes per-domain session-cache budget, as
      {!Session.create} (so a pool holds [domains] caches of this size
      each); [0] disables caching.
    Engines whose obs context carries a tracer are fully supported:
    each domain traces into its own shard (see {!Olar_obs.Trace.Sharded});
    the caller is responsible for flushing the merged spans. *)
val create : ?domains:int -> ?budget_bytes:int -> Olar_core.Engine.t -> t

(** [domains t] is the serving width, including the caller's domain. *)
val domains : t -> int

(** [engine t] is the currently published snapshot's engine (replaced
    at every append). Racy by design when read off the coordinator
    thread: a worker mid-request may still be executing on an older
    snapshot — per-response state belongs in {!completion}. *)
val engine : t -> Olar_core.Engine.t

(** [generation t] is the currently published snapshot generation: 0
    at {!create}, +1 per successful append fold. *)
val generation : t -> int

(** {1 Continuous submission}

    The hot path of the {!Olar_net.Server} drainer: one request in, one
    callback out, no batch arrays in between. *)

(** [submit t req k] dispatches [req] into a worker shard and returns
    immediately; [k resp c] fires when the request completes, on
    {b whichever domain} executed it, with [c] the {!completion} for
    that execution. Coordinator-only (the single-producer invariant
    above); callbacks must be domain-safe and fast, and should not
    raise — an exception from [k] is recorded and re-raised at the next
    {!drain}, never propagated into a worker loop. An [Append] is
    folded and published (and delivered) synchronously before [submit]
    returns, {b without} waiting for in-flight reads — they complete on
    the old snapshot; with [domains = 1] every request is synchronous.
    Raises [Invalid_argument] after {!shutdown}. *)
val submit : t -> request -> (response -> completion -> unit) -> unit

(** [drain t] blocks until every submitted request has delivered. While
    shards are non-empty the coordinator executes queued requests
    itself (it only parks for requests already claimed by a worker), so
    a drain is never slower than serial execution of the backlog.
    Re-raises the first callback exception recorded since the last
    drain, after the pool is quiet. *)
val drain : t -> unit

(** {1 Batch wrappers}

    Thin compatibility layers over {!submit} + {!drain}; same
    coordinator-only constraint. Unlike raw {!submit}, the wrappers
    drain before each [Append] in the batch, so a batch keeps the
    sequential semantics of a serial {!Session}: responses are
    positionally digest-equal to serial execution of the same array. *)

(** [run t reqs] submits the batch and returns responses in submission
    order: [(run t reqs).(i)] answers [reqs.(i)]. Raises
    [Invalid_argument] after {!shutdown}. *)
val run : t -> request array -> response array

(** [run_timed t reqs] is {!run} with each response paired with its
    service latency in seconds (monotonic clock, shard wait excluded —
    the time from a domain claiming the request to its completion). *)
val run_timed : t -> request array -> (response * float) array

(** [run_deliver t ~on_complete reqs] is {!run_timed} with
    per-completion delivery: [on_complete i (resp, dt)] fires the
    moment request [i] finishes, on {b whichever domain} executed it —
    possibly concurrently with other completions and in any order. The
    returned array is still the full batch in submission order
    ([out.(i)] answers [reqs.(i)], always), so the two views are
    redundant by construction; the callback exists for callers that
    unblock per-request waiters without paying the whole batch's tail
    latency first.

    Constraints on [on_complete] are those of {!submit}'s callback. It
    is called exactly once per request, including [Append]s (delivered
    by the coordinator) and [R_error] responses. If it raises, the
    exception is swallowed at the delivery site — letting it escape
    would kill a worker loop — and the first such exception is
    re-raised on the caller's domain after the batch completes. *)
val run_deliver :
  t ->
  on_complete:(int -> response * float -> unit) ->
  request array ->
  (response * float) array

(** {1 Introspection} *)

(** [stats t] is each domain's session-cache accounting, index 0 the
    coordinator. *)
val stats : t -> Session.stats array

(** Cumulative execution accounting for one pool slot: how many
    requests the slot has executed since {!create} and the seconds it
    spent executing them (claim-to-completion, shard wait excluded).
    Appends are charged to the coordinator (slot 0). Internally the
    seconds accumulate as integer nanoseconds under
    [Atomic.fetch_and_add] — no CAS retry under contention — and
    convert on read. *)
type domain_stat = {
  requests : int;
  busy_s : float;
}

(** [domain_stats t] samples each slot's accounting, index 0 the
    coordinator. Safe to call from any thread at any time; each field
    is an independent atomic read. *)
val domain_stats : t -> domain_stat array

(** [dispatch_wait t] is the pool's dispatch-wait histogram
    ([olar_pool_dispatch_wait_seconds]): for every request that crossed
    a shard, the seconds between {!submit} placing it and a domain
    claiming it. Registered in the engine's metrics registry when its
    obs context is enabled; maintained privately (for this accessor)
    otherwise. Inline executions (a 1-domain pool, append folds,
    backpressure) never waited and are not observed. *)
val dispatch_wait : t -> Olar_obs.Metrics.Histogram.t

(** [shard_depths t] samples each worker shard's queued-request count,
    index [k] the shard owned by pool slot [k+1]; empty for a 1-domain
    pool. Racy-but-consistent snapshot reads, safe from any thread. *)
val shard_depths : t -> int array

(** [retired_snapshots t] is the number of superseded snapshots not yet
    reclaimed — published generations some domain may still be reading.
    Runs a reclamation sweep first, so the count reflects current
    adoption. Coordinator-only (it mutates the retired list). Converges
    to 0 once every domain has claimed a request or parked since the
    last append. *)
val retired_snapshots : t -> int

(** [shutdown t] drains outstanding requests, then joins the worker
    domains. Idempotent; the pool rejects new work afterwards. *)
val shutdown : t -> unit

(** [with_pool engine f] is [f pool] with a guaranteed {!shutdown}. *)
val with_pool :
  ?domains:int -> ?budget_bytes:int -> Olar_core.Engine.t -> (t -> 'a) -> 'a
