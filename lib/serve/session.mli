(** Cross-query session cache with monotone prefix refinement.

    The paper's economics is {e preprocess once, query many}: an analyst
    interactively re-issues the same handful of queries at nearby
    [(minsup, minconf)] settings, yet the {!Olar_core.Engine} re-walks
    the lattice for every call. A [Session.t] wraps an engine with a
    byte-budgeted, LRU-evicted, epoch-invalidated result cache keyed on
    the canonical query (kind, start itemset, constraints, thresholds),
    following Goethals & Van den Bussche's observation that overlap
    between successive queries dominates an interactive mining session.

    {2 Monotone refinement}

    [FindItemsets] results are stored once per start itemset as a
    compact vertex-id array in canonical order
    ({!Olar_core.Lattice.compare_strength}: support desc, ties ascending
    id), together with the lowest support {e floor} they were computed
    at. Because raising the cut can only drop a tail of that
    support-descending sequence, the answer at any [s' >= floor] is a
    literal {b prefix} of the cached array — served by one binary search
    over {!Olar_core.Lattice.support_array}, no graph traversal, no
    sort. A query below the floor recomputes and {e widens} the entry
    (the floor only ever moves down), so a drill-down sweep
    [s1 > s2 > ...] pays full price once and prefix price thereafter.

    The same subsumption applies to the reverse queries: a cached
    [FindSupport] top-k run answers every [k' <= k] (the level is the
    [k']-th highest support in the cached pop order) and, when the run
    exhausted the reachable set, every [k' > k] as well (the answer is
    [None]). Rule queries are cached under their exact key — essential
    rules are {e not} refinable across [minsup], because strict
    redundancy pruning depends on which children are large at the lower
    threshold.

    {2 Eviction and invalidation}

    Entries live on an intrusive LRU list under an [estimated_bytes]
    budget; inserting past the budget evicts from the cold tail
    (counted). Every entry is stamped with the engine {!Olar_core.Engine.epoch}
    it was computed under; {!append} swaps in an engine with a fresh
    epoch, so stale entries can never be served — they are detected and
    dropped lazily at lookup time (and remain subject to LRU eviction
    meanwhile). {!flush} reclaims everything eagerly.

    {2 Telemetry}

    When the wrapped engine carries an enabled {!Olar_obs.Obs.t}, the
    session maintains [olar_cache_hits_total], [olar_cache_misses_total],
    [olar_cache_refines_total] (refines are the subset of hits served by
    prefix/top-k subsumption rather than verbatim),
    [olar_cache_evictions_total], the [olar_cache_resident_bytes] gauge,
    and per-kind hit-latency histograms
    [olar_cache_hit_{find,rules,topk}_seconds]. With telemetry disabled
    the same cells are kept privately for {!val-stats}.

    With [budget_bytes = 0] the session is a pure passthrough: every
    call dispatches straight to the engine with no per-query allocation
    beyond the engine's own. *)

open Olar_data

type t

(** How the most recent query on this session was served. [Hit] is a
    verbatim cache hit, [Refine] a hit served by prefix/top-k
    subsumption of a broader entry, [Miss] a recompute that populated
    the cache, and [Passthrough] a call that never consulted it
    (disabled cache, {!boundary}, {!append}). Read it back immediately
    after the call — the next query overwrites it. The workload
    recorder ({!Olar_replay.Recorder}) tags every log record with this. *)
type path =
  | Hit
  | Refine
  | Miss
  | Passthrough

(** Point-in-time cache accounting (all zero when the cache is
    disabled). [refines] is a subset of [hits]. *)
type stats = {
  hits : int;
  misses : int;
  refines : int;
  evictions : int;
  resident_bytes : int;
  entries : int;
  budget_bytes : int;
}

(** [create engine] wraps [engine] in a session cache.
    @param budget_bytes estimated-resident-size budget (default
      32 MiB); [0] disables caching entirely (pure passthrough). Raises
      [Invalid_argument] when negative. *)
val create : ?budget_bytes:int -> Olar_core.Engine.t -> t

(** [engine t] is the engine currently behind the session (replaced by
    {!append}). *)
val engine : t -> Olar_core.Engine.t

(** [enabled t] is [false] for a [budget_bytes = 0] passthrough. *)
val enabled : t -> bool

(** [last_path t] is how the most recent query was served
    ([Passthrough] before any query has run). *)
val last_path : t -> path

(** {1 Queries}

    Each mirrors the {!Olar_core.Engine} function of the same name —
    same arguments, same results, same exceptions — with answers served
    from the cache when possible. *)

val itemsets :
  ?containing:Itemset.t -> t -> minsup:float -> (Itemset.t * float) list

(** [itemset_ids t ~minsup] is {!itemsets} as a fresh array of vertex
    ids in canonical order — the compact form the cache stores; on a
    cache hit this is one binary search plus a blit. *)
val itemset_ids :
  ?containing:Itemset.t -> t -> minsup:float -> Olar_core.Lattice.vertex_id array

val count_itemsets : ?containing:Itemset.t -> t -> minsup:float -> int

val essential_rules :
  ?containing:Itemset.t ->
  ?constraints:Olar_core.Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Olar_core.Rule.t list

val all_rules :
  ?containing:Itemset.t ->
  ?constraints:Olar_core.Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Olar_core.Rule.t list

val single_consequent_rules :
  ?containing:Itemset.t -> t -> minsup:float -> minconf:float -> Olar_core.Rule.t list

val support_for_k_itemsets : t -> containing:Itemset.t -> k:int -> float option

val support_for_k_rules :
  t -> involving:Itemset.t -> minconf:float -> k:int -> float option

(** [boundary t ~target ~minconf] forwards to
    {!Olar_core.Engine.boundary}. Never cached ([Passthrough]):
    boundary keys — full constraint tuples — rarely repeat within a
    session relative to the answer's cost. *)
val boundary :
  ?constraints:Olar_core.Boundary.constraints ->
  t ->
  target:Itemset.t ->
  minconf:float ->
  (Itemset.t * float) list

(** {1 Maintenance} *)

(** [append t delta] folds the batch into the engine
    ({!Olar_core.Engine.append}) and swaps the refreshed engine — with
    its fresh epoch — into the session, returning the promotion
    frontier. Cached entries from the old epoch become unservable
    immediately and are reclaimed lazily. *)
val append : ?domains:int -> t -> Database.t -> Itemset.t list

(** [adopt_engine t engine] swaps [engine] into the session without
    running an append — used by {!Pool} when a worker adopts a newly
    published snapshot at its next claim: the append delta is folded
    once on the coordinator and each worker session then adopts its
    {!Olar_core.Engine.view} of the published engine. Cache
    consequences are the same as {!append}: entries stamped with the
    old epoch stop being servable. *)
val adopt_engine : t -> Olar_core.Engine.t -> unit

(** [flush t] drops every cached entry (accounting counters are kept). *)
val flush : t -> unit

(** [stats t] reads the accounting counters. *)
val stats : t -> stats
