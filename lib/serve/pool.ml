open Olar_data
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Obs = Olar_obs.Obs
module Timer = Olar_util.Timer

type request =
  | Find_itemsets of { containing : Itemset.t; minsup : float }
  | Count_itemsets of { containing : Itemset.t; minsup : float }
  | Essential_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | All_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | Single_consequent_rules of {
      containing : Itemset.t;
      minsup : float;
      minconf : float;
    }
  | Support_for_k_itemsets of { containing : Itemset.t; k : int }
  | Support_for_k_rules of { involving : Itemset.t; minconf : float; k : int }
  | Boundary of {
      target : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minconf : float;
    }
  | Append of Database.t

type response =
  | R_items of (Itemset.t * int) array
  | R_count of int
  | R_rules of Olar_core.Rule.t list
  | R_level of float option
  | R_entries of (Itemset.t * float) list
  | R_promoted of { promoted : Itemset.t list; db_size : int }
  | R_error of string

(* One published batch segment. [next] is the shared claim cursor:
   whichever domain is free fetch-and-adds it and executes the claimed
   request, so a skewed batch cannot idle a domain behind a static
   partition. [active] counts participants (workers + coordinator)
   still draining; the coordinator waits for it to reach zero before
   retiring the job, which is also what guarantees every write to
   [out] happens-before the coordinator reads it (mutex release/
   acquire pairs). [id] distinguishes successive jobs so a worker that
   wakes spuriously never re-drains a batch it already finished. *)
type job = {
  reqs : request array;
  out : (response * float) array;
  hi : int; (* claim cursor stops at [hi); the segment start seeds [next] *)
  next : int Atomic.t;
  mutable active : int;
  id : int;
  deliver : int -> response * float -> unit;
      (* invoked by the completing domain right after it writes
         [out.(i)] — the per-completion delivery hook behind
         [run_deliver]; [run]/[run_timed] install a no-op *)
}

type t = {
  mutable engine : Engine.t; (* the coordinator's view; swapped at appends *)
  num_domains : int;
  sessions : Session.t array; (* slot 0 = coordinator, 1.. = workers *)
  mutable workers : unit Domain.t array;
  mu : Mutex.t;
  work : Condition.t; (* workers park here between jobs *)
  finished : Condition.t; (* coordinator parks here during a job *)
  mutable job : job option;
  mutable job_seq : int;
  mutable stop : bool;
  mutable closed : bool;
  served : int Atomic.t array; (* per-slot requests executed *)
  busy : float Atomic.t array; (* per-slot seconds spent executing *)
}

type domain_stat = {
  requests : int;
  busy_s : float;
}

(* Charge [dt] seconds of execution to slot [idx]. The float add is a
   CAS loop (no fetch-and-add for floats); contention is negligible —
   one bump per request, on the slot's own cell. *)
let note_work t idx dt =
  ignore (Atomic.fetch_and_add t.served.(idx) 1);
  let cell = t.busy.(idx) in
  let rec add () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. dt)) then add ()
  in
  add ()

(* ------------------------------------------------------------------ *)
(* Request execution (any domain, on that domain's private session)   *)
(* ------------------------------------------------------------------ *)

let materialize lat ids =
  Array.map (fun v -> (Lattice.itemset lat v, Lattice.support lat v)) ids

(* Every exception becomes [R_error]: a bad threshold in one request
   must not poison the rest of the batch, and the serial comparison
   path raises the identical exception, keeping digests stable. *)
let execute session req =
  try
    match req with
    | Find_itemsets { containing; minsup } ->
      let ids = Session.itemset_ids ~containing session ~minsup in
      R_items (materialize (Engine.lattice (Session.engine session)) ids)
    | Count_itemsets { containing; minsup } ->
      R_count (Session.count_itemsets ~containing session ~minsup)
    | Essential_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.essential_rules ~containing ~constraints session ~minsup
           ~minconf)
    | All_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.all_rules ~containing ~constraints session ~minsup ~minconf)
    | Single_consequent_rules { containing; minsup; minconf } ->
      R_rules
        (Session.single_consequent_rules ~containing session ~minsup ~minconf)
    | Support_for_k_itemsets { containing; k } ->
      R_level (Session.support_for_k_itemsets session ~containing ~k)
    | Support_for_k_rules { involving; minconf; k } ->
      R_level (Session.support_for_k_rules session ~involving ~minconf ~k)
    | Boundary { target; constraints; minconf } ->
      R_entries (Session.boundary ~constraints session ~target ~minconf)
    | Append _ ->
      (* appends are executed by the coordinator at the barrier, never
         published to the claim cursor *)
      R_error "Pool: append reached a worker"
  with e -> R_error (Printexc.to_string e)

let timed session req =
  let t0 = Timer.monotonic_s () in
  let resp = execute session req in
  (resp, Float.max 0.0 (Timer.monotonic_s () -. t0))

let drain t idx job =
  let session = t.sessions.(idx) in
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.hi then begin
      job.out.(i) <- timed session job.reqs.(i);
      note_work t idx (snd job.out.(i));
      job.deliver i job.out.(i);
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Worker loop                                                        *)
(* ------------------------------------------------------------------ *)

let worker_loop t idx =
  let last = ref 0 in
  let rec go () =
    Mutex.lock t.mu;
    let rec await () =
      if t.stop then begin
        Mutex.unlock t.mu;
        None
      end
      else
        match t.job with
        | Some j when j.id <> !last ->
          last := j.id;
          Mutex.unlock t.mu;
          Some j
        | _ ->
          Condition.wait t.work t.mu;
          await ()
    in
    match await () with
    | None -> ()
    | Some j ->
      drain t idx j;
      Mutex.lock t.mu;
      j.active <- j.active - 1;
      if j.active = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mu;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Construction / teardown                                            *)
(* ------------------------------------------------------------------ *)

let create ?domains ?budget_bytes engine =
  let d =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  if d < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let obs = Engine.obs engine in
  let lattice = Engine.lattice engine in
  let sessions =
    Array.init d (fun i ->
        (* slot 0 serves on the caller's engine; every worker gets its
           own engine view — private scratch — over the same lattice *)
        if i = 0 then Session.create ?budget_bytes engine
        else Session.create ?budget_bytes (Engine.of_lattice ~obs lattice))
  in
  let t =
    {
      engine;
      num_domains = d;
      sessions;
      workers = [||];
      mu = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      job_seq = 0;
      stop = false;
      closed = false;
      served = Array.init d (fun _ -> Atomic.make 0);
      busy = Array.init d (fun _ -> Atomic.make 0.0);
    }
  in
  t.workers <-
    Array.init (d - 1) (fun w -> Domain.spawn (fun () -> worker_loop t (w + 1)));
  t

let domains t = t.num_domains
let engine t = t.engine
let stats t = Array.map Session.stats t.sessions

let domain_stats t =
  Array.init t.num_domains (fun i ->
      { requests = Atomic.get t.served.(i); busy_s = Atomic.get t.busy.(i) })

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains ?budget_bytes engine f =
  let t = create ?domains ?budget_bytes engine in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Batch execution                                                    *)
(* ------------------------------------------------------------------ *)

(* The append barrier: folds the delta exactly once through the
   coordinator's session, then hands every worker session a fresh
   engine view over the new lattice. Runs strictly between jobs, so no
   domain is mid-query while engines are being swapped. *)
let barrier_append t delta =
  let promoted = Session.append t.sessions.(0) delta in
  t.engine <- Session.engine t.sessions.(0);
  let obs = Engine.obs t.engine in
  let lattice = Engine.lattice t.engine in
  for w = 1 to t.num_domains - 1 do
    Session.adopt_engine t.sessions.(w) (Engine.of_lattice ~obs lattice)
  done;
  R_promoted { promoted; db_size = Engine.db_size t.engine }

let timed_append t delta =
  let t0 = Timer.monotonic_s () in
  let resp = try barrier_append t delta with e -> R_error (Printexc.to_string e) in
  (resp, Float.max 0.0 (Timer.monotonic_s () -. t0))

let run_segment t ~deliver out reqs lo hi =
  if t.num_domains = 1 then
    for i = lo to hi - 1 do
      out.(i) <- timed t.sessions.(0) reqs.(i);
      note_work t 0 (snd out.(i));
      deliver i out.(i)
    done
  else begin
    Mutex.lock t.mu;
    t.job_seq <- t.job_seq + 1;
    let job =
      {
        reqs;
        out;
        hi;
        next = Atomic.make lo;
        active = t.num_domains;
        id = t.job_seq;
        deliver;
      }
    in
    t.job <- Some job;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    drain t 0 job;
    Mutex.lock t.mu;
    job.active <- job.active - 1;
    while job.active > 0 do
      Condition.wait t.finished t.mu
    done;
    t.job <- None;
    Mutex.unlock t.mu
  end

let run_with t ~deliver reqs =
  if t.closed then invalid_arg "Pool.run: pool is shut down";
  let n = Array.length reqs in
  let out = Array.make n (R_error "not executed", 0.0) in
  let i = ref 0 in
  while !i < n do
    let lo = !i in
    let hi = ref lo in
    while
      !hi < n && match reqs.(!hi) with Append _ -> false | _ -> true
    do
      incr hi
    done;
    if !hi > lo then run_segment t ~deliver out reqs lo !hi;
    i := !hi;
    if !i < n then begin
      (match reqs.(!i) with
      | Append delta ->
        out.(!i) <- timed_append t delta;
        note_work t 0 (snd out.(!i));
        deliver !i out.(!i)
      | _ -> assert false);
      incr i
    end
  done;
  out

let no_deliver _ _ = ()

let run_timed t reqs = run_with t ~deliver:no_deliver reqs

let run t reqs = Array.map fst (run_timed t reqs)

(* Per-completion delivery. The callback runs on whichever domain
   finishes the request, so it must be domain-safe; a callback that
   raises must not kill a worker loop (that would hang the batch
   barrier forever), so exceptions are caught at the delivery site and
   the first one re-raised on the caller's domain after the batch. *)
let run_deliver t ~on_complete reqs =
  let first_exn = Atomic.make None in
  let deliver i r =
    try on_complete i r
    with e -> ignore (Atomic.compare_and_set first_exn None (Some e))
  in
  let out = run_with t ~deliver reqs in
  (match Atomic.get first_exn with Some e -> raise e | None -> ());
  out
