open Olar_data
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Obs = Olar_obs.Obs
module Metrics = Olar_obs.Metrics
module Timer = Olar_util.Timer

type request =
  | Find_itemsets of { containing : Itemset.t; minsup : float }
  | Count_itemsets of { containing : Itemset.t; minsup : float }
  | Essential_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | All_rules of {
      containing : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minsup : float;
      minconf : float;
    }
  | Single_consequent_rules of {
      containing : Itemset.t;
      minsup : float;
      minconf : float;
    }
  | Support_for_k_itemsets of { containing : Itemset.t; k : int }
  | Support_for_k_rules of { involving : Itemset.t; minconf : float; k : int }
  | Boundary of {
      target : Itemset.t;
      constraints : Olar_core.Boundary.constraints;
      minconf : float;
    }
  | Append of Database.t

type response =
  | R_items of (Itemset.t * int) array
  | R_count of int
  | R_rules of Olar_core.Rule.t list
  | R_level of float option
  | R_entries of (Itemset.t * float) list
  | R_promoted of { promoted : Itemset.t list; db_size : int }
  | R_error of string

type completion = {
  latency_s : float;
  epoch : int;
  gen : int;
}

let null_deliver (_ : response) (_ : completion) = ()
let dummy_request = Count_itemsets { containing = Itemset.empty; minsup = 1.0 }

(* ------------------------------------------------------------------ *)
(* Published snapshots                                                 *)
(* ------------------------------------------------------------------ *)

(* One published database state: the engine the coordinator serves on
   plus a pre-built per-worker view ({!Engine.view}: same lattice, same
   epoch, private scratch) for every worker slot. The record is
   immutable; appends build the next one off to the side and swap the
   [published] pointer. *)
type snapshot = {
  gen : int; (* 0 at [create], +1 per successful append fold *)
  engine : Engine.t;
  views : Engine.t array; (* length num_domains - 1; views.(w) = slot w+1 *)
}

(* ------------------------------------------------------------------ *)
(* Submission shards                                                  *)
(* ------------------------------------------------------------------ *)

(* One pooled slot of a shard ring, in the Vyukov bounded-queue style:
   [c_seq] is the slot's sequence stamp. For ring position [p] (an
   ever-growing index; the slot is [p land mask]), [c_seq = p] means
   free for the producer, [c_seq = p + 1] means filled and claimable,
   and a consumer releases the slot for the next lap by stamping
   [p + capacity]. The stamp is the publication fence in both
   directions: fields are only written before a stamp and only read
   after observing one, so the mutable fields need no atomics and a
   request in flight costs zero allocation inside the pool. *)
type cell = {
  mutable c_req : request;
  mutable c_deliver : response -> completion -> unit;
  mutable c_submitted : float; (* Timer.monotonic_s at submit *)
  c_seq : int Atomic.t;
}

(* A worker's submission shard. Single producer (the coordinator),
   multiple consumers (the owning worker plus any stealing sibling, and
   the coordinator itself under backpressure or drain): producers probe
   [tail]'s slot stamp, consumers race on [head] with CAS. Parking is
   per-shard — one mutex/condvar pair nobody but this worker waits on —
   so waking one domain never touches the others. *)
type shard = {
  ring : cell array;
  mask : int;
  tail : int Atomic.t; (* producer cursor; written by the coordinator only *)
  head : int Atomic.t; (* consumer claim cursor *)
  pmu : Mutex.t;
  pcv : Condition.t;
  parked : bool Atomic.t;
}

(* Worker-local claim scratch: [try_pop] copies the claimed cell's
   fields here before releasing the cell, so the claim itself allocates
   nothing and the producer can reuse the slot immediately. *)
type slot = {
  mutable s_req : request;
  mutable s_deliver : response -> completion -> unit;
  mutable s_submitted : float;
}

let shard_capacity = 64 (* power of two; bounds per-shard backlog *)

let make_shard () =
  {
    ring =
      Array.init shard_capacity (fun i ->
          {
            c_req = dummy_request;
            c_deliver = null_deliver;
            c_submitted = 0.0;
            c_seq = Atomic.make i;
          });
    mask = shard_capacity - 1;
    tail = Atomic.make 0;
    head = Atomic.make 0;
    pmu = Mutex.create ();
    pcv = Condition.create ();
    parked = Atomic.make false;
  }

let make_slot () =
  { s_req = dummy_request; s_deliver = null_deliver; s_submitted = 0.0 }

type t = {
  published : snapshot Atomic.t; (* swapped by the coordinator at appends *)
  num_domains : int;
  sessions : Session.t array; (* slot 0 = coordinator, 1.. = workers *)
  adopted : int Atomic.t array; (* per-slot adopted generation *)
  mutable retired : snapshot list; (* coordinator-only; see [reclaim] *)
  mutable workers : unit Domain.t array;
  shards : shard array; (* length num_domains - 1; shard k feeds slot k+1 *)
  mutable rr : int; (* coordinator-only rotation seed for shard picks *)
  inflight : int Atomic.t; (* submitted, not yet delivered *)
  qmu : Mutex.t; (* coordinator's quiesce parking *)
  qcv : Condition.t;
  coord_waiting : bool Atomic.t;
  stop : bool Atomic.t;
  mutable closed : bool;
  served : int Atomic.t array; (* per-slot requests executed *)
  busy_ns : int Atomic.t array; (* per-slot execution nanoseconds *)
  dispatch_wait : Metrics.Histogram.t;
  deliver_exn : exn option Atomic.t; (* first callback escape, for drain *)
  coord_slot : slot;
}

type domain_stat = {
  requests : int;
  busy_s : float;
}

(* Charge [dt] seconds of execution to slot [idx]. Both cells take a
   plain [fetch_and_add] — seconds accumulate as integer nanoseconds,
   so a contended slot never spins the way a CAS-retry float add
   would. *)
let note_work t idx dt =
  ignore (Atomic.fetch_and_add t.served.(idx) 1);
  ignore
    (Atomic.fetch_and_add t.busy_ns.(idx)
       (int_of_float ((dt *. 1e9) +. 0.5)))

(* ------------------------------------------------------------------ *)
(* Request execution (any domain, on that domain's private session)   *)
(* ------------------------------------------------------------------ *)

let materialize lat ids =
  Array.map (fun v -> (Lattice.itemset lat v, Lattice.support lat v)) ids

(* Every exception becomes [R_error]: a bad threshold in one request
   must not poison the rest of the stream, and the serial comparison
   path raises the identical exception, keeping digests stable. *)
let execute session req =
  try
    match req with
    | Find_itemsets { containing; minsup } ->
      let ids = Session.itemset_ids ~containing session ~minsup in
      R_items (materialize (Engine.lattice (Session.engine session)) ids)
    | Count_itemsets { containing; minsup } ->
      R_count (Session.count_itemsets ~containing session ~minsup)
    | Essential_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.essential_rules ~containing ~constraints session ~minsup
           ~minconf)
    | All_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.all_rules ~containing ~constraints session ~minsup ~minconf)
    | Single_consequent_rules { containing; minsup; minconf } ->
      R_rules
        (Session.single_consequent_rules ~containing session ~minsup ~minconf)
    | Support_for_k_itemsets { containing; k } ->
      R_level (Session.support_for_k_itemsets session ~containing ~k)
    | Support_for_k_rules { involving; minconf; k } ->
      R_level (Session.support_for_k_rules session ~involving ~minconf ~k)
    | Boundary { target; constraints; minconf } ->
      R_entries (Session.boundary ~constraints session ~target ~minconf)
    | Append _ ->
      (* appends fold on the coordinator inside [submit], never in a shard *)
      R_error "Pool: append reached a worker"
  with e -> R_error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Snapshot adoption and reclamation                                  *)
(* ------------------------------------------------------------------ *)

(* Move slot [idx] onto the currently published snapshot if it is
   behind. Called by a worker right after a winning claim (the claim's
   stamp read happened after the producer's stamp write, which happened
   after any publish that preceded the submit — SC atomics — so a
   request submitted after an append can never execute on the
   pre-append snapshot) and again before parking, so an idle domain
   never pins a retired snapshot. [adopted.(idx)] is written only by
   the slot's own domain (slot 0 by the coordinator inside the fold);
   it is atomic so [reclaim] can read every slot from the
   coordinator. *)
let maybe_adopt t idx =
  let snap = Atomic.get t.published in
  if snap.gen > Atomic.get t.adopted.(idx) then begin
    Session.adopt_engine t.sessions.(idx) snap.views.(idx - 1);
    Atomic.set t.adopted.(idx) snap.gen
  end

(* Drop every retired snapshot that no slot can still be executing on:
   once min(adopted) has advanced past gen g, no future claim can run
   on the gen-g snapshot (claims adopt forward, never backward), so it
   is unreachable and the GC may have it. Coordinator-only — [retired]
   is an ordinary mutable field. *)
let reclaim t =
  match t.retired with
  | [] -> ()
  | retired ->
    let floor =
      Array.fold_left (fun m a -> min m (Atomic.get a)) max_int t.adopted
    in
    t.retired <- List.filter (fun s -> s.gen >= floor) retired

(* ------------------------------------------------------------------ *)
(* Shard operations                                                   *)
(* ------------------------------------------------------------------ *)

(* Claim one request from [sh] into [slot]. Fields are read after the
   winning CAS on [head] (sole ownership) and the cell is released —
   with its closure reference dropped, so delivered callbacks are not
   retained for a lap — before execution begins. *)
let try_pop sh slot =
  let rec go () =
    let h = Atomic.get sh.head in
    let cell = sh.ring.(h land sh.mask) in
    let s = Atomic.get cell.c_seq in
    if s = h + 1 then
      if Atomic.compare_and_set sh.head h (h + 1) then begin
        slot.s_req <- cell.c_req;
        slot.s_deliver <- cell.c_deliver;
        slot.s_submitted <- cell.c_submitted;
        cell.c_req <- dummy_request;
        cell.c_deliver <- null_deliver;
        Atomic.set cell.c_seq (h + Array.length sh.ring);
        true
      end
      else go () (* lost the claim race; re-probe *)
    else if s > h + 1 then go () (* stale head read; re-probe *)
    else false (* empty, or mid-publication *)
  in
  go ()

(* Producer side; single-threaded by the coordinator invariant. *)
let try_push sh req deliver now =
  let p = Atomic.get sh.tail in
  let cell = sh.ring.(p land sh.mask) in
  if Atomic.get cell.c_seq = p then begin
    cell.c_req <- req;
    cell.c_deliver <- deliver;
    cell.c_submitted <- now;
    Atomic.set cell.c_seq (p + 1);
    Atomic.set sh.tail (p + 1);
    true
  end
  else false (* the slot is still claimed: the ring is full *)

(* Is any shard non-empty? Probes the head slot's stamp only — the
   parking recheck, so it must be cheap. *)
let has_work t =
  let n = Array.length t.shards in
  let rec go k =
    if k >= n then false
    else
      let sh = t.shards.(k) in
      let h = Atomic.get sh.head in
      if Atomic.get sh.ring.(h land sh.mask).c_seq = h + 1 then true
      else go (k + 1)
  in
  go 0

let unpark sh =
  Mutex.lock sh.pmu;
  Atomic.set sh.parked false;
  Condition.signal sh.pcv;
  Mutex.unlock sh.pmu

(* Wake policy after pushing into shard [k]: the owner if it is parked;
   otherwise any parked sibling, which will find the request by
   stealing. A request never waits on a parked pool. *)
let wake t k =
  let n = Array.length t.shards in
  let sh = t.shards.(k) in
  if Atomic.get sh.parked then unpark sh
  else
    let rec scan i =
      if i < n then
        let s = t.shards.((k + i) mod n) in
        if Atomic.get s.parked then unpark s else scan (i + 1)
    in
    scan 1

(* Wake every parked worker — the publish-side half of adoption. Pairs
   with the worker's park sequence the same way [wake] pairs with the
   emptiness recheck: either this scan sees the worker's [parked] flag
   and signals it awake (it adopts at the top of its loop), or the
   worker set the flag after the scan read it, in which case the
   worker's own pre-park [maybe_adopt] — which runs after setting the
   flag — is ordered after the publish and sees the new snapshot. *)
let wake_all t =
  Array.iter (fun sh -> if Atomic.get sh.parked then unpark sh) t.shards

(* ------------------------------------------------------------------ *)
(* Execution of a claimed request                                     *)
(* ------------------------------------------------------------------ *)

let record_deliver_exn t e =
  ignore (Atomic.compare_and_set t.deliver_exn None (Some e))

(* Retire one request: the last decrement wakes a coordinator that is
   parked in [drain] waiting for the stream to go quiet. *)
let finish_one t =
  if Atomic.fetch_and_add t.inflight (-1) = 1 && Atomic.get t.coord_waiting
  then begin
    Mutex.lock t.qmu;
    Condition.signal t.qcv;
    Mutex.unlock t.qmu
  end

(* The completion stamps the view the request actually executed on:
   [adopted.(idx)] is written only by this slot's domain, so even if an
   append publishes mid-execution the recorded gen/epoch stay those of
   the snapshot this execution read. *)
let exec_slot t idx slot =
  let req = slot.s_req and deliver = slot.s_deliver in
  slot.s_req <- dummy_request;
  slot.s_deliver <- null_deliver;
  let t0 = Timer.monotonic_s () in
  Metrics.Histogram.observe t.dispatch_wait
    (Float.max 0.0 (t0 -. slot.s_submitted));
  let resp = execute t.sessions.(idx) req in
  let dt = Float.max 0.0 (Timer.monotonic_s () -. t0) in
  note_work t idx dt;
  let c =
    {
      latency_s = dt;
      epoch = Engine.epoch (Session.engine t.sessions.(idx));
      gen = Atomic.get t.adopted.(idx);
    }
  in
  (try deliver resp c with e -> record_deliver_exn t e);
  finish_one t

(* Coordinator-side help: claim and execute one queued request on the
   coordinator's session. Keeps the caller's domain a full serving
   participant during batch drains, and doubles as backpressure when
   every ring is full. The coordinator is always on the latest
   snapshot (it is the one that publishes), so no adoption check. *)
let help_one t =
  let n = Array.length t.shards in
  let rec scan k =
    if k >= n then false
    else if try_pop t.shards.((t.rr + k) mod n) t.coord_slot then begin
      exec_slot t 0 t.coord_slot;
      true
    end
    else scan (k + 1)
  in
  n > 0 && scan 0

(* ------------------------------------------------------------------ *)
(* Worker loop                                                        *)
(* ------------------------------------------------------------------ *)

let worker_loop t w =
  let slot = make_slot () in
  let idx = w + 1 in
  let n = Array.length t.shards in
  let own = t.shards.(w) in
  (* own shard first, then steal from siblings in ring order *)
  let rec claim k = k < n && (try_pop t.shards.((w + k) mod n) slot || claim (k + 1)) in
  let rec go () =
    if not (Atomic.get t.stop) then
      if claim 0 then begin
        (* adopt after the claim, before executing: see [maybe_adopt] *)
        maybe_adopt t idx;
        exec_slot t idx slot;
        go ()
      end
      else begin
        (* Park. Publishing [parked] before the final emptiness recheck
           closes the lost-wakeup window: either the recheck sees the
           producer's publication, or the producer's [wake] sees the
           flag (both are SC atomics). The flag doubles as the wait
           predicate — [unpark] clears it under the mutex. *)
        Atomic.set own.parked true;
        if has_work t || Atomic.get t.stop then Atomic.set own.parked false
        else begin
          (* adopt before sleeping: after setting [parked], so the
             ordering against [wake_all] holds (see its comment), and an
             idle domain releases its reference to a retired snapshot *)
          maybe_adopt t idx;
          Mutex.lock own.pmu;
          while Atomic.get own.parked && not (Atomic.get t.stop) do
            Condition.wait own.pcv own.pmu
          done;
          Mutex.unlock own.pmu;
          Atomic.set own.parked false
        end;
        go ()
      end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Construction / teardown                                            *)
(* ------------------------------------------------------------------ *)

let dispatch_wait_name = "olar_pool_dispatch_wait_seconds"

let create ?domains ?budget_bytes engine =
  let d =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  if d < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let obs = Engine.obs engine in
  (* Snapshot gen 0: the caller's engine plus one view per worker —
     same lattice, same epoch, private scratch each. *)
  let views = Array.init (d - 1) (fun _ -> Engine.view engine) in
  let sessions =
    Array.init d (fun i ->
        if i = 0 then Session.create ?budget_bytes engine
        else Session.create ?budget_bytes views.(i - 1))
  in
  let dispatch_wait =
    match obs with
    | Some ctx ->
      Metrics.histogram (Obs.metrics ctx)
        ~help:"Seconds between submit and a domain claiming the request"
        dispatch_wait_name
    | None -> Metrics.Histogram.create dispatch_wait_name
  in
  let t =
    {
      published = Atomic.make { gen = 0; engine; views };
      num_domains = d;
      sessions;
      adopted = Array.init d (fun _ -> Atomic.make 0);
      retired = [];
      workers = [||];
      shards = Array.init (d - 1) (fun _ -> make_shard ());
      rr = 0;
      inflight = Atomic.make 0;
      qmu = Mutex.create ();
      qcv = Condition.create ();
      coord_waiting = Atomic.make false;
      stop = Atomic.make false;
      closed = false;
      served = Array.init d (fun _ -> Atomic.make 0);
      busy_ns = Array.init d (fun _ -> Atomic.make 0);
      dispatch_wait;
      deliver_exn = Atomic.make None;
      coord_slot = make_slot ();
    }
  in
  t.workers <-
    Array.init (d - 1) (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

let domains t = t.num_domains
let engine t = (Atomic.get t.published).engine
let generation t = (Atomic.get t.published).gen
let stats t = Array.map Session.stats t.sessions

let domain_stats t =
  Array.init t.num_domains (fun i ->
      {
        requests = Atomic.get t.served.(i);
        busy_s = float_of_int (Atomic.get t.busy_ns.(i)) /. 1e9;
      })

let dispatch_wait t = t.dispatch_wait

let shard_depths t =
  Array.map (fun sh -> max 0 (Atomic.get sh.tail - Atomic.get sh.head)) t.shards

let retired_snapshots t =
  reclaim t;
  List.length t.retired

(* ------------------------------------------------------------------ *)
(* Quiesce                                                            *)
(* ------------------------------------------------------------------ *)

(* Wait out every submitted request. The coordinator is the only
   producer, so once it is in here intake has stopped; it helps drain
   the shards, and only parks — on its own condvar, woken by whichever
   domain retires the last request — for requests a worker already
   claimed. *)
let drain_quiet t =
  while help_one t do
    ()
  done;
  if Atomic.get t.inflight > 0 then begin
    Mutex.lock t.qmu;
    Atomic.set t.coord_waiting true;
    while Atomic.get t.inflight > 0 do
      Condition.wait t.qcv t.qmu
    done;
    Atomic.set t.coord_waiting false;
    Mutex.unlock t.qmu
  end

let drain t =
  drain_quiet t;
  match Atomic.get t.deliver_exn with
  | Some e ->
    Atomic.set t.deliver_exn None;
    raise e
  | None -> ()

(* Snapshot publication — the append path, and the one place the
   published pointer moves. No quiesce: readers in flight keep
   traversing the old snapshot (immutable, still referenced from
   [retired]) while this builds and swaps in the new one. The fold
   itself is the serial [Session.append] through the coordinator's
   session — the single mutation path, so pool appends and serial
   appends are the same code. Publication order matters: the pointer
   swap precedes any subsequent cell stamp, so every request submitted
   after this append is claimed after the swap and adopts gen >=
   [snap.gen] (see [maybe_adopt]). *)
let publish_append t delta =
  let promoted = Session.append t.sessions.(0) delta in
  let engine = Session.engine t.sessions.(0) in
  let old = Atomic.get t.published in
  let snap =
    {
      gen = old.gen + 1;
      engine;
      views = Array.init (t.num_domains - 1) (fun _ -> Engine.view engine);
    }
  in
  Atomic.set t.published snap;
  Atomic.set t.adopted.(0) snap.gen;
  t.retired <- old :: t.retired;
  reclaim t;
  (* parked workers have no next claim to adopt at — wake them all *)
  wake_all t;
  R_promoted { promoted; db_size = Engine.db_size engine }

(* ------------------------------------------------------------------ *)
(* Submission                                                         *)
(* ------------------------------------------------------------------ *)

(* Execute synchronously on the coordinator (1-domain pools, append
   folds): no shard crossed, so no dispatch wait is observed. *)
let inline_exec t run_req deliver =
  let t0 = Timer.monotonic_s () in
  let resp = run_req () in
  let dt = Float.max 0.0 (Timer.monotonic_s () -. t0) in
  note_work t 0 dt;
  let c =
    {
      latency_s = dt;
      epoch = Engine.epoch (Session.engine t.sessions.(0));
      gen = Atomic.get t.adopted.(0);
    }
  in
  try deliver resp c with e -> record_deliver_exn t e

let pick_shard t =
  let n = Array.length t.shards in
  let start = t.rr in
  t.rr <- (if start + 1 >= n then 0 else start + 1);
  let best = ref start and best_depth = ref max_int in
  for k = 0 to n - 1 do
    let i = (start + k) mod n in
    let sh = t.shards.(i) in
    let depth = Atomic.get sh.tail - Atomic.get sh.head in
    if depth < !best_depth then begin
      best := i;
      best_depth := depth
    end
  done;
  !best

let submit_exn t msg req deliver =
  if t.closed then invalid_arg msg;
  match req with
  | Append delta ->
    (* non-blocking: fold and publish while reads stay in flight *)
    inline_exec t
      (fun () ->
        try publish_append t delta with e -> R_error (Printexc.to_string e))
      deliver
  | _ ->
    if t.num_domains = 1 then
      inline_exec t (fun () -> execute t.sessions.(0) req) deliver
    else begin
      ignore (Atomic.fetch_and_add t.inflight 1);
      let now = Timer.monotonic_s () in
      let rec push () =
        let k = pick_shard t in
        if try_push t.shards.(k) req deliver now then wake t k
        else if help_one t then push ()
          (* every ring full: drained one request inline (backpressure),
             a slot is free somewhere now *)
        else begin
          (* full rings but nothing claimable — consumers hold claims
             mid-copy; yield and re-probe *)
          Domain.cpu_relax ();
          push ()
        end
      in
      push ()
    end

let submit t req deliver = submit_exn t "Pool.submit: pool is shut down" req deliver

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    (* retire anything already submitted before stopping the loops *)
    drain_quiet t;
    Atomic.set t.stop true;
    Array.iter
      (fun sh ->
        Mutex.lock sh.pmu;
        Condition.broadcast sh.pcv;
        Mutex.unlock sh.pmu)
      t.shards;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains ?budget_bytes engine f =
  let t = create ?domains ?budget_bytes engine in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Batch wrappers                                                     *)
(* ------------------------------------------------------------------ *)

let run_msg = "Pool.run: pool is shut down"

(* The batch wrappers keep the old sequential semantics on top of
   non-blocking appends by draining before each [Append] submission:
   within one batch, every request before an append executes on the
   pre-append snapshot and every request after it on the post-append
   one — exactly what a serial [Session] does, so positional digest
   equality against serial execution still holds. Streaming callers
   that want appends to overlap reads use {!submit} directly. *)
let run_with t ~deliver reqs =
  if t.closed then invalid_arg run_msg;
  let n = Array.length reqs in
  let out = Array.make n (R_error "not executed", 0.0) in
  for i = 0 to n - 1 do
    (match reqs.(i) with Append _ -> drain_quiet t | _ -> ());
    submit_exn t run_msg reqs.(i) (fun resp c ->
        let r = (resp, c.latency_s) in
        out.(i) <- r;
        deliver i r)
  done;
  drain_quiet t;
  (* every completion's inflight decrement happened-before the drain's
     zero read, so the [out] writes are visible here *)
  out

let no_deliver _ _ = ()
let run_timed t reqs = run_with t ~deliver:no_deliver reqs
let run t reqs = Array.map fst (run_timed t reqs)

(* Per-completion delivery. The callback runs on whichever domain
   finishes the request, so it must be domain-safe; a callback that
   raises must not kill a worker loop, so exceptions are caught at the
   delivery site and the first one re-raised on the caller's domain
   after the batch. *)
let run_deliver t ~on_complete reqs =
  let first_exn = Atomic.make None in
  let deliver i r =
    try on_complete i r
    with e -> ignore (Atomic.compare_and_set first_exn None (Some e))
  in
  let out = run_with t ~deliver reqs in
  (match Atomic.get first_exn with Some e -> raise e | None -> ());
  out
