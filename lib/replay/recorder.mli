(** Workload capture: a recording façade over {!Olar_serve.Session}.

    Every query function mirrors the session function of the same name
    — same arguments, same results, same exceptions — and additionally
    emits one {!Record.t} describing the call: the full query key, the
    FNV-1a digest of the canonical-order result, the result size, the
    wall-clock latency, the traversal work attributed to the call (read
    as deltas of the engine context's shared work counters, so cached
    and uncached paths are costed identically), and the cache path the
    session took ({!Olar_serve.Session.last_path}).

    Records reach the caller through [emit] — typically
    {!Record.to_json_line} appended to a jsonl file, or {!Record.pp}
    for an EXPLAIN view. [slow_s] turns the recorder into a slow-query
    log: only calls at or above the threshold are emitted (the sequence
    number still advances for every call, so a slow-query log preserves
    each record's position in the session).

    A query that raises emits nothing — there is no result to digest —
    and the sequence number does not advance.

    {b Digest semantics} (the replay contract, see DESIGN.md §9):
    itemset answers digest each (itemset, integer support count) in
    canonical order; counts digest the count; rule answers digest each
    (antecedent, consequent, support count, antecedent count) in
    generation order; FindSupport answers digest a presence tag then
    the bits of the fractional level; boundary answers digest each
    (itemset, fractional support bits) in kernel order; appends digest
    the promotion frontier and the new database size. *)

open Olar_data

type t

(** [create ~emit session] wraps [session]. [slow_s] (seconds, default
    [0.] = record everything) suppresses records for faster queries;
    [clock] (default {!Olar_util.Timer.monotonic_s}, which cannot go
    backwards under system clock steps) is injectable for tests.
    Latencies are additionally clamped at 0 so a backwards-running
    injected clock can never record a negative latency. *)
val create :
  ?slow_s:float ->
  ?clock:(unit -> float) ->
  emit:(Record.t -> unit) ->
  Olar_serve.Session.t ->
  t

val session : t -> Olar_serve.Session.t

(** Number of queries issued through this recorder so far (including
    ones below the slow threshold). *)
val count : t -> int

val itemsets :
  ?containing:Itemset.t -> t -> minsup:float -> (Itemset.t * float) list

val itemset_ids :
  ?containing:Itemset.t -> t -> minsup:float -> Olar_core.Lattice.vertex_id array

val count_itemsets : ?containing:Itemset.t -> t -> minsup:float -> int

val essential_rules :
  ?containing:Itemset.t ->
  ?constraints:Olar_core.Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Olar_core.Rule.t list

val all_rules :
  ?containing:Itemset.t ->
  ?constraints:Olar_core.Boundary.constraints ->
  t ->
  minsup:float ->
  minconf:float ->
  Olar_core.Rule.t list

val single_consequent_rules :
  ?containing:Itemset.t -> t -> minsup:float -> minconf:float -> Olar_core.Rule.t list

val support_for_k_itemsets : t -> containing:Itemset.t -> k:int -> float option

val support_for_k_rules :
  t -> involving:Itemset.t -> minconf:float -> k:int -> float option

val boundary :
  ?constraints:Olar_core.Boundary.constraints ->
  t ->
  target:Itemset.t ->
  minconf:float ->
  (Itemset.t * float) list

val append : ?domains:int -> t -> Database.t -> Itemset.t list

(** {1 Digest definitions}

    The digest of each result shape, exposed so pool replay
    ({!Replay.run_pool}) and the stress harness hash by-value results
    with exactly the semantics this recorder captures. *)

(** [digest_items entries] digests (itemset, support count) pairs in
    the given (canonical) order — the digest of a find-itemsets
    answer. *)
val digest_items : (Itemset.t * int) array -> Fnv.t

val digest_rules : Olar_core.Rule.t list -> Fnv.t
val digest_level : float option -> Fnv.t
val digest_entries : (Itemset.t * float) list -> Fnv.t

(** [digest_promoted ~db_size promoted] is the append digest: the
    promotion frontier then the post-append database size. *)
val digest_promoted : db_size:int -> Itemset.t list -> Fnv.t
