open Olar_data
module Jsonx = Olar_obs.Jsonx

type kind =
  | Find_itemsets
  | Count_itemsets
  | Essential_rules
  | All_rules
  | Single_consequent_rules
  | Support_for_k_itemsets
  | Support_for_k_rules
  | Boundary
  | Append

type cache_path =
  | Hit
  | Refine
  | Miss
  | Passthrough

type t = {
  seq : int;
  kind : kind;
  containing : Itemset.t;
  antecedent_includes : Itemset.t;
  consequent_includes : Itemset.t;
  allow_empty_antecedent : bool;
  minsup : float option;
  minconf : float option;
  k : int option;
  delta : int list list;
  delta_num_items : int;
  cache : cache_path;
  digest : Fnv.t;
  result_size : int;
  latency_s : float;
  vertices : int;
  heap_pops : int;
  epoch : int;
}

let kind_to_string = function
  | Find_itemsets -> "find"
  | Count_itemsets -> "count"
  | Essential_rules -> "essential_rules"
  | All_rules -> "all_rules"
  | Single_consequent_rules -> "single_consequent_rules"
  | Support_for_k_itemsets -> "support_for_k_itemsets"
  | Support_for_k_rules -> "support_for_k_rules"
  | Boundary -> "boundary"
  | Append -> "append"

let kind_of_string = function
  | "find" -> Some Find_itemsets
  | "count" -> Some Count_itemsets
  | "essential_rules" -> Some Essential_rules
  | "all_rules" -> Some All_rules
  | "single_consequent_rules" -> Some Single_consequent_rules
  | "support_for_k_itemsets" -> Some Support_for_k_itemsets
  | "support_for_k_rules" -> Some Support_for_k_rules
  | "boundary" -> Some Boundary
  | "append" -> Some Append
  | _ -> None

let cache_path_to_string = function
  | Hit -> "hit"
  | Refine -> "refine"
  | Miss -> "miss"
  | Passthrough -> "pass"

let cache_path_of_string = function
  | "hit" -> Some Hit
  | "refine" -> Some Refine
  | "miss" -> Some Miss
  | "pass" -> Some Passthrough
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let itemset_json x =
  Jsonx.Arr (List.map (fun i -> Jsonx.Int i) (Itemset.to_list x))

let to_json_line r =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  add "v" (Jsonx.Int 1);
  add "seq" (Jsonx.Int r.seq);
  add "kind" (Jsonx.Str (kind_to_string r.kind));
  if not (Itemset.is_empty r.containing) then
    add "containing" (itemset_json r.containing);
  if not (Itemset.is_empty r.antecedent_includes) then
    add "antecedent" (itemset_json r.antecedent_includes);
  if not (Itemset.is_empty r.consequent_includes) then
    add "consequent" (itemset_json r.consequent_includes);
  if r.allow_empty_antecedent then add "allow_empty" (Jsonx.Bool true);
  (match r.minsup with Some s -> add "minsup" (Jsonx.Float s) | None -> ());
  (match r.minconf with Some c -> add "minconf" (Jsonx.Float c) | None -> ());
  (match r.k with Some k -> add "k" (Jsonx.Int k) | None -> ());
  if r.delta <> [] then
    add "delta"
      (Jsonx.Arr
         (List.map
            (fun txn -> Jsonx.Arr (List.map (fun i -> Jsonx.Int i) txn))
            r.delta));
  if r.delta_num_items > 0 then add "num_items" (Jsonx.Int r.delta_num_items);
  add "cache" (Jsonx.Str (cache_path_to_string r.cache));
  add "digest" (Jsonx.Str (Fnv.to_hex r.digest));
  add "size" (Jsonx.Int r.result_size);
  add "lat_s" (Jsonx.Float r.latency_s);
  add "vertices" (Jsonx.Int r.vertices);
  add "pops" (Jsonx.Int r.heap_pops);
  add "epoch" (Jsonx.Int r.epoch);
  Jsonx.to_string (Jsonx.Obj (List.rev !fields))

(* The key alone — the wire body of the serving daemon's POST /query.
   Outcome fields (digest, latency, work, cache path) describe an
   execution that has not happened yet, so they are simply absent. *)
let key_to_json_line r =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  add "v" (Jsonx.Int 1);
  add "kind" (Jsonx.Str (kind_to_string r.kind));
  if not (Itemset.is_empty r.containing) then
    add "containing" (itemset_json r.containing);
  if not (Itemset.is_empty r.antecedent_includes) then
    add "antecedent" (itemset_json r.antecedent_includes);
  if not (Itemset.is_empty r.consequent_includes) then
    add "consequent" (itemset_json r.consequent_includes);
  if r.allow_empty_antecedent then add "allow_empty" (Jsonx.Bool true);
  (match r.minsup with Some s -> add "minsup" (Jsonx.Float s) | None -> ());
  (match r.minconf with Some c -> add "minconf" (Jsonx.Float c) | None -> ());
  (match r.k with Some k -> add "k" (Jsonx.Int k) | None -> ());
  if r.delta <> [] then
    add "delta"
      (Jsonx.Arr
         (List.map
            (fun txn -> Jsonx.Arr (List.map (fun i -> Jsonx.Int i) txn))
            r.delta));
  if r.delta_num_items > 0 then add "num_items" (Jsonx.Int r.delta_num_items);
  Jsonx.to_string (Jsonx.Obj (List.rev !fields))

(* ------------------------------------------------------------------ *)
(* Decoding (strict)                                                  *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let req name = function
  | Some v -> v
  | None -> fail "missing field %S" name

let as_int name = function
  | Jsonx.Int i -> i
  | _ -> fail "field %S: expected integer" name

let as_float name = function
  | Jsonx.Int i -> float_of_int i
  | Jsonx.Float f -> f
  | _ -> fail "field %S: expected number" name

let as_str name = function
  | Jsonx.Str s -> s
  | _ -> fail "field %S: expected string" name

let as_itemset name v =
  match Jsonx.to_list v with
  | None -> fail "field %S: expected array" name
  | Some items -> Itemset.of_list (List.map (as_int name) items)

(* [strict] decodes a full log record: every outcome field is required.
   With [strict = false] (the wire-key mode behind {!key_of_json_line})
   the outcome fields — and "v"/"seq" — are optional with neutral
   defaults, but anything present must still parse and unknown kinds
   are still rejected. *)
let decode ~strict line =
  match Jsonx.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok json -> (
    try
      (match json with Jsonx.Obj _ -> () | _ -> fail "expected an object");
      let m name = Jsonx.member name json in
      let opt name f = Option.map (f name) (m name) in
      let dflt name f d = match m name with None when not strict -> d | v -> f name (req name v) in
      let version = dflt "v" as_int 1 in
      if version <> 1 then fail "unsupported record version %d" version;
      let kind_s = as_str "kind" (req "kind" (m "kind")) in
      let kind =
        match kind_of_string kind_s with
        | Some k -> k
        | None -> fail "unknown kind %S" kind_s
      in
      let cache_s = dflt "cache" as_str (cache_path_to_string Passthrough) in
      let cache =
        match cache_path_of_string cache_s with
        | Some c -> c
        | None -> fail "unknown cache path %S" cache_s
      in
      let digest_s = dflt "digest" as_str (Fnv.to_hex Fnv.empty) in
      let digest =
        match Fnv.of_hex digest_s with
        | Some d -> d
        | None -> fail "bad digest %S" digest_s
      in
      let itemset_field name =
        match m name with
        | None -> Itemset.empty
        | Some v -> as_itemset name v
      in
      let delta =
        match m "delta" with
        | None -> []
        | Some v -> (
          match Jsonx.to_list v with
          | None -> fail "field \"delta\": expected array"
          | Some txns ->
            List.map
              (fun txn ->
                match Jsonx.to_list txn with
                | None -> fail "field \"delta\": expected array of arrays"
                | Some items -> List.map (as_int "delta") items)
              txns)
      in
      Ok
        {
          seq = dflt "seq" as_int 0;
          kind;
          containing = itemset_field "containing";
          antecedent_includes = itemset_field "antecedent";
          consequent_includes = itemset_field "consequent";
          allow_empty_antecedent =
            (match m "allow_empty" with
            | Some (Jsonx.Bool b) -> b
            | Some _ -> fail "field \"allow_empty\": expected bool"
            | None -> false);
          minsup = opt "minsup" as_float;
          minconf = opt "minconf" as_float;
          k = opt "k" as_int;
          delta;
          delta_num_items =
            (match opt "num_items" as_int with Some n -> n | None -> 0);
          cache;
          digest;
          result_size = dflt "size" as_int 0;
          latency_s = dflt "lat_s" as_float 0.0;
          vertices = dflt "vertices" as_int 0;
          heap_pops = dflt "pops" as_int 0;
          epoch = dflt "epoch" as_int 0;
        }
    with Bad msg -> Error msg)

let of_json_line line = decode ~strict:true line
let key_of_json_line line = decode ~strict:false line

(* ------------------------------------------------------------------ *)
(* EXPLAIN rendering                                                  *)
(* ------------------------------------------------------------------ *)

let pp_itemset ppf x =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (Itemset.to_list x)))

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "#%d %s" r.seq (kind_to_string r.kind);
  if not (Itemset.is_empty r.containing) then
    Format.fprintf ppf " %a" pp_itemset r.containing;
  Option.iter (fun s -> Format.fprintf ppf " minsup=%g" s) r.minsup;
  Option.iter (fun c -> Format.fprintf ppf " minconf=%g" c) r.minconf;
  Option.iter (fun k -> Format.fprintf ppf " k=%d" k) r.k;
  if not (Itemset.is_empty r.antecedent_includes) then
    Format.fprintf ppf " antecedent⊇%a" pp_itemset r.antecedent_includes;
  if not (Itemset.is_empty r.consequent_includes) then
    Format.fprintf ppf " consequent⊇%a" pp_itemset r.consequent_includes;
  if r.allow_empty_antecedent then Format.fprintf ppf " allow-empty-antecedent";
  if r.delta <> [] then
    Format.fprintf ppf " delta=%d txns over %d items" (List.length r.delta)
      r.delta_num_items;
  Format.fprintf ppf "@,  cache=%s size=%d digest=%s"
    (cache_path_to_string r.cache)
    r.result_size (Fnv.to_hex r.digest);
  Format.fprintf ppf "@,  latency=%.3fms vertices=%d heap_pops=%d epoch=%d"
    (r.latency_s *. 1000.0) r.vertices r.heap_pops r.epoch;
  Format.fprintf ppf "@]"
