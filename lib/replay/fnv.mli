(** FNV-1a 64-bit digests over structured query results.

    The workload log stores, for every query, a digest of the result in
    its canonical order (see {!Record}); replaying the log recomputes
    the digest and any difference is a correctness regression. FNV-1a
    is used for its simplicity and total portability — the digest is a
    pure function of the folded integers, with no dependency on
    hashing seeds, word size quirks, or process state.

    A digest is built by folding values into an accumulator:
    [empty |> int 3 |> itemset x |> float 0.5]. Every combinator is a
    plain function, so digests are deterministic by construction. *)

type t = int64

(** The FNV-1a 64-bit offset basis, [0xcbf29ce484222325]. *)
val empty : t

(** [int h i] folds the 8 little-endian bytes of [i] (as an [int64]). *)
val int : t -> int -> t

val int64 : t -> int64 -> t

(** [bool h b] is [int h 1] or [int h 0]. *)
val bool : t -> bool -> t

(** [float h f] folds [Int64.bits_of_float f] — exact bit equality, no
    epsilon. Replay runs the same computation on the same lattice, so
    bitwise reproducibility is the property being checked. *)
val float : t -> float -> t

(** [string h s] folds the length, then the bytes — self-delimiting
    like {!itemset}. Used to digest error messages, which have no
    structured result to fold. *)
val string : t -> string -> t

(** [itemset h x] folds the cardinality, then the items in increasing
    order. The leading cardinality keeps item sequences
    self-delimiting, so [\[{1}; {2,3}\]] and [\[{1,2}; {3}\]] digest
    differently. *)
val itemset : t -> Olar_data.Itemset.t -> t

(** [to_hex h] is 16 lowercase hex characters; [of_hex] inverts it.
    [of_hex] returns [None] on anything but exactly 16 hex digits. *)
val to_hex : t -> string

val of_hex : string -> t option
