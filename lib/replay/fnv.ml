type t = int64

let empty = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
  done;
  !h

let int h i = int64 h (Int64.of_int i)
let bool h b = int h (if b then 1 else 0)
let float h f = int64 h (Int64.bits_of_float f)

let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let itemset h x =
  Olar_data.Itemset.fold
    (fun item acc -> int acc item)
    x
    (int h (Olar_data.Itemset.cardinal x))

let to_hex h = Printf.sprintf "%016Lx" h

let of_hex s =
  if String.length s <> 16 then None
  else if
    String.exists
      (fun c ->
        not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
      s
  then None
  else Int64.of_string_opt ("0x" ^ s)
