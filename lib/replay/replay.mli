(** Deterministic re-execution of a captured workload log.

    [run] replays each {!Record.t} against a session — rebuilding the
    exact call from the record's query key — through a fresh
    {!Recorder}, and compares the replayed digest against the recorded
    one. The digest invariant leans on the canonical result orders
    pinned in the core kernels, so on the same lattice a mismatch is a
    correctness regression, not noise: nondeterminism would have to be
    introduced deliberately to break it.

    Appends are replayed too (the record carries the delta
    transactions), so a log that interleaves queries and maintenance
    drives the session through the same sequence of epochs the capture
    did. Latency and work totals are accumulated on both sides for the
    perf delta report; latency is wall-clock and machine-dependent,
    digests are not. *)

type outcome = {
  record : Record.t;  (** as captured *)
  replayed : Record.t option;
      (** the re-execution's record; [None] when the call raised *)
  ok : bool;  (** digests equal *)
}

type report = {
  total : int;
  mismatches : int;  (** digest mismatches, including raised calls *)
  errors : int;  (** replayed calls that raised (subset of mismatches) *)
  recorded_s : float;  (** summed recorded latency *)
  replayed_s : float;  (** summed replayed latency *)
  recorded_vertices : int;
  replayed_vertices : int;
  recorded_heap_pops : int;
  replayed_heap_pops : int;
}

(** [load path] reads a jsonl log. The first malformed line is an
    [Error] naming its line number. *)
val load : string -> (Record.t list, string) result

(** [run session records] replays the log in order. [on_outcome] fires
    after every record (for progress or EXPLAIN output). The session is
    mutated by replayed appends, exactly as during capture. *)
val run :
  ?on_outcome:(outcome -> unit) ->
  Olar_serve.Session.t ->
  Record.t list ->
  report

(** {1 Pool replay} *)

(** [request_of_record r] is the {!Olar_serve.Pool} request for [r]'s
    query key, or [Error] when the record is structurally incomplete
    (e.g. a find without minsup). *)
val request_of_record :
  Record.t -> (Olar_serve.Pool.request, string) result

(** [digest_response resp] hashes a by-value pool response with exactly
    the {!Recorder} digest semantics for its kind; [None] for
    {!Olar_serve.Pool.R_error} (an error has no digestible result). *)
val digest_response : Olar_serve.Pool.response -> Fnv.t option

(** [run_pool pool records] streams the log through a serving pool via
    {!Olar_serve.Pool.submit} — the server drainer's continuous path —
    with appends quiescing the stream, walking the same epoch sequence
    the capture did — and compares each response digest against its
    record. Work counters on the replayed side are the
    {e aggregate} obs deltas for the whole batch (per-query attribution
    is impossible across domains; zero when telemetry is off).
    [on_response] fires per record in submission order. *)
val run_pool :
  ?on_response:(Record.t -> Olar_serve.Pool.response -> ok:bool -> unit) ->
  Olar_serve.Pool.t ->
  Record.t list ->
  report
