open Olar_data
module Session = Olar_serve.Session
module Boundary = Olar_core.Boundary

type outcome = {
  record : Record.t;
  replayed : Record.t option;
  ok : bool;
}

type report = {
  total : int;
  mismatches : int;
  errors : int;
  recorded_s : float;
  replayed_s : float;
  recorded_vertices : int;
  replayed_vertices : int;
  recorded_heap_pops : int;
  replayed_heap_pops : int;
}

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> loop (lineno + 1) acc
        | line -> (
          match Record.of_json_line line with
          | Ok r -> loop (lineno + 1) (r :: acc)
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      loop 1 [])

(* Rebuild the exact call a record describes and issue it through
   [recorder]. Raises [Failure] on a structurally incomplete record
   (e.g. a find without minsup) — the caller turns that into a failed
   outcome rather than aborting the whole replay. *)
let dispatch recorder (r : Record.t) =
  let minsup () =
    match r.minsup with
    | Some s -> s
    | None -> failwith "record is missing minsup"
  in
  let minconf () =
    match r.minconf with
    | Some c -> c
    | None -> failwith "record is missing minconf"
  in
  let k () =
    match r.k with Some k -> k | None -> failwith "record is missing k"
  in
  let constraints =
    {
      Boundary.antecedent_includes = r.antecedent_includes;
      consequent_includes = r.consequent_includes;
      allow_empty_antecedent = r.allow_empty_antecedent;
    }
  in
  match r.kind with
  | Record.Find_itemsets ->
    ignore
      (Recorder.itemset_ids ~containing:r.containing recorder
         ~minsup:(minsup ()))
  | Record.Count_itemsets ->
    ignore
      (Recorder.count_itemsets ~containing:r.containing recorder
         ~minsup:(minsup ()))
  | Record.Essential_rules ->
    ignore
      (Recorder.essential_rules ~containing:r.containing ~constraints recorder
         ~minsup:(minsup ()) ~minconf:(minconf ()))
  | Record.All_rules ->
    ignore
      (Recorder.all_rules ~containing:r.containing ~constraints recorder
         ~minsup:(minsup ()) ~minconf:(minconf ()))
  | Record.Single_consequent_rules ->
    ignore
      (Recorder.single_consequent_rules ~containing:r.containing recorder
         ~minsup:(minsup ()) ~minconf:(minconf ()))
  | Record.Support_for_k_itemsets ->
    ignore
      (Recorder.support_for_k_itemsets recorder ~containing:r.containing
         ~k:(k ()))
  | Record.Support_for_k_rules ->
    ignore
      (Recorder.support_for_k_rules recorder ~involving:r.containing
         ~minconf:(minconf ()) ~k:(k ()))
  | Record.Boundary ->
    ignore
      (Recorder.boundary ~constraints recorder ~target:r.containing
         ~minconf:(minconf ()))
  | Record.Append ->
    if r.delta_num_items <= 0 then failwith "append record is missing num_items";
    let delta = Database.of_lists ~num_items:r.delta_num_items r.delta in
    ignore (Recorder.append recorder delta)

let run ?(on_outcome = fun _ -> ()) session records =
  let captured = ref None in
  let recorder =
    Recorder.create ~emit:(fun r -> captured := Some r) session
  in
  let report =
    ref
      {
        total = 0;
        mismatches = 0;
        errors = 0;
        recorded_s = 0.0;
        replayed_s = 0.0;
        recorded_vertices = 0;
        replayed_vertices = 0;
        recorded_heap_pops = 0;
        replayed_heap_pops = 0;
      }
  in
  List.iter
    (fun (r : Record.t) ->
      captured := None;
      let error = ref false in
      (try dispatch recorder r with _ -> error := true);
      let replayed = !captured in
      let ok =
        (not !error)
        &&
        match replayed with
        | Some (p : Record.t) -> Int64.equal p.Record.digest r.Record.digest
        | None -> false
      in
      let t = !report in
      report :=
        {
          total = t.total + 1;
          mismatches = (t.mismatches + if ok then 0 else 1);
          errors = (t.errors + if !error then 1 else 0);
          recorded_s = t.recorded_s +. r.Record.latency_s;
          replayed_s =
            (t.replayed_s
            +.
            match replayed with
            | Some p -> p.Record.latency_s
            | None -> 0.0);
          recorded_vertices = t.recorded_vertices + r.Record.vertices;
          replayed_vertices =
            (t.replayed_vertices
            + match replayed with Some p -> p.Record.vertices | None -> 0);
          recorded_heap_pops = t.recorded_heap_pops + r.Record.heap_pops;
          replayed_heap_pops =
            (t.replayed_heap_pops
            + match replayed with Some p -> p.Record.heap_pops | None -> 0);
        };
      on_outcome { record = r; replayed; ok })
    records;
  !report
