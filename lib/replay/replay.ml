open Olar_data
module Session = Olar_serve.Session
module Pool = Olar_serve.Pool
module Boundary = Olar_core.Boundary
module Engine = Olar_core.Engine
module Obs = Olar_obs.Obs
module Counter = Olar_util.Timer.Counter

type outcome = {
  record : Record.t;
  replayed : Record.t option;
  ok : bool;
}

type report = {
  total : int;
  mismatches : int;
  errors : int;
  recorded_s : float;
  replayed_s : float;
  recorded_vertices : int;
  replayed_vertices : int;
  recorded_heap_pops : int;
  replayed_heap_pops : int;
}

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> loop (lineno + 1) acc
        | line -> (
          match Record.of_json_line line with
          | Ok r -> loop (lineno + 1) (r :: acc)
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      loop 1 [])

(* Rebuild the exact call a record describes and issue it through
   [recorder]. Raises [Failure] on a structurally incomplete record
   (e.g. a find without minsup) — the caller turns that into a failed
   outcome rather than aborting the whole replay. *)
let dispatch recorder (r : Record.t) =
  let minsup () =
    match r.minsup with
    | Some s -> s
    | None -> failwith "record is missing minsup"
  in
  let minconf () =
    match r.minconf with
    | Some c -> c
    | None -> failwith "record is missing minconf"
  in
  let k () =
    match r.k with Some k -> k | None -> failwith "record is missing k"
  in
  let constraints =
    {
      Boundary.antecedent_includes = r.antecedent_includes;
      consequent_includes = r.consequent_includes;
      allow_empty_antecedent = r.allow_empty_antecedent;
    }
  in
  match r.kind with
  | Record.Find_itemsets ->
    ignore
      (Recorder.itemset_ids ~containing:r.containing recorder
         ~minsup:(minsup ()))
  | Record.Count_itemsets ->
    ignore
      (Recorder.count_itemsets ~containing:r.containing recorder
         ~minsup:(minsup ()))
  | Record.Essential_rules ->
    ignore
      (Recorder.essential_rules ~containing:r.containing ~constraints recorder
         ~minsup:(minsup ()) ~minconf:(minconf ()))
  | Record.All_rules ->
    ignore
      (Recorder.all_rules ~containing:r.containing ~constraints recorder
         ~minsup:(minsup ()) ~minconf:(minconf ()))
  | Record.Single_consequent_rules ->
    ignore
      (Recorder.single_consequent_rules ~containing:r.containing recorder
         ~minsup:(minsup ()) ~minconf:(minconf ()))
  | Record.Support_for_k_itemsets ->
    ignore
      (Recorder.support_for_k_itemsets recorder ~containing:r.containing
         ~k:(k ()))
  | Record.Support_for_k_rules ->
    ignore
      (Recorder.support_for_k_rules recorder ~involving:r.containing
         ~minconf:(minconf ()) ~k:(k ()))
  | Record.Boundary ->
    ignore
      (Recorder.boundary ~constraints recorder ~target:r.containing
         ~minconf:(minconf ()))
  | Record.Append ->
    if r.delta_num_items <= 0 then failwith "append record is missing num_items";
    let delta = Database.of_lists ~num_items:r.delta_num_items r.delta in
    ignore (Recorder.append recorder delta)

(* ------------------------------------------------------------------ *)
(* Pool replay: the record key as a by-value request                  *)
(* ------------------------------------------------------------------ *)

let constraints_of_record (r : Record.t) =
  {
    Boundary.antecedent_includes = r.antecedent_includes;
    consequent_includes = r.consequent_includes;
    allow_empty_antecedent = r.allow_empty_antecedent;
  }

let request_of_record (r : Record.t) =
  let minsup () =
    match r.minsup with
    | Some s -> Ok s
    | None -> Error "record is missing minsup"
  in
  let minconf () =
    match r.minconf with
    | Some c -> Ok c
    | None -> Error "record is missing minconf"
  in
  let k () =
    match r.k with Some k -> Ok k | None -> Error "record is missing k"
  in
  let ( let* ) = Result.bind in
  match r.kind with
  | Record.Find_itemsets ->
    let* minsup = minsup () in
    Ok (Pool.Find_itemsets { containing = r.containing; minsup })
  | Record.Count_itemsets ->
    let* minsup = minsup () in
    Ok (Pool.Count_itemsets { containing = r.containing; minsup })
  | Record.Essential_rules ->
    let* minsup = minsup () in
    let* minconf = minconf () in
    Ok
      (Pool.Essential_rules
         {
           containing = r.containing;
           constraints = constraints_of_record r;
           minsup;
           minconf;
         })
  | Record.All_rules ->
    let* minsup = minsup () in
    let* minconf = minconf () in
    Ok
      (Pool.All_rules
         {
           containing = r.containing;
           constraints = constraints_of_record r;
           minsup;
           minconf;
         })
  | Record.Single_consequent_rules ->
    let* minsup = minsup () in
    let* minconf = minconf () in
    Ok
      (Pool.Single_consequent_rules
         { containing = r.containing; minsup; minconf })
  | Record.Support_for_k_itemsets ->
    let* k = k () in
    Ok (Pool.Support_for_k_itemsets { containing = r.containing; k })
  | Record.Support_for_k_rules ->
    let* minconf = minconf () in
    let* k = k () in
    Ok (Pool.Support_for_k_rules { involving = r.containing; minconf; k })
  | Record.Boundary ->
    let* minconf = minconf () in
    Ok
      (Pool.Boundary
         {
           target = r.containing;
           constraints = constraints_of_record r;
           minconf;
         })
  | Record.Append ->
    if r.delta_num_items <= 0 then Error "append record is missing num_items"
    else Ok (Pool.Append (Database.of_lists ~num_items:r.delta_num_items r.delta))

let digest_response = function
  | Pool.R_items entries -> Some (Recorder.digest_items entries)
  | Pool.R_count c -> Some (Fnv.int Fnv.empty c)
  | Pool.R_rules rules -> Some (Recorder.digest_rules rules)
  | Pool.R_level level -> Some (Recorder.digest_level level)
  | Pool.R_entries entries -> Some (Recorder.digest_entries entries)
  | Pool.R_promoted { promoted; db_size } ->
    Some (Recorder.digest_promoted ~db_size promoted)
  | Pool.R_error _ -> None

let run ?(on_outcome = fun _ -> ()) session records =
  let captured = ref None in
  let recorder =
    Recorder.create ~emit:(fun r -> captured := Some r) session
  in
  let report =
    ref
      {
        total = 0;
        mismatches = 0;
        errors = 0;
        recorded_s = 0.0;
        replayed_s = 0.0;
        recorded_vertices = 0;
        replayed_vertices = 0;
        recorded_heap_pops = 0;
        replayed_heap_pops = 0;
      }
  in
  List.iter
    (fun (r : Record.t) ->
      captured := None;
      let error = ref false in
      (try dispatch recorder r with _ -> error := true);
      let replayed = !captured in
      let ok =
        (not !error)
        &&
        match replayed with
        | Some (p : Record.t) -> Int64.equal p.Record.digest r.Record.digest
        | None -> false
      in
      let t = !report in
      report :=
        {
          total = t.total + 1;
          mismatches = (t.mismatches + if ok then 0 else 1);
          errors = (t.errors + if !error then 1 else 0);
          recorded_s = t.recorded_s +. r.Record.latency_s;
          replayed_s =
            (t.replayed_s
            +.
            match replayed with
            | Some p -> p.Record.latency_s
            | None -> 0.0);
          recorded_vertices = t.recorded_vertices + r.Record.vertices;
          replayed_vertices =
            (t.replayed_vertices
            + match replayed with Some p -> p.Record.vertices | None -> 0);
          recorded_heap_pops = t.recorded_heap_pops + r.Record.heap_pops;
          replayed_heap_pops =
            (t.replayed_heap_pops
            + match replayed with Some p -> p.Record.heap_pops | None -> 0);
        };
      on_outcome { record = r; replayed; ok })
    records;
  !report

let run_pool ?(on_response = fun _ _ ~ok:_ -> ()) pool records =
  (* Convert every record up front; a structurally incomplete record is
     an error outcome without executing anything. The valid requests
     are streamed through {!Pool.submit} — the same continuous path the
     server drainer uses — except that the stream drains before each
     append: pool appends publish without quiescing, and a capture's
     digests are only meaningful if every query replays on the same
     database state it was recorded against, so the replay re-imposes
     the capture's sequential epochs at append boundaries. Each
     callback writes a distinct slot of [out], so completion order is
     free to differ from submission order. *)
  let converted = List.map (fun r -> (r, request_of_record r)) records in
  let reqs =
    Array.of_list (List.filter_map (fun (_, q) -> Result.to_option q) converted)
  in
  let counter name =
    Option.map (fun ctx -> Obs.counter ctx name) (Engine.obs (Pool.engine pool))
  in
  let v_cell = counter "olar_query_vertices_visited_total" in
  let h_cell = counter "olar_query_heap_pops_total" in
  let value = function Some c -> Counter.value c | None -> 0 in
  let v0 = value v_cell and h0 = value h_cell in
  let out = Array.make (Array.length reqs) (Pool.R_error "unreplayed", 0.0) in
  Array.iteri
    (fun i req ->
      (match req with Pool.Append _ -> Pool.drain pool | _ -> ());
      Pool.submit pool req (fun resp c ->
          out.(i) <- (resp, c.Pool.latency_s)))
    reqs;
  Pool.drain pool;
  let idx = ref 0 in
  let report =
    ref
      {
        total = 0;
        mismatches = 0;
        errors = 0;
        recorded_s = 0.0;
        replayed_s = 0.0;
        recorded_vertices = 0;
        replayed_vertices = 0;
        recorded_heap_pops = 0;
        replayed_heap_pops = 0;
      }
  in
  List.iter
    (fun ((r : Record.t), q) ->
      let resp, latency =
        match q with
        | Error e -> (Pool.R_error e, 0.0)
        | Ok _ ->
          let x = out.(!idx) in
          incr idx;
          x
      in
      let digest = digest_response resp in
      let error = Option.is_none digest in
      let ok =
        match digest with
        | Some d -> Int64.equal d r.Record.digest
        | None -> false
      in
      let t = !report in
      report :=
        {
          t with
          total = t.total + 1;
          mismatches = (t.mismatches + if ok then 0 else 1);
          errors = (t.errors + if error then 1 else 0);
          recorded_s = t.recorded_s +. r.Record.latency_s;
          replayed_s = t.replayed_s +. latency;
          recorded_vertices = t.recorded_vertices + r.Record.vertices;
          recorded_heap_pops = t.recorded_heap_pops + r.Record.heap_pops;
        };
      on_response r resp ~ok)
    converted;
  (* Per-query work attribution is impossible across domains (the obs
     cells are shared), so the replayed side reports the aggregate
     counter delta for the whole batch instead. *)
  {
    !report with
    replayed_vertices = value v_cell - v0;
    replayed_heap_pops = value h_cell - h0;
  }
