open Olar_data
module Session = Olar_serve.Session
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Boundary = Olar_core.Boundary
module Rule = Olar_core.Rule
module Obs = Olar_obs.Obs
module Counter = Olar_util.Timer.Counter

type t = {
  session : Session.t;
  emit : Record.t -> unit;
  slow_s : float;
  clock : unit -> float;
  mutable seq : int;
  work_v : Counter.t option;
  work_h : Counter.t option;
      (* the engine context's shared work counters (the same cells the
         session and engine bump), so per-query work is a plain delta *)
}

let create ?(slow_s = 0.0) ?(clock = Olar_util.Timer.monotonic_s) ~emit session =
  let obs = Engine.obs (Session.engine session) in
  {
    session;
    emit;
    slow_s;
    clock;
    seq = 0;
    work_v =
      Option.map
        (fun ctx -> Obs.counter ctx "olar_query_vertices_visited_total")
        obs;
    work_h =
      Option.map (fun ctx -> Obs.counter ctx "olar_query_heap_pops_total") obs;
  }

let session t = t.session
let count t = t.seq

let value = function Some c -> Counter.value c | None -> 0

let path_of = function
  | Session.Hit -> Record.Hit
  | Session.Refine -> Record.Refine
  | Session.Miss -> Record.Miss
  | Session.Passthrough -> Record.Passthrough

(* Run one query, time it, attribute work, and emit its record. An
   exception from [f] propagates before any record is built. *)
let recorded t ~kind ?(containing = Itemset.empty)
    ?(constraints = Boundary.unconstrained) ?minsup ?minconf ?k ?(delta = [])
    ?(delta_num_items = 0) ~digest ~size f =
  let v0 = value t.work_v and h0 = value t.work_h in
  let t0 = t.clock () in
  let result = f () in
  (* The default clock is monotone, but an injected one (or a platform
     where only a steppable wall clock exists) may run backwards;
     a latency must never be negative, so clamp. *)
  let latency_s = Float.max 0.0 (t.clock () -. t0) in
  let seq = t.seq in
  t.seq <- seq + 1;
  if latency_s >= t.slow_s then
    t.emit
      {
        Record.seq;
        kind;
        containing;
        antecedent_includes = constraints.Boundary.antecedent_includes;
        consequent_includes = constraints.Boundary.consequent_includes;
        allow_empty_antecedent = constraints.Boundary.allow_empty_antecedent;
        minsup;
        minconf;
        k;
        delta;
        delta_num_items;
        cache = path_of (Session.last_path t.session);
        digest = digest result;
        result_size = size result;
        latency_s;
        vertices = value t.work_v - v0;
        heap_pops = value t.work_h - h0;
        epoch = Engine.epoch (Session.engine t.session);
      };
  result

(* ------------------------------------------------------------------ *)
(* Digest definitions (one per result shape)                          *)
(* ------------------------------------------------------------------ *)

let digest_items entries =
  Array.fold_left
    (fun h (x, count) -> Fnv.int (Fnv.itemset h x) count)
    Fnv.empty entries

let digest_ids lat ids =
  Array.fold_left
    (fun h v -> Fnv.int (Fnv.itemset h (Lattice.itemset lat v)) (Lattice.support lat v))
    Fnv.empty ids

let digest_rules rules =
  List.fold_left
    (fun h r ->
      let h = Fnv.itemset h r.Rule.antecedent in
      let h = Fnv.itemset h r.Rule.consequent in
      let h = Fnv.int h r.Rule.support_count in
      Fnv.int h r.Rule.antecedent_count)
    Fnv.empty rules

let digest_level = function
  | None -> Fnv.int Fnv.empty 0
  | Some level -> Fnv.float (Fnv.int Fnv.empty 1) level

let digest_entries entries =
  List.fold_left
    (fun h (x, s) -> Fnv.float (Fnv.itemset h x) s)
    Fnv.empty entries

let digest_promoted ~db_size promoted =
  Fnv.int (List.fold_left Fnv.itemset Fnv.empty promoted) db_size

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let itemset_ids ?(containing = Itemset.empty) t ~minsup =
  let lat = Engine.lattice (Session.engine t.session) in
  recorded t ~kind:Record.Find_itemsets ~containing ~minsup
    ~digest:(digest_ids lat) ~size:Array.length (fun () ->
      Session.itemset_ids ~containing t.session ~minsup)

let itemsets ?containing t ~minsup =
  let ids = itemset_ids ?containing t ~minsup in
  let engine = Session.engine t.session in
  let lat = Engine.lattice engine in
  let db = float_of_int (max 1 (Engine.db_size engine)) in
  Array.to_list
    (Array.map
       (fun v -> (Lattice.itemset lat v, float_of_int (Lattice.support lat v) /. db))
       ids)

let count_itemsets ?(containing = Itemset.empty) t ~minsup =
  recorded t ~kind:Record.Count_itemsets ~containing ~minsup
    ~digest:(Fnv.int Fnv.empty) ~size:Fun.id (fun () ->
      Session.count_itemsets ~containing t.session ~minsup)

let rule_query t kind ?(containing = Itemset.empty) ?constraints compute
    ~minsup ~minconf =
  recorded t ~kind ~containing ?constraints ~minsup ~minconf
    ~digest:digest_rules ~size:List.length compute

let essential_rules ?containing ?constraints t ~minsup ~minconf =
  rule_query t Record.Essential_rules ?containing ?constraints ~minsup ~minconf
    (fun () ->
      Session.essential_rules ?containing ?constraints t.session ~minsup
        ~minconf)

let all_rules ?containing ?constraints t ~minsup ~minconf =
  rule_query t Record.All_rules ?containing ?constraints ~minsup ~minconf
    (fun () ->
      Session.all_rules ?containing ?constraints t.session ~minsup ~minconf)

let single_consequent_rules ?containing t ~minsup ~minconf =
  rule_query t Record.Single_consequent_rules ?containing ~minsup ~minconf
    (fun () ->
      Session.single_consequent_rules ?containing t.session ~minsup ~minconf)

let support_for_k_itemsets t ~containing ~k =
  recorded t ~kind:Record.Support_for_k_itemsets ~containing ~k
    ~digest:digest_level
    ~size:(function Some _ -> 1 | None -> 0)
    (fun () -> Session.support_for_k_itemsets t.session ~containing ~k)

let support_for_k_rules t ~involving ~minconf ~k =
  recorded t ~kind:Record.Support_for_k_rules ~containing:involving ~minconf ~k
    ~digest:digest_level
    ~size:(function Some _ -> 1 | None -> 0)
    (fun () -> Session.support_for_k_rules t.session ~involving ~minconf ~k)

let boundary ?constraints t ~target ~minconf =
  recorded t ~kind:Record.Boundary ~containing:target ?constraints ~minconf
    ~digest:digest_entries ~size:List.length (fun () ->
      Session.boundary ?constraints t.session ~target ~minconf)

let append ?domains t delta =
  let rows =
    List.rev (Database.fold (fun acc txn -> Itemset.to_list txn :: acc) [] delta)
  in
  recorded t ~kind:Record.Append ~delta:rows
    ~delta_num_items:(Database.num_items delta)
    ~digest:(fun promoted ->
      digest_promoted promoted
        ~db_size:(Engine.db_size (Session.engine t.session)))
    ~size:List.length
    (fun () -> Session.append ?domains t.session delta)
