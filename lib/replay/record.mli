(** One line of the workload log: the full query key, the result
    digest, and the per-query cost observations.

    A record is what the {!Recorder} emits per query and what
    {!Replay} re-executes. The wire format is one compact JSON object
    per line (jsonl), self-describing enough to rebuild the exact call:
    kind, start itemset, thresholds, boundary constraints, [k], and —
    for appends — the delta transactions themselves. Alongside the key
    it carries the {e outcome}: an FNV-1a digest of the result in
    canonical order (see {!digest} semantics in DESIGN.md §9), the
    result size, wall-clock latency, the traversal work counters, and
    which cache path the session served it from. *)

open Olar_data

type kind =
  | Find_itemsets
  | Count_itemsets
  | Essential_rules
  | All_rules
  | Single_consequent_rules
  | Support_for_k_itemsets
  | Support_for_k_rules
  | Boundary
  | Append

type cache_path =
  | Hit
  | Refine
  | Miss
  | Passthrough

type t = {
  seq : int;  (** position in the log, 0-based *)
  kind : kind;
  containing : Itemset.t;
      (** start itemset: [containing] for find/count/rules,
          [involving] for rule-support, the target for boundary;
          empty otherwise *)
  antecedent_includes : Itemset.t;  (** boundary/rule constraints (P) *)
  consequent_includes : Itemset.t;  (** boundary/rule constraints (Q) *)
  allow_empty_antecedent : bool;
  minsup : float option;  (** fractional, as the caller passed it *)
  minconf : float option;
  k : int option;  (** rank for the FindSupport flavours *)
  delta : int list list;  (** append only: the batch's transactions *)
  delta_num_items : int;  (** append only: the delta database's universe *)
  cache : cache_path;  (** how the session served it *)
  digest : Fnv.t;  (** FNV-1a over the canonical-order result *)
  result_size : int;  (** itemsets / rules returned, count value, … *)
  latency_s : float;
  vertices : int;  (** vertex expansions attributed to this query *)
  heap_pops : int;  (** best-first pops attributed to this query *)
  epoch : int;
      (** engine epoch the query ran against — informational only;
          epochs are process-wide counters and are NOT compared by
          replay *)
}

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val cache_path_to_string : cache_path -> string

(** [to_json_line r] is the compact one-line JSON encoding (no trailing
    newline). Empty itemsets, [None] thresholds, and append-only fields
    are omitted. *)
val to_json_line : t -> string

(** [of_json_line s] parses one log line, strictly: unknown kinds, bad
    digests, or missing required fields are [Error]. *)
val of_json_line : string -> (t, string) result

(** [key_to_json_line r] encodes only the query key — kind, itemsets,
    thresholds, delta — omitting every outcome field. This is the wire
    body a client POSTs to the serving daemon's [/query] endpoint. *)
val key_to_json_line : t -> string

(** [key_of_json_line s] parses a query key: the same grammar as
    {!of_json_line} except that ["v"], ["seq"] and the outcome fields
    are optional (defaulting to version 1, seq 0, cache [Passthrough],
    an empty digest and zero cost). Present fields must still parse;
    unknown kinds are still rejected. *)
val key_of_json_line : string -> (t, string) result

(** [pp ppf r] renders the record as a human-readable EXPLAIN block:
    the query key on the first line, outcome (cache path, size, digest)
    on the second, cost (latency, work counters) on the third. *)
val pp : Format.formatter -> t -> unit
