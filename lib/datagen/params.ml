type t = {
  num_items : int;
  num_potential : int;
  avg_itemset_size : float;
  avg_transaction_size : float;
  num_transactions : int;
  correlation : float;
  noise_mean : float;
  noise_variance : float;
  seed : int;
}

let default =
  {
    num_items = 1000;
    num_potential = 2000;
    avg_itemset_size = 4.0;
    avg_transaction_size = 10.0;
    num_transactions = 10_000;
    correlation = 0.5;
    noise_mean = 0.5;
    noise_variance = 0.1;
    seed = 42;
  }

let make ?(over = default) ~avg_transaction_size ~avg_itemset_size
    ~num_transactions () =
  { over with avg_transaction_size; avg_itemset_size; num_transactions }

let validate t =
  let fail msg = invalid_arg ("Params.validate: " ^ msg) in
  if t.num_items < 1 then fail "num_items";
  if t.num_potential < 1 then fail "num_potential";
  if t.avg_itemset_size <= 0.0 then fail "avg_itemset_size";
  if t.avg_itemset_size > float_of_int t.num_items then
    fail "avg_itemset_size above universe";
  if t.avg_transaction_size <= 0.0 then fail "avg_transaction_size";
  if t.num_transactions < 0 then fail "num_transactions";
  if t.correlation < 0.0 || t.correlation > 1.0 then fail "correlation";
  if t.noise_mean < 0.0 || t.noise_mean > 1.0 then fail "noise_mean";
  if t.noise_variance < 0.0 then fail "noise_variance"

let float_knob f =
  if Float.is_integer f then string_of_int (int_of_float f)
  else Printf.sprintf "%g" f

let name t =
  let d =
    if t.num_transactions mod 1000 = 0 && t.num_transactions > 0 then
      Printf.sprintf "%dK" (t.num_transactions / 1000)
    else string_of_int t.num_transactions
  in
  Printf.sprintf "T%s.I%s.D%s"
    (float_knob t.avg_transaction_size)
    (float_knob t.avg_itemset_size)
    d

let of_name s =
  match String.split_on_char '.' (String.trim s) with
  | [ tpart; ipart; dpart ]
    when String.length tpart > 1
         && String.length ipart > 1
         && String.length dpart > 1
         && (tpart.[0] = 'T' || tpart.[0] = 't')
         && (ipart.[0] = 'I' || ipart.[0] = 'i')
         && (dpart.[0] = 'D' || dpart.[0] = 'd') -> (
    let tail str = String.sub str 1 (String.length str - 1) in
    let parse_count str =
      let str = tail str in
      let n = String.length str in
      if n = 0 then None
      else if str.[n - 1] = 'K' || str.[n - 1] = 'k' then
        Option.map (fun k -> k * 1000) (int_of_string_opt (String.sub str 0 (n - 1)))
      else int_of_string_opt str
    in
    match
      (float_of_string_opt (tail tpart), float_of_string_opt (tail ipart),
       parse_count dpart)
    with
    | Some avg_t, Some avg_i, Some d when avg_t > 0.0 && avg_i > 0.0 && d >= 0 ->
      Some
        (make ~avg_transaction_size:avg_t ~avg_itemset_size:avg_i
           ~num_transactions:d ())
    | _ -> None)
  | _ -> None
