open Olar_data
module Rng = Olar_util.Rng
module Dist = Olar_util.Dist

type potential = {
  itemsets : Itemset.t array;
  weights : float array;
  noise : float array;
}

(* Draw [n] distinct items uniformly, avoiding those already in [taken];
   rejection sampling is fine because n << num_items in all realistic
   parameterisations, and we fall back to a sweep when the universe is
   nearly exhausted. *)
let draw_fresh_items rng ~num_items ~taken n =
  let drawn = ref [] in
  let got = ref 0 in
  let attempts = ref 0 in
  while !got < n && !attempts < 50 * (n + 1) do
    incr attempts;
    let i = Rng.int rng num_items in
    if not (Hashtbl.mem taken i) then begin
      Hashtbl.add taken i ();
      drawn := i :: !drawn;
      incr got
    end
  done;
  if !got < n then begin
    (* Universe almost full: take the first free items deterministically. *)
    let i = ref 0 in
    while !got < n && !i < num_items do
      if not (Hashtbl.mem taken !i) then begin
        Hashtbl.add taken !i ();
        drawn := !i :: !drawn;
        incr got
      end;
      incr i
    done
  end;
  !drawn

let itemset_size rng params =
  let size = max 1 (Dist.poisson rng params.Params.avg_itemset_size) in
  min size params.Params.num_items

let potential_itemsets params =
  Params.validate params;
  let rng = Rng.of_int params.Params.seed in
  let l = params.Params.num_potential in
  let itemsets = Array.make l Itemset.empty in
  let weights = Array.init l (fun _ -> Dist.exponential rng 1.0) in
  let stddev = sqrt params.Params.noise_variance in
  let noise =
    Array.init l (fun _ ->
        if stddev = 0.0 then max 0.01 (min 0.99 params.Params.noise_mean)
        else
          Dist.normal_clamped rng ~mean:params.Params.noise_mean ~stddev
            ~lo:0.0 ~hi:1.0)
  in
  let prev = ref [||] in
  for j = 0 to l - 1 do
    let size = itemset_size rng params in
    let taken = Hashtbl.create (2 * size) in
    (* Carry over a [correlation] fraction from the predecessor: a random
       sample without replacement of its items. *)
    let carried =
      let want =
        min (Array.length !prev)
          (int_of_float (Float.round (params.Params.correlation *. float_of_int size)))
      in
      if want = 0 then []
      else begin
        let pool = Array.copy !prev in
        let n = Array.length pool in
        for i = 0 to want - 1 do
          let k = i + Rng.int rng (n - i) in
          let tmp = pool.(i) in
          pool.(i) <- pool.(k);
          pool.(k) <- tmp
        done;
        let sample = Array.to_list (Array.sub pool 0 want) in
        List.iter (fun i -> Hashtbl.replace taken i ()) sample;
        sample
      end
    in
    let fresh =
      draw_fresh_items rng ~num_items:params.Params.num_items ~taken
        (size - List.length carried)
    in
    let itemset = Itemset.of_list (carried @ fresh) in
    itemsets.(j) <- itemset;
    prev := Itemset.to_array itemset
  done;
  { itemsets; weights; noise }

(* Corrupt a chosen itemset: drop min(G, |I|) random items, G geometric
   with the itemset's noise level. Returns the surviving items. *)
let corrupt rng ~noise itemset =
  let items = Itemset.to_array itemset in
  let n = Array.length items in
  let g = Dist.geometric rng noise in
  let drop = min g n in
  if drop = 0 then items
  else begin
    (* Partial Fisher-Yates: move [drop] random victims to the front. *)
    for i = 0 to drop - 1 do
      let k = i + Rng.int rng (n - i) in
      let tmp = items.(i) in
      items.(i) <- items.(k);
      items.(k) <- tmp
    done;
    Array.sub items drop (n - drop)
  end

let generate params =
  let pot = potential_itemsets params in
  let rng = Rng.of_int (params.Params.seed lxor 0x5eed) in
  let die = Dist.Cdf.of_weights pot.weights in
  let carried = ref None in
  let next_itemset () =
    match !carried with
    | Some j ->
      carried := None;
      j
    | None -> Dist.Cdf.sample die rng
  in
  let build_transaction () =
    let size =
      min params.Params.num_items
        (max 1 (Dist.poisson rng params.Params.avg_transaction_size))
    in
    let contents = Hashtbl.create (2 * size) in
    let add items = Array.iter (fun i -> Hashtbl.replace contents i ()) items in
    let finished = ref false in
    let attempts = ref 0 in
    while (not !finished) && !attempts < 10 * (size + 1) do
      incr attempts;
      let j = next_itemset () in
      let survivors = corrupt rng ~noise:pot.noise.(j) pot.itemsets.(j) in
      let new_size =
        Hashtbl.length contents
        + Array.fold_left
            (fun acc i -> if Hashtbl.mem contents i then acc else acc + 1)
            0 survivors
      in
      if new_size <= size then begin
        add survivors;
        if Hashtbl.length contents >= size then finished := true
      end
      else if Rng.bool rng then begin
        (* Does not fit: added anyway half the time... *)
        add survivors;
        finished := true
      end
      else begin
        (* ...and moved to the next transaction the other half. *)
        carried := Some j;
        finished := true
      end
    done;
    Itemset.of_list (Hashtbl.fold (fun i () acc -> i :: acc) contents [])
  in
  let transactions =
    Array.init params.Params.num_transactions (fun _ -> build_transaction ())
  in
  Database.create ~num_items:params.Params.num_items transactions
