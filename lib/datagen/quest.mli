(** The synthetic transaction generator of Section 6.1 (IBM Quest style).

    Two stages, implemented exactly as the paper describes:

    1. {e Potential itemsets}: L maximal potentially large itemsets, sizes
       Poisson(μ_L); each successive itemset takes a [correlation]
       fraction of its items from its predecessor and draws the rest
       uniformly — so potential itemsets share items. Each gets a weight
       from an exponential distribution with unit mean (the "L-sided
       weighted die") and a noise level n_I from a clamped
       N(noise_mean, noise_variance).

    2. {e Transactions}: sizes Poisson(μ_T); a transaction is filled by
       repeatedly rolling the weighted die; each chosen itemset is
       corrupted by dropping min(G, |I|) random items, G geometric with
       parameter n_I; an itemset that does not fit is added anyway half
       the time and otherwise carried over to the next transaction.

    Everything is driven by the seed in {!Params.t}: the same parameters
    always produce the same database. *)

open Olar_data

(** The intermediate stage-1 artifacts, exposed for inspection and
    testing. *)
type potential = {
  itemsets : Itemset.t array;
  weights : float array;  (** exponential, unit mean; unnormalised *)
  noise : float array;  (** per-itemset corruption level in (0, 1) *)
}

(** [potential_itemsets params] runs stage 1. Raises [Invalid_argument]
    via {!Params.validate}. *)
val potential_itemsets : Params.t -> potential

(** [generate params] runs both stages and returns the database. *)
val generate : Params.t -> Database.t
