(** Parameters of the synthetic data generator (Section 6.1).

    The paper annotates datasets as Tμ_T.Iμ_L.DnK: average transaction
    size, average maximal potentially-large-itemset size, and number of
    transactions. The remaining knobs (universe size, number of potential
    itemsets, correlation and noise levels) follow the Agrawal-Srikant
    conventions the paper cites. *)

type t = {
  num_items : int;  (** size of the item universe (default 1000) *)
  num_potential : int;  (** L, number of potential itemsets (paper: 2000) *)
  avg_itemset_size : float;  (** μ_L, Poisson mean of itemset sizes *)
  avg_transaction_size : float;  (** μ_T, Poisson mean of transaction sizes *)
  num_transactions : int;
  correlation : float;
      (** fraction of each potential itemset drawn from its predecessor
          (paper: one half) *)
  noise_mean : float;  (** mean of the per-itemset noise level (0.5) *)
  noise_variance : float;  (** variance of the noise level (0.1) *)
  seed : int;  (** RNG seed; same seed, same database *)
}

(** [default] is T10.I4.D10K with the paper's constants and seed 42. *)
val default : t

(** [make ?over ~avg_transaction_size ~avg_itemset_size ~num_transactions ()]
    overrides the three headline knobs on [over] (default {!default}). *)
val make :
  ?over:t ->
  avg_transaction_size:float ->
  avg_itemset_size:float ->
  num_transactions:int ->
  unit ->
  t

(** [validate t] raises [Invalid_argument] describing the first broken
    constraint (positive sizes and counts, correlation in [0,1], variance
    >= 0, itemset size not above the universe). *)
val validate : t -> unit

(** [name t] is the paper's annotation, e.g. "T10.I4.D100K" (the count is
    printed exactly when not a multiple of 1000). *)
val name : t -> string

(** [of_name s] parses an annotation like "T10.I4.D100K" or
    "T20.I6.D2500" onto {!default}'s other fields. [None] on syntax
    errors. *)
val of_name : string -> t option
