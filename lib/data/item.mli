(** Items and item vocabularies.

    An item is a small non-negative integer id, as in the paper's
    market-basket model where I = {i_1, ..., i_m}. A {!Vocab.t} maps
    human-readable item names (e.g. "bread") to ids and back, so the demo
    applications and CLI can speak in names while the engine works on
    dense ids. *)

type t = int

(** [pp] formats an item id. *)
val pp : Format.formatter -> t -> unit

(** [compare] is integer comparison. *)
val compare : t -> t -> int

(** [equal] is integer equality. *)
val equal : t -> t -> bool

(** Bidirectional name <-> id mapping. Ids are assigned densely in order
    of first registration, starting from 0. *)
module Vocab : sig
  type item = t
  type t

  (** [create ()] is an empty vocabulary. *)
  val create : unit -> t

  (** [of_names names] registers each name in order. Raises
      [Invalid_argument] on a duplicate name. *)
  val of_names : string list -> t

  (** [size v] is the number of registered items. *)
  val size : t -> int

  (** [intern v name] is the id for [name], registering it if new. *)
  val intern : t -> string -> item

  (** [id v name] is the id for [name], or [None] if unregistered. *)
  val id : t -> string -> item option

  (** [name v i] is the name of item [i]. Raises [Invalid_argument] for an
      unregistered id. *)
  val name : t -> item -> string

  (** [names v] is all registered names in id order. *)
  val names : t -> string list

  (** [save v path] writes one name per line, in id order. *)
  val save : t -> string -> unit

  (** [load path] reads a vocabulary back (ids are line numbers).
      Raises [Invalid_argument] on duplicate names, [Sys_error] on I/O
      failure. *)
  val load : string -> t
end
