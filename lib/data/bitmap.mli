(** Bitmap index: one bit set per item over the transaction ids.

    The dense counterpart of {!Tidlist}: item i's bitmap has bit t set
    iff transaction t contains i, so the support of an itemset is the
    popcount of the AND of its items' bitmaps. Preferable to tid-lists
    when items are frequent (bitmaps stay |D|/8 bytes regardless of
    density); used by the verification passes and as a second
    independent support oracle in the tests. *)

type t

(** [build db] indexes the database in one pass. *)
val build : Database.t -> t

(** [num_items idx] / [num_transactions idx] mirror the source. *)
val num_items : t -> int

val num_transactions : t -> int

(** [bitmap idx i] is item [i]'s transaction bitmap (shared — do not
    mutate). Raises [Invalid_argument] out of range. *)
val bitmap : t -> Item.t -> Olar_util.Bitset.t

(** [support_count idx x] is the support count of [x] by bitmap ANDs
    (the empty itemset has support [num_transactions idx]). *)
val support_count : t -> Itemset.t -> int
