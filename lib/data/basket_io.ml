exception Malformed of string

let parse lines =
  let vocab = Item.Vocab.create () in
  let baskets = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let names = String.split_on_char ',' line in
        let items =
          List.map
            (fun name ->
              let name = String.trim name in
              if name = "" then
                raise
                  (Malformed (Printf.sprintf "line %d: empty item name" (lineno + 1)));
              Item.Vocab.intern vocab name)
            names
        in
        baskets := Itemset.of_list items :: !baskets
      end)
    lines;
  let transactions = Array.of_list (List.rev !baskets) in
  let num_items = max 1 (Item.Vocab.size vocab) in
  (vocab, Database.create ~num_items transactions)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse (List.rev !lines))

let print vocab db out =
  Database.iter
    (fun txn ->
      let first = ref true in
      Itemset.iter
        (fun i ->
          let name =
            try Item.Vocab.name vocab i
            with Invalid_argument _ ->
              invalid_arg "Basket_io.print: item without a name"
          in
          if !first then first := false else output_string out ", ";
          output_string out name)
        txn;
      output_char out '\n')
    db

let save vocab db path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> print vocab db out)
