type t = {
  num_items : int;
  num_transactions : int;
  lists : int array array; (* lists.(i) = sorted tids containing item i *)
}

let build db =
  let n_items = Database.num_items db in
  let bufs = Array.init n_items (fun _ -> Olar_util.Vec.create ()) in
  Database.iteri
    (fun tid txn -> Itemset.iter (fun i -> Olar_util.Vec.push bufs.(i) tid) txn)
    db;
  (* Tids were appended in increasing transaction order, so each list is
     already sorted. *)
  {
    num_items = n_items;
    num_transactions = Database.size db;
    lists = Array.map Olar_util.Vec.to_array bufs;
  }

let num_items idx = idx.num_items
let num_transactions idx = idx.num_transactions

let tids idx i =
  if i < 0 || i >= idx.num_items then invalid_arg "Tidlist.tids";
  idx.lists.(i)

let item_support idx i = Array.length (tids idx i)

let intersect_count a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if x > y then incr j
    else begin incr i; incr j; incr k end
  done;
  !k

let intersect a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if x > y then incr j
    else begin
      out.(!k) <- x;
      incr i; incr j; incr k
    end
  done;
  if !k = Array.length out then out else Array.sub out 0 !k

let support_count idx x =
  match Itemset.to_list x with
  | [] -> idx.num_transactions
  | [ i ] -> item_support idx i
  | items ->
    (* Rarest-first ordering keeps intermediate intersections small. *)
    let lists = List.map (tids idx) items in
    let lists =
      List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists
    in
    begin
      match lists with
      | [] | [ _ ] -> assert false
      | first :: second :: rest ->
        let rec loop acc = function
          | [] -> Array.length acc
          | [ last ] -> intersect_count acc last
          | l :: rest -> loop (intersect acc l) rest
        in
        loop (intersect first second) rest
    end
