(** In-memory transaction databases.

    A database is an immutable array of transactions, each a set of items
    (the 0-1 model of the paper: a transaction either contains an item or
    it does not). Supports are measured as absolute transaction counts
    throughout the engine — exact integer comparisons, no floating-point
    thresholds; fractional supports are derived only at the API surface. *)

type t

(** [create ~num_items transactions] builds a database. Every item id in
    every transaction must be < [num_items]; raises [Invalid_argument]
    otherwise, or when [num_items <= 0]. *)
val create : num_items:int -> Itemset.t array -> t

(** [of_lists ~num_items rows] is [create] on itemsets built from lists. *)
val of_lists : num_items:int -> Item.t list list -> t

(** [num_items db] is the size of the item universe. *)
val num_items : t -> int

(** [size db] is the number of transactions. *)
val size : t -> int

(** [get db i] is the [i]-th transaction. Raises [Invalid_argument] when
    out of bounds. *)
val get : t -> int -> Itemset.t

(** [iter f db] applies [f] to every transaction in order. *)
val iter : (Itemset.t -> unit) -> t -> unit

(** [iteri f db] applies [f tid txn] to every transaction. *)
val iteri : (int -> Itemset.t -> unit) -> t -> unit

(** [fold f acc db] folds over transactions in order. *)
val fold : ('acc -> Itemset.t -> 'acc) -> 'acc -> t -> 'acc

(** [support_count db x] is |{T : X ⊆ T}| by a full scan — O(|db|·|T|);
    the mining algorithms use batched counting instead, this is the
    reference implementation used in tests and for spot queries. *)
val support_count : t -> Itemset.t -> int

(** [support db x] is [support_count db x] as a fraction of [size db].
    0 for an empty database. *)
val support : t -> Itemset.t -> float

(** [count_of_fraction db f] is the smallest absolute count a fractional
    minimum support [f] ∈ [0,1] demands, i.e. ⌈f·size⌉ (and at least 1).
    Raises [Invalid_argument] outside [0,1]. *)
val count_of_fraction : t -> float -> int

(** [avg_transaction_size db] is the mean |T| (0 for an empty db). *)
val avg_transaction_size : t -> float

(** [item_frequencies db] is an array [freq] with [freq.(i)] = number of
    transactions containing item [i]. One pass. *)
val item_frequencies : t -> int array
