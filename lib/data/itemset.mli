(** Itemsets: immutable sets of items.

    The central value type of the system. An itemset is represented as a
    strictly increasing array of item ids, which gives O(|X|+|Y|) set
    algebra by merging, cache-friendly iteration, and a total order
    suitable for use as a map/hash key. All functions treat values as
    immutable; none mutates its arguments. *)

type t

(** {1 Construction} *)

(** The empty itemset (the root of the adjacency lattice). *)
val empty : t

(** [singleton i] is the one-item set {i}. Raises [Invalid_argument] for a
    negative id. *)
val singleton : Item.t -> t

(** [of_list l] sorts and deduplicates [l]. Raises [Invalid_argument] on a
    negative id. *)
val of_list : Item.t list -> t

(** [of_array a] sorts and deduplicates a copy of [a]. Raises
    [Invalid_argument] on a negative id. *)
val of_array : Item.t array -> t

(** [of_sorted_array_unchecked a] adopts [a] without copying. The caller
    promises [a] is strictly increasing and non-negative, and will never
    mutate it; violating this breaks every operation. Used on hot paths
    (candidate generation) where the invariant holds by construction. *)
val of_sorted_array_unchecked : Item.t array -> t

(** {1 Observation} *)

(** [cardinal x] is the number of items, |X|. *)
val cardinal : t -> int

(** [is_empty x] is [cardinal x = 0]. *)
val is_empty : t -> bool

(** [mem i x] tests membership by binary search, O(log |X|). *)
val mem : Item.t -> t -> bool

(** [nth x k] is the [k]-th smallest item. Raises [Invalid_argument] when
    out of bounds. *)
val nth : t -> int -> Item.t

(** [min_item x] / [max_item x] are the extreme items. Raise
    [Invalid_argument] on the empty set. *)
val min_item : t -> Item.t

val max_item : t -> Item.t

(** [to_list x] is the items in increasing order. *)
val to_list : t -> Item.t list

(** [to_array x] is a fresh array of the items in increasing order. *)
val to_array : t -> Item.t array

(** [iter f x] applies [f] to each item in increasing order. *)
val iter : (Item.t -> unit) -> t -> unit

(** [fold f x acc] folds over items in increasing order. *)
val fold : (Item.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc

(** {1 Algebra} *)

(** [add i x] is X ∪ {i}. *)
val add : Item.t -> t -> t

(** [remove i x] is X \ {i} ([x] itself when [i] is absent). *)
val remove : Item.t -> t -> t

(** [union x y] is X ∪ Y. *)
val union : t -> t -> t

(** [inter x y] is X ∩ Y. *)
val inter : t -> t -> t

(** [diff x y] is X \ Y. *)
val diff : t -> t -> t

(** [subset x y] is true iff X ⊆ Y. *)
val subset : t -> t -> bool

(** [strict_subset x y] is true iff X ⊂ Y. *)
val strict_subset : t -> t -> bool

(** [disjoint x y] is true iff X ∩ Y = ∅. *)
val disjoint : t -> t -> bool

(** {1 Lattice neighbourhood} *)

(** [parents x] is the list of (dropped item, X \ {item}) pairs — the
    parents of X in the adjacency lattice (Section 2 of the paper: a
    parent is obtained by removing one item, so X has exactly |X| of
    them). Listed in increasing order of the dropped item. *)
val parents : t -> (Item.t * t) list

(** [subsets x] is all 2^|X| subsets of X (including ∅ and X itself), in
    no specified order. Exponential — intended for small sets in tests and
    the naive baseline. Raises [Invalid_argument] when |X| > 20. *)
val subsets : t -> t list

(** [proper_nonempty_subsets x] is [subsets x] without ∅ and X. Same
    bound. *)
val proper_nonempty_subsets : t -> t list

(** {1 Comparison, hashing, formatting} *)

(** Total order: by cardinality, then lexicographically — so all k-itemsets
    sort before (k+1)-itemsets, matching level-wise mining output order. *)
val compare : t -> t -> int

(** Lexicographic order on the sorted item sequences (ignores
    cardinality), the order used to list candidates within a level. *)
val compare_lex : t -> t -> int

val equal : t -> t -> bool

(** [hash x] is a FNV-1a style hash of the item sequence. *)
val hash : t -> int

(** [pp fmt x] prints as "{1,5,9}". *)
val pp : Format.formatter -> t -> unit

(** [pp_named vocab fmt x] prints item names, e.g. "{bread,milk}". *)
val pp_named : Item.Vocab.t -> Format.formatter -> t -> unit

(** [to_string x] is [pp] rendered to a string. *)
val to_string : t -> string

(** Hashtbl over itemsets. *)
module Table : Hashtbl.S with type key = t

(** Ordered map over itemsets (using {!val:compare}). *)
module Map : Map.S with type key = t

(** Ordered set of itemsets (using {!val:compare}). *)
module Set : Set.S with type elt = t
