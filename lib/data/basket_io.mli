(** Named-basket text files.

    The format real point-of-sale exports tend to arrive in: one basket
    per line, item {e names} separated by commas, [#]-comments and blank
    lines ignored:
    {v
    # monday morning
    bread, butter, jam
    coffee,milk
    v}
    Loading interns names into an {!Olar_data.Item.Vocab.t} (ids in
    order of first appearance) and yields a database over that
    vocabulary, so the whole engine can be driven by human-readable
    data. *)

(** Raised on unreadable content (e.g. an empty item name between two
    commas), with the line number. *)
exception Malformed of string

(** [load path] reads a basket file. Raises [Malformed] or
    [Sys_error]. *)
val load : string -> Item.Vocab.t * Database.t

(** [parse lines] is [load] on in-memory lines. *)
val parse : string list -> Item.Vocab.t * Database.t

(** [save vocab db path] writes the database with item names, one basket
    per line. Raises [Invalid_argument] if the database mentions an id
    the vocabulary does not know. *)
val save : Item.Vocab.t -> Database.t -> string -> unit

(** [print vocab db out] is [save] onto a channel. *)
val print : Item.Vocab.t -> Database.t -> out_channel -> unit
