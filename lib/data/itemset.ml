(* Representation invariant: strictly increasing array of non-negative
   item ids. Enforced by every constructor except
   [of_sorted_array_unchecked]. *)
type t = Item.t array

let empty : t = [||]

let check_item i name = if i < 0 then invalid_arg name

let singleton i =
  check_item i "Itemset.singleton";
  [| i |]

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> out.(!k - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    if !k = n then out else Array.sub out 0 !k
  end

let of_array a =
  Array.iter (fun i -> check_item i "Itemset.of_array") a;
  let a = Array.copy a in
  Array.sort Int.compare a;
  dedup_sorted a

let of_list l = of_array (Array.of_list l)

let of_sorted_array_unchecked a = a

let cardinal = Array.length
let is_empty x = Array.length x = 0

let mem i x =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if x.(mid) = i then true
      else if x.(mid) < i then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length x)

let nth x k =
  if k < 0 || k >= Array.length x then invalid_arg "Itemset.nth";
  x.(k)

let min_item x = if is_empty x then invalid_arg "Itemset.min_item" else x.(0)
let max_item x = if is_empty x then invalid_arg "Itemset.max_item" else x.(Array.length x - 1)

let to_list = Array.to_list
let to_array = Array.copy
let iter = Array.iter
let fold f x acc = Array.fold_left (fun acc i -> f i acc) acc x

let add i x =
  check_item i "Itemset.add";
  if mem i x then x
  else begin
    let n = Array.length x in
    let out = Array.make (n + 1) i in
    let j = ref 0 in
    while !j < n && x.(!j) < i do
      out.(!j) <- x.(!j);
      incr j
    done;
    out.(!j) <- i;
    Array.blit x !j out (!j + 1) (n - !j);
    out
  end

let remove i x =
  if not (mem i x) then x
  else begin
    let n = Array.length x in
    let out = Array.make (n - 1) 0 in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if x.(j) <> i then begin
        out.(!k) <- x.(j);
        incr k
      end
    done;
    out
  end

let union x y =
  let nx = Array.length x and ny = Array.length y in
  if nx = 0 then y
  else if ny = 0 then x
  else begin
    let out = Array.make (nx + ny) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < nx && !j < ny do
      let xi = x.(!i) and yj = y.(!j) in
      if xi < yj then begin out.(!k) <- xi; incr i end
      else if xi > yj then begin out.(!k) <- yj; incr j end
      else begin out.(!k) <- xi; incr i; incr j end;
      incr k
    done;
    while !i < nx do out.(!k) <- x.(!i); incr i; incr k done;
    while !j < ny do out.(!k) <- y.(!j); incr j; incr k done;
    if !k = nx + ny then out else Array.sub out 0 !k
  end

let inter x y =
  let nx = Array.length x and ny = Array.length y in
  let out = Array.make (min nx ny) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < nx && !j < ny do
    let xi = x.(!i) and yj = y.(!j) in
    if xi < yj then incr i
    else if xi > yj then incr j
    else begin
      out.(!k) <- xi;
      incr i; incr j; incr k
    end
  done;
  if !k = Array.length out then out else Array.sub out 0 !k

let diff x y =
  let nx = Array.length x and ny = Array.length y in
  let out = Array.make nx 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < nx && !j < ny do
    let xi = x.(!i) and yj = y.(!j) in
    if xi < yj then begin out.(!k) <- xi; incr i; incr k end
    else if xi > yj then incr j
    else begin incr i; incr j end
  done;
  while !i < nx do out.(!k) <- x.(!i); incr i; incr k done;
  if !k = nx then out else Array.sub out 0 !k

let subset x y =
  let nx = Array.length x and ny = Array.length y in
  if nx > ny then false
  else begin
    let rec loop i j =
      if i >= nx then true
      else if j >= ny then false
      else if nx - i > ny - j then false
      else if x.(i) = y.(j) then loop (i + 1) (j + 1)
      else if x.(i) > y.(j) then loop i (j + 1)
      else false
    in
    loop 0 0
  end

let strict_subset x y = Array.length x < Array.length y && subset x y

let disjoint x y =
  let nx = Array.length x and ny = Array.length y in
  let rec loop i j =
    if i >= nx || j >= ny then true
    else if x.(i) = y.(j) then false
    else if x.(i) < y.(j) then loop (i + 1) j
    else loop i (j + 1)
  in
  loop 0 0

let parents x =
  Array.to_list (Array.map (fun i -> (i, remove i x)) x)

let subsets x =
  let n = Array.length x in
  if n > 20 then invalid_arg "Itemset.subsets: set too large";
  let total = 1 lsl n in
  let out = ref [] in
  for mask = total - 1 downto 0 do
    let card = ref 0 in
    for b = 0 to n - 1 do
      if mask land (1 lsl b) <> 0 then incr card
    done;
    let sub = Array.make !card 0 in
    let k = ref 0 in
    for b = 0 to n - 1 do
      if mask land (1 lsl b) <> 0 then begin
        sub.(!k) <- x.(b);
        incr k
      end
    done;
    out := sub :: !out
  done;
  !out

let equal x y = x = (y : t)

let proper_nonempty_subsets x =
  List.filter (fun s -> not (is_empty s) && not (equal s x)) (subsets x)

let compare_lex (x : t) (y : t) =
  let nx = Array.length x and ny = Array.length y in
  let rec loop i =
    if i >= nx && i >= ny then 0
    else if i >= nx then -1
    else if i >= ny then 1
    else
      let c = Int.compare x.(i) y.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let compare (x : t) (y : t) =
  let c = Int.compare (Array.length x) (Array.length y) in
  if c <> 0 then c else compare_lex x y

let hash (x : t) =
  (* FNV-1a over the item ids; good dispersion for short int sequences. *)
  let h = ref 0x3f29ce484222325 in
  Array.iter
    (fun i ->
      h := !h lxor i;
      h := !h * 0x100000001b3)
    x;
  !h land max_int

let pp fmt x =
  Format.pp_print_char fmt '{';
  Array.iteri
    (fun k i ->
      if k > 0 then Format.pp_print_char fmt ',';
      Format.pp_print_int fmt i)
    x;
  Format.pp_print_char fmt '}'

let pp_named vocab fmt x =
  Format.pp_print_char fmt '{';
  Array.iteri
    (fun k i ->
      if k > 0 then Format.pp_print_char fmt ',';
      Format.pp_print_string fmt (Item.Vocab.name vocab i))
    x;
  Format.pp_print_char fmt '}'

let to_string x = Format.asprintf "%a" pp x

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Table = Hashtbl.Make (Key)
module Map = Map.Make (Key)
module Set = Set.Make (Key)
