(** Text serialization of transaction databases.

    Format (one file = one database):
    {v
    # olar transaction database v1
    items <num_items>
    transactions <count>
    <space-separated item ids, one transaction per line>
    v}
    Blank lines after the header denote empty transactions. The format is
    line-oriented so databases can be produced and inspected with standard
    Unix tools. *)

(** Raised by {!load}/{!parse} on malformed input, with a description
    including the offending line number. *)
exception Malformed of string

(** [save db path] writes [db] to [path], truncating it. *)
val save : Database.t -> string -> unit

(** [load path] reads a database back. Raises [Malformed] or
    [Sys_error]. *)
val load : string -> Database.t

(** [print db out] writes the textual form to a channel. *)
val print : Database.t -> out_channel -> unit

(** [parse lines] builds a database from the textual lines (header
    included). Raises [Malformed]. *)
val parse : string list -> Database.t
