type t = {
  num_items : int;
  transactions : Itemset.t array;
}

let create ~num_items transactions =
  if num_items <= 0 then invalid_arg "Database.create: num_items";
  Array.iter
    (fun txn ->
      if not (Itemset.is_empty txn) && Itemset.max_item txn >= num_items then
        invalid_arg "Database.create: item id out of range")
    transactions;
  { num_items; transactions }

let of_lists ~num_items rows =
  create ~num_items (Array.of_list (List.map Itemset.of_list rows))

let num_items db = db.num_items
let size db = Array.length db.transactions

let get db i =
  if i < 0 || i >= size db then invalid_arg "Database.get";
  db.transactions.(i)

let iter f db = Array.iter f db.transactions
let iteri f db = Array.iteri f db.transactions
let fold f acc db = Array.fold_left f acc db.transactions

let support_count db x =
  let count = ref 0 in
  iter (fun txn -> if Itemset.subset x txn then incr count) db;
  !count

let support db x =
  let n = size db in
  if n = 0 then 0.0 else float_of_int (support_count db x) /. float_of_int n

let count_of_fraction db f =
  if f < 0.0 || f > 1.0 then invalid_arg "Database.count_of_fraction";
  max 1 (int_of_float (ceil (f *. float_of_int (size db))))

let avg_transaction_size db =
  let n = size db in
  if n = 0 then 0.0
  else begin
    let total = fold (fun acc txn -> acc + Itemset.cardinal txn) 0 db in
    float_of_int total /. float_of_int n
  end

let item_frequencies db =
  let freq = Array.make db.num_items 0 in
  iter (fun txn -> Itemset.iter (fun i -> freq.(i) <- freq.(i) + 1) txn) db;
  freq
