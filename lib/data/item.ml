type t = int

let pp fmt i = Format.fprintf fmt "%d" i
let compare = Int.compare
let equal = Int.equal

module Vocab = struct
  type item = t

  type t = {
    by_name : (string, int) Hashtbl.t;
    by_id : string Olar_util.Vec.t;
  }

  let create () = { by_name = Hashtbl.create 64; by_id = Olar_util.Vec.create () }

  let size v = Olar_util.Vec.length v.by_id

  let intern v name =
    match Hashtbl.find_opt v.by_name name with
    | Some i -> i
    | None ->
      let i = size v in
      Hashtbl.add v.by_name name i;
      Olar_util.Vec.push v.by_id name;
      i

  let of_names names =
    let v = create () in
    List.iter
      (fun n ->
        if Hashtbl.mem v.by_name n then invalid_arg "Item.Vocab.of_names: duplicate";
        ignore (intern v n))
      names;
    v

  let id v name = Hashtbl.find_opt v.by_name name

  let name v i =
    if i < 0 || i >= size v then invalid_arg "Item.Vocab.name: unregistered id";
    Olar_util.Vec.get v.by_id i

  let names v = Olar_util.Vec.to_list v.by_id

  let save v path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Olar_util.Vec.iter
          (fun name ->
            output_string oc name;
            output_char oc '\n')
          v.by_id)

  let load path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        of_names (List.rev !lines))
end
