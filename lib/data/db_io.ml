exception Malformed of string

let magic = "# olar transaction database v1"

let print db out =
  Printf.fprintf out "%s\n" magic;
  Printf.fprintf out "items %d\n" (Database.num_items db);
  Printf.fprintf out "transactions %d\n" (Database.size db);
  Database.iter
    (fun txn ->
      let first = ref true in
      Itemset.iter
        (fun i ->
          if !first then first := false else output_char out ' ';
          output_string out (string_of_int i))
        txn;
      output_char out '\n')
    db

let save db path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> print db out)

let malformed lineno fmt =
  Printf.ksprintf (fun s -> raise (Malformed (Printf.sprintf "line %d: %s" lineno s))) fmt

let parse_header_int ~lineno ~key line =
  match String.split_on_char ' ' (String.trim line) with
  | [ k; v ] when k = key -> (
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> malformed lineno "invalid %s count %S" key v)
  | _ -> malformed lineno "expected %S header, got %S" key line

let parse_transaction ~lineno line =
  let line = String.trim line in
  if line = "" then Itemset.empty
  else begin
    let fields = String.split_on_char ' ' line in
    let items =
      List.filter_map
        (fun f ->
          if f = "" then None
          else
            match int_of_string_opt f with
            | Some i when i >= 0 -> Some i
            | _ -> malformed lineno "invalid item id %S" f)
        fields
    in
    Itemset.of_list items
  end

let parse lines =
  match lines with
  | [] -> raise (Malformed "empty input")
  | first :: rest ->
    if String.trim first <> magic then
      malformed 1 "bad magic, expected %S" magic;
    begin
      match rest with
      | items_line :: txns_line :: body ->
        let num_items = parse_header_int ~lineno:2 ~key:"items" items_line in
        let expected = parse_header_int ~lineno:3 ~key:"transactions" txns_line in
        let txns =
          List.mapi (fun k line -> parse_transaction ~lineno:(k + 4) line) body
        in
        let txns = Array.of_list txns in
        if Array.length txns <> expected then
          raise
            (Malformed
               (Printf.sprintf "expected %d transactions, found %d" expected
                  (Array.length txns)));
        (try Database.create ~num_items txns
         with Invalid_argument msg -> raise (Malformed msg))
      | _ -> raise (Malformed "truncated header")
    end

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse (List.rev !lines))
