type t = {
  num_items : int;
  num_transactions : int;
  bitmaps : Olar_util.Bitset.t array;
}

let build db =
  let n_items = Database.num_items db in
  let n_txns = Database.size db in
  let bitmaps = Array.init n_items (fun _ -> Olar_util.Bitset.create n_txns) in
  Database.iteri
    (fun tid txn -> Itemset.iter (fun i -> Olar_util.Bitset.add bitmaps.(i) tid) txn)
    db;
  { num_items = n_items; num_transactions = n_txns; bitmaps }

let num_items idx = idx.num_items
let num_transactions idx = idx.num_transactions

let bitmap idx i =
  if i < 0 || i >= idx.num_items then invalid_arg "Bitmap.bitmap";
  idx.bitmaps.(i)

let support_count idx x =
  match Itemset.to_list x with
  | [] -> idx.num_transactions
  | [ i ] -> Olar_util.Bitset.cardinal (bitmap idx i)
  | items ->
    let maps = Array.of_list (List.map (bitmap idx) items) in
    let n = Array.length maps in
    (* intersect all but the last; the final step only needs a count *)
    let acc = ref maps.(0) in
    for i = 1 to n - 2 do
      acc := Olar_util.Bitset.inter !acc maps.(i)
    done;
    Olar_util.Bitset.inter_cardinal !acc maps.(n - 1)
