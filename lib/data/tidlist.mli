(** Vertical database index (tid-lists).

    For each item, the sorted list of ids of transactions containing it.
    The support of an itemset is the size of the intersection of its
    items' tid-lists — much faster than scanning the database when
    itemsets are small and the index is resident. Used for exact support
    lookups when building the example lattices and as an independent
    oracle in the test suite. *)

type t

(** [build db] indexes [db] in one pass. *)
val build : Database.t -> t

(** [num_items idx] / [num_transactions idx] mirror the source database. *)
val num_items : t -> int

val num_transactions : t -> int

(** [tids idx i] is the sorted array of transaction ids containing item
    [i] (shared, do not mutate). Raises [Invalid_argument] for an out of
    range item. *)
val tids : t -> Item.t -> int array

(** [item_support idx i] is the number of transactions containing [i]. *)
val item_support : t -> Item.t -> int

(** [support_count idx x] is the support count of [x] by k-way tid-list
    intersection (items processed rarest-first). The empty itemset has
    support [num_transactions idx]. *)
val support_count : t -> Itemset.t -> int
