.PHONY: all build test test-quick bench-smoke bench-json bench-cache clean

all: build

build:
	dune build

# Full tier-1 suite (unit + property + integration + CLI).
test:
	dune runtest

# Fast subset (the @runtest-quick alias): skips dataset-generation,
# CLI-subprocess and integration suites. Use for tight edit-test loops.
test-quick:
	dune build @runtest-quick

# One quick bench scenario (query throughput at default scale, <10s) as
# a smoke check that the bench harness still runs.
bench-smoke:
	dune build @bench-smoke

# Machine-readable bench output: run the qps and session experiments
# with --json and validate the document with bench/check_json.exe.
bench-json:
	dune build @bench-json

# Session-cache benchmark: Zipf-repeated query streams, cached vs
# uncached (lib/serve).
bench-cache:
	dune build @bench-cache

clean:
	dune clean
