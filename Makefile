.PHONY: all build test test-quick bench-smoke bench-json bench-cache \
	replay-smoke serve-smoke trace-smoke health-smoke bench-compare \
	dispatch-bench stress clean

all: build

build:
	dune build

# Full tier-1 suite (unit + property + integration + CLI).
test:
	dune runtest

# Fast subset (the @runtest-quick alias): skips dataset-generation,
# CLI-subprocess and integration suites. Use for tight edit-test loops.
test-quick:
	dune build @runtest-quick

# One quick bench scenario (query throughput at default scale, <10s) as
# a smoke check that the bench harness still runs.
bench-smoke:
	dune build @bench-smoke

# Machine-readable bench output: run the qps, session, concurrent and
# serve experiments with --json plus the dispatch microbench sweep
# merged into the same document, validate it with bench/check_json.exe,
# gate it against the committed baseline (bench/compare_json.exe), run
# the pool-vs-serial digest stress, the serve -> capture -> replay
# loopback round trip, the request-tracing smoke and the live-health
# smoke.
bench-json:
	dune build @bench-json @bench-compare @stress @serve-smoke @trace-smoke \
		@health-smoke

# Session-cache benchmark: Zipf-repeated query streams, cached vs
# uncached (lib/serve).
bench-cache:
	dune build @bench-cache

# Capture -> replay round trip: record a 200-query canned workload and
# replay it (uncached and cached) expecting zero digest mismatches.
replay-smoke:
	dune build @replay-smoke

# Serve -> capture -> replay over a real loopback socket: an in-process
# olar-serve daemon records a canned workload which the CLI then
# replays against the saved pre-serving lattice; zero mismatches.
serve-smoke:
	dune build @serve-smoke

# Request-tracing smoke: serve a canned workload with tracing sampled
# 1-in-2 and validate the emitted spans file (roots, phase children,
# domain tags, child-first order) plus the /statusz phase accounting.
trace-smoke:
	dune build @trace-smoke

# Live-health smoke: healthy daemon grades ok with live windows and GC
# attribution; a flooded tiny-queue daemon sheds and /healthz agrees
# exactly with the pure Health engine over the /statusz window.
health-smoke:
	dune build @health-smoke

# Perf-regression gate on its own: rerun the benchmark and diff qps
# against BENCH_T10I4.json (default tolerance -20%).
bench-compare:
	dune build @bench-compare

# Dispatch-overhead microbench: null-query requests/sec at 1/2/4/8
# domains, old round-based scheduler (ported locally) vs the live
# continuous-dispatch pool.
dispatch-bench:
	dune build @dispatch-bench

# Pool-vs-serial stress: the same deterministic workload executed
# serially and through an 8-domain pool (x3), requiring bitwise-
# identical FNV digests at cache budgets 0 and 8 MiB.
stress:
	dune build @stress

clean:
	dune clean
