.PHONY: all build test test-quick bench-smoke clean

all: build

build:
	dune build

# Full tier-1 suite (unit + property + integration + CLI).
test:
	dune runtest

# Fast subset: skips dataset-generation, CLI-subprocess and integration
# suites. Use for tight edit-test loops.
test-quick:
	dune build @runtest-quick

# One quick bench scenario (query throughput at default scale, <10s) as
# a smoke check that the bench harness still runs.
bench-smoke:
	dune build @bench-smoke

clean:
	dune clean
