(* The olar command-line tool: generate data, preprocess it into an
   adjacency lattice, and run online queries against the lattice —
   the full "preprocess once, query many" workflow from a shell. *)

open Cmdliner
open Olar_data

let version = "1.0.0"

(* ------------------------------------------------------------------ *)
(* Shared argument converters and helpers *)

let itemset_conv =
  let parse s =
    let parts = String.split_on_char ',' s in
    try
      Ok
        (Itemset.of_list
           (List.filter_map
              (fun p ->
                let p = String.trim p in
                if p = "" then None
                else
                  match int_of_string_opt p with
                  | Some i when i >= 0 -> Some i
                  | _ -> failwith p)
              parts))
    with Failure p -> Error (`Msg (Printf.sprintf "invalid item id %S" p))
  in
  Arg.conv (parse, Itemset.pp)

let fraction_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0.0 && f <= 1.0 -> Ok f
    | _ -> Error (`Msg "expected a fraction in (0, 1]")
  in
  Arg.conv (parse, Format.pp_print_float)

let fraction_arg ~doc names =
  Arg.(
    required & opt (some fraction_conv) None & info names ~doc ~docv:"FRACTION")

let db_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "database" ] ~doc:"Transaction database file." ~docv:"FILE")

let lattice_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "l"; "lattice" ] ~doc:"Preprocessed lattice file." ~docv:"FILE")

let containing_arg =
  Arg.(
    value
    & opt itemset_conv Itemset.empty
    & info [ "containing" ]
        ~doc:"Restrict to itemsets containing these items (e.g. 3,17,42)."
        ~docv:"ITEMS")

(* [--domains] converter: 0, negative, and unparsable counts are
   cmdliner errors (exit 124 with usage) instead of being silently
   clamped deep inside the mining layer. *)
let domains_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid domain count %S" s))
    | Some d when d <= 0 ->
      Error (`Msg (Printf.sprintf "domain count must be positive, got %d" d))
    | Some d -> Ok d
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* Oversubscription is legal (the domain runtime time-slices) but
   usually slower; warn rather than reject. *)
let warn_domains = function
  | Some d when d > Domain.recommended_domain_count () ->
    Format.eprintf
      "olar: warning: --domains %d exceeds this machine's recommended domain \
       count (%d); oversubscribing domains usually hurts throughput@."
      d
      (Domain.recommended_domain_count ())
  | _ -> ()

let domains_arg =
  Arg.(
    value
    & opt (some domains_conv) None
    & info [ "domains" ]
        ~doc:
          "Split support-counting passes across $(docv) parallel counting \
           domains (default 1 = sequential; ignored by the fpgrowth miner). \
           Must be positive."
        ~docv:"N")

let cache_mb_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-mb" ]
        ~doc:
          "Route the query through a session result cache with this MiB \
           budget (see olar.serve). 0 queries the engine directly. Cache \
           accounting is reported on stderr."
        ~docv:"MB")

let make_session ~cache_mb engine =
  Olar_serve.Session.create ~budget_bytes:(cache_mb * 1024 * 1024) engine

(* Cache accounting goes to stderr so --format csv/json stdout stays
   machine-readable. *)
let report_cache session =
  if Olar_serve.Session.enabled session then begin
    let open Olar_serve.Session in
    let s = stats session in
    Format.eprintf
      "cache: hits=%d (refines=%d) misses=%d evictions=%d resident=%dB/%dB \
       entries=%d@."
      s.hits s.refines s.misses s.evictions s.resident_bytes s.budget_bytes
      s.entries
  end

let load_db path =
  try Ok (Db_io.load path) with
  | Db_io.Malformed msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let load_engine ?obs path =
  try Ok (Olar_core.Engine.load ?obs path) with
  | Olar_core.Serialize.Malformed msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Telemetry flags shared by the query and maintenance commands *)

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the command, print the telemetry registry: query \
           counters, work counters, lattice gauges and latency \
           histograms.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Write trace spans as JSON lines to $(docv), one span per line \
           (spans are emitted when they close, children before parents)."
        ~docv:"FILE")

(* Build the observability context from --metrics/--trace. Returns the
   context plus a finisher that flushes/closes the trace file and prints
   the registry; commands call it after their output. Both flags off
   yields the disabled context and a no-op finisher — unless [force] is
   set (workload recording needs the shared work counters live even when
   nothing will be printed). *)
let make_obs ?(force = false) metrics trace =
  if (not force) && (not metrics) && trace = None then
    (Olar_obs.Obs.disabled, fun () -> ())
  else begin
    let oc = Option.map open_out trace in
    let sink = Option.map Olar_obs.Sink.jsonl oc in
    let obs = Olar_obs.Obs.create ?trace:sink () in
    Option.iter (fun ctx -> Olar_obs.Obs.set_build_info ctx ~version) obs;
    let finish () =
      Olar_obs.Obs.flush_opt obs;
      Option.iter close_out oc;
      Option.iter (fun path -> Format.printf "wrote trace %s@." path) trace;
      if metrics then
        Option.iter
          (fun ctx ->
            Olar_obs.Obs.update_runtime_gauges ctx;
            print_string
              (Olar_obs.Exposition.to_text (Olar_obs.Obs.metrics ctx)))
          obs
    in
    (obs, finish)
  end

(* ------------------------------------------------------------------ *)
(* Workload capture flags (items/rules/count/support-for) *)

let record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ]
        ~doc:
          "Append one JSON query-log record per query to $(docv): the full \
           query key, result digest, latency, work counters and cache path. \
           Re-execute with $(b,olar replay)."
        ~docv:"FILE")

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Render each query's log record human-readably on stderr: key, \
           cache path, result size, digest, latency and work counters.")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ]
        ~doc:
          "Slow-query mode: only emit --record/--explain output for queries \
           taking at least $(docv) milliseconds."
        ~docv:"MS")

let slow_s_of = function None -> 0.0 | Some ms -> ms /. 1000.0

(* A recorder over [session] wired to the --record/--explain/--slow-ms
   flags, plus a finisher closing the log file. Recording requires the
   session (so the cache path is observable) and a forced obs context
   (so the work counters are live); callers arrange both. *)
let make_recorder ~record ~explain ~slow_ms session =
  let oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      record
  in
  let emit r =
    Option.iter
      (fun oc ->
        output_string oc (Olar_replay.Record.to_json_line r);
        output_char oc '\n')
      oc;
    if explain then Format.eprintf "%a@." Olar_replay.Record.pp r
  in
  let recorder =
    Olar_replay.Recorder.create ~slow_s:(slow_s_of slow_ms) ~emit session
  in
  let finish () =
    Option.iter close_out oc;
    Option.iter (fun path -> Format.eprintf "recorded %s@." path) record
  in
  (recorder, finish)

let or_die = function
  | Ok x -> x
  | Error msg ->
    Format.eprintf "olar: %s@." msg;
    exit 1

let handle_below_threshold f =
  try f ()
  with Olar_core.Query.Below_primary_threshold { requested; primary } ->
    Format.eprintf
      "olar: requested support (count %d) is below the primary threshold \
       (count %d); itemsets in that range were not prestored@."
      requested primary;
    exit 2

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let name_arg =
    Arg.(
      value
      & opt string "T10.I4.D10K"
      & info [ "name" ] ~doc:"Dataset annotation Tt.Ii.Dn (paper notation)."
          ~docv:"NAME")
  in
  let items_arg =
    Arg.(value & opt int 1000 & info [ "items" ] ~doc:"Universe size." ~docv:"N")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed." ~docv:"SEED")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output file." ~docv:"FILE")
  in
  let run name items seed out =
    match Olar_datagen.Params.of_name name with
    | None ->
      Format.eprintf "olar: cannot parse dataset name %S (expected Tt.Ii.Dn)@." name;
      exit 1
    | Some p ->
      let params = { p with Olar_datagen.Params.num_items = items; seed } in
      let db = Olar_datagen.Quest.generate params in
      Db_io.save db out;
      Format.printf "wrote %s: %d transactions, %d items, avg size %.2f@." out
        (Database.size db) (Database.num_items db)
        (Database.avg_transaction_size db)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic transaction database (Section 6.1).")
    Term.(const run $ name_arg $ items_arg $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* preprocess *)

let miner_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("dhp", Olar_mining.Threshold.Use_dhp);
             ("apriori", Olar_mining.Threshold.Use_apriori);
             ("fpgrowth", Olar_mining.Threshold.Use_fpgrowth) ])
        Olar_mining.Threshold.Use_dhp
    & info [ "miner" ]
        ~doc:"Mining subroutine: $(b,dhp), $(b,apriori) or $(b,fpgrowth)."
        ~docv:"MINER")

type any_miner = M_dhp | M_apriori | M_partition | M_sampling | M_fpgrowth

let any_miner_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("dhp", M_dhp); ("apriori", M_apriori); ("partition", M_partition);
             ("sampling", M_sampling); ("fpgrowth", M_fpgrowth) ])
        M_dhp
    & info [ "miner" ]
        ~doc:
          "Mining algorithm: $(b,dhp), $(b,apriori), $(b,partition), $(b,fpgrowth) \
           or $(b,sampling) (Toivonen). FP-Growth and Partition mine exactly;"
        ~docv:"MINER")

let run_any_miner ?stats miner db ~minsup =
  match miner with
  | M_dhp -> Olar_mining.Dhp.mine ?stats db ~minsup
  | M_apriori -> Olar_mining.Apriori.mine ?stats db ~minsup
  | M_partition -> Olar_mining.Partition.mine ?stats db ~minsup
  | M_sampling ->
    (Olar_mining.Sampling.mine ?stats db ~minsup).Olar_mining.Sampling.result
  | M_fpgrowth -> Olar_mining.Fpgrowth.mine ?stats db ~minsup

(* Output formats shared by items/rules. *)
type format = Text | Csv | Json

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("csv", Csv); ("json", Json) ]) Text
    & info [ "format" ] ~doc:"Output format: $(b,text), $(b,csv) or $(b,json).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~doc:"Write the result to a file instead of stdout."
        ~docv:"FILE")

let vocab_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "vocab" ]
        ~doc:"Item-name vocabulary file (one name per line); output uses names."
        ~docv:"FILE")

let load_vocab = function
  | None -> None
  | Some path -> (
    try Some (Item.Vocab.load path) with
    | Invalid_argument msg ->
      Format.eprintf "olar: %s: %s@." path msg;
      exit 1
    | Sys_error msg ->
      Format.eprintf "olar: %s@." msg;
      exit 1)

let emit output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text);
    Format.printf "wrote %s@." path

let preprocess_cmd =
  let max_itemsets_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-itemsets" ]
          ~doc:"Itemset budget N; a binary search finds the threshold."
          ~docv:"N")
  in
  let support_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "support" ]
          ~doc:"Explicit primary support fraction (skips the budget search)."
          ~docv:"FRACTION")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ]
          ~doc:"Memory budget in bytes for the lattice (the paper's real constraint)."
          ~docv:"BYTES")
  in
  let slack_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "slack" ] ~doc:"Search window Ns (default N/20)." ~docv:"NS")
  in
  let search_arg =
    Arg.(
      value
      & opt (enum [ ("optimized", `Optimized); ("naive", `Naive) ]) `Optimized
      & info [ "search" ]
          ~doc:"Threshold search variant: $(b,optimized) or $(b,naive).")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output lattice file." ~docv:"FILE")
  in
  let run db_path max_itemsets support max_bytes slack search miner domains out
      metrics trace =
    warn_domains domains;
    let db = or_die (load_db db_path) in
    let obs, finish_obs = make_obs metrics trace in
    let stats = Olar_mining.Stats.create () in
    let engine, dt =
      Olar_util.Timer.time (fun () ->
          match (max_itemsets, support, max_bytes) with
          | Some n, None, None ->
            Olar_core.Engine.preprocess ~obs ~stats ~miner ~search ?slack
              ?domains db ~max_itemsets:n
          | None, Some s, None ->
            Olar_core.Engine.at_threshold ~obs ~stats ~miner ?domains db
              ~primary_support:s
          | None, None, Some b ->
            Olar_core.Engine.preprocess_bytes ~obs ~stats ~miner ?domains db
              ~max_bytes:b
          | _ ->
            Format.eprintf
              "olar: pass exactly one of --max-itemsets, --support and \
               --max-bytes@.";
            exit 1)
    in
    Olar_core.Engine.save engine out;
    Format.printf
      "wrote %s: %d primary itemsets, threshold %.4f%% (count %d), ~%d KiB, %.2fs@."
      out
      (Olar_core.Engine.num_primary_itemsets engine)
      (100.0 *. Olar_core.Engine.primary_threshold engine)
      (Olar_core.Engine.primary_threshold_count engine)
      (Olar_core.Lattice.estimated_bytes (Olar_core.Engine.lattice engine) / 1024)
      dt;
    Format.printf "work: %a@." Olar_mining.Stats.pp stats;
    finish_obs ()
  in
  Cmd.v
    (Cmd.info "preprocess"
       ~doc:"Mine the primary itemsets and build the adjacency lattice (Section 5).")
    Term.(
      const run $ db_arg $ max_itemsets_arg $ support_arg $ max_bytes_arg
      $ slack_arg $ search_arg $ miner_arg $ domains_arg $ out_arg
      $ metrics_flag $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* info *)

let info_cmd =
  let run lattice_path =
    let engine = or_die (load_engine lattice_path) in
    let lat = Olar_core.Engine.lattice engine in
    Format.printf "database size:      %d transactions@." (Olar_core.Lattice.db_size lat);
    Format.printf "primary threshold:  %.4f%% (count %d)@."
      (100.0 *. Olar_core.Engine.primary_threshold engine)
      (Olar_core.Lattice.threshold lat);
    Format.printf "primary itemsets:   %d@." (Olar_core.Engine.num_primary_itemsets engine);
    Format.printf "lattice edges:      %d@." (Olar_core.Lattice.num_edges lat);
    (* level histogram *)
    let hist = Hashtbl.create 8 in
    Olar_core.Lattice.iter_vertices
      (fun v ->
        if v <> Olar_core.Lattice.root lat then begin
          let k = Olar_core.Lattice.cardinal lat v in
          Hashtbl.replace hist k (1 + Option.value ~default:0 (Hashtbl.find_opt hist k))
        end)
      lat;
    let levels = List.sort Int.compare (Hashtbl.fold (fun k _ l -> k :: l) hist []) in
    List.iter
      (fun k -> Format.printf "  %d-itemsets:       %d@." k (Hashtbl.find hist k))
      levels
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a preprocessed lattice.")
    Term.(const run $ lattice_arg)

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let run lattice_path =
    let engine = or_die (load_engine lattice_path) in
    let s = Olar_core.Engine.stats engine in
    Format.printf "vertices:    %d@." s.Olar_core.Lattice.Stats.vertices;
    Format.printf "edges:       %d@." s.Olar_core.Lattice.Stats.edges;
    Format.printf "bytes:       %d (~%d KiB)@." s.Olar_core.Lattice.Stats.bytes
      (s.Olar_core.Lattice.Stats.bytes / 1024);
    Format.printf "max fanout:  %d@." s.Olar_core.Lattice.Stats.max_fanout;
    Format.printf "depth:       %d@." s.Olar_core.Lattice.Stats.depth
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print the lattice shape summary: vertices, edges, estimated \
          resident bytes of the CSR layout, the largest child fanout and \
          the cardinality of the deepest itemset.")
    Term.(const run $ lattice_arg)

(* ------------------------------------------------------------------ *)
(* items *)

let items_cmd =
  let minsup = fraction_arg ~doc:"Minimum support fraction." [ "minsup" ] in
  let limit_arg =
    Arg.(value & opt int 50 & info [ "limit" ] ~doc:"Print at most this many." ~docv:"N")
  in
  let run lattice_path minsup containing limit format output vocab_path cache_mb
      record explain slow_ms metrics trace =
    let recording = record <> None || explain in
    let obs, finish_obs = make_obs ~force:recording metrics trace in
    let engine = or_die (load_engine ~obs lattice_path) in
    let vocab = load_vocab vocab_path in
    handle_below_threshold (fun () ->
        let lat = Olar_core.Engine.lattice engine in
        let db_size = Olar_core.Engine.db_size engine in
        (* raw query (counts, not fractions), instrumented the same way
           Engine.itemsets is *)
        let query work =
          Olar_core.Query.to_entries lat
            (Olar_core.Query.find_itemsets ?work lat ~containing
               ~minsup:(Olar_core.Engine.count_of_support engine minsup))
        in
        let session =
          if cache_mb > 0 || recording then Some (make_session ~cache_mb engine)
          else None
        in
        let entries_of_ids ids =
          Array.to_list
            (Array.map
               (fun v ->
                 ( Olar_core.Lattice.itemset lat v,
                   Olar_core.Lattice.support lat v ))
               ids)
        in
        let entries, dt =
          Olar_util.Timer.time (fun () ->
              match session with
              | Some s when recording ->
                let recorder, finish_rec =
                  make_recorder ~record ~explain ~slow_ms s
                in
                Fun.protect ~finally:finish_rec (fun () ->
                    entries_of_ids
                      (Olar_replay.Recorder.itemset_ids recorder ~containing
                         ~minsup))
              | Some s ->
                entries_of_ids
                  (Olar_serve.Session.itemset_ids s ~containing ~minsup)
              | None -> (
                match obs with
                | None -> query None
                | Some ctx ->
                  Olar_obs.Obs.query_span ctx ~name:"itemsets"
                    ~work:Olar_obs.Obs.Vertices query))
        in
        Option.iter report_cache session;
        Fun.protect ~finally:finish_obs @@ fun () ->
        match format with
        | Csv -> emit output (Olar_core.Export.itemsets_to_csv ?vocab ~db_size entries)
        | Json -> emit output (Olar_core.Export.itemsets_to_json ?vocab ~db_size entries)
        | Text ->
          let pp_set fmt x =
            match vocab with
            | None -> Itemset.pp fmt x
            | Some v -> Itemset.pp_named v fmt x
          in
          Format.printf "%d itemsets (%.4fs):@." (List.length entries) dt;
          List.iteri
            (fun i (x, c) ->
              if i < limit then
                Format.printf "  %a  %.4f%%@." pp_set x
                  (100.0 *. float_of_int c /. float_of_int db_size))
            entries;
          if List.length entries > limit then
            Format.printf "  ... and %d more (raise --limit)@."
              (List.length entries - limit))
  in
  Cmd.v
    (Cmd.info "items"
       ~doc:"Online itemset query: all itemsets above a support level (Figure 2).")
    Term.(
      const run $ lattice_arg $ minsup $ containing_arg $ limit_arg $ format_arg
      $ output_arg $ vocab_arg $ cache_mb_arg $ record_arg $ explain_flag
      $ slow_ms_arg $ metrics_flag $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* rules *)

let rules_cmd =
  let minsup = fraction_arg ~doc:"Minimum support fraction." [ "minsup" ] in
  let minconf = fraction_arg ~doc:"Minimum confidence." [ "minconf" ] in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Include redundant rules (default: essential only).")
  in
  let single_arg =
    Arg.(
      value & flag
      & info [ "single-consequent" ] ~doc:"Only rules with one item in the consequent.")
  in
  let antecedent_arg =
    Arg.(
      value
      & opt itemset_conv Itemset.empty
      & info [ "antecedent" ] ~doc:"Items the antecedent must include." ~docv:"ITEMS")
  in
  let consequent_arg =
    Arg.(
      value
      & opt itemset_conv Itemset.empty
      & info [ "consequent" ] ~doc:"Items the consequent must include." ~docv:"ITEMS")
  in
  let limit_arg =
    Arg.(value & opt int 50 & info [ "limit" ] ~doc:"Print at most this many." ~docv:"N")
  in
  let min_lift_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-lift" ]
          ~doc:"Drop rules below this lift (e.g. 1.0 removes negative correlations)."
          ~docv:"LIFT")
  in
  let sort_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("lift", `Lift); ("confidence", `Confidence);
                  ("support", `Support); ("leverage", `Leverage);
                  ("conviction", `Conviction) ]))
          None
      & info [ "sort-by" ]
          ~doc:"Order by an interestingness measure, strongest first."
          ~docv:"MEASURE")
  in
  let measures_arg =
    Arg.(
      value & flag
      & info [ "measures" ] ~doc:"Include lift/leverage/conviction in the output.")
  in
  let run lattice_path minsup minconf containing all single antecedent consequent
      limit format output min_lift sort_by measures vocab_path cache_mb record
      explain slow_ms metrics trace =
    let recording = record <> None || explain in
    let obs, finish_obs = make_obs ~force:recording metrics trace in
    let engine = or_die (load_engine ~obs lattice_path) in
    let vocab = load_vocab vocab_path in
    let lat = Olar_core.Engine.lattice engine in
    let constraints =
      {
        Olar_core.Boundary.unconstrained with
        Olar_core.Boundary.antecedent_includes = antecedent;
        consequent_includes = consequent;
      }
    in
    handle_below_threshold (fun () ->
        let session =
          if cache_mb > 0 || recording then Some (make_session ~cache_mb engine)
          else None
        in
        let rules, dt =
          Olar_util.Timer.time (fun () ->
              match session with
              | Some s when recording ->
                let recorder, finish_rec =
                  make_recorder ~record ~explain ~slow_ms s
                in
                Fun.protect ~finally:finish_rec (fun () ->
                    if single then
                      Olar_replay.Recorder.single_consequent_rules ~containing
                        recorder ~minsup ~minconf
                    else if all then
                      Olar_replay.Recorder.all_rules ~containing ~constraints
                        recorder ~minsup ~minconf
                    else
                      Olar_replay.Recorder.essential_rules ~containing
                        ~constraints recorder ~minsup ~minconf)
              | Some s ->
                if single then
                  Olar_serve.Session.single_consequent_rules s ~containing
                    ~minsup ~minconf
                else if all then
                  Olar_serve.Session.all_rules s ~containing ~constraints
                    ~minsup ~minconf
                else
                  Olar_serve.Session.essential_rules s ~containing ~constraints
                    ~minsup ~minconf
              | None ->
                if single then
                  Olar_core.Engine.single_consequent_rules engine ~containing
                    ~minsup ~minconf
                else if all then
                  Olar_core.Engine.all_rules engine ~containing ~constraints
                    ~minsup ~minconf
                else
                  Olar_core.Engine.essential_rules engine ~containing
                    ~constraints ~minsup ~minconf)
        in
        Option.iter report_cache session;
        Fun.protect ~finally:finish_obs @@ fun () ->
        let rules =
          match min_lift with
          | None -> rules
          | Some min_lift -> Olar_core.Interest.filter_by lat rules ~min_lift
        in
        let rules =
          match sort_by with
          | None -> rules
          | Some measure -> Olar_core.Interest.sort_by measure lat rules
        in
        let db_size = Olar_core.Engine.db_size engine in
        let measures_lattice = if measures then Some lat else None in
        let pp_rule fmt r =
          match vocab with
          | None -> Olar_core.Rule.pp fmt r
          | Some v -> Olar_core.Rule.pp_named v fmt r
        in
        match format with
        | Csv ->
          emit output
            (Olar_core.Export.rules_to_csv ?vocab ?measures:measures_lattice
               ~db_size rules)
        | Json ->
          emit output
            (Olar_core.Export.rules_to_json ?vocab ?measures:measures_lattice
               ~db_size rules)
        | Text ->
          Format.printf "%d rules (%.4fs):@." (List.length rules) dt;
          List.iteri
            (fun i r ->
              if i < limit then
                if measures then
                  Format.printf "  %a  [%a]@." pp_rule r Olar_core.Interest.pp
                    (Olar_core.Interest.measures lat r)
                else Format.printf "  %a@." pp_rule r)
            rules;
          if List.length rules > limit then
            Format.printf "  ... and %d more (raise --limit)@."
              (List.length rules - limit))
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:"Online rule query: essential rules at a support/confidence level (Figure 6).")
    Term.(
      const run $ lattice_arg $ minsup $ minconf $ containing_arg $ all_arg
      $ single_arg $ antecedent_arg $ consequent_arg $ limit_arg $ format_arg
      $ output_arg $ min_lift_arg $ sort_arg $ measures_arg $ vocab_arg
      $ cache_mb_arg $ record_arg $ explain_flag $ slow_ms_arg $ metrics_flag
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* count *)

let count_cmd =
  let minsup = fraction_arg ~doc:"Minimum support fraction." [ "minsup" ] in
  let minconf_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "minconf" ] ~doc:"Also count rules at this confidence." ~docv:"C")
  in
  let run lattice_path minsup containing minconf cache_mb record explain slow_ms
      metrics trace =
    let recording = record <> None || explain in
    let obs, finish_obs = make_obs ~force:recording metrics trace in
    let engine = or_die (load_engine ~obs lattice_path) in
    handle_below_threshold (fun () ->
        let session =
          if cache_mb > 0 || recording then Some (make_session ~cache_mb engine)
          else None
        in
        let n =
          match session with
          | Some s when recording ->
            let recorder, finish_rec = make_recorder ~record ~explain ~slow_ms s in
            Fun.protect ~finally:finish_rec (fun () ->
                Olar_replay.Recorder.count_itemsets ~containing recorder ~minsup)
          | Some s -> Olar_serve.Session.count_itemsets s ~containing ~minsup
          | None -> Olar_core.Engine.count_itemsets engine ~containing ~minsup
        in
        Format.printf "itemsets: %d@." n;
        (match minconf with
        | None -> ()
        | Some c ->
          let r = Olar_core.Engine.redundancy ~containing engine ~minsup ~minconf:c in
          Format.printf "rules:    %d total, %d essential (redundancy ratio %.2f)@."
            r.Olar_core.Rulegen.total_rules r.Olar_core.Rulegen.essential_count
            r.Olar_core.Rulegen.redundancy_ratio);
        Option.iter report_cache session;
        finish_obs ())
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:"Predict output sizes without materialising them (query type 3).")
    Term.(
      const run $ lattice_arg $ minsup $ containing_arg $ minconf_arg
      $ cache_mb_arg $ record_arg $ explain_flag $ slow_ms_arg $ metrics_flag
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* support-for *)

let support_for_cmd =
  let k_arg =
    Arg.(required & opt (some int) None & info [ "k" ] ~doc:"Target count." ~docv:"K")
  in
  let minconf_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "minconf" ]
          ~doc:"Ask about single-consequent rules at this confidence instead of itemsets."
          ~docv:"C")
  in
  let run lattice_path k containing minconf cache_mb record explain slow_ms
      metrics trace =
    let recording = record <> None || explain in
    let obs, finish_obs = make_obs ~force:recording metrics trace in
    let engine = or_die (load_engine ~obs lattice_path) in
    let session =
      if cache_mb > 0 || recording then Some (make_session ~cache_mb engine)
      else None
    in
    let recorder =
      match session with
      | Some s when recording -> Some (make_recorder ~record ~explain ~slow_ms s)
      | _ -> None
    in
    let finish_rec () = Option.iter (fun (_, f) -> f ()) recorder in
    Fun.protect ~finally:finish_rec @@ fun () ->
    (match minconf with
    | None -> (
      let answer =
        match (recorder, session) with
        | Some (r, _), _ ->
          Olar_replay.Recorder.support_for_k_itemsets r ~containing ~k
        | None, Some s ->
          Olar_serve.Session.support_for_k_itemsets s ~containing ~k
        | None, None ->
          Olar_core.Engine.support_for_k_itemsets engine ~containing ~k
      in
      match answer with
      | Some level ->
        Format.printf "exactly %d itemsets containing %a exist at minsup = %.4f%%@."
          k Itemset.pp containing (100.0 *. level)
      | None ->
        Format.printf "fewer than %d itemsets containing %a are prestored@." k
          Itemset.pp containing)
    | Some c -> (
      let answer =
        match (recorder, session) with
        | Some (r, _), _ ->
          Olar_replay.Recorder.support_for_k_rules r ~involving:containing
            ~minconf:c ~k
        | None, Some s ->
          Olar_serve.Session.support_for_k_rules s ~involving:containing
            ~minconf:c ~k
        | None, None ->
          Olar_core.Engine.support_for_k_rules engine ~involving:containing
            ~minconf:c ~k
      in
      match answer with
      | Some level ->
        Format.printf
          "%d single-consequent rules at conf %.0f%% exist at minsup = %.4f%%@."
          k (100.0 *. c) (100.0 *. level)
      | None ->
        Format.printf "fewer than %d such rules can be generated@." k));
    Option.iter report_cache session;
    finish_obs ()
  in
  Cmd.v
    (Cmd.info "support-for"
       ~doc:"Reverse query: the support level yielding exactly K answers (Figure 3).")
    Term.(
      const run $ lattice_arg $ k_arg $ containing_arg $ minconf_arg
      $ cache_mb_arg $ record_arg $ explain_flag $ slow_ms_arg $ metrics_flag
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* direct *)

let direct_cmd =
  let minsup = fraction_arg ~doc:"Minimum support fraction." [ "minsup" ] in
  let minconf = fraction_arg ~doc:"Minimum confidence." [ "minconf" ] in
  let run db_path minsup minconf miner =
    let db = or_die (load_db db_path) in
    let minsup_count = Database.count_of_fraction db minsup in
    let frequent, mining_s =
      Olar_util.Timer.time (fun () -> run_any_miner miner db ~minsup:minsup_count)
    in
    let rules, rulegen_s =
      Olar_util.Timer.time (fun () ->
          let entries = Olar_mining.Frequent.to_list frequent in
          let support a =
            if Itemset.is_empty a then Database.size db
            else Option.value ~default:0 (Olar_mining.Frequent.count frequent a)
          in
          Olar_baseline.Naive_rules.all_rules ~support ~frequent:entries
            ~confidence:(Olar_core.Conf.of_float minconf))
    in
    Format.printf
      "direct (no preprocessing): %d itemsets, %d rules; mining %.2fs + rulegen %.4fs@."
      (Olar_mining.Frequent.total frequent)
      (List.length rules) mining_s rulegen_s
  in
  Cmd.v
    (Cmd.info "direct"
       ~doc:"Answer one query the classical way: re-mine the database from scratch.")
    Term.(const run $ db_arg $ minsup $ minconf $ any_miner_arg)

(* ------------------------------------------------------------------ *)
(* baskets *)

let baskets_cmd =
  let in_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "i"; "input" ]
          ~doc:"Named basket file: one basket per line, comma-separated item names."
          ~docv:"FILE")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output database file." ~docv:"FILE")
  in
  let vocab_out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "vocab-out" ] ~doc:"Where to write the derived vocabulary."
          ~docv:"FILE")
  in
  let run input out vocab_out =
    match Basket_io.load input with
    | exception Basket_io.Malformed msg ->
      Format.eprintf "olar: %s: %s@." input msg;
      exit 1
    | exception Sys_error msg ->
      Format.eprintf "olar: %s@." msg;
      exit 1
    | vocab, db ->
      Db_io.save db out;
      Item.Vocab.save vocab vocab_out;
      Format.printf "wrote %s (%d baskets, %d distinct items) and %s@." out
        (Database.size db) (Item.Vocab.size vocab) vocab_out
  in
  Cmd.v
    (Cmd.info "baskets"
       ~doc:
         "Convert a named basket file into a database + vocabulary usable by \
          every other command.")
    Term.(const run $ in_arg $ out_arg $ vocab_out_arg)

(* ------------------------------------------------------------------ *)
(* dbinfo *)

let dbinfo_cmd =
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Show the N most frequent items." ~docv:"N")
  in
  let run db_path vocab_path top =
    let db = or_die (load_db db_path) in
    let vocab = load_vocab vocab_path in
    Format.printf "transactions:     %d@." (Database.size db);
    Format.printf "item universe:    %d@." (Database.num_items db);
    Format.printf "avg basket size:  %.2f@." (Database.avg_transaction_size db);
    let freq = Database.item_frequencies db in
    let present = Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 freq in
    Format.printf "items present:    %d@." present;
    let density =
      Database.avg_transaction_size db /. float_of_int (max 1 (Database.num_items db))
    in
    Format.printf "density:          %.4f%%@." (100.0 *. density);
    let ranked =
      List.sort
        (fun (_, a) (_, b) -> Int.compare b a)
        (List.init (Array.length freq) (fun i -> (i, freq.(i))))
    in
    Format.printf "top items:@.";
    List.iteri
      (fun rank (i, c) ->
        if rank < top && c > 0 then begin
          let label =
            match vocab with
            | Some v when i < Item.Vocab.size v -> Item.Vocab.name v i
            | _ -> string_of_int i
          in
          Format.printf "  %-24s %6d  (%.2f%%)@." label c
            (100.0 *. float_of_int c /. float_of_int (max 1 (Database.size db)))
        end)
      ranked
  in
  Cmd.v
    (Cmd.info "dbinfo" ~doc:"Describe a transaction database.")
    Term.(const run $ db_arg $ vocab_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* extend (generalized rules: taxonomy) *)

let extend_cmd =
  let baskets_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "baskets" ] ~doc:"Named basket file (see $(b,olar baskets))."
          ~docv:"FILE")
  in
  let taxonomy_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "taxonomy" ]
          ~doc:"Taxonomy file: one \"child -> parent\" edge per line."
          ~docv:"FILE")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output extended database." ~docv:"FILE")
  in
  let vocab_out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "vocab-out" ]
          ~doc:"Where to write the vocabulary grown with category names."
          ~docv:"FILE")
  in
  let run baskets_path taxonomy_path out vocab_out =
    match Basket_io.load baskets_path with
    | exception Basket_io.Malformed msg ->
      Format.eprintf "olar: %s: %s@." baskets_path msg;
      exit 1
    | vocab, db -> (
      match Olar_taxonomy.Taxonomy_io.load ~vocab taxonomy_path with
      | exception Olar_taxonomy.Taxonomy_io.Malformed msg ->
        Format.eprintf "olar: %s: %s@." taxonomy_path msg;
        exit 1
      | exception Invalid_argument msg ->
        Format.eprintf "olar: %s: %s@." taxonomy_path msg;
        exit 1
      | vocab, taxonomy ->
        let extended = Olar_taxonomy.Generalize.extend_database taxonomy db in
        Db_io.save extended out;
        Item.Vocab.save vocab vocab_out;
        Format.printf
          "wrote %s: %d baskets extended over %d items (%d categories); vocab in %s@."
          out (Database.size extended)
          (Item.Vocab.size vocab)
          (List.length
             (List.filter
                (fun i -> Olar_taxonomy.Taxonomy.children taxonomy i <> [])
                (List.init (Olar_taxonomy.Taxonomy.num_items taxonomy) Fun.id)))
          vocab_out)
  in
  Cmd.v
    (Cmd.info "extend"
       ~doc:
         "Extend named baskets with taxonomy ancestors for generalized-rule \
          mining (reference [21]).")
    Term.(const run $ baskets_arg $ taxonomy_arg $ out_arg $ vocab_out_arg)

(* ------------------------------------------------------------------ *)
(* update *)

let update_cmd =
  let delta_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "delta" ] ~doc:"Batch of new transactions (database file)."
          ~docv:"FILE")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output lattice file." ~docv:"FILE")
  in
  let run lattice_path delta_path domains out metrics trace =
    warn_domains domains;
    let obs, finish_obs = make_obs metrics trace in
    let engine = or_die (load_engine ~obs lattice_path) in
    let delta = or_die (load_db delta_path) in
    let (engine', promoted), dt =
      Olar_util.Timer.time (fun () ->
          Olar_core.Engine.append ?domains engine delta)
    in
    Olar_core.Engine.save engine' out;
    Format.printf
      "wrote %s: %d transactions folded in %.3fs (database now %d)@." out
      (Olar_data.Database.size delta) dt
      (Olar_core.Engine.db_size engine');
    (match promoted with
    | [] -> Format.printf "no new itemsets crossed the threshold@."
    | promoted ->
      Format.printf
        "%d new itemset families crossed the threshold in the batch alone — \
         consider a full re-preprocess:@."
        (List.length promoted);
      List.iteri
        (fun i x -> if i < 10 then Format.printf "  %a@." Itemset.pp x)
        promoted);
    finish_obs ()
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Fold a batch of new transactions into an existing lattice in one \
          pass over the batch.")
    Term.(
      const run $ lattice_arg $ delta_arg $ domains_arg $ out_arg $ metrics_flag
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* condense *)

let condense_cmd =
  let minsup = fraction_arg ~doc:"Minimum support fraction." [ "minsup" ] in
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("maximal", `Maximal); ("closed", `Closed) ]) `Maximal
      & info [ "kind" ] ~doc:"$(b,maximal) or $(b,closed) frequent itemsets.")
  in
  let limit_arg =
    Arg.(value & opt int 50 & info [ "limit" ] ~doc:"Print at most this many." ~docv:"N")
  in
  let run db_path minsup kind miner limit =
    let db = or_die (load_db db_path) in
    let frequent =
      run_any_miner miner db ~minsup:(Database.count_of_fraction db minsup)
    in
    let condensed =
      match kind with
      | `Maximal -> Olar_mining.Condense.maximal frequent
      | `Closed -> Olar_mining.Condense.closed frequent
    in
    Format.printf "%d frequent itemsets condense to %d %s itemsets:@."
      (Olar_mining.Frequent.total frequent)
      (List.length condensed)
      (match kind with `Maximal -> "maximal" | `Closed -> "closed");
    List.iteri
      (fun i (x, c) ->
        if i < limit then Format.printf "  %a  count=%d@." Itemset.pp x c)
      condensed
  in
  Cmd.v
    (Cmd.info "condense"
       ~doc:"Mine and condense to maximal or closed frequent itemsets.")
    Term.(const run $ db_arg $ minsup $ kind_arg $ any_miner_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* replay *)

let replay_cmd =
  let log_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~doc:"Captured query log (jsonl, from $(b,--record))."
          ~docv:"LOG")
  in
  let serve_domains_arg =
    Arg.(
      value
      & opt (some domains_conv) None
      & info [ "domains" ]
          ~doc:
            "Replay through a serving pool of $(docv) domains (one shared \
             lattice, per-domain sessions; requests stream continuously, and \
             the replay drains the stream before each append so the log's \
             sequential epochs are reproduced exactly) instead \
             of a single serial session. With $(b,--trace), each domain's \
             spans are buffered in its own shard and merged domain-tagged \
             into the trace file."
          ~docv:"N")
  in
  let run lattice_path log_path cache_mb domains explain metrics trace =
    warn_domains domains;
    let obs, finish_obs = make_obs ~force:true metrics trace in
    let engine = or_die (load_engine ~obs lattice_path) in
    let records = or_die (Olar_replay.Replay.load log_path) in
    let report, dt, session =
      match domains with
      | Some d ->
        let pool =
          try
            Olar_serve.Pool.create ~domains:d
              ~budget_bytes:(cache_mb * 1024 * 1024) engine
          with Invalid_argument msg -> or_die (Error msg)
        in
        let on_response (r : Olar_replay.Record.t) resp ~ok =
          if not ok then
            Format.eprintf
              "olar: digest mismatch at seq %d (%s): recorded %s, replayed %s@."
              r.Olar_replay.Record.seq
              (Olar_replay.Record.kind_to_string r.Olar_replay.Record.kind)
              (Olar_replay.Fnv.to_hex r.Olar_replay.Record.digest)
              (match Olar_replay.Replay.digest_response resp with
              | Some d -> Olar_replay.Fnv.to_hex d
              | None -> "<error>")
        in
        let report, dt =
          Olar_util.Timer.time (fun () ->
              Fun.protect
                ~finally:(fun () -> Olar_serve.Pool.shutdown pool)
                (fun () ->
                  Olar_replay.Replay.run_pool ~on_response pool records))
        in
        Format.printf "pool: %d domains@." (Olar_serve.Pool.domains pool);
        (report, dt, None)
      | None ->
        let session = make_session ~cache_mb engine in
        let on_outcome (o : Olar_replay.Replay.outcome) =
          if explain then
            Option.iter
              (fun r -> Format.eprintf "%a@." Olar_replay.Record.pp r)
              o.replayed;
          if not o.ok then
            Format.eprintf
              "olar: digest mismatch at seq %d (%s): recorded %s, replayed %s@."
              o.record.Olar_replay.Record.seq
              (Olar_replay.Record.kind_to_string o.record.Olar_replay.Record.kind)
              (Olar_replay.Fnv.to_hex o.record.Olar_replay.Record.digest)
              (match o.replayed with
              | Some p -> Olar_replay.Fnv.to_hex p.Olar_replay.Record.digest
              | None -> "<raised>")
        in
        let report, dt =
          Olar_util.Timer.time (fun () ->
              handle_below_threshold (fun () ->
                  Olar_replay.Replay.run ~on_outcome session records))
        in
        (report, dt, Some session)
    in
    let open Olar_replay.Replay in
    Format.printf "replayed %d queries in %.4fs: %d ok, %d mismatches (%d errors)@."
      report.total dt
      (report.total - report.mismatches)
      report.mismatches report.errors;
    let ratio a b = if b > 0.0 then a /. b else Float.nan in
    Format.printf
      "latency: recorded %.4fs, replayed %.4fs (x%.2f of recorded)@."
      report.recorded_s report.replayed_s
      (ratio report.replayed_s report.recorded_s);
    Format.printf "work: vertices %d -> %d, heap pops %d -> %d@."
      report.recorded_vertices report.replayed_vertices
      report.recorded_heap_pops report.replayed_heap_pops;
    Option.iter report_cache session;
    finish_obs ();
    if report.mismatches > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a captured query log against a lattice, verifying every \
          result digest and reporting latency/work deltas versus the recorded \
          run. With $(b,--domains) the log is served by a domain pool, \
          draining at each append to reproduce the log's sequential epochs. \
          Exits nonzero on any digest mismatch.")
    Term.(
      const run $ lattice_arg $ log_arg $ cache_mb_arg $ serve_domains_arg
      $ explain_flag $ metrics_flag $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* metrics *)

let metrics_cmd =
  let minsup_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "minsup" ]
          ~doc:
            "Support level for the canned workload (default: the lattice's \
             primary threshold)."
          ~docv:"F")
  in
  let minconf_arg =
    Arg.(
      value & opt float 0.5
      & info [ "minconf" ] ~doc:"Confidence for the rule queries." ~docv:"C")
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum [ ("text", `Text); ("prometheus", `Prometheus); ("json", `Json) ])
          `Text
      & info [ "format" ]
          ~doc:"Registry output format: $(b,text), $(b,prometheus) or $(b,json)."
          ~docv:"FMT")
  in
  let cache_arg =
    Arg.(
      value & opt int 8
      & info [ "cache-mb" ]
          ~doc:
            "Session cache budget in MiB for the workload; the workload runs \
             twice so the second pass exercises the cache. 0 disables."
          ~docv:"MB")
  in
  let run lattice_path minsup minconf cache_mb format trace =
    let oc = Option.map open_out trace in
    let sink = Option.map Olar_obs.Sink.jsonl oc in
    let obs = Olar_obs.Obs.create ?trace:sink () in
    let engine = or_die (load_engine ~obs lattice_path) in
    let minsup =
      match minsup with
      | Some s -> s
      | None -> Olar_core.Engine.primary_threshold engine
    in
    (* Canned workload touching every query family — including the
       boundary walk and an incremental append — so the registry has one
       live histogram per entry point. Routed through a session cache and
       run twice before the append (first pass misses, second hits, so
       the olar_cache_* series carry data) and once after it (so the
       epoch-invalidation counters fire too). *)
    let session = make_session ~cache_mb engine in
    let lat = Olar_core.Engine.lattice engine in
    let boundary_target = ref Itemset.empty in
    let max_item = ref (-1) in
    for v = 0 to Olar_core.Lattice.num_vertices lat - 1 do
      let x = Olar_core.Lattice.itemset lat v in
      if Itemset.cardinal x > Itemset.cardinal !boundary_target then
        boundary_target := x;
      if not (Itemset.is_empty x) then
        max_item := max !max_item (Itemset.max_item x)
    done;
    let workload () =
      ignore (Olar_serve.Session.count_itemsets session ~minsup);
      ignore (Olar_serve.Session.itemsets session ~minsup);
      ignore (Olar_serve.Session.essential_rules session ~minsup ~minconf);
      ignore
        (Olar_serve.Session.support_for_k_itemsets session
           ~containing:Itemset.empty ~k:10);
      ignore
        (Olar_serve.Session.support_for_k_rules session
           ~involving:Itemset.empty ~minconf ~k:10);
      if not (Itemset.is_empty !boundary_target) then
        ignore
          (Olar_serve.Session.boundary session ~target:!boundary_target ~minconf)
    in
    handle_below_threshold (fun () ->
        workload ();
        workload ();
        if !max_item >= 0 then begin
          (* a tiny delta over the lattice's own frequent items: enough to
             bump the epoch and exercise the append + invalidation path *)
          let rows = [ Itemset.to_list !boundary_target; [ !max_item ] ] in
          let delta = Database.of_lists ~num_items:(!max_item + 1) rows in
          ignore (Olar_serve.Session.append session delta);
          workload ()
        end);
    (match obs with
    | Some ctx ->
      Olar_obs.Obs.update_runtime_gauges ctx;
      Olar_obs.Obs.set_build_info ctx ~version
    | None -> ());
    Olar_obs.Obs.flush_opt obs;
    Option.iter close_out oc;
    Option.iter (fun path -> Format.printf "wrote trace %s@." path) trace;
    let registry =
      match obs with
      | Some ctx -> Olar_obs.Obs.metrics ctx
      | None -> assert false
    in
    match format with
    | `Text ->
      print_string (Olar_obs.Exposition.to_text registry);
      if Olar_serve.Session.enabled session then begin
        let open Olar_serve.Session in
        let s = stats session in
        Format.printf "session cache (budget %d bytes):@." s.budget_bytes;
        Format.printf "  hits       %d (%d served by refinement)@." s.hits
          s.refines;
        Format.printf "  misses     %d@." s.misses;
        Format.printf "  evictions  %d@." s.evictions;
        Format.printf "  resident   %d bytes in %d entries@." s.resident_bytes
          s.entries
      end
    | `Prometheus -> print_string (Olar_obs.Exposition.to_prometheus registry)
    | `Json ->
      print_endline
        (Olar_obs.Jsonx.to_string (Olar_obs.Exposition.to_json registry))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a canned query workload against a lattice and print the \
          telemetry registry (text, Prometheus exposition, or JSON), \
          including session-cache counters.")
    Term.(
      const run $ lattice_arg $ minsup_arg $ minconf_arg $ cache_arg
      $ format_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let host_arg =
    Arg.(
      value
      & opt string Olar_net.Server.default_config.host
      & info [ "host" ] ~doc:"Bind address (an IP literal)." ~docv:"ADDR")
  in
  let port_arg =
    Arg.(
      value & opt int 0
      & info [ "port" ]
          ~doc:"TCP port to listen on; 0 picks an ephemeral port."
          ~docv:"PORT")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int Olar_net.Server.default_config.queue_depth
      & info [ "queue-depth" ]
          ~doc:
            "Admission-queue bound; queries arriving at capacity are shed \
             with 429."
          ~docv:"N")
  in
  let deadline_ms_arg =
    Arg.(
      value & opt float 0.0
      & info [ "deadline-ms" ]
          ~doc:
            "Per-request deadline in milliseconds from arrival; a query \
             still queued past it is dropped with 503. 0 disables."
          ~docv:"MS")
  in
  let trace_sample_arg =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ]
          ~doc:
            "With $(b,--trace), additionally emit a per-request trace (an \
             http.request span with six phase children) for every $(docv)th \
             query. 0 disables per-request traces (engine spans are still \
             emitted)."
          ~docv:"N")
  in
  let slo_p99_ms_arg =
    Arg.(
      value & opt float 0.0
      & info [ "slo-p99-ms" ]
          ~doc:
            "Latency SLO for $(b,GET /healthz): the rolling 60s \
             execute-phase p99 crossing $(docv) ms marks the server \
             degraded; crossing four times it answers 503 unhealthy. 0 \
             disables the latency check (shed/5xx-rate checks stay on)."
          ~docv:"MS")
  in
  let slow_ring_arg =
    Arg.(
      value & opt int Olar_net.Server.default_config.slow_ring
      & info [ "slow-ring" ]
          ~doc:
            "Capacity of the $(b,GET /statusz) slow-request ring; 0 \
             disables the ring (the stderr log and over-threshold count \
             remain)."
          ~docv:"N")
  in
  let run lattice_path host port domains cache_mb queue_depth deadline_ms
      record trace_sample slow_ms slo_p99_ms slow_ring metrics trace =
    warn_domains domains;
    if queue_depth <= 0 then
      or_die (Error "queue depth must be positive");
    if trace_sample < 0 then
      or_die (Error "--trace-sample must be non-negative");
    if slow_ring < 0 then
      or_die (Error "--slow-ring must be non-negative");
    if slo_p99_ms < 0.0 then
      or_die (Error "--slo-p99-ms must be non-negative");
    (* the server scrapes its registry over /metrics, so observability is
       always on; --metrics additionally prints the registry on exit *)
    let obs, finish_obs = make_obs ~force:true metrics trace in
    let engine = or_die (load_engine ~obs lattice_path) in
    let config =
      {
        Olar_net.Server.default_config with
        host;
        port;
        queue_depth;
        deadline_s = deadline_ms /. 1000.0;
        record;
        trace_sample;
        slow_s =
          (* absent --slow-ms disables the slow log; an explicit 0 logs
             every request (the Recorder >= convention) *)
          (match slow_ms with None -> infinity | Some ms -> ms /. 1000.0);
        slow_ring;
        slo_p99_s = slo_p99_ms /. 1000.0;
      }
    in
    let server =
      try
        Olar_net.Server.create ~config ?domains
          ~budget_bytes:(cache_mb * 1024 * 1024) engine
      with
      | Invalid_argument msg -> or_die (Error msg)
      | Unix.Unix_error (e, _, _) ->
        or_die
          (Error
             (Printf.sprintf "cannot bind %s:%d: %s" host port
                (Unix.error_message e)))
    in
    Format.printf "serving on %s (domains=%d, queue-depth=%d)@."
      (Olar_net.Server.url server)
      (Olar_serve.Pool.domains (Olar_net.Server.pool server))
      queue_depth;
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    while not (Atomic.get stop_requested) do
      Thread.delay 0.1
    done;
    Format.printf "shutting down: draining admitted queries@.";
    Olar_net.Server.stop server;
    Option.iter (fun path -> Format.printf "recorded %s@." path) record;
    finish_obs ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a lattice over HTTP: $(b,POST /query) takes a JSON query \
          key (the $(b,--record) wire format) and answers with the result \
          and its digest; $(b,GET /metrics) exposes Prometheus telemetry. \
          Queries dispatch continuously into per-domain submission shards \
          across $(b,--domains) \
          workers; overload is shed with 429 (queue full) and 503 \
          (deadline). With $(b,--record) served traffic is captured for \
          $(b,olar replay). Per-request latency splits into six traced \
          phases ($(b,--trace-sample), $(b,--slow-ms), $(b,GET /statusz)). \
          Runs until SIGINT/SIGTERM, then drains.")
    Term.(
      const run $ lattice_arg $ host_arg $ port_arg $ domains_arg
      $ cache_mb_arg $ queue_depth_arg $ deadline_ms_arg $ record_arg
      $ trace_sample_arg $ slow_ms_arg $ slo_p99_ms_arg $ slow_ring_arg
      $ metrics_flag $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* top *)

module Jx = Olar_obs.Jsonx

(* One dashboard frame from a parsed /statusz document. Missing fields
   (an older server, gc off) degrade to "-", never to a crash: top is
   an operator tool pointed at whatever happens to be running. *)
let render_top ~url v =
  let num p = Option.bind (Jx.path p v) Jx.number in
  let str p = Option.bind (Jx.path p v) Jx.to_str in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let fnum ?(scale = 1.0) ?(prec = 1) p =
    match num p with
    | Some x -> Printf.sprintf "%.*f" prec (x *. scale)
    | None -> "-"
  in
  let inum p =
    match num p with Some x -> Printf.sprintf "%.0f" x | None -> "-"
  in
  let health =
    match str [ "health"; "state" ] with
    | None -> "-"
    | Some s ->
      let reasons =
        match Jx.path [ "health"; "reasons" ] v with
        | Some (Jx.Arr (_ :: _ as rs)) ->
          " (" ^ String.concat "; " (List.filter_map Jx.to_str rs) ^ ")"
        | _ -> ""
      in
      String.uppercase_ascii s ^ reasons
  in
  line "olar top — %s   up %ss   domains %s   health %s" url
    (fnum ~prec:0 [ "uptime_s" ])
    (inum [ "domains" ]) health;
  line "window %ss (covered %ss): qps %s   shed %s   5xx %s   request p99 %sms"
    (fnum ~prec:0 [ "window"; "span_s" ])
    (fnum [ "window"; "covered_s" ])
    (fnum [ "window"; "qps" ])
    (inum [ "window"; "shed" ])
    (inum [ "window"; "http_5xx" ])
    (fnum ~scale:1e-3 ~prec:2 [ "window"; "request"; "p99_us" ]);
  line "phase p99 (ms): %s"
    (String.concat "  "
       (List.map
          (fun ph ->
            Printf.sprintf "%s %s" ph
              (fnum ~scale:1e-3 ~prec:2 [ "window"; "phases"; ph; "p99_us" ]))
          [ "parse"; "queue"; "dispatch"; "execute"; "deliver"; "write" ]));
  (match Jx.path [ "gc" ] v with
  | Some (Jx.Obj _) ->
    line "gc: pauses %s   windowed pause p99 %sms   calibrated %s"
      (inum [ "gc"; "pauses" ])
      (fnum ~scale:1e-3 ~prec:2 [ "gc"; "window"; "p99_us" ])
      (match Jx.path [ "gc"; "calibrated" ] v with
      | Some (Jx.Bool b) -> string_of_bool b
      | _ -> "-")
  | _ -> line "gc: (eventring consumer off)");
  line "queue depth %s (peak %s, limit %s)"
    (inum [ "queue"; "depth" ])
    (inum [ "queue"; "peak" ])
    (inum [ "queue"; "limit" ]);
  (match Jx.path [ "pool" ] v with
  | Some (Jx.Arr doms) ->
    line "domains: %s"
      (String.concat "  "
         (List.filter_map
            (fun d ->
              match
                ( Option.bind (Jx.member "domain" d) Jx.number,
                  Option.bind (Jx.member "utilization" d) Jx.number )
              with
              | Some k, Some u ->
                Some (Printf.sprintf "%.0f busy %.1f%%" k (u *. 100.0))
              | _ -> None)
            doms))
  | _ -> ());
  (match Jx.path [ "shards" ] v with
  | Some (Jx.Arr depths) ->
    line "shards: [%s]"
      (String.concat " "
         (List.filter_map
            (fun d -> Option.map (Printf.sprintf "%.0f") (Jx.number d))
            depths))
  | _ -> ());
  line "slow: seen %s (threshold %sms, ring %s)"
    (inum [ "slow"; "seen" ])
    (fnum [ "slow"; "threshold_ms" ])
    (inum [ "slow"; "capacity" ]);
  Buffer.contents buf

let top_cmd =
  let url_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info []
          ~doc:
            "Base URL of a running $(b,olar serve) (e.g. \
             http://127.0.0.1:8080)."
          ~docv:"URL")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~doc:"Refresh period in seconds." ~docv:"S")
  in
  let once_flag =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Print one snapshot and exit (implied when stdout is not a \
             tty).")
  in
  let run url interval once =
    if not (interval > 0.0) then or_die (Error "--interval must be positive");
    let live = (not once) && Unix.isatty Unix.stdout in
    let fetch () =
      match Olar_net.Client.get ~url "/statusz" with
      | Error e -> Error e
      | Ok (200, body) -> (
        match Jx.of_string body with
        | Ok v -> Ok v
        | Error e -> Error ("malformed /statusz: " ^ e))
      | Ok (status, _) -> Error (Printf.sprintf "/statusz answered %d" status)
    in
    let show () =
      match fetch () with
      | Ok v ->
        if live then print_string "\027[H\027[2J";
        print_string (render_top ~url v);
        flush stdout;
        true
      | Error e ->
        (* in live mode a restarting server should not kill the view *)
        if live then begin
          print_string "\027[H\027[2J";
          Printf.printf "olar top — %s: %s (retrying)\n%!" url e;
          true
        end
        else begin
          Printf.eprintf "olar top: %s\n%!" e;
          false
        end
    in
    if live then
      while show () || true do
        Thread.delay interval
      done
    else if not (show ()) then exit 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a running server's $(b,GET \
          /statusz): windowed qps, rolling per-phase p99s, per-domain \
          utilization, shard depths, GC pause quantiles and the health \
          verdict, refreshed every $(b,--interval) seconds. Outside a tty \
          (or with $(b,--once)) prints a single plain-text snapshot.")
    Term.(const run $ url_arg $ interval_arg $ once_flag)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "online generation of association rules (Aggarwal & Yu, ICDE 1998)" in
  let info = Cmd.info "olar" ~version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; preprocess_cmd; info_cmd; stats_cmd; items_cmd; rules_cmd;
            count_cmd;
            support_for_cmd; direct_cmd; update_cmd; condense_cmd;
            baskets_cmd; extend_cmd; dbinfo_cmd; replay_cmd; metrics_cmd;
            serve_cmd; top_cmd;
          ]))
