(* The network layer: HTTP/1.1 parser battery (units + properties) and
   loopback tests driving a real [Olar_net.Server] over TCP sockets —
   the pool-vs-serial digest oracle extended across the wire, plus the
   overload/shedding and deadline behaviours. *)

module Http = Olar_net.Http
module Server = Olar_net.Server
module Session = Olar_serve.Session
module Engine = Olar_core.Engine
module Record = Olar_replay.Record
module Replay = Olar_replay.Replay
module Fnv = Olar_replay.Fnv
module Jsonx = Olar_obs.Jsonx

let check = Alcotest.check
let case name fn = Alcotest.test_case name `Quick fn

(* ------------------------------------------------------------------ *)
(* Parser units                                                       *)
(* ------------------------------------------------------------------ *)

let parse_ok ?max_head ?max_body ?(off = 0) s =
  match Http.parse_request ?max_head ?max_body s ~off with
  | Http.Complete (req, used) -> (req, used)
  | Http.Incomplete -> Alcotest.fail "unexpectedly incomplete"
  | Http.Failed { status; reason } ->
    Alcotest.failf "unexpectedly failed: %d %s" status reason

let parse_status ?max_head ?max_body s =
  match Http.parse_request ?max_head ?max_body s ~off:0 with
  | Http.Failed { status; _ } -> status
  | Http.Complete _ -> Alcotest.fail "expected failure, parsed fine"
  | Http.Incomplete -> Alcotest.fail "expected failure, got incomplete"

let test_simple_request () =
  let s = "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n" in
  let req, used = parse_ok s in
  check Alcotest.string "method" "GET" req.Http.meth;
  check Alcotest.string "target" "/healthz" req.Http.target;
  check Alcotest.string "body" "" req.Http.body;
  check Alcotest.int "used = whole message" (String.length s) used;
  check
    Alcotest.(option string)
    "host header (names lowercased)" (Some "localhost")
    (Http.header req "host")

let test_header_folding () =
  let s = "GET / HTTP/1.1\r\nX-Long: alpha\r\n  beta\r\n\tgamma\r\nA: b\r\n\r\n" in
  let req, _ = parse_ok s in
  check
    Alcotest.(option string)
    "continuation lines joined with a single space" (Some "alpha beta gamma")
    (Http.header req "x-long");
  check Alcotest.(option string) "next header intact" (Some "b")
    (Http.header req "a")

let test_missing_content_length_means_empty_body () =
  (* no Content-Length: the message ends at the blank line even when
     more bytes follow (they belong to the next pipelined message) *)
  let head = "POST /query HTTP/1.1\r\n\r\n" in
  let req, used = parse_ok (head ^ "LEFTOVER") in
  check Alcotest.string "empty body" "" req.Http.body;
  check Alcotest.int "used stops at the blank line" (String.length head) used

let test_content_length_zero () =
  let req, _ = parse_ok "POST /q HTTP/1.1\r\nContent-Length: 0\r\n\r\n" in
  check Alcotest.string "empty body" "" req.Http.body

let test_content_length_exact () =
  let s = "POST /q HTTP/1.1\r\ncontent-length: 5\r\n\r\nhelloGET /nxt" in
  let req, used = parse_ok s in
  check Alcotest.string "body" "hello" req.Http.body;
  check Alcotest.int "used = head + body"
    (String.length s - String.length "GET /nxt")
    used

let test_content_length_edge_cases () =
  check Alcotest.int "overflowing length is 413" 413
    (parse_status
       "POST /q HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n");
  check Alcotest.int "non-digit length is 400" 400
    (parse_status "POST /q HTTP/1.1\r\nContent-Length: five\r\n\r\n");
  check Alcotest.int "negative length is 400" 400
    (parse_status "POST /q HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
  check Alcotest.int "empty length is 400" 400
    (parse_status "POST /q HTTP/1.1\r\nContent-Length:\r\n\r\n");
  check Alcotest.int "conflicting duplicates are 400" 400
    (parse_status
       "POST /q HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd");
  (* agreeing duplicates are legal per RFC 7230 3.3.2 *)
  let req, _ =
    parse_ok "POST /q HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc"
  in
  check Alcotest.string "agreeing duplicates parse" "abc" req.Http.body;
  check Alcotest.int "body over max_body is 413" 413
    (parse_status ~max_body:4 "POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")

let test_reject_unsupported () =
  check Alcotest.int "transfer-encoding is 501" 501
    (parse_status "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  check Alcotest.int "unknown version is 505" 505
    (parse_status "GET / HTTP/2.0\r\n\r\n");
  check Alcotest.int "2-field request line is 400" 400
    (parse_status "GET /\r\n\r\n");
  check Alcotest.int "4-field request line is 400" 400
    (parse_status "GET / HTTP/1.1 extra\r\n\r\n");
  check Alcotest.int "non-token method is 400" 400
    (parse_status "GE T / HTTP/1.1\r\n\r\n");
  check Alcotest.int "stray CR inside a header is 400" 400
    (parse_status "GET / HTTP/1.1\r\nA: b\rc\r\n\r\n");
  check Alcotest.int "oversized head is 431" 431
    (parse_status ~max_head:16
       "GET / HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n")

let test_bare_lf_tolerated () =
  let req, _ = parse_ok "GET /x HTTP/1.1\nHost: h\n\n" in
  check Alcotest.string "target" "/x" req.Http.target;
  check Alcotest.(option string) "header" (Some "h") (Http.header req "host")

let test_pipelined_requests () =
  let a = "GET /one HTTP/1.1\r\n\r\n" in
  let b = "POST /two HTTP/1.1\r\nContent-Length: 2\r\n\r\nok" in
  let s = a ^ b in
  let r1, u1 = parse_ok s in
  check Alcotest.string "first target" "/one" r1.Http.target;
  let r2, u2 = parse_ok ~off:u1 s in
  check Alcotest.string "second target" "/two" r2.Http.target;
  check Alcotest.string "second body" "ok" r2.Http.body;
  check Alcotest.int "both consumed" (String.length s) (u1 + u2)

(* Feed the message one byte at a time: every proper prefix must be
   Incomplete (never Failed, never a premature Complete). *)
let trickle_is_incomplete s =
  let ok = ref true in
  for i = 0 to String.length s - 1 do
    match Http.parse_request (String.sub s 0 i) ~off:0 with
    | Http.Incomplete -> ()
    | Http.Complete _ | Http.Failed _ -> ok := false
  done;
  !ok

let test_trickled_bytes () =
  let s =
    "POST /query HTTP/1.1\r\nX-Fold: a\r\n b\r\nContent-Length: 4\r\n\r\nbody"
  in
  check Alcotest.bool "all proper prefixes incomplete" true
    (trickle_is_incomplete s);
  let req, used = parse_ok s in
  check Alcotest.int "complete exactly at the end" (String.length s) used;
  check Alcotest.string "body survives the trickle" "body" req.Http.body

let test_response_round_trip () =
  let s =
    Http.render_response
      ~headers:[ ("content-type", "application/json") ]
      ~status:429 "busy"
  in
  match Http.parse_response s ~off:0 with
  | Http.Complete (resp, used) ->
    check Alcotest.int "status" 429 resp.Http.status;
    check Alcotest.string "reason" "Too Many Requests" resp.Http.reason;
    check Alcotest.string "body" "busy" resp.Http.resp_body;
    check
      Alcotest.(option string)
      "content-type kept" (Some "application/json")
      (Http.response_header resp "content-type");
    check Alcotest.int "fully consumed" (String.length s) used
  | _ -> Alcotest.fail "rendered response must parse"

(* ------------------------------------------------------------------ *)
(* Parser properties                                                  *)
(* ------------------------------------------------------------------ *)

(* The never-raise guarantee: any byte soup gives a verdict. *)
let never_raises buf =
  match Http.parse_request buf ~off:0 with
  | Http.Complete _ | Http.Incomplete | Http.Failed _ -> true
  | exception _ -> false

let fuzz_prop =
  QCheck2.Test.make ~name:"parse_request never raises on random bytes"
    ~count:2000 ~print:String.escaped
    QCheck2.Gen.(string_size ~gen:char (int_range 0 200))
    never_raises

let fuzz_headers_prop =
  QCheck2.Test.make
    ~name:"parse_request never raises on a valid line + random bytes"
    ~count:2000 ~print:String.escaped
    QCheck2.Gen.(
      map
        (fun s -> "POST /query HTTP/1.1\r\n" ^ s)
        (string_size ~gen:char (int_range 0 200)))
    never_raises

let request_gen =
  let open QCheck2.Gen in
  let* meth = oneofl [ "GET"; "POST"; "PUT"; "DELETE" ] in
  let* path = string_size ~gen:(char_range 'a' 'z') (int_range 0 12) in
  let* headers =
    list_size (int_range 0 5)
      (pair
         (map (fun s -> "x-" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))
         (string_size ~gen:(char_range 'a' 'z') (int_range 0 12)))
  in
  let* body = string_size ~gen:char (int_range 0 64) in
  return (meth, "/" ^ path, headers, body)

let request_print (meth, target, headers, body) =
  Printf.sprintf "%s %s [%s] %S" meth target
    (String.concat "; " (List.map (fun (k, v) -> k ^ ": " ^ v) headers))
    body

let round_trips (meth, target, headers, body) =
  let s = Http.render_request ~headers ~meth ~target body in
  match Http.parse_request s ~off:0 with
  | Http.Complete (req, used) ->
    used = String.length s
    && req.Http.meth = meth && req.Http.target = target
    && req.Http.body = body
    && List.filter (fun (k, _) -> k <> "content-length") req.Http.headers
       = headers
  | _ -> false

let round_trip_prop =
  QCheck2.Test.make ~name:"render_request |> parse_request is the identity"
    ~count:500 ~print:request_print request_gen round_trips

let trickle_prop =
  QCheck2.Test.make
    ~name:"rendered requests trickle: prefixes incomplete, whole completes"
    ~count:100 ~print:request_print request_gen
    (fun (meth, target, headers, body) ->
      let s = Http.render_request ~headers ~meth ~target body in
      trickle_is_incomplete s
      &&
      match Http.parse_request s ~off:0 with
      | Http.Complete (_, used) -> used = String.length s
      | _ -> false)

let pipeline_prop =
  QCheck2.Test.make
    ~name:"three rendered requests pipeline on one buffer" ~count:200
    ~print:(fun l -> String.concat " | " (List.map request_print l))
    QCheck2.Gen.(list_repeat 3 request_gen)
    (fun reqs ->
      let s =
        String.concat ""
          (List.map
             (fun (m, t, h, b) -> Http.render_request ~headers:h ~meth:m ~target:t b)
             reqs)
      in
      let rec go off = function
        | [] -> off = String.length s
        | (m, t, _, b) :: rest -> (
          match Http.parse_request s ~off with
          | Http.Complete (req, used) ->
            req.Http.meth = m && req.Http.target = t && req.Http.body = b
            && go (off + used) rest
          | _ -> false)
      in
      go 0 reqs)

(* ------------------------------------------------------------------ *)
(* Loopback client                                                    *)
(* ------------------------------------------------------------------ *)

type conn = { fd : Unix.file_descr; buf : Buffer.t; mutable off : int }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; buf = Buffer.create 4096; off = 0 }

let disconnect conn = try Unix.close conn.fd with _ -> ()

let send_all conn s =
  let b = Bytes.unsafe_of_string s in
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write conn.fd b off (len - off))
  in
  go 0

(* Read (possibly across several reads) until one full response parses. *)
let recv_response conn =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Http.parse_response (Buffer.contents conn.buf) ~off:conn.off with
    | Http.Complete (resp, used) ->
      conn.off <- conn.off + used;
      resp
    | Http.Failed { status; reason } ->
      Alcotest.failf "malformed response from server: %d %s" status reason
    | Http.Incomplete -> (
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Alcotest.fail "server closed the connection mid-response"
      | n ->
        Buffer.add_subbytes conn.buf chunk 0 n;
        go ())
  in
  go ()

let request conn ~meth ~target body =
  send_all conn (Http.render_request ~meth ~target body);
  recv_response conn

let post_query conn body = request conn ~meth:"POST" ~target:"/query" body

let json_field resp name =
  match Jsonx.of_string resp.Http.resp_body with
  | Error e -> Alcotest.failf "unparsable JSON body %S: %s" resp.Http.resp_body e
  | Ok json -> Jsonx.member name json

let json_str resp name =
  match Option.bind (json_field resp name) Jsonx.to_str with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S" name

let json_int resp name =
  match Option.bind (json_field resp name) Jsonx.number with
  | Some f -> int_of_float f
  | None -> Alcotest.failf "response lacks numeric field %S" name

(* The value of a counter/gauge line in a Prometheus scrape. *)
let metric_value body name =
  let lines = String.split_on_char '\n' body in
  let prefix = name ^ " " in
  match
    List.find_opt
      (fun l ->
        String.length l > String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  with
  | None -> Alcotest.failf "metric %s not in scrape" name
  | Some l ->
    float_of_string
      (String.sub l (String.length prefix) (String.length l - String.length prefix))

let table2_engine () = Engine.of_lattice (Helpers.table2_lattice ())

let default_cfg = Server.default_config

(* ------------------------------------------------------------------ *)
(* Loopback: wire differential vs a serial session                    *)
(* ------------------------------------------------------------------ *)

(* The metrics-style canned workload as wire bodies: every query
   family, an epoch-bumping append, then the queries again. Table 2:
   4 items, db_size 1000, threshold count 3 (minsup 0.003). *)
let canned_workload =
  [
    {|{"kind":"count","minsup":0.003}|};
    {|{"kind":"find","minsup":0.003}|};
    {|{"kind":"find","minsup":0.01}|};
    {|{"kind":"find","containing":[0],"minsup":0.003}|};
    {|{"kind":"essential_rules","minsup":0.003,"minconf":0.3}|};
    {|{"kind":"all_rules","minsup":0.003,"minconf":0.3}|};
    {|{"kind":"single_consequent_rules","minsup":0.003,"minconf":0.3}|};
    {|{"kind":"support_for_k_itemsets","k":3}|};
    {|{"kind":"support_for_k_rules","minconf":0.3,"k":4}|};
    {|{"kind":"boundary","containing":[0,1,2],"minconf":0.3}|};
    {|{"kind":"append","delta":[[0,1,2],[1,2],[1,3],[2]],"num_items":4}|};
    {|{"kind":"count","minsup":0.003}|};
    {|{"kind":"find","minsup":0.003}|};
    {|{"kind":"essential_rules","minsup":0.003,"minconf":0.3}|};
    {|{"kind":"boundary","containing":[0,1,2],"minconf":0.3}|};
  ]

(* Drive the canned workload through a real socket, then replay the
   captured (key, digest) pairs through a serial Session on an
   identical engine: zero digest mismatches means wire answers are
   bitwise the serial answers — the pool-vs-serial oracle of
   test_serve.ml extended across HTTP. *)
let test_wire_differential () =
  let served =
    Server.with_server
      ~config:{ default_cfg with Server.port = 0 }
      ~domains:3
      ~budget_bytes:(1 lsl 20)
      (table2_engine ())
      (fun srv ->
        let conn = connect (Server.port srv) in
        let out =
          List.map
            (fun key ->
              let resp = post_query conn key in
              check Alcotest.int ("status of " ^ key) 200 resp.Http.status;
              check Alcotest.string "reports ok" "ok" (json_str resp "status");
              (key, json_str resp "digest", json_int resp "size"))
            canned_workload
        in
        disconnect conn;
        out)
  in
  let records =
    List.mapi
      (fun i (key, digest_hex, size) ->
        let base =
          match Record.key_of_json_line key with
          | Ok r -> r
          | Error e -> Alcotest.failf "bad canned key %s: %s" key e
        in
        let digest =
          match Fnv.of_hex digest_hex with
          | Some d -> d
          | None -> Alcotest.failf "bad digest hex %S" digest_hex
        in
        { base with Record.seq = i; digest; result_size = size })
      served
  in
  let serial = Session.create ~budget_bytes:0 (table2_engine ()) in
  let report =
    Replay.run
      ~on_outcome:(fun o ->
        if not o.Replay.ok then
          Alcotest.failf "wire digest diverges from serial at seq %d (%s)"
            o.Replay.record.Record.seq
            (Record.kind_to_string o.Replay.record.Record.kind))
      serial records
  in
  check Alcotest.int "replayed everything" (List.length canned_workload)
    report.Replay.total;
  check Alcotest.int "zero mismatches" 0 report.Replay.mismatches;
  check Alcotest.int "zero errors" 0 report.Replay.errors

(* A failing query's 422 body carries exactly the serial error text, so
   even errors stay comparable across the wire. *)
let test_wire_error_matches_serial () =
  Server.with_server
    ~config:{ default_cfg with Server.port = 0 }
    (table2_engine ())
    (fun srv ->
      let conn = connect (Server.port srv) in
      let resp = post_query conn {|{"kind":"count","minsup":0.0001}|} in
      check Alcotest.int "below-threshold is 422" 422 resp.Http.status;
      let serial = Session.create ~budget_bytes:0 (table2_engine ()) in
      let expected =
        try
          ignore (Session.count_itemsets serial ~minsup:0.0001);
          Alcotest.fail "serial session unexpectedly succeeded"
        with e -> Printexc.to_string e
      in
      check Alcotest.string "error text equals the serial exception"
        expected (json_str resp "error");
      disconnect conn)

let test_wire_pipelining () =
  Server.with_server
    ~config:{ default_cfg with Server.port = 0 }
    (table2_engine ())
    (fun srv ->
      let conn = connect (Server.port srv) in
      let body = {|{"kind":"count","minsup":0.003}|} in
      let one = Http.render_request ~meth:"POST" ~target:"/query" body in
      (* both requests in a single write: the server must answer both,
         in order, on the same connection *)
      send_all conn (one ^ one);
      let r1 = recv_response conn and r2 = recv_response conn in
      check Alcotest.int "first 200" 200 r1.Http.status;
      check Alcotest.int "second 200" 200 r2.Http.status;
      check Alcotest.string "identical answers" (json_str r1 "digest")
        (json_str r2 "digest");
      check Alcotest.int "table 2 has 9 itemsets" 9 (json_int r1 "count");
      disconnect conn)

let test_wire_errors_and_endpoints () =
  Server.with_server
    ~config:{ default_cfg with Server.port = 0 }
    (table2_engine ())
    (fun srv ->
      let conn = connect (Server.port srv) in
      let h = request conn ~meth:"GET" ~target:"/healthz" "" in
      check Alcotest.int "healthz" 200 h.Http.status;
      check Alcotest.string "healthz verdict" "ok" (json_str h "state");
      (match json_field h "reasons" with
      | Some (Jsonx.Arr []) -> ()
      | _ -> Alcotest.fail "a healthy verdict must carry no reasons");
      let nf = request conn ~meth:"GET" ~target:"/nope" "" in
      check Alcotest.int "unknown endpoint is 404" 404 nf.Http.status;
      let mna = request conn ~meth:"PUT" ~target:"/query" "{}" in
      check Alcotest.int "unknown method is 405" 405 mna.Http.status;
      let bad = post_query conn "this is not json" in
      check Alcotest.int "unparsable key is 400" 400 bad.Http.status;
      let incomplete = post_query conn {|{"kind":"find"}|} in
      check Alcotest.int "key without minsup is 400" 400 incomplete.Http.status;
      let m = request conn ~meth:"GET" ~target:"/metrics" "" in
      check Alcotest.int "metrics scrape" 200 m.Http.status;
      check Alcotest.bool "scrape carries the request counter" true
        (metric_value m.Http.resp_body "olar_http_requests_total" > 0.0);
      disconnect conn;
      (* a malformed request closes the connection after the 400 *)
      let conn = connect (Server.port srv) in
      send_all conn "BLAH\r\n\r\n";
      let resp = recv_response conn in
      check Alcotest.int "malformed HTTP is 400" 400 resp.Http.status;
      let chunk = Bytes.create 64 in
      let eof =
        match Unix.read conn.fd chunk 0 64 with
        | 0 -> true
        | _ -> false
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
      in
      check Alcotest.bool "connection closed after 400" true eof;
      disconnect conn)

(* ------------------------------------------------------------------ *)
(* Loopback: overload and deadlines                                   *)
(* ------------------------------------------------------------------ *)

(* Flood a queue_depth=1 server from several closed-loop clients:
   every response must be a correct 200 or a 429 shed (nothing hangs,
   nothing is wrong), the shed counter in /metrics must agree with
   what the clients saw, and the peak queue depth must never exceed
   the bound — that is the bounded-memory claim, observable. *)
let test_overload_sheds_with_429 () =
  let clients = 6 and per_client = 40 in
  Server.with_server
    ~config:{ default_cfg with Server.port = 0; queue_depth = 1 }
    ~domains:2
    (table2_engine ())
    (fun srv ->
      let port = Server.port srv in
      let probe = connect port in
      let expected_digest =
        let r = post_query probe {|{"kind":"count","minsup":0.003}|} in
        check Alcotest.int "probe succeeds" 200 r.Http.status;
        json_str r "digest"
      in
      disconnect probe;
      let ok = Atomic.make 0 and shed = Atomic.make 0 in
      let failures = Atomic.make 0 in
      let worker () =
        let conn = connect port in
        for _ = 1 to per_client do
          let r = post_query conn {|{"kind":"count","minsup":0.003}|} in
          match r.Http.status with
          | 200 ->
            if json_str r "digest" = expected_digest then Atomic.incr ok
            else Atomic.incr failures
          | 429 -> Atomic.incr shed
          | _ -> Atomic.incr failures
        done;
        disconnect conn
      in
      let threads = List.init clients (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      check Alcotest.int "no wrong or unexpected responses" 0
        (Atomic.get failures);
      check Alcotest.int "every request got an answer"
        (clients * per_client)
        (Atomic.get ok + Atomic.get shed);
      check Alcotest.bool "the flood produced 429 sheds" true
        (Atomic.get shed > 0);
      check Alcotest.bool "some requests were served" true (Atomic.get ok > 0);
      let conn = connect port in
      let m = request conn ~meth:"GET" ~target:"/metrics" "" in
      disconnect conn;
      let scraped_shed =
        metric_value m.Http.resp_body "olar_http_shed_queue_total"
      in
      check (Alcotest.float 0.0) "shed counter agrees with the clients"
        (float_of_int (Atomic.get shed))
        scraped_shed;
      check Alcotest.bool "queue never grew past its bound" true
        (metric_value m.Http.resp_body "olar_http_queue_depth_peak" <= 1.0))

(* ------------------------------------------------------------------ *)
(* HEAD, phase attribution, /statusz, trace sampling                  *)
(* ------------------------------------------------------------------ *)

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* A HEAD answer must advertise the GET body's Content-Length while
   sending no body bytes. The proof is a pipelined GET right behind it:
   its status line must parse immediately after HEAD's blank line — any
   stray body byte would derail the parse. *)
let test_head_requests () =
  Server.with_server
    ~config:{ default_cfg with Server.port = 0 }
    (table2_engine ())
    (fun srv ->
      let conn = connect (Server.port srv) in
      List.iter
        (fun target ->
          send_all conn
            (Http.render_request ~meth:"HEAD" ~target ""
            ^ Http.render_request ~meth:"GET" ~target:"/healthz" "");
          let chunk = Bytes.create 4096 in
          let b = Buffer.create 1024 in
          let rec fill () =
            let s = Buffer.contents b in
            (* the healthz GET body is one flat JSON object + newline *)
            if count_substring s "\r\n\r\n" >= 2 && String.length s >= 2
               && String.sub s (String.length s - 2) 2 = "}\n"
            then s
            else
              match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
              | 0 -> Alcotest.failf "server closed during HEAD %s" target
              | n ->
                Buffer.add_subbytes b chunk 0 n;
                fill ()
          in
          let s = fill () in
          let head_end =
            match find_substring s "\r\n\r\n" with
            | Some i -> i + 4
            | None -> Alcotest.fail "no header terminator"
          in
          let head = String.sub s 0 head_end in
          check Alcotest.bool (target ^ " HEAD answers 200") true
            (String.length head >= 12 && String.sub head 0 12 = "HTTP/1.1 200");
          let cl =
            match find_substring head "Content-Length: " with
            | None -> Alcotest.fail "HEAD answer lacks Content-Length"
            | Some i ->
              let stop = String.index_from head i '\r' in
              int_of_string
                (String.sub head (i + 16) (stop - i - 16))
          in
          check Alcotest.bool (target ^ " Content-Length reflects the GET body")
            true (cl > 0);
          match Http.parse_response s ~off:head_end with
          | Http.Complete (g, used) ->
            check Alcotest.int (target ^ ": GET parses right after HEAD") 200
              g.Http.status;
            (match Jsonx.of_string g.Http.resp_body with
            | Ok j ->
              check
                (Alcotest.option Alcotest.string)
                "GET body intact" (Some "ok")
                (Option.bind (Jsonx.member "state" j) Jsonx.to_str)
            | Error e -> Alcotest.failf "GET body unparsable: %s" e);
            check Alcotest.int "stream fully consumed" (String.length s)
              (head_end + used)
          | _ -> Alcotest.failf "GET did not parse after HEAD %s" target)
        [ "/healthz"; "/metrics"; "/statusz" ];
      disconnect conn)

let json_float resp name =
  match Option.bind (json_field resp name) Jsonx.number with
  | Some f -> f
  | None -> Alcotest.failf "response lacks numeric field %S" name

(* Phase attribution over the wire: every served query answers with a
   fresh id and a total_s; the six phase histograms (read back through
   /statusz) must account for the same requests, and their summed time
   must cover the responses' total_s with only the write phases on top. *)
let test_phase_attribution_and_statusz () =
  Server.with_server
    ~config:{ default_cfg with Server.port = 0; slow_s = 0.0 }
    ~domains:2
    (table2_engine ())
    (fun srv ->
      let conn = connect (Server.port srv) in
      let n = 6 in
      let ids = ref [] and totals = ref 0.0 in
      for _ = 1 to n do
        let r = post_query conn {|{"kind":"count","minsup":0.003}|} in
        check Alcotest.int "query ok" 200 r.Http.status;
        ids := json_int r "id" :: !ids;
        let total = json_float r "total_s" in
        check Alcotest.bool "total_s non-negative" true (total >= 0.0);
        check Alcotest.bool "total_s covers lat_s" true
          (total +. 1e-9 >= json_float r "lat_s");
        totals := !totals +. total
      done;
      check Alcotest.int "request ids are distinct" n
        (List.length (List.sort_uniq compare !ids));
      check Alcotest.bool "ids increase in request order" true
        (List.rev !ids = List.sort compare !ids);
      let sz = request conn ~meth:"GET" ~target:"/statusz" "" in
      check Alcotest.int "statusz" 200 sz.Http.status;
      let json =
        match Jsonx.of_string sz.Http.resp_body with
        | Ok j -> j
        | Error e -> Alcotest.failf "statusz not JSON: %s" e
      in
      let num path =
        match Option.bind (Jsonx.path path json) Jsonx.number with
        | Some f -> f
        | None ->
          Alcotest.failf "statusz lacks %s" (String.concat "/" path)
      in
      check Alcotest.bool "uptime positive" true (num [ "uptime_s" ] > 0.0);
      check (Alcotest.float 1e-9) "pool width" 2.0 (num [ "domains" ]);
      check (Alcotest.float 1e-9) "queries counted" (float_of_int n)
        (num [ "counters"; "queries" ]);
      (* all six phases account for exactly the n served queries *)
      let phase_sum = ref 0.0 in
      List.iter
        (fun phase ->
          check (Alcotest.float 1e-9)
            (phase ^ " phase counted every query")
            (float_of_int n)
            (num [ "phases"; phase; "count" ]);
          let s = num [ "phases"; phase; "sum_s" ] in
          check Alcotest.bool (phase ^ " sum non-negative") true (s >= 0.0);
          phase_sum := !phase_sum +. s)
        [ "parse"; "queue"; "dispatch"; "execute"; "deliver"; "write" ];
      (* the six phases cover the reported totals, plus only the write
         phases (absent from total_s) and float noise on top *)
      let slack = !phase_sum -. !totals in
      check Alcotest.bool "phase sums cover response totals" true
        (slack >= -1e-6 && slack <= 0.25);
      (* per-domain stats: requests sum to n, busy time is sane *)
      let pool_reqs =
        match Jsonx.(Option.bind (member "pool" json) to_list) with
        | Some doms ->
          List.fold_left
            (fun acc d ->
              (match Jsonx.(Option.bind (member "busy_s" d) number) with
              | Some b -> check Alcotest.bool "busy_s sane" true (b >= 0.0)
              | None -> Alcotest.fail "pool entry lacks busy_s");
              match Jsonx.(Option.bind (member "requests" d) number) with
              | Some r -> acc + int_of_float r
              | None -> Alcotest.fail "pool entry lacks requests")
            0 doms
        | None -> Alcotest.fail "statusz lacks pool array"
      in
      check Alcotest.int "domain request counts sum to n" n pool_reqs;
      (* slow_s = 0.0 logs everything: the ring has all n, newest first *)
      check (Alcotest.float 1e-9) "threshold echoed" 0.0
        (num [ "slow"; "threshold_ms" ]);
      check (Alcotest.float 1e-9) "every request in the slow ring"
        (float_of_int n)
        (num [ "slow"; "seen" ]);
      (match Jsonx.(Option.bind (path [ "slow"; "entries" ] json) to_list) with
      | Some entries ->
        check Alcotest.int "ring snapshot complete" n (List.length entries);
        let newest = List.hd entries in
        check
          (Alcotest.option Alcotest.string)
          "newest entry is the last query" (Some "count")
          Jsonx.(Option.bind (member "kind" newest) to_str);
        check
          (Alcotest.option (Alcotest.float 1e-9))
          "newest entry id" (Some (float_of_int (List.hd !ids)))
          Jsonx.(Option.bind (member "id" newest) number);
        List.iter
          (fun e ->
            (match Jsonx.(Option.bind (member "status" e) number) with
            | Some 200.0 -> ()
            | _ -> Alcotest.fail "slow entry status wrong");
            match Jsonx.(Option.bind (member "domain" e) number) with
            | Some d -> check Alcotest.bool "executing domain recorded" true (d >= 0.0)
            | None -> Alcotest.fail "slow entry lacks domain")
          entries
      | None -> Alcotest.fail "statusz lacks slow entries");
      disconnect conn)

(* With trace_sample = 1 every request emits an http.request root with
   six phase children into the engine's sink; the sharded buffers merge
   on server stop. *)
let test_trace_sampling () =
  let module Trace = Olar_obs.Trace in
  let sink, spans = Olar_obs.Sink.memory () in
  let engine =
    Engine.of_lattice
      ~obs:(Olar_obs.Obs.create ~trace:sink ())
      (Helpers.table2_lattice ())
  in
  let n = 5 in
  Server.with_server
    ~config:{ default_cfg with Server.port = 0; trace_sample = 1 }
    ~domains:2 engine
    (fun srv ->
      let conn = connect (Server.port srv) in
      for _ = 1 to n do
        let r = post_query conn {|{"kind":"count","minsup":0.003}|} in
        check Alcotest.int "traced query ok" 200 r.Http.status
      done;
      disconnect conn);
  (* with_server stopped the server, which flushed the sharded tracer *)
  let emitted = spans () in
  let roots = List.filter (fun s -> s.Trace.name = "http.request") emitted in
  check Alcotest.int "one root per sampled request" n (List.length roots);
  let index_of sp =
    let rec go i = function
      | [] -> Alcotest.fail "span vanished"
      | s :: _ when s == sp -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 emitted
  in
  List.iter
    (fun root ->
      check Alcotest.bool "root carries the request id" true
        (List.mem_assoc "request" root.Trace.attrs);
      let children =
        List.filter (fun s -> s.Trace.parent = Some root.Trace.id) emitted
      in
      let names = List.map (fun c -> c.Trace.name) children in
      check
        (Alcotest.list Alcotest.string)
        "six phase children in order"
        [
          "phase.parse"; "phase.queue"; "phase.dispatch"; "phase.execute";
          "phase.deliver"; "phase.write";
        ]
        names;
      List.iter
        (fun c ->
          check Alcotest.bool "child emitted before its root" true
            (index_of c < index_of root))
        children)
    roots

(* With a (practically) zero deadline, queued queries are dropped by
   the drainer with 503 before any pool work is spent on them. *)
let test_deadline_sheds_with_503 () =
  Server.with_server
    ~config:{ default_cfg with Server.port = 0; deadline_s = 1e-7 }
    (table2_engine ())
    (fun srv ->
      let conn = connect (Server.port srv) in
      let n = 10 in
      let sheds = ref 0 in
      for _ = 1 to n do
        let r = post_query conn {|{"kind":"count","minsup":0.003}|} in
        match r.Http.status with
        | 503 -> incr sheds
        | 200 -> ()
        | s -> Alcotest.failf "unexpected status %d under deadline" s
      done;
      check Alcotest.bool "deadline produced 503 drops" true (!sheds > 0);
      let m = request conn ~meth:"GET" ~target:"/metrics" "" in
      check (Alcotest.float 0.0) "deadline shed counter agrees"
        (float_of_int !sheds)
        (metric_value m.Http.resp_body "olar_http_shed_deadline_total");
      disconnect conn)

(* ------------------------------------------------------------------ *)
(* Health grading and the status client                                *)
(* ------------------------------------------------------------------ *)

module Health = Olar_net.Health
module Client = Olar_net.Client

let reading ?(window_s = 60.0) ?(executed = 1000) ?(shed = 0) ?(errors_5xx = 0)
    ?(exec_p99_s = nan) () =
  { Health.window_s; executed; shed; errors_5xx; exec_p99_s }

let state_of r = Health.evaluate Health.default_thresholds r

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* The engine is pure and stateless, so the ok → degraded → unhealthy
   → recovered cycle is just four evaluations of four readings. *)
let test_health_transitions () =
  check Alcotest.string "baseline is ok" "ok"
    (Health.state_name (state_of (reading ())));
  check Alcotest.int "ok answers 200" 200
    (Health.status_code (state_of (reading ())));
  check Alcotest.int "ok gauge encoding" 0
    (Health.state_value (state_of (reading ())));
  (* 2% shed crosses the 1% soft limit but not the 25% hard one *)
  (match state_of (reading ~shed:20 ()) with
  | Health.Degraded [ r ] ->
    check Alcotest.bool "reason names the check" true (has_prefix "shed_rate" r)
  | s ->
    Alcotest.failf "2%% shed: expected degraded, got %s" (Health.state_name s));
  check Alcotest.int "degraded still answers 200" 200
    (Health.status_code (state_of (reading ~shed:20 ())));
  check Alcotest.int "degraded gauge encoding" 1
    (Health.state_value (state_of (reading ~shed:20 ())));
  (* 30% of arrivals shed crosses the hard limit: the instance asks to
     be pulled *)
  (match state_of (reading ~executed:700 ~shed:300 ()) with
  | Health.Unhealthy [ r ] ->
    check Alcotest.bool "unhealthy reason names the check" true
      (has_prefix "shed_rate" r)
  | s ->
    Alcotest.failf "30%% shed: expected unhealthy, got %s"
      (Health.state_name s));
  check Alcotest.int "unhealthy answers 503" 503
    (Health.status_code (state_of (reading ~executed:700 ~shed:300 ())));
  check Alcotest.int "unhealthy gauge encoding" 2
    (Health.state_value (state_of (reading ~executed:700 ~shed:300 ())));
  (* the next clean window grades ok again — history cannot pin the
     verdict *)
  check Alcotest.string "recovered" "ok"
    (Health.state_name (state_of (reading ())));
  (* a hard 5xx breach keeps the soft shed reason too, worst first *)
  match state_of (reading ~errors_5xx:300 ~shed:20 ()) with
  | Health.Unhealthy [ worst; soft ] ->
    check Alcotest.bool "hard 5xx breach listed first" true
      (has_prefix "5xx_rate" worst);
    check Alcotest.bool "soft shed reason kept" true (has_prefix "shed_rate" soft)
  | s ->
    Alcotest.failf "mixed breach: expected two unhealthy reasons, got %s"
      (Health.state_name s)

let test_health_min_events_floor () =
  (* 2 of 5 arrivals shed would be catastrophic at scale, but one cold
     or idle server with five requests cannot flip the fleet *)
  check Alcotest.string "tiny sample is never judged" "ok"
    (Health.state_name (state_of (reading ~executed:3 ~shed:2 ())));
  check Alcotest.string "zero arrivals is ok" "ok"
    (Health.state_name (state_of (reading ~executed:0 ())));
  (* the floor counts arrivals (executed + shed), not executed: 1
     executed + 19 shed = 20 arrivals, exactly at the floor, judged *)
  check Alcotest.string "at the floor the rates are judged" "unhealthy"
    (Health.state_name (state_of (reading ~executed:1 ~shed:19 ())))

(* The regression table for the full-shed grading bug: rates divide by
   executed + shed, so an outage where nothing executes is judged, and
   shed_rate is a true fraction (never past 100%). *)
let test_health_case_table () =
  let name r = Health.state_name (state_of r) in
  (* shed-only outage: zero executed queries still grades unhealthy —
     the old executed-based floor returned ok here *)
  check Alcotest.string "full-shed outage" "unhealthy"
    (name (reading ~executed:0 ~shed:50 ()));
  check Alcotest.int "full-shed outage answers 503" 503
    (Health.status_code (state_of (reading ~executed:0 ~shed:50 ())));
  check Alcotest.int "arrivals is executed + shed" 50
    (Health.arrivals (reading ~executed:0 ~shed:50 ()));
  (* mixed traffic: 30 shed of 40 arrivals = 75%, far past the hard
     25% limit even though the executed count alone (10) sits under
     the old floor *)
  check Alcotest.string "mostly-shed mix" "unhealthy"
    (name (reading ~executed:10 ~shed:30 ()));
  (* 1% shed of arrivals sits exactly at (not over) the soft limit *)
  check Alcotest.string "1% shed is not degraded" "ok"
    (name (reading ~executed:990 ~shed:10 ()));
  check Alcotest.string "2% shed is degraded" "degraded"
    (name (reading ~executed:980 ~shed:20 ()));
  (* sub-min-events: 19 arrivals, shed-only or executed-only, are
     never judged; the 20th arrival starts grading *)
  check Alcotest.string "19 shed-only arrivals not judged" "ok"
    (name (reading ~executed:0 ~shed:19 ()));
  check Alcotest.string "19 executed-only arrivals not judged" "ok"
    (name (reading ~executed:19 ()));
  check Alcotest.string "20 shed-only arrivals judged" "unhealthy"
    (name (reading ~executed:0 ~shed:20 ()));
  (* 5xx rate uses the same arrivals denominator *)
  check Alcotest.string "5xx over arrivals" "unhealthy"
    (name (reading ~executed:30 ~shed:10 ~errors_5xx:11 ()))

let test_health_slo_p99 () =
  let t = Health.with_slo_p99 Health.default_thresholds ~slo_s:0.1 in
  let eval p99 = Health.evaluate t (reading ~exec_p99_s:p99 ()) in
  check Alcotest.string "under the SLO" "ok" (Health.state_name (eval 0.05));
  (match eval 0.2 with
  | Health.Degraded [ r ] ->
    check Alcotest.bool "latency reason names the check" true
      (has_prefix "exec_p99" r)
  | s ->
    Alcotest.failf "2x the SLO: expected degraded, got %s"
      (Health.state_name s));
  check Alcotest.string "past 4x the SLO is unhealthy" "unhealthy"
    (Health.state_name (eval 0.5));
  (* nan p99 (no execute sample in the window) trips nothing *)
  check Alcotest.string "empty-window p99 is ok" "ok"
    (Health.state_name (Health.evaluate t (reading ())));
  (* the latency check is off by default: infinity limits never trip *)
  check Alcotest.string "p99 disabled by default" "ok"
    (Health.state_name (state_of (reading ~exec_p99_s:99.0 ())));
  check Alcotest.bool "non-positive slo leaves thresholds unchanged" true
    (Health.with_slo_p99 Health.default_thresholds ~slo_s:0.0
    = Health.default_thresholds)

let test_client_parse_url () =
  let ok url expect =
    match Client.parse_url url with
    | Ok got ->
      check
        (Alcotest.triple Alcotest.string Alcotest.int Alcotest.string)
        url expect got
    | Error e -> Alcotest.failf "%s unexpectedly rejected: %s" url e
  in
  ok "http://localhost:7447" ("localhost", 7447, "/");
  ok "http://10.0.0.1:80/statusz" ("10.0.0.1", 80, "/statusz");
  ok "localhost:7447/metrics" ("localhost", 7447, "/metrics");
  ok "http://example.org/healthz" ("example.org", 80, "/healthz");
  match Client.parse_url "http://bad:port" with
  | Ok _ -> Alcotest.fail "non-numeric port accepted"
  | Error _ -> ()

(* The client against a live server: /healthz grades ok over the wire,
   and the /statusz document carries the window, gc and health
   sections olar top renders. *)
let test_client_and_health_over_the_wire () =
  Server.with_server
    ~config:{ default_cfg with Server.port = 0 }
    (table2_engine ())
    (fun srv ->
      let url = Server.url srv in
      (match Client.get ~url "/healthz" with
      | Error e -> Alcotest.failf "healthz GET failed: %s" e
      | Ok (status, body) ->
        check Alcotest.int "healthz over the client" 200 status;
        (match Jsonx.of_string body with
        | Ok j ->
          check
            (Alcotest.option Alcotest.string)
            "fresh server grades ok" (Some "ok")
            (Option.bind (Jsonx.member "state" j) Jsonx.to_str)
        | Error e -> Alcotest.failf "healthz body unparsable: %s" e));
      (match Client.get ~url "/statusz" with
      | Error e -> Alcotest.failf "statusz GET failed: %s" e
      | Ok (status, body) -> (
        check Alcotest.int "statusz over the client" 200 status;
        match Jsonx.of_string body with
        | Error e -> Alcotest.failf "statusz body unparsable: %s" e
        | Ok j ->
          List.iter
            (fun section ->
              if Jsonx.member section j = None then
                Alcotest.failf "statusz lacks the %S section" section)
            [ "window"; "gc"; "health" ];
          check
            (Alcotest.option Alcotest.string)
            "health section mirrors /healthz" (Some "ok")
            (Option.bind (Jsonx.path [ "health"; "state" ] j) Jsonx.to_str)));
      match Client.get ~url "/nope" with
      | Ok (status, _) -> check Alcotest.int "404 passes through" 404 status
      | Error e -> Alcotest.failf "unexpected client error: %s" e)

(* ------------------------------------------------------------------ *)
(* Client robustness: truncation, short writes, send timeouts         *)
(* ------------------------------------------------------------------ *)

(* A one-shot fake HTTP server: accept one connection, read until the
   request's blank line, write [response] verbatim, close. Lets the
   tests hand the real client a wire-level misbehaviour no correct
   server produces. *)
let with_fake_server response f =
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 1;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let th =
    Thread.create
      (fun () ->
        let c, _ = Unix.accept srv in
        let buf = Bytes.create 4096 in
        let seen = Buffer.create 256 in
        let have_blank_line () =
          let s = Buffer.contents seen in
          let n = String.length s in
          let rec go i =
            i + 3 < n
            && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                 && s.[i + 3] = '\n')
               || go (i + 1))
          in
          go 0
        in
        let rec drain_request () =
          if not (have_blank_line ()) then
            match Unix.read c buf 0 (Bytes.length buf) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes seen buf 0 n;
              drain_request ()
        in
        drain_request ();
        let b = Bytes.of_string response in
        let rec send off =
          if off < Bytes.length b then
            send (off + Unix.write c b off (Bytes.length b - off))
        in
        send 0;
        Unix.close c)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join th;
      Unix.close srv)
    (fun () -> f (Printf.sprintf "http://127.0.0.1:%d" port))

(* The peer promises 100 body bytes, delivers 10 and half-closes: the
   client must answer Error, not a silently short Ok body the caller
   would misparse downstream. *)
let test_client_truncated_body () =
  let response =
    "HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\n0123456789"
  in
  with_fake_server response (fun url ->
      match Client.get ~url "/statusz" with
      | Ok (status, body) ->
        Alcotest.failf "truncated body accepted: %d %S" status body
      | Error e ->
        check Alcotest.string "truncation is named precisely"
          "truncated body (got 10 of 100 bytes)" e)

(* An intact short body with a matching Content-Length still parses. *)
let test_client_exact_body_still_ok () =
  let response = "HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok" in
  with_fake_server response (fun url ->
      match Client.get ~url "/healthz" with
      | Ok (200, body) -> check Alcotest.string "body intact" "ok" body
      | Ok (s, _) -> Alcotest.failf "unexpected status %d" s
      | Error e -> Alcotest.failf "exact body rejected: %s" e)

(* Push a payload much larger than a deliberately tiny send buffer
   through [write_all] while the peer drains slowly: every short write
   must be resumed until the last byte arrives intact. *)
let test_client_short_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with _ -> ());
  let payload =
    String.init 1_000_000 (fun i -> Char.chr (((i * 131) + (i / 997)) land 0xff))
  in
  let received = Buffer.create (String.length payload) in
  let reader =
    Thread.create
      (fun () ->
        let chunk = Bytes.create 799 in
        let rec go () =
          match Unix.read b chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes received chunk 0 n;
            (* drain slower than the writer can fill the tiny buffer *)
            if Buffer.length received land 0xfff = 0 then Thread.yield ();
            go ()
        in
        go ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () ->
      Client.write_all a payload;
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Thread.join reader;
      check Alcotest.int "every byte arrived" (String.length payload)
        (Buffer.length received);
      check Alcotest.bool "bytes arrived in order, uncorrupted" true
        (String.equal payload (Buffer.contents received)))

(* Nobody reads the peer and the send buffer is tiny: once SO_SNDTIMEO
   expires the blocked send surfaces as the stable "send timeout"
   failure, not a raw EAGAIN message. *)
let test_client_send_timeout () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with _ -> ());
  Unix.setsockopt_float a Unix.SO_SNDTIMEO 0.1;
  let payload = String.make 4_000_000 'x' in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () ->
      match Client.write_all a payload with
      | () -> Alcotest.fail "blocked send returned without timing out"
      | exception Failure e -> check Alcotest.string "stable error" "send timeout" e)

(* ------------------------------------------------------------------ *)
(* Loopback: full-shed outage grades unhealthy                        *)
(* ------------------------------------------------------------------ *)

(* The /healthz regression for the shed-grading fix: a server whose
   every query sheds (queue_depth 1 plus an immediately-expiring
   deadline, so zero queries execute) must grade unhealthy — under the
   old executed-only reading the min_events floor never tripped and
   the outage graded ok. *)
let test_full_shed_flood_grades_unhealthy () =
  Server.with_server
    ~config:
      { default_cfg with Server.port = 0; queue_depth = 1; deadline_s = 1e-9 }
    ~domains:2
    (table2_engine ())
    (fun srv ->
      let url = Server.url srv in
      let sheds = ref 0 in
      for i = 0 to 39 do
        match Client.post ~url "/query" {|{"kind":"count","minsup":0.003}|} with
        | Ok (503, _) -> incr sheds
        | Ok (429, _) -> () (* queue-full shed also counts toward rates *)
        | Ok (s, b) -> Alcotest.failf "flood %d: unexpected %d %s" i s b
        | Error e -> Alcotest.failf "flood %d failed: %s" i e
      done;
      check Alcotest.bool "everything shed" true (!sheds > 0);
      match Client.get ~url "/healthz" with
      | Error e -> Alcotest.failf "healthz GET failed: %s" e
      | Ok (status, body) -> (
        check Alcotest.int "full-shed outage answers 503" 503 status;
        match Jsonx.of_string body with
        | Error e -> Alcotest.failf "healthz body unparsable: %s" e
        | Ok j ->
          check
            (Alcotest.option Alcotest.string)
            "full-shed outage grades unhealthy" (Some "unhealthy")
            (Option.bind (Jsonx.member "state" j) Jsonx.to_str);
          check
            (Alcotest.option (Alcotest.float 0.0))
            "zero executed queries in the window" (Some 0.0)
            (Option.bind (Jsonx.member "executed" j) Jsonx.number);
          check Alcotest.bool "the floor tripped on shed arrivals" true
            (match Option.bind (Jsonx.member "shed" j) Jsonx.number with
            | Some shed -> shed >= 20.0
            | None -> false)))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "net.http",
      [
        case "simple request" test_simple_request;
        case "obs-fold header continuations" test_header_folding;
        case "missing content-length means empty body"
          test_missing_content_length_means_empty_body;
        case "content-length zero" test_content_length_zero;
        case "content-length exact" test_content_length_exact;
        case "content-length edge cases" test_content_length_edge_cases;
        case "unsupported features rejected" test_reject_unsupported;
        case "bare LF tolerated" test_bare_lf_tolerated;
        case "pipelined requests" test_pipelined_requests;
        case "byte-at-a-time trickle" test_trickled_bytes;
        case "response round trip" test_response_round_trip;
      ] );
    Helpers.qsuite "net.http.props"
      [
        fuzz_prop;
        fuzz_headers_prop;
        round_trip_prop;
        trickle_prop;
        pipeline_prop;
      ];
    ( "net.server",
      [
        case "wire differential vs serial session" test_wire_differential;
        case "422 error text equals the serial exception"
          test_wire_error_matches_serial;
        case "pipelining over the wire" test_wire_pipelining;
        case "endpoints and protocol errors" test_wire_errors_and_endpoints;
        case "overload sheds with 429, bounded queue"
          test_overload_sheds_with_429;
        case "deadline sheds with 503" test_deadline_sheds_with_503;
        case "HEAD mirrors GET without a body" test_head_requests;
        case "phase attribution and statusz" test_phase_attribution_and_statusz;
        case "trace sampling emits request trees" test_trace_sampling;
      ] );
    ( "net.health",
      [
        case "ok/degraded/unhealthy/recovered transitions"
          test_health_transitions;
        case "min_events floor" test_health_min_events_floor;
        case "shed-only, mixed and sub-min-events readings"
          test_health_case_table;
        case "SLO p99 check" test_health_slo_p99;
        case "client URL parsing" test_client_parse_url;
        case "client and health over the wire"
          test_client_and_health_over_the_wire;
        case "full-shed flood grades unhealthy"
          test_full_shed_flood_grades_unhealthy;
      ] );
    ( "net.client",
      [
        case "truncated body is an error" test_client_truncated_body;
        case "exact content-length still parses"
          test_client_exact_body_still_ok;
        case "short writes resume through a tiny SO_SNDBUF"
          test_client_short_writes;
        case "blocked send times out with a stable error"
          test_client_send_timeout;
      ] );
  ]
