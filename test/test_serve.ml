(* The session cache (lib/serve): canonical-order and prefix-property
   pins, a differential oracle against a cache-less engine across random
   interleavings of queries and appends, and units for refinement
   accounting, LRU eviction, epoch invalidation and the disabled
   passthrough.

   The refinement machinery is only sound if (a) query output order is
   the total order [Lattice.compare_strength] and (b) the answer at a
   higher support cut is a literal prefix of the answer at a lower one —
   both are pinned here as properties so a change to the canonical order
   fails loudly. *)

open Olar_data
open Olar_core
module Session = Olar_serve.Session

let check = Alcotest.check
let set = Itemset.of_list

let lattice_of db ~threshold =
  let entries = Array.of_list (Helpers.brute_frequent db ~minsup:threshold) in
  Lattice.of_entries ~db_size:(Database.size db) ~threshold entries

(* ------------------------------------------------------------------ *)
(* Canonical order + prefix property (the refinement soundness pins)  *)

let scenario_gen =
  let open QCheck2.Gen in
  let* db = Helpers.db_gen in
  let* threshold = int_range 1 4 in
  let* containing = Helpers.itemset_gen ~num_items:(Database.num_items db) in
  let* extra = int_range 0 4 in
  let* raise_by = int_range 0 4 in
  return (db, threshold, containing, threshold + extra, raise_by)

let scenario_print (db, threshold, containing, minsup, raise_by) =
  Format.asprintf "%s@ threshold=%d containing=%a minsup=%d raise_by=%d"
    (Helpers.db_print db) threshold Itemset.pp containing minsup raise_by

(* Result of find_itemsets is strictly sorted by compare_strength:
   support descending, ties broken by ascending id. *)
let canonical_order_prop =
  QCheck2.Test.make ~name:"find_itemsets is in canonical order" ~count:250
    ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup, _) ->
      let lat = lattice_of db ~threshold in
      let ids = Query.find_itemsets lat ~containing ~minsup in
      let sup = Lattice.support_array lat in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          (sup.(a) > sup.(b) || (sup.(a) = sup.(b) && a < b))
          && Lattice.compare_strength lat a b < 0
          && sorted rest
        | _ -> true
      in
      sorted ids)

(* The answer at minsup + raise_by is a literal prefix of the answer at
   minsup — what the cache's binary-search refinement relies on. *)
let prefix_property_prop =
  QCheck2.Test.make ~name:"higher cut is a prefix of lower cut" ~count:250
    ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup, raise_by) ->
      let lat = lattice_of db ~threshold in
      let low = Query.find_itemsets lat ~containing ~minsup in
      let high =
        Query.find_itemsets lat ~containing ~minsup:(minsup + raise_by)
      in
      let rec is_prefix p l =
        match (p, l) with
        | [], _ -> true
        | a :: p', b :: l' -> a = b && is_prefix p' l'
        | _ :: _, [] -> false
      in
      is_prefix high low)

(* ------------------------------------------------------------------ *)
(* Differential: session vs cache-less engine over random interleaves *)

type op =
  | Q_items of Itemset.t * int  (* extra support above the threshold *)
  | Q_ids of Itemset.t * int
  | Q_count of Itemset.t * int
  | Q_ess of Itemset.t * int * float
  | Q_all of Itemset.t * int * float
  | Q_single of Itemset.t * int * float
  | Q_topk of Itemset.t * int
  | Q_topk_rules of Itemset.t * float * int
  | Append of Database.t

let op_print = function
  | Q_items (x, e) -> Format.asprintf "items(%a,+%d)" Itemset.pp x e
  | Q_ids (x, e) -> Format.asprintf "ids(%a,+%d)" Itemset.pp x e
  | Q_count (x, e) -> Format.asprintf "count(%a,+%d)" Itemset.pp x e
  | Q_ess (x, e, c) -> Format.asprintf "ess(%a,+%d,%g)" Itemset.pp x e c
  | Q_all (x, e, c) -> Format.asprintf "all(%a,+%d,%g)" Itemset.pp x e c
  | Q_single (x, e, c) -> Format.asprintf "single(%a,+%d,%g)" Itemset.pp x e c
  | Q_topk (x, k) -> Format.asprintf "topk(%a,%d)" Itemset.pp x k
  | Q_topk_rules (x, c, k) ->
    Format.asprintf "topk_rules(%a,%g,%d)" Itemset.pp x c k
  | Append d -> Format.asprintf "append(%d txns)" (Database.size d)

let delta_gen ~num_items =
  let open QCheck2.Gen in
  let* num_txns = int_range 1 8 in
  let txn =
    let* size = int_range 0 num_items in
    let* items = list_repeat size (int_range 0 (num_items - 1)) in
    return items
  in
  let* rows = list_repeat num_txns txn in
  return (Database.of_lists ~num_items rows)

let op_gen ~num_items =
  let open QCheck2.Gen in
  let iset = Helpers.itemset_gen ~num_items in
  let extra = int_range 0 4 in
  let conf = oneofl [ 0.3; 0.5; 0.75; 0.9; 1.0 ] in
  let kk = int_range 1 12 in
  frequency
    [
      (3, map2 (fun x e -> Q_items (x, e)) iset extra);
      (2, map2 (fun x e -> Q_ids (x, e)) iset extra);
      (2, map2 (fun x e -> Q_count (x, e)) iset extra);
      (2, map3 (fun x e c -> Q_ess (x, e, c)) iset extra conf);
      (1, map3 (fun x e c -> Q_all (x, e, c)) iset extra conf);
      (1, map3 (fun x e c -> Q_single (x, e, c)) iset extra conf);
      (2, map2 (fun x k -> Q_topk (x, k)) iset kk);
      (1, map3 (fun x c k -> Q_topk_rules (x, c, k)) iset conf kk);
      (1, map (fun d -> Append d) (delta_gen ~num_items));
    ]

let session_scenario_gen =
  let open QCheck2.Gen in
  let* db = Helpers.db_gen in
  let* threshold = int_range 1 3 in
  let* n_ops = int_range 1 25 in
  let* ops = list_repeat n_ops (op_gen ~num_items:(Database.num_items db)) in
  return (db, threshold, ops)

let session_scenario_print (db, threshold, ops) =
  Format.asprintf "%s@ threshold=%d ops=[%a]" (Helpers.db_print db) threshold
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       (fun f o -> Format.pp_print_string f (op_print o)))
    ops

(* Replay [ops] against a session (cache on) and against a bare engine;
   every answer must be identical — including after appends, where the
   session must never serve an entry from the previous epoch. *)
let run_differential ~budget_bytes (db, threshold, ops) =
  let lat = lattice_of db ~threshold in
  let session = Session.create ~budget_bytes (Engine.of_lattice lat) in
  let oracle = ref (Engine.of_lattice lat) in
  let ok = ref true in
  let fail name = ok := false; ignore name in
  let frac extra =
    (* a fractional support that Engine.count_of_support maps to a count
       >= threshold on the current database; None when it cannot *)
    let db_size = Engine.db_size !oracle in
    let c = threshold + extra in
    if c > db_size then None
    else Some (float_of_int c /. float_of_int db_size)
  in
  List.iter
    (fun op ->
      if !ok then
        match op with
        | Q_items (x, e) -> (
          match frac e with
          | None -> ()
          | Some minsup ->
            if
              Session.itemsets ~containing:x session ~minsup
              <> Engine.itemsets ~containing:x !oracle ~minsup
            then fail "items")
        | Q_ids (x, e) -> (
          match frac e with
          | None -> ()
          | Some minsup ->
            let expected =
              Array.of_list
                (Query.find_itemsets (Engine.lattice !oracle) ~containing:x
                   ~minsup:(Engine.count_of_support !oracle minsup))
            in
            if Session.itemset_ids ~containing:x session ~minsup <> expected
            then fail "ids")
        | Q_count (x, e) -> (
          match frac e with
          | None -> ()
          | Some minsup ->
            if
              Session.count_itemsets ~containing:x session ~minsup
              <> Engine.count_itemsets ~containing:x !oracle ~minsup
            then fail "count")
        | Q_ess (x, e, minconf) -> (
          match frac e with
          | None -> ()
          | Some minsup ->
            if
              Session.essential_rules ~containing:x session ~minsup ~minconf
              <> Engine.essential_rules ~containing:x !oracle ~minsup ~minconf
            then fail "ess")
        | Q_all (x, e, minconf) -> (
          match frac e with
          | None -> ()
          | Some minsup ->
            if
              Session.all_rules ~containing:x session ~minsup ~minconf
              <> Engine.all_rules ~containing:x !oracle ~minsup ~minconf
            then fail "all")
        | Q_single (x, e, minconf) -> (
          match frac e with
          | None -> ()
          | Some minsup ->
            if
              Session.single_consequent_rules ~containing:x session ~minsup
                ~minconf
              <> Engine.single_consequent_rules ~containing:x !oracle ~minsup
                   ~minconf
            then fail "single")
        | Q_topk (x, k) ->
          if
            Session.support_for_k_itemsets session ~containing:x ~k
            <> Engine.support_for_k_itemsets !oracle ~containing:x ~k
          then fail "topk"
        | Q_topk_rules (x, minconf, k) ->
          if
            Session.support_for_k_rules session ~involving:x ~minconf ~k
            <> Engine.support_for_k_rules !oracle ~involving:x ~minconf ~k
          then fail "topk_rules"
        | Append delta ->
          let promoted_s = Session.append session delta in
          let oracle', promoted_o = Engine.append !oracle delta in
          oracle := oracle';
          if promoted_s <> promoted_o then fail "append")
    ops;
  !ok

let session_differential_prop =
  QCheck2.Test.make
    ~name:"session answers = cache-less engine (queries + appends)" ~count:250
    ~print:session_scenario_print session_scenario_gen
    (run_differential ~budget_bytes:(8 * 1024 * 1024))

(* Same oracle under a tiny budget: constant evictions and re-misses
   must not change any answer. *)
let session_tiny_budget_prop =
  QCheck2.Test.make ~name:"session under a 2 KiB budget stays exact" ~count:250
    ~print:session_scenario_print session_scenario_gen
    (run_differential ~budget_bytes:2048)

(* ------------------------------------------------------------------ *)
(* Pool differential: 4-domain pool vs serial session, digest-exact   *)

module Pool = Olar_serve.Pool
module Replay = Olar_replay.Replay
module Fnv = Olar_replay.Fnv

let req_print : Pool.request -> string = function
  | Find_itemsets { containing; minsup } ->
    Format.asprintf "find(%a,%g)" Itemset.pp containing minsup
  | Count_itemsets { containing; minsup } ->
    Format.asprintf "count(%a,%g)" Itemset.pp containing minsup
  | Essential_rules { containing; minsup; minconf; _ } ->
    Format.asprintf "ess(%a,%g,%g)" Itemset.pp containing minsup minconf
  | All_rules { containing; minsup; minconf; _ } ->
    Format.asprintf "all(%a,%g,%g)" Itemset.pp containing minsup minconf
  | Single_consequent_rules { containing; minsup; minconf } ->
    Format.asprintf "single(%a,%g,%g)" Itemset.pp containing minsup minconf
  | Support_for_k_itemsets { containing; k } ->
    Format.asprintf "topk(%a,%d)" Itemset.pp containing k
  | Support_for_k_rules { involving; minconf; k } ->
    Format.asprintf "topk_rules(%a,%g,%d)" Itemset.pp involving minconf k
  | Boundary { target; minconf; _ } ->
    Format.asprintf "boundary(%a,%g)" Itemset.pp target minconf
  | Append d -> Format.asprintf "append(%d txns)" (Database.size d)

(* One random pool request. Fractions are derived from the *initial*
   database size, so after appends some land below the primary
   threshold and raise — exercising the R_error path, which must digest
   identically on both sides. *)
let pool_request_gen ~num_items ~db_size ~threshold =
  let open QCheck2.Gen in
  let iset = Helpers.itemset_gen ~num_items in
  let minsup =
    let* extra = int_range 0 4 in
    return (float_of_int (threshold + extra) /. float_of_int db_size)
  in
  let conf = oneofl [ 0.3; 0.5; 0.75; 0.9; 1.0 ] in
  let kk = int_range 1 12 in
  let constraints =
    frequency
      [
        (3, return Boundary.unconstrained);
        ( 1,
          let* p = iset in
          let* q = iset in
          let* allow = bool in
          return
            {
              Boundary.antecedent_includes = p;
              consequent_includes = q;
              allow_empty_antecedent = allow;
            } );
      ]
  in
  frequency
    [
      ( 3,
        let* containing = iset in
        let* minsup = minsup in
        return (Pool.Find_itemsets { containing; minsup }) );
      ( 2,
        let* containing = iset in
        let* minsup = minsup in
        return (Pool.Count_itemsets { containing; minsup }) );
      ( 2,
        let* containing = iset in
        let* constraints = constraints in
        let* minsup = minsup in
        let* minconf = conf in
        return (Pool.Essential_rules { containing; constraints; minsup; minconf })
      );
      ( 1,
        let* containing = iset in
        let* constraints = constraints in
        let* minsup = minsup in
        let* minconf = conf in
        return (Pool.All_rules { containing; constraints; minsup; minconf }) );
      ( 1,
        let* containing = iset in
        let* minsup = minsup in
        let* minconf = conf in
        return (Pool.Single_consequent_rules { containing; minsup; minconf }) );
      ( 2,
        let* containing = iset in
        let* k = kk in
        return (Pool.Support_for_k_itemsets { containing; k }) );
      ( 1,
        let* involving = iset in
        let* minconf = conf in
        let* k = kk in
        return (Pool.Support_for_k_rules { involving; minconf; k }) );
      ( 1,
        let* target = iset in
        let* constraints = constraints in
        let* minconf = conf in
        return (Pool.Boundary { target; constraints; minconf }) );
      (1, map (fun d -> Pool.Append d) (delta_gen ~num_items));
    ]

let pool_scenario_gen =
  let open QCheck2.Gen in
  let* db = Helpers.db_gen in
  let* threshold = int_range 1 3 in
  let* reqs =
    list_repeat 500
      (pool_request_gen ~num_items:(Database.num_items db)
         ~db_size:(Database.size db) ~threshold)
  in
  return (db, threshold, reqs)

let pool_scenario_print (db, threshold, reqs) =
  let appends =
    List.length (List.filter (function Pool.Append _ -> true | _ -> false) reqs)
  in
  Format.asprintf "%s@ threshold=%d %d reqs (%d appends), first 10: [%s]"
    (Helpers.db_print db) threshold (List.length reqs) appends
    (String.concat "; "
       (List.filteri (fun i _ -> i < 10) reqs |> List.map req_print))

(* Mirror of the pool's per-request execution against a plain serial
   session — same materialization, same exception-to-R_error rule — so
   both sides digest through the replay layer's semantics. *)
let serial_execute session (req : Pool.request) : Pool.response =
  let materialize lat ids =
    Array.map (fun v -> (Lattice.itemset lat v, Lattice.support lat v)) ids
  in
  try
    match req with
    | Find_itemsets { containing; minsup } ->
      let ids = Session.itemset_ids ~containing session ~minsup in
      R_items (materialize (Engine.lattice (Session.engine session)) ids)
    | Count_itemsets { containing; minsup } ->
      R_count (Session.count_itemsets ~containing session ~minsup)
    | Essential_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.essential_rules ~containing ~constraints session ~minsup
           ~minconf)
    | All_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.all_rules ~containing ~constraints session ~minsup ~minconf)
    | Single_consequent_rules { containing; minsup; minconf } ->
      R_rules
        (Session.single_consequent_rules ~containing session ~minsup ~minconf)
    | Support_for_k_itemsets { containing; k } ->
      R_level (Session.support_for_k_itemsets session ~containing ~k)
    | Support_for_k_rules { involving; minconf; k } ->
      R_level (Session.support_for_k_rules session ~involving ~minconf ~k)
    | Boundary { target; constraints; minconf } ->
      R_entries (Session.boundary ~constraints session ~target ~minconf)
    | Append delta ->
      let promoted = Session.append session delta in
      R_promoted
        { promoted; db_size = Engine.db_size (Session.engine session) }
  with e -> Pool.R_error (Printexc.to_string e)

(* Errors carry no structured result; fold the message so an error
   response still has a comparable digest. *)
let digest_of_response (resp : Pool.response) =
  match Replay.digest_response resp with
  | Some d -> d
  | None -> (
    match resp with
    | R_error msg -> Fnv.string Fnv.empty msg
    | _ -> assert false)

(* The same workload — queries with barriered appends — executed
   serially and through a 4-domain pool must produce bitwise-identical
   FNV digests at every position. *)
let run_pool_differential ~budget_bytes (db, threshold, reqs) =
  let reqs = Array.of_list reqs in
  let lat = lattice_of db ~threshold in
  let serial = Session.create ~budget_bytes (Engine.of_lattice lat) in
  let expected =
    Array.map (fun r -> digest_of_response (serial_execute serial r)) reqs
  in
  let actual =
    Pool.with_pool ~domains:4 ~budget_bytes (Engine.of_lattice lat)
      (fun pool -> Array.map digest_of_response (Pool.run pool reqs))
  in
  expected = actual

let pool_differential_prop =
  QCheck2.Test.make
    ~name:"pool(4 domains) digests = serial session (8 MiB cache)" ~count:10
    ~print:pool_scenario_print pool_scenario_gen
    (run_pool_differential ~budget_bytes:(8 * 1024 * 1024))

let pool_differential_uncached_prop =
  QCheck2.Test.make
    ~name:"pool(4 domains) digests = serial session (cache off)" ~count:10
    ~print:pool_scenario_print pool_scenario_gen
    (run_pool_differential ~budget_bytes:0)

(* The same differential through the continuous path, now epoch-aware:
   every request is [Pool.submit]ted with no drain in between, and an
   [Append] publishes a new snapshot without quiescing — so a read
   submitted before an append may legitimately execute on either side
   of it. The oracle is therefore per-generation: a first serial pass
   folds the appends once, snapshotting the (immutable) engine after
   each fold; the pooled pass records each response's completion
   generation; a second serial pass re-executes every read against the
   exact generation the pool says it ran on and demands bitwise-equal
   digests. Appends themselves stay positional (the coordinator folds
   them in submission order), and each read's recorded generation must
   be at least the number of appends submitted before it — the
   publish-before-push ordering the pool guarantees. *)
let run_pool_stream_differential ~budget_bytes (db, threshold, reqs) =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let lat = lattice_of db ~threshold in
  (* serial pass 1: fold appends, snapshotting each generation *)
  let fold_session = Session.create ~budget_bytes:0 (Engine.of_lattice lat) in
  let engines = ref [ Session.engine fold_session ] in
  let append_digest = Hashtbl.create 8 in
  let append_gen = Hashtbl.create 8 in
  let gens = ref 0 in
  Array.iteri
    (fun i req ->
      match req with
      | Pool.Append _ ->
        let resp = serial_execute fold_session req in
        Hashtbl.replace append_digest i (digest_of_response resp);
        (* a failing append (below-threshold delta) publishes nothing
           on either side: the generation advances only on success *)
        (match resp with
        | Pool.R_promoted _ ->
          incr gens;
          engines := Session.engine fold_session :: !engines
        | _ -> ());
        Hashtbl.replace append_gen i !gens
      | _ -> ())
    reqs;
  let engines = Array.of_list (List.rev !engines) in
  let total_gens = !gens in
  (* generation lower bound per position: appends submitted before it *)
  let appends_before = Array.make (max n 1) 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    appends_before.(i) <- !acc;
    match reqs.(i) with
    | Pool.Append _ -> acc := Hashtbl.find append_gen i
    | _ -> ()
  done;
  (* pooled pass: stream everything, no drains, appends fully live *)
  let out = Array.make n (Pool.R_error "unserved", -1) in
  Pool.with_pool ~domains:4 ~budget_bytes (Engine.of_lattice lat)
    (fun pool ->
      Array.iteri
        (fun i req ->
          Pool.submit pool req (fun resp c -> out.(i) <- (resp, c.Pool.gen)))
        reqs;
      Pool.drain pool);
  (* serial pass 2: replay each read at its recorded generation *)
  let sessions = Array.make (total_gens + 1) None in
  let session_at g =
    match sessions.(g) with
    | Some s -> s
    | None ->
      let s = Session.create ~budget_bytes engines.(g) in
      sessions.(g) <- Some s;
      s
  in
  let ok = ref true in
  Array.iteri
    (fun i req ->
      let resp, g = out.(i) in
      match req with
      | Pool.Append _ ->
        if digest_of_response resp <> Hashtbl.find append_digest i then
          ok := false;
        if g <> Hashtbl.find append_gen i then ok := false
      | _ ->
        if g < appends_before.(i) || g > total_gens then ok := false
        else if
          digest_of_response resp
          <> digest_of_response (serial_execute (session_at g) req)
        then ok := false)
    reqs;
  !ok

let pool_stream_differential_prop =
  QCheck2.Test.make
    ~name:
      "live-append submit digests = serial at recorded gen (8 MiB cache)"
    ~count:10 ~print:pool_scenario_print pool_scenario_gen
    (run_pool_stream_differential ~budget_bytes:(8 * 1024 * 1024))

let pool_stream_differential_uncached_prop =
  QCheck2.Test.make
    ~name:"live-append submit digests = serial at recorded gen (cache off)"
    ~count:10 ~print:pool_scenario_print pool_scenario_gen
    (run_pool_stream_differential ~budget_bytes:0)

(* ------------------------------------------------------------------ *)
(* Pool units *)

let test_pool_create_validation () =
  let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
  Alcotest.check_raises "zero domains rejected"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 engine))

(* A tracer-carrying engine is accepted since the tracer went sharded:
   each worker domain buffers into its own shard, the coordinator merges
   on flush, and every merged span says which domain produced it. *)
let test_pool_traced_spans () =
  let sink, spans = Olar_obs.Sink.memory () in
  let traced =
    Engine.of_lattice
      ~obs:(Olar_obs.Obs.create ~trace:sink ())
      (Helpers.table2_lattice ())
  in
  let reqs =
    Array.init 8 (fun i ->
        Pool.Count_itemsets
          { containing = Itemset.empty; minsup = float_of_int (3 + i) /. 1000.0 })
  in
  (* budget 0: the cache-less passthrough path goes through
     [Engine.query_span], so every query leaves a span *)
  let out =
    Pool.with_pool ~domains:3 ~budget_bytes:0 traced (fun pool ->
        Pool.run pool reqs)
  in
  check Alcotest.int "all requests answered" 8 (Array.length out);
  (match out.(0) with
  | Pool.R_count 9 -> ()
  | _ -> Alcotest.fail "traced pool miscounted Table 2");
  Olar_obs.Obs.flush_opt (Engine.obs traced);
  let emitted = spans () in
  check Alcotest.bool "queries traced" true (List.length emitted >= 8);
  let module T = Olar_obs.Trace in
  let ids = List.map (fun s -> s.T.id) emitted in
  check Alcotest.int "span ids unique across domains" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun s ->
      (match List.assoc_opt "domain" s.T.attrs with
      | Some (T.Int d) ->
        check Alcotest.bool
          (Printf.sprintf "span %s domain id sane" s.T.name)
          true (d >= 0)
      | _ -> Alcotest.failf "span %s lacks a domain tag" s.T.name);
      (* parentage survives the merge: every parent id is emitted too *)
      match s.T.parent with
      | None -> ()
      | Some p ->
        check Alcotest.bool
          (Printf.sprintf "span %s parent resolves" s.T.name)
          true (List.mem p ids))
    emitted

let test_pool_shutdown_idempotent () =
  let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
  let pool = Pool.create ~domains:2 engine in
  check Alcotest.int "width" 2 (Pool.domains pool);
  let out =
    Pool.run pool
      [|
        Pool.Count_itemsets
          { containing = Itemset.empty; minsup = 3.0 /. 1000.0 };
      |]
  in
  (match out.(0) with
  | Pool.R_count 9 -> ()
  | _ -> Alcotest.fail "expected R_count 9");
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      ignore (Pool.run pool [||]))

(* Submission-order pin: [run] (and the array [run_deliver] returns)
   answers [reqs.(i)] at index [i], whatever domain executed what.
   Distinct minsup cuts over Table 2 have distinct counts, so a
   misrouted response cannot go unnoticed. *)
let table2_counts_by_cut =
  (* supports 10,20,30,10,4,7,6,4,3 → entries at count cut c *)
  [| (3, 9); (4, 8); (5, 6); (7, 5); (10, 4); (20, 2); (30, 1) |]

let count_requests () =
  Array.map
    (fun (c, _) ->
      Pool.Count_itemsets
        { containing = Itemset.empty; minsup = float_of_int c /. 1000.0 })
    table2_counts_by_cut

let check_submission_order out =
  Array.iteri
    (fun i (c, expected) ->
      match out.(i) with
      | Pool.R_count got ->
        check Alcotest.int
          (Printf.sprintf "out.(%d) answers the cut-%d request" i c)
          expected got
      | _ -> Alcotest.fail "expected R_count")
    table2_counts_by_cut

let test_pool_submission_order () =
  let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
  Pool.with_pool ~domains:4 engine (fun pool ->
      check_submission_order (Pool.run pool (count_requests ())))

(* [run_deliver] fires the callback exactly once per request with the
   same (index, response) pairs the returned array carries — possibly
   out of submission order, which is the point — and a raising
   callback surfaces after the batch without losing any result. *)
let test_pool_run_deliver () =
  let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
  Pool.with_pool ~domains:4 engine (fun pool ->
      let reqs = count_requests () in
      let delivered = Array.make (Array.length reqs) None in
      let calls = Array.make (Array.length reqs) 0 in
      let out =
        Pool.run_deliver pool
          ~on_complete:(fun i r ->
            calls.(i) <- calls.(i) + 1;
            delivered.(i) <- Some r)
          reqs
      in
      check_submission_order (Array.map fst out);
      Array.iteri
        (fun i n ->
          check Alcotest.int (Printf.sprintf "index %d delivered once" i) 1 n)
        calls;
      Array.iteri
        (fun i r ->
          match delivered.(i) with
          | Some d ->
            check Alcotest.bool
              (Printf.sprintf "delivery %d is the returned result" i)
              true (d == r)
          | None -> Alcotest.fail "missing delivery")
        out;
      (* a raising callback: batch still completes, exception re-raised *)
      let seen = ref 0 in
      match
        Pool.run_deliver pool
          ~on_complete:(fun _ _ ->
            incr seen;
            failwith "callback boom")
          reqs
      with
      | _ -> Alcotest.fail "callback exception must propagate"
      | exception Failure msg ->
        check Alcotest.string "the callback's exception" "callback boom" msg;
        check Alcotest.int "every request still delivered"
          (Array.length reqs) !seen)

(* Snapshot bookkeeping: each successful [Append] publishes the next
   generation, its completion records that generation, and once the
   stream drains every slot has adopted the newest snapshot — so the
   retired list reclaims down to empty (workers adopt at next claim or
   just before parking, so give the idle path a beat). *)
let test_pool_generation_reclaim () =
  let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
  Pool.with_pool ~domains:3 engine (fun pool ->
      check Alcotest.int "fresh pool is generation 0" 0 (Pool.generation pool);
      let delta = Database.of_lists ~num_items:6 [ [ 1; 2; 3 ]; [ 1; 2 ] ] in
      let gens = ref [] in
      for _round = 1 to 3 do
        Array.iter
          (fun req -> Pool.submit pool req (fun _ _ -> ()))
          (count_requests ());
        (* appends run inline on the coordinator, so the callback's
           mutation of [gens] is unsynchronized on purpose *)
        Pool.submit pool
          (Pool.Append delta)
          (fun resp c ->
            (match resp with
            | Pool.R_promoted _ -> ()
            | _ -> Alcotest.fail "append must promote");
            gens := c.Pool.gen :: !gens)
      done;
      Pool.drain pool;
      check
        (Alcotest.list Alcotest.int)
        "each append publishes the next generation" [ 3; 2; 1 ] !gens;
      check Alcotest.int "published generation" 3 (Pool.generation pool);
      let rec wait n =
        if Pool.retired_snapshots pool = 0 then ()
        else if n = 0 then
          Alcotest.failf "retired snapshots never reclaimed (%d left)"
            (Pool.retired_snapshots pool)
        else begin
          Unix.sleepf 0.01;
          wait (n - 1)
        end
      in
      wait 500)

(* ------------------------------------------------------------------ *)
(* Units *)

let table2_session ?budget_bytes () =
  let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
  (Session.create ?budget_bytes engine, engine)

(* db_size 1000: minsup count c as a fraction *)
let f c = float_of_int c /. 1000.0

(* Low cut populates; a higher cut is served as a prefix refinement with
   identical results; an equal cut is a verbatim hit. *)
let test_refinement_accounting () =
  let session, engine = table2_session () in
  let broad = Session.itemsets session ~minsup:(f 3) in
  check Alcotest.int "broad answer is the whole lattice" 9 (List.length broad);
  let stats = Session.stats session in
  check Alcotest.int "one miss" 1 stats.Session.misses;
  check Alcotest.int "no hits yet" 0 stats.Session.hits;
  let narrow = Session.itemsets session ~minsup:(f 10) in
  check Alcotest.bool "refined = engine" true
    (narrow = Engine.itemsets engine ~minsup:(f 10));
  let verbatim = Session.itemsets session ~minsup:(f 3) in
  check Alcotest.bool "verbatim = first answer" true (verbatim = broad);
  let stats = Session.stats session in
  check Alcotest.int "two hits" 2 stats.Session.hits;
  check Alcotest.int "one refine" 1 stats.Session.refines;
  check Alcotest.int "still one miss" 1 stats.Session.misses

(* [last_path] reflects how the most recent call was served — the
   recorder reads it right after each query, so the classification must
   be exact on every branch. *)
let test_last_path () =
  let path =
    Alcotest.testable
      (fun ppf p ->
        Format.pp_print_string ppf
          (match p with
          | Session.Hit -> "hit"
          | Session.Refine -> "refine"
          | Session.Miss -> "miss"
          | Session.Passthrough -> "pass"))
      ( = )
  in
  let session, _engine = table2_session () in
  ignore (Session.itemsets session ~minsup:(f 3));
  check path "cold query misses" Session.Miss (Session.last_path session);
  ignore (Session.itemsets session ~minsup:(f 10));
  check path "higher cut refines" Session.Refine (Session.last_path session);
  ignore (Session.itemsets session ~minsup:(f 3));
  check path "verbatim hit" Session.Hit (Session.last_path session);
  ignore (Session.boundary session ~target:(set [ 1 ]) ~minconf:0.5);
  check path "boundary bypasses the cache" Session.Passthrough
    (Session.last_path session);
  ignore (Session.itemsets session ~minsup:(f 3));
  ignore
    (Session.append session
       (Database.of_lists ~num_items:6 [ [ 1; 2 ]; [ 1; 3 ] ]));
  check path "append is maintenance, not a query" Session.Passthrough
    (Session.last_path session);
  let disabled, _ = table2_session ~budget_bytes:0 () in
  ignore (Session.itemsets disabled ~minsup:(f 3));
  check path "disabled session passes through" Session.Passthrough
    (Session.last_path disabled)

(* A query below the cached floor recomputes and widens the entry; the
   old floor is then served as a prefix of the widened one. *)
let test_floor_widening () =
  let session, engine = table2_session () in
  ignore (Session.itemsets session ~minsup:(f 10));
  ignore (Session.itemsets session ~minsup:(f 3));
  let stats = Session.stats session in
  check Alcotest.int "second query re-misses below the floor" 2
    stats.Session.misses;
  check Alcotest.bool "widened entry serves the old cut" true
    (Session.itemsets session ~minsup:(f 10)
    = Engine.itemsets engine ~minsup:(f 10));
  let stats = Session.stats session in
  check Alcotest.int "served as refine" 1 stats.Session.refines

let test_count_uses_prefix () =
  let session, engine = table2_session () in
  ignore (Session.itemsets session ~minsup:(f 3));
  check Alcotest.int "count from the cached prefix"
    (Engine.count_itemsets engine ~minsup:(f 7))
    (Session.count_itemsets session ~minsup:(f 7));
  let stats = Session.stats session in
  check Alcotest.int "count was a hit" 1 stats.Session.hits

(* Rule lists are cached under their exact key and shared physically. *)
let test_rules_exact_key () =
  let session, _ = table2_session () in
  let r1 = Session.essential_rules session ~minsup:(f 3) ~minconf:0.3 in
  let r2 = Session.essential_rules session ~minsup:(f 3) ~minconf:0.3 in
  check Alcotest.bool "second call returns the cached list" true (r1 == r2);
  let r3 = Session.essential_rules session ~minsup:(f 3) ~minconf:0.5 in
  check Alcotest.bool "different minconf is a different key" true (r3 != r1);
  let stats = Session.stats session in
  check Alcotest.int "one hit, two misses" 1 stats.Session.hits;
  check Alcotest.int "two rule entries + nothing else" 2 stats.Session.misses

(* Top-k subsumption: a cached k-run answers every k' <= k, and an
   exhausted run answers every k' without recomputing. *)
let test_topk_subsumption () =
  let session, engine = table2_session () in
  let containing = set [ 1 ] in
  let at k = Engine.support_for_k_itemsets engine ~containing ~k in
  check Alcotest.bool "k=4 primes" true
    (Session.support_for_k_itemsets session ~containing ~k:4 = at 4);
  check Alcotest.bool "k=2 subsumed" true
    (Session.support_for_k_itemsets session ~containing ~k:2 = at 2);
  check Alcotest.bool "k=1 subsumed" true
    (Session.support_for_k_itemsets session ~containing ~k:1 = at 1);
  let stats = Session.stats session in
  check Alcotest.int "one miss, two hits" 1 stats.Session.misses;
  check Alcotest.int "both subsumed hits are refines" 2 stats.Session.refines;
  (* only 5 itemsets contain item 1: k=9 exhausts, then any k' answers *)
  check Alcotest.bool "k=9 exhausts" true
    (Session.support_for_k_itemsets session ~containing ~k:9 = at 9);
  check Alcotest.bool "k=7 from the exhausted run" true
    (Session.support_for_k_itemsets session ~containing ~k:7 = at 7);
  check Alcotest.bool "k=3 from the exhausted run" true
    (Session.support_for_k_itemsets session ~containing ~k:3 = at 3);
  let stats = Session.stats session in
  check Alcotest.int "exhausting run was the second miss" 2
    stats.Session.misses

let test_topk_rules_subsumption () =
  let session, engine = table2_session () in
  let involving = Itemset.empty in
  let at k = Engine.support_for_k_rules engine ~involving ~minconf:0.3 ~k in
  check Alcotest.bool "k=6 primes" true
    (Session.support_for_k_rules session ~involving ~minconf:0.3 ~k:6 = at 6);
  check Alcotest.bool "k=3 subsumed" true
    (Session.support_for_k_rules session ~involving ~minconf:0.3 ~k:3 = at 3);
  check Alcotest.bool "k=1 subsumed" true
    (Session.support_for_k_rules session ~involving ~minconf:0.3 ~k:1 = at 1);
  let stats = Session.stats session in
  check Alcotest.int "one miss for the family" 1 stats.Session.misses

(* Eviction keeps the resident estimate within budget and counts. *)
let test_lru_eviction () =
  let session, engine = table2_session ~budget_bytes:700 () in
  List.iter
    (fun i -> ignore (Session.itemsets ~containing:(set [ i ]) session ~minsup:(f 3)))
    [ 0; 1; 2; 3; 0; 1 ];
  let stats = Session.stats session in
  check Alcotest.bool "evictions happened" true (stats.Session.evictions > 0);
  check Alcotest.bool "resident <= budget" true
    (stats.Session.resident_bytes <= stats.Session.budget_bytes);
  (* correctness is unaffected by churn *)
  check Alcotest.bool "answers still exact" true
    (Session.itemsets ~containing:(set [ 2 ]) session ~minsup:(f 3)
    = Engine.itemsets ~containing:(set [ 2 ]) engine ~minsup:(f 3))

(* After append the engine epoch changes: the old entry is dropped at
   lookup, never served. *)
let test_epoch_invalidation () =
  let db = Helpers.small_db () in
  let lat = lattice_of db ~threshold:2 in
  let session = Session.create (Engine.of_lattice lat) in
  let before = Session.itemsets session ~minsup:(2.0 /. 10.0) in
  let delta = Database.of_lists ~num_items:5 [ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ] ] in
  let _promoted = Session.append session delta in
  let oracle, _ = Engine.append (Engine.of_lattice lat) delta in
  let minsup = 2.0 /. float_of_int (Engine.db_size oracle) in
  let after = Session.itemsets session ~minsup in
  check Alcotest.bool "post-append answer matches a fresh engine" true
    (after = Engine.itemsets oracle ~minsup);
  check Alcotest.bool "supports actually moved" true (after <> before);
  let stats = Session.stats session in
  check Alcotest.int "stale entry was not served" 2 stats.Session.misses;
  check Alcotest.int "no hits across the epoch" 0 stats.Session.hits

let test_flush () =
  let session, _ = table2_session () in
  ignore (Session.itemsets session ~minsup:(f 3));
  ignore (Session.essential_rules session ~minsup:(f 3) ~minconf:0.5);
  let stats = Session.stats session in
  check Alcotest.int "two entries cached" 2 stats.Session.entries;
  Session.flush session;
  let stats = Session.stats session in
  check Alcotest.int "flush empties the table" 0 stats.Session.entries;
  check Alcotest.int "flush zeroes residency" 0 stats.Session.resident_bytes;
  ignore (Session.itemsets session ~minsup:(f 3));
  check Alcotest.int "next query re-misses" 3 (Session.stats session).Session.misses

let test_disabled_passthrough () =
  let session, engine = table2_session ~budget_bytes:0 () in
  check Alcotest.bool "disabled" false (Session.enabled session);
  check Alcotest.bool "still answers" true
    (Session.itemsets session ~minsup:(f 4) = Engine.itemsets engine ~minsup:(f 4));
  let stats = Session.stats session in
  check Alcotest.int "no accounting" 0 (stats.Session.hits + stats.Session.misses);
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Session.create: budget_bytes") (fun () ->
      ignore (Session.create ~budget_bytes:(-1) engine))

(* The disabled session adds nothing to the engine's allocation profile
   — the acceptance criterion for leaving the cache off. Measured in
   minor words, not [Gc.allocated_bytes]: the latter also counts runtime
   stack-chunk growth, which fires spuriously when the session's extra
   frames straddle a stack-chunk boundary (a function of the harness's
   call depth, not of this code). Any real per-query regression here —
   re-boxing an optional argument, building a closure — lands on the
   minor heap. *)
let test_disabled_zero_alloc () =
  let lat = Helpers.table2_lattice () in
  let engine = Engine.of_lattice lat in
  let session = Session.create ~budget_bytes:0 engine in
  let frac = 4.0 /. float_of_int (Lattice.db_size lat) in
  let engine_query () = ignore (Engine.count_itemsets engine ~minsup:frac) in
  let session_query () = ignore (Session.count_itemsets session ~minsup:frac) in
  let measure f =
    f ();
    let before = Gc.minor_words () in
    for _ = 1 to 1000 do
      f ()
    done;
    8.0 *. (Gc.minor_words () -. before)
  in
  let engine_bytes = measure engine_query in
  let session_bytes = measure session_query in
  if session_bytes > engine_bytes +. 512.0 then
    Alcotest.failf
      "disabled session allocated %.0f bytes over 1000 queries vs %.0f direct"
      session_bytes engine_bytes

let case name fn = Alcotest.test_case name `Quick fn

let suites =
  [
    ( "serve.session",
      [
        case "refinement accounting" test_refinement_accounting;
        case "last path classification" test_last_path;
        case "floor widening" test_floor_widening;
        case "count via cached prefix" test_count_uses_prefix;
        case "rules exact-key sharing" test_rules_exact_key;
        case "top-k subsumption" test_topk_subsumption;
        case "top-k rules subsumption" test_topk_rules_subsumption;
        case "lru eviction under budget" test_lru_eviction;
        case "epoch invalidation on append" test_epoch_invalidation;
        case "flush" test_flush;
        case "disabled passthrough" test_disabled_passthrough;
        case "disabled session allocates nothing" test_disabled_zero_alloc;
      ] );
    Helpers.qsuite "serve.order"
      [ canonical_order_prop; prefix_property_prop ];
    Helpers.qsuite "serve.diff"
      [ session_differential_prop; session_tiny_budget_prop ];
    ( "serve.pool",
      [
        case "create validation" test_pool_create_validation;
        case "traced pool tags spans by domain" test_pool_traced_spans;
        case "shutdown idempotent" test_pool_shutdown_idempotent;
        case "responses land in submission order" test_pool_submission_order;
        case "run_deliver delivers each result exactly once"
          test_pool_run_deliver;
        case "generations publish and retired snapshots reclaim"
          test_pool_generation_reclaim;
      ] );
    Helpers.qsuite "serve.pool.diff"
      [
        pool_differential_prop;
        pool_differential_uncached_prop;
        pool_stream_differential_prop;
        pool_stream_differential_uncached_prop;
      ];
  ]
