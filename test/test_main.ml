(* Aggregated alcotest entry point for the whole repository. *)

let () =
  Alcotest.run "olar"
    (Test_util.suites @ Test_data.suites @ Test_mining.suites
   @ Test_core.suites @ Test_queries.suites @ Test_datagen.suites
   @ Test_baseline.suites @ Test_extensions.suites @ Test_taxonomy.suites
   @ Test_quant.suites @ Test_cli.suites @ Test_laws.suites
   @ Test_integration.suites)
