(* Aggregated alcotest entry point for the whole repository.

   With OLAR_QUICK set (the [runtest-quick] alias), the slow suites —
   dataset generation, CLI subprocess round-trips and end-to-end
   integration — are skipped, leaving the fast unit and property
   suites. *)

let quick_only =
  match Sys.getenv_opt "OLAR_QUICK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let slow_suites =
  Test_datagen.suites @ Test_cli.suites @ Test_integration.suites

let () =
  Alcotest.run "olar"
    (Test_util.suites @ Test_data.suites @ Test_mining.suites
   @ Test_core.suites @ Test_queries.suites @ Test_lattice_csr.suites
   @ Test_serve.suites @ Test_baseline.suites @ Test_extensions.suites
   @ Test_taxonomy.suites @ Test_quant.suites @ Test_laws.suites
   @ Test_obs.suites @ Test_replay.suites @ Test_net.suites
    @ (if quick_only then [] else slow_suites))
