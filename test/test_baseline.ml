(* Tests for olar.baseline: the naive rule generator / redundancy filter
   and the direct (mine-per-query) comparator. *)

open Olar_data
open Olar_core
open Olar_baseline

let check = Alcotest.check
let set = Itemset.of_list
let rules = Alcotest.list Helpers.rule
let conf = Conf.of_float

let test_naive_all_rules () =
  let db = Helpers.small_db () in
  let frequent = Helpers.brute_frequent db ~minsup:2 in
  let support a =
    if Itemset.is_empty a then Database.size db else Database.support_count db a
  in
  let got = Naive_rules.all_rules ~support ~frequent ~confidence:(conf 0.6) in
  (* every rule checks out against the database *)
  List.iter
    (fun r ->
      check Alcotest.int "support count"
        (Database.support_count db (Rule.union r))
        r.Rule.support_count;
      check Alcotest.int "antecedent count"
        (Database.support_count db r.Rule.antecedent)
        r.Rule.antecedent_count;
      check Alcotest.bool "confidence" true (Rule.confidence r >= 0.6 -. 1e-9))
    got;
  (* completeness: {0,1} => {2} has confidence 3/4 and must be present *)
  let expected =
    Rule.make ~antecedent:(set [ 0; 1 ]) ~consequent:(set [ 2 ]) ~support_count:3
      ~antecedent_count:4
  in
  check Alcotest.bool "contains {0,1}=>{2}" true
    (List.exists (Rule.equal expected) got)

let test_naive_no_frequent () =
  check rules "no input, no rules" []
    (Naive_rules.all_rules ~support:(fun _ -> 0) ~frequent:[] ~confidence:(conf 0.5))

let test_essential_filter_table1 () =
  (* With all five Table 1 rules present, only X => YZ survives. *)
  let mk a c sup ante =
    Rule.make ~antecedent:(set a) ~consequent:(set c) ~support_count:sup
      ~antecedent_count:ante
  in
  let x_yz = mk [ 0 ] [ 1; 2 ] 3 10 in
  let family =
    [ x_yz; mk [ 0; 1 ] [ 2 ] 3 4; mk [ 0; 2 ] [ 1 ] 3 5; mk [ 0 ] [ 1 ] 4 10; mk [ 0 ] [ 2 ] 5 10 ]
  in
  check rules "only the informative rule" [ x_yz ]
    (Naive_rules.essential_filter family)

let test_essential_filter_keeps_unrelated () =
  let a =
    Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 1 ]) ~support_count:2
      ~antecedent_count:4
  in
  let b =
    Rule.make ~antecedent:(set [ 5 ]) ~consequent:(set [ 6 ]) ~support_count:2
      ~antecedent_count:4
  in
  check rules "unrelated rules survive" [ a; b ] (Naive_rules.essential_filter [ a; b ])

let test_direct_query () =
  let db = Helpers.small_db () in
  let answer = Direct.query db ~minsup:2 ~confidence:(conf 0.6) in
  check (Alcotest.list Helpers.entry) "itemsets = brute force"
    (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:2))
    (Helpers.sort_entries answer.Direct.itemsets);
  check rules "rules = brute force"
    (Helpers.brute_rules db ~minsup:2 ~confidence:(conf 0.6))
    answer.Direct.rules;
  check Alcotest.bool "timers nonneg" true
    (answer.Direct.mining_seconds >= 0.0 && answer.Direct.rulegen_seconds >= 0.0)

let test_direct_query_containing () =
  let db = Helpers.small_db () in
  let z = set [ 3 ] in
  let answer = Direct.query ~containing:z db ~minsup:2 ~confidence:(conf 0.4) in
  List.iter
    (fun (x, _) -> check Alcotest.bool "itemset contains z" true (Itemset.subset z x))
    answer.Direct.itemsets;
  List.iter
    (fun r -> check Alcotest.bool "rule mentions z" true (Itemset.subset z (Rule.union r)))
    answer.Direct.rules

let test_direct_query_apriori_miner () =
  let db = Helpers.small_db () in
  let dhp = Direct.query db ~minsup:2 ~confidence:(conf 0.6) in
  let apriori =
    Direct.query ~miner:Olar_mining.Threshold.Use_apriori db ~minsup:2
      ~confidence:(conf 0.6)
  in
  check rules "same rules either miner" dhp.Direct.rules apriori.Direct.rules

(* The direct baseline and the online engine must produce identical
   answers on any database and thresholds the lattice can serve. *)
let direct_vs_online_prop =
  QCheck2.Test.make ~name:"direct baseline equals online engine" ~count:50
    ~print:(fun (db, (s, cf)) -> Helpers.db_print db ^ Printf.sprintf " s=%d c=%f" s cf)
    QCheck2.Gen.(pair Helpers.db_gen (pair (int_range 1 5) (float_range 0.1 1.0)))
    (fun (db, (minsup, cf)) ->
      let c = conf cf in
      let direct = Direct.query db ~minsup ~confidence:c in
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      let online_itemsets =
        Query.to_entries lat
          (Query.find_itemsets lat ~containing:Itemset.empty ~minsup)
      in
      let online_rules = Rulegen.all_rules lat ~minsup ~confidence:c in
      Helpers.sort_entries direct.Direct.itemsets
      = Helpers.sort_entries online_itemsets
      && direct.Direct.rules = online_rules)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "baseline.naive_rules",
      [
        case "all rules" test_naive_all_rules;
        case "empty input" test_naive_no_frequent;
        case "essential filter (Table 1)" test_essential_filter_table1;
        case "keeps unrelated" test_essential_filter_keeps_unrelated;
      ] );
    ( "baseline.direct",
      [
        case "query" test_direct_query;
        case "containing" test_direct_query_containing;
        case "apriori miner" test_direct_query_apriori_miner;
        QCheck_alcotest.to_alcotest direct_vs_online_prop;
      ] );
  ]
