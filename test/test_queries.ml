(* Tests for the online query algorithms of olar.core: FindItemsets,
   FindSupport, FindBoundary, rule generation with redundancy
   elimination, lattice serialization and the Engine façade. Each
   algorithm is checked against a brute-force oracle. *)

open Olar_data
open Olar_core

let check = Alcotest.check
let set = Itemset.of_list
let itemset = Helpers.itemset
let entries = Alcotest.list Helpers.entry
let rules = Alcotest.list Helpers.rule
let conf = Conf.of_float

(* ------------------------------------------------------------------ *)
(* Query (FindItemsets) *)

let test_find_itemsets_table2 () =
  let lat = Helpers.table2_lattice () in
  (* All itemsets at support >= 4 (0.4%): singletons + AB? AB=4, AC=7,
     BD=6, BC=4; ABC=3 excluded. *)
  let got = Query.find_itemsets lat ~containing:Itemset.empty ~minsup:4 in
  check entries "all at minsup 4"
    [
      (set [ 2 ], 30); (set [ 1 ], 20); (set [ 0 ], 10); (set [ 3 ], 10);
      (set [ 0; 2 ], 7); (set [ 1; 3 ], 6); (set [ 0; 1 ], 4); (set [ 1; 2 ], 4);
    ]
    (Query.to_entries lat got);
  (* Itemsets containing B at support >= 4. *)
  let got = Query.find_itemsets lat ~containing:(set [ 1 ]) ~minsup:4 in
  check entries "containing B"
    [ (set [ 1 ], 20); (set [ 1; 3 ], 6); (set [ 0; 1 ], 4); (set [ 1; 2 ], 4) ]
    (Query.to_entries lat got);
  (* Without the start vertex. *)
  let got =
    Query.find_itemsets ~include_start:false lat ~containing:(set [ 1 ]) ~minsup:4
  in
  check entries "exclude start"
    [ (set [ 1; 3 ], 6); (set [ 0; 1 ], 4); (set [ 1; 2 ], 4) ]
    (Query.to_entries lat got)

(* The full start-vertex matrix: {empty, non-empty} containing ×
   {true, false} include_start. The root is never reported, so
   include_start only matters for a non-empty, qualifying start. *)
let test_find_itemsets_include_start_matrix () =
  let lat = Helpers.table2_lattice () in
  let run ~containing ~include_start =
    Query.to_entries lat
      (Query.find_itemsets ~include_start lat ~containing ~minsup:10)
  in
  let singletons =
    [ (set [ 2 ], 30); (set [ 1 ], 20); (set [ 0 ], 10); (set [ 3 ], 10) ]
  in
  (* Empty containing: the empty itemset is never included, regardless
     of include_start. *)
  check entries "empty containing, include_start=true" singletons
    (run ~containing:Itemset.empty ~include_start:true);
  check entries "empty containing, include_start=false" singletons
    (run ~containing:Itemset.empty ~include_start:false);
  (* Non-empty containing {A}: only the start itself qualifies at
     minsup 10, so include_start decides between [A] and []. *)
  check entries "containing A, include_start=true"
    [ (set [ 0 ], 10) ]
    (run ~containing:(set [ 0 ]) ~include_start:true);
  check entries "containing A, include_start=false" []
    (run ~containing:(set [ 0 ]) ~include_start:false);
  (* count_itemsets follows the same matrix. *)
  let count ~containing ~include_start =
    Query.count_itemsets ~include_start lat ~containing ~minsup:10
  in
  check Alcotest.int "count: empty, true" 4
    (count ~containing:Itemset.empty ~include_start:true);
  check Alcotest.int "count: empty, false" 4
    (count ~containing:Itemset.empty ~include_start:false);
  check Alcotest.int "count: A, true" 1
    (count ~containing:(set [ 0 ]) ~include_start:true);
  check Alcotest.int "count: A, false" 0
    (count ~containing:(set [ 0 ]) ~include_start:false)

let test_find_itemsets_not_primary () =
  let lat = Helpers.table2_lattice () in
  check entries "non-primary start is empty" []
    (Query.to_entries lat (Query.find_itemsets lat ~containing:(set [ 0; 3 ]) ~minsup:5))

let test_find_itemsets_below_primary () =
  let lat = Helpers.table2_lattice () in
  (try
     ignore (Query.find_itemsets lat ~containing:Itemset.empty ~minsup:2);
     Alcotest.fail "expected Below_primary_threshold"
   with Query.Below_primary_threshold { requested; primary } ->
     check Alcotest.int "requested" 2 requested;
     check Alcotest.int "primary" 3 primary);
  Alcotest.check_raises "minsup 0"
    (Invalid_argument "Query: minsup must be positive") (fun () ->
      ignore (Query.find_itemsets lat ~containing:Itemset.empty ~minsup:0))

let test_count_itemsets () =
  let lat = Helpers.table2_lattice () in
  check Alcotest.int "count = length" 8
    (Query.count_itemsets lat ~containing:Itemset.empty ~minsup:4);
  check Alcotest.int "count containing B" 4
    (Query.count_itemsets lat ~containing:(set [ 1 ]) ~minsup:4)

let test_find_itemsets_work_is_output_sensitive () =
  let lat = Helpers.table2_lattice () in
  let work_small = Olar_util.Timer.Counter.create "w" in
  let _ = Query.find_itemsets ~work:work_small lat ~containing:Itemset.empty ~minsup:25 in
  let work_large = Olar_util.Timer.Counter.create "w" in
  let _ = Query.find_itemsets ~work:work_large lat ~containing:Itemset.empty ~minsup:3 in
  check Alcotest.bool "smaller output, less work" true
    (Olar_util.Timer.Counter.value work_small
    < Olar_util.Timer.Counter.value work_large)

(* Oracle: FindItemsets must equal a filter over all itemsets. *)
let find_itemsets_oracle_prop =
  QCheck2.Test.make ~name:"find_itemsets: equals brute-force filter" ~count:80
    ~print:(fun ((db, z), s) ->
      Helpers.db_print db ^ "/" ^ Itemset.to_string z ^ Printf.sprintf " s=%d" s)
    QCheck2.Gen.(pair Helpers.db_and_itemset_gen (int_range 1 6))
    (fun ((db, z), minsup) ->
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      let got =
        Query.to_entries lat (Query.find_itemsets lat ~containing:z ~minsup)
      in
      let expected =
        List.filter
          (fun (x, c) -> Itemset.subset z x && c >= minsup)
          (Helpers.brute_frequent db ~minsup:1)
      in
      Helpers.sort_entries got = Helpers.sort_entries expected)

(* ------------------------------------------------------------------ *)
(* Support_query (FindSupport) *)

let test_find_support_table2 () =
  let lat = Helpers.table2_lattice () in
  (* Top-3 itemsets overall: C (30), B (20), A|D (10, tie -> smaller
     cardinality/lex deterministic). *)
  let a = Support_query.find_support lat ~containing:Itemset.empty ~k:3 in
  check entries "top 3" [ (set [ 2 ], 30); (set [ 1 ], 20); (set [ 0 ], 10) ]
    a.Support_query.itemsets;
  check (Alcotest.option Alcotest.int) "support level" (Some 10)
    a.Support_query.support_level;
  (* k = 4 picks up D at the same support *)
  let a4 = Support_query.find_support lat ~containing:Itemset.empty ~k:4 in
  check (Alcotest.option Alcotest.int) "level at k=4" (Some 10)
    a4.Support_query.support_level

let test_find_support_containing () =
  let lat = Helpers.table2_lattice () in
  let a = Support_query.find_support lat ~containing:(set [ 0 ]) ~k:2 in
  check entries "top 2 containing A" [ (set [ 0 ], 10); (set [ 0; 2 ], 7) ]
    a.Support_query.itemsets

let test_find_support_exhausted () =
  let lat = Helpers.table2_lattice () in
  let a = Support_query.find_support lat ~containing:(set [ 3 ]) ~k:10 in
  (* only D and BD contain D *)
  check Alcotest.int "all found" 2 (List.length a.Support_query.itemsets);
  check (Alcotest.option Alcotest.int) "no level" None a.Support_query.support_level;
  let missing = Support_query.find_support lat ~containing:(set [ 0; 3 ]) ~k:1 in
  check Alcotest.int "not primary: empty" 0 (List.length missing.Support_query.itemsets);
  Alcotest.check_raises "k=0" (Invalid_argument "Support_query.find_support: k")
    (fun () -> ignore (Support_query.find_support lat ~containing:Itemset.empty ~k:0))

(* Oracle: the k highest-support itemsets containing Z. *)
let find_support_oracle_prop =
  QCheck2.Test.make ~name:"find_support: equals sort oracle" ~count:80
    ~print:(fun ((db, z), k) ->
      Helpers.db_print db ^ "/" ^ Itemset.to_string z ^ Printf.sprintf " k=%d" k)
    QCheck2.Gen.(pair Helpers.db_and_itemset_gen (int_range 1 12))
    (fun ((db, z), k) ->
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      let answer = Support_query.find_support lat ~containing:z ~k in
      let eligible =
        List.filter (fun (x, _) -> Itemset.subset z x) (Helpers.brute_frequent db ~minsup:1)
      in
      let sorted =
        List.sort (fun (_, c1) (_, c2) -> Int.compare c2 c1) eligible
      in
      let expected_supports =
        List.filteri (fun i _ -> i < k) (List.map snd sorted)
      in
      List.map snd answer.Support_query.itemsets = expected_supports
      &&
      match answer.Support_query.support_level with
      | Some level ->
        List.length expected_supports = k
        && level = List.nth expected_supports (k - 1)
      | None -> List.length eligible < k)

let test_find_support_for_rules () =
  let lat = Helpers.table2_lattice () in
  (* At confidence 0.3: from BD (6), rules D=>B (6/10=0.6) and B=>D (0.3)
     both qualify; BD is the strongest rule-bearing itemset. *)
  let a =
    Support_query.find_support_for_rules lat ~involving:Itemset.empty
      ~confidence:(conf 0.3) ~k:2
  in
  (* pops: AC (7) yields A=>C; BD (6) yields B=>D and D=>B, crossing k *)
  check Alcotest.int "three rules accumulated" 3 (List.length a.Support_query.rules);
  check (Alcotest.option Alcotest.int) "level" (Some 6)
    a.Support_query.rule_support_level;
  (* Asking for more rules than exist *)
  let all =
    Support_query.find_support_for_rules lat ~involving:Itemset.empty
      ~confidence:(conf 0.999) ~k:100
  in
  check (Alcotest.option Alcotest.int) "unreachable k" None
    all.Support_query.rule_support_level

let test_find_support_for_rules_involving () =
  let lat = Helpers.table2_lattice () in
  let a =
    Support_query.find_support_for_rules lat ~involving:(set [ 0 ])
      ~confidence:(conf 0.2) ~k:1
  in
  (* strongest itemset containing A with a rule: AC (7): C=>A 7/30 fails
     0.2? 0.2333 >= 0.2 yes; A=>C 0.7 passes. *)
  check (Alcotest.option Alcotest.int) "level" (Some 7)
    a.Support_query.rule_support_level;
  List.iter
    (fun r ->
      check Alcotest.bool "involves A" true
        (Itemset.mem 0 (Rule.union r)))
    a.Support_query.rules

(* ------------------------------------------------------------------ *)
(* Boundary *)

(* The Figure 4 shape: DEFG (D=0,E=1,F=2,G=3) where exactly the three
   3-subsets DEF, DFG, EFG satisfy the confidence bound. *)
let figure4_lattice () =
  let e l c = (set l, c) in
  Lattice.of_entries ~db_size:1000 ~threshold:100
    [|
      e [ 0 ] 500; e [ 1 ] 500; e [ 2 ] 500; e [ 3 ] 500;
      e [ 0; 1 ] 400; e [ 0; 2 ] 400; e [ 0; 3 ] 400;
      e [ 1; 2 ] 400; e [ 1; 3 ] 400; e [ 2; 3 ] 400;
      e [ 0; 1; 2 ] 200; e [ 0; 2; 3 ] 200; e [ 1; 2; 3 ] 200;
      e [ 0; 1; 3 ] 250;
      e [ 0; 1; 2; 3 ] 180;
    |]

let test_boundary_figure4 () =
  let lat = figure4_lattice () in
  let defg = Option.get (Lattice.find lat (set [ 0; 1; 2; 3 ])) in
  let b = Boundary.find_boundary lat ~target:defg ~confidence:(conf 0.9) in
  check (Alcotest.list itemset) "three maximal ancestors"
    [ set [ 0; 1; 2 ]; set [ 0; 2; 3 ]; set [ 1; 2; 3 ] ]
    (List.map (Lattice.itemset lat) b);
  (* the non-maximal satisfying ancestor set equals the boundary here *)
  let all = Boundary.all_ancestor_antecedents lat ~target:defg ~confidence:(conf 0.9) in
  check Alcotest.int "all satisfying" 3 (List.length all)

let test_boundary_includes_non_maximal () =
  let lat = figure4_lattice () in
  let defg = Option.get (Lattice.find lat (set [ 0; 1; 2; 3 ])) in
  (* At c=0.45, bound = 400: pairs and DEG also satisfy. *)
  let b = Boundary.find_boundary lat ~target:defg ~confidence:(conf 0.45) in
  check (Alcotest.list itemset) "maximal are the pairs"
    [ set [ 0; 1 ]; set [ 0; 2 ]; set [ 0; 3 ]; set [ 1; 2 ]; set [ 1; 3 ]; set [ 2; 3 ] ]
    (List.map (Lattice.itemset lat) b);
  let all =
    Boundary.all_ancestor_antecedents lat ~target:defg ~confidence:(conf 0.45)
  in
  check Alcotest.int "all satisfying: 6 pairs + 4 triples" 10 (List.length all)

let test_boundary_empty_antecedent_policy () =
  let lat = Helpers.table2_lattice () in
  let abc = Option.get (Lattice.find lat (set [ 0; 1; 2 ])) in
  (* At a tiny confidence every ancestor satisfies; without empty
     antecedents the singletons are maximal, with them the root is. *)
  let b = Boundary.find_boundary lat ~target:abc ~confidence:(conf 0.003) in
  check (Alcotest.list itemset) "singletons"
    [ set [ 0 ]; set [ 1 ]; set [ 2 ] ]
    (List.map (Lattice.itemset lat) b);
  let cs = { Boundary.unconstrained with allow_empty_antecedent = true } in
  let b = Boundary.find_boundary ~constraints:cs lat ~target:abc ~confidence:(conf 0.003) in
  check (Alcotest.list itemset) "root only" [ Itemset.empty ]
    (List.map (Lattice.itemset lat) b)

let test_boundary_constraints () =
  let lat = figure4_lattice () in
  let defg = Option.get (Lattice.find lat (set [ 0; 1; 2; 3 ])) in
  (* Antecedent must contain D (=0): EFG drops out, E-containing DEF and
     D-containing DFG stay. *)
  let cs = { Boundary.unconstrained with antecedent_includes = set [ 0 ] } in
  let b = Boundary.find_boundary ~constraints:cs lat ~target:defg ~confidence:(conf 0.9) in
  check (Alcotest.list itemset) "antecedent includes D"
    [ set [ 0; 1; 2 ]; set [ 0; 2; 3 ] ]
    (List.map (Lattice.itemset lat) b);
  (* Consequent must contain G (=3): only DEF qualifies (its complement
     is {G}); DFG and EFG contain G in the antecedent. *)
  let cs = { Boundary.unconstrained with consequent_includes = set [ 3 ] } in
  let b = Boundary.find_boundary ~constraints:cs lat ~target:defg ~confidence:(conf 0.9) in
  check (Alcotest.list itemset) "consequent includes G" [ set [ 0; 1; 2 ] ]
    (List.map (Lattice.itemset lat) b);
  (* Infeasible: P and Q overlap. *)
  let cs =
    {
      Boundary.unconstrained with
      antecedent_includes = set [ 0 ];
      consequent_includes = set [ 0 ];
    }
  in
  check (Alcotest.list itemset) "overlapping P,Q" []
    (List.map (Lattice.itemset lat)
       (Boundary.find_boundary ~constraints:cs lat ~target:defg ~confidence:(conf 0.9)));
  (* P not inside X *)
  let cs = { Boundary.unconstrained with antecedent_includes = set [ 9 ] } in
  check (Alcotest.list itemset) "P outside X" []
    (List.map (Lattice.itemset lat)
       (Boundary.find_boundary ~constraints:cs lat ~target:defg ~confidence:(conf 0.9)))

let test_boundary_bad_target () =
  let lat = Helpers.table2_lattice () in
  Alcotest.check_raises "bad id" (Invalid_argument "Boundary: bad vertex id")
    (fun () ->
      ignore (Boundary.find_boundary lat ~target:99 ~confidence:(conf 0.5)))

(* Brute-force oracle for boundaries over a full lattice of a random
   database. *)
let brute_boundary db ~target_set ~c ~p ~q ~allow_empty =
  let n = Database.size db in
  let sup x = if Itemset.is_empty x then n else Database.support_count db x in
  let sx = sup target_set in
  let candidates =
    List.filter
      (fun y ->
        Itemset.strict_subset y target_set
        && (allow_empty || not (Itemset.is_empty y))
        && Itemset.subset p y
        && Itemset.disjoint y q
        && Conf.satisfied c ~union_count:sx ~antecedent_count:(sup y))
      (Itemset.subsets target_set)
  in
  (* maximal = no strict subset also a candidate *)
  List.filter
    (fun y ->
      not (List.exists (fun z -> Itemset.strict_subset z y) candidates))
    candidates

let boundary_oracle_prop =
  QCheck2.Test.make ~name:"boundary: equals brute-force maximal ancestors"
    ~count:80
    ~print:(fun ((db, _), cf) -> Helpers.db_print db ^ Printf.sprintf " c=%f" cf)
    QCheck2.Gen.(pair Helpers.db_and_itemset_gen (float_range 0.05 1.0))
    (fun ((db, z), cf) ->
      let c = conf cf in
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      match Lattice.find lat z with
      | None -> QCheck2.assume_fail ()
      | Some target ->
        QCheck2.assume (Itemset.cardinal z >= 1);
        let got =
          List.map (Lattice.itemset lat)
            (Boundary.find_boundary lat ~target ~confidence:c)
        in
        let expected =
          brute_boundary db ~target_set:z ~c ~p:Itemset.empty ~q:Itemset.empty
            ~allow_empty:false
        in
        List.sort Itemset.compare got = List.sort Itemset.compare expected)

let boundary_constrained_oracle_prop =
  QCheck2.Test.make ~name:"boundary: constrained equals brute force" ~count:80
    ~print:(fun (((db, _), _), cf) -> Helpers.db_print db ^ Printf.sprintf " c=%f" cf)
    QCheck2.Gen.(
      pair
        (pair Helpers.db_and_itemset_gen (pair (int_range 0 7) (int_range 0 7)))
        (float_range 0.05 1.0))
    (fun (((db, z), (pi, qi)), cf) ->
      QCheck2.assume (Itemset.cardinal z >= 2);
      let c = conf cf in
      let items = Itemset.to_array z in
      let p = Itemset.singleton items.(pi mod Array.length items) in
      let q = Itemset.singleton items.(qi mod Array.length items) in
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      match Lattice.find lat z with
      | None -> QCheck2.assume_fail ()
      | Some target ->
        let cs =
          {
            Boundary.unconstrained with
            antecedent_includes = p;
            consequent_includes = q;
          }
        in
        let got =
          List.map (Lattice.itemset lat)
            (Boundary.find_boundary ~constraints:cs lat ~target ~confidence:c)
        in
        let expected =
          if Itemset.disjoint p q then
            brute_boundary db ~target_set:z ~c ~p ~q ~allow_empty:false
          else []
        in
        List.sort Itemset.compare got = List.sort Itemset.compare expected)

(* ------------------------------------------------------------------ *)
(* Rulegen *)

let test_essential_rules_figure4 () =
  let lat = figure4_lattice () in
  let got = Rulegen.essential_rules lat ~minsup:150 ~confidence:(conf 0.9) in
  (* From DEFG: the three boundary rules; DEF/DFG/EFG themselves generate
     nothing at 0.9 (pair supports 400 are far above 200/0.9). *)
  check rules "three essential rules"
    [
      Rule.make ~antecedent:(set [ 0; 1; 2 ]) ~consequent:(set [ 3 ])
        ~support_count:180 ~antecedent_count:200;
      Rule.make ~antecedent:(set [ 0; 2; 3 ]) ~consequent:(set [ 1 ])
        ~support_count:180 ~antecedent_count:200;
      Rule.make ~antecedent:(set [ 1; 2; 3 ]) ~consequent:(set [ 0 ])
        ~support_count:180 ~antecedent_count:200;
    ]
    got

let test_essential_strict_pruning () =
  (* A chain where the same antecedent serves a child itemset: the rule
     from the parent itemset must be pruned (Theorem 4.5). With
     A={0}: S(A)=10, S(AB)=9, S(ABC)=9: at c=0.9, A=>B (9/10) and
     A=>BC (9/10) both clear, but A=>B is strictly redundant w.r.t.
     A=>BC. *)
  let lat =
    Lattice.of_entries ~db_size:100 ~threshold:5
      [|
        (set [ 0 ], 10); (set [ 1 ], 10); (set [ 2 ], 10);
        (set [ 0; 1 ], 9); (set [ 0; 2 ], 9); (set [ 1; 2 ], 9);
        (set [ 0; 1; 2 ], 9);
      |]
  in
  let got = Rulegen.essential_rules lat ~minsup:5 ~confidence:(conf 0.9) in
  check rules "only the maximal-itemset rules"
    [
      Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 1; 2 ])
        ~support_count:9 ~antecedent_count:10;
      Rule.make ~antecedent:(set [ 1 ]) ~consequent:(set [ 0; 2 ])
        ~support_count:9 ~antecedent_count:10;
      Rule.make ~antecedent:(set [ 2 ]) ~consequent:(set [ 0; 1 ])
        ~support_count:9 ~antecedent_count:10;
    ]
    got

let test_essential_vs_brute_small_db () =
  let db = Helpers.small_db () in
  let engine = Helpers.full_engine db in
  let lat = Engine.lattice engine in
  List.iter
    (fun (minsup, cf) ->
      let got = Rulegen.essential_rules lat ~minsup ~confidence:(conf cf) in
      let expected = Helpers.brute_essential_rules db ~minsup ~confidence:(conf cf) in
      check rules (Printf.sprintf "minsup=%d c=%.2f" minsup cf)
        (List.sort Rule.compare expected)
        got)
    [ (2, 0.6); (2, 0.9); (3, 0.5); (4, 0.75); (2, 1.0); (5, 0.1) ]

let test_all_rules_vs_brute () =
  let db = Helpers.small_db () in
  let engine = Helpers.full_engine db in
  let lat = Engine.lattice engine in
  let got = Rulegen.all_rules lat ~minsup:2 ~confidence:(conf 0.6) in
  let expected = Helpers.brute_rules db ~minsup:2 ~confidence:(conf 0.6) in
  check rules "all rules" (List.sort Rule.compare expected) got

let test_rules_containing () =
  let db = Helpers.small_db () in
  let engine = Helpers.full_engine db in
  let lat = Engine.lattice engine in
  let z = set [ 3 ] in
  let got = Rulegen.all_rules ~containing:z lat ~minsup:2 ~confidence:(conf 0.4) in
  let expected =
    List.filter
      (fun r -> Itemset.subset z (Rule.union r))
      (Helpers.brute_rules db ~minsup:2 ~confidence:(conf 0.4))
  in
  check rules "scoped to itemsets containing {3}"
    (List.sort Rule.compare expected)
    got;
  List.iter
    (fun r -> check Alcotest.bool "mentions 3" true (Itemset.mem 3 (Rule.union r)))
    got

let test_single_consequent_rules () =
  let db = Helpers.small_db () in
  let engine = Helpers.full_engine db in
  let lat = Engine.lattice engine in
  let got = Rulegen.single_consequent_rules lat ~minsup:2 ~confidence:(conf 0.6) in
  let expected =
    List.filter Rule.single_consequent
      (Helpers.brute_rules db ~minsup:2 ~confidence:(conf 0.6))
  in
  check rules "single-consequent" (List.sort Rule.compare expected) got

let test_redundancy_report () =
  let db = Helpers.small_db () in
  let engine = Helpers.full_engine db in
  let lat = Engine.lattice engine in
  let r = Rulegen.redundancy lat ~minsup:2 ~confidence:(conf 0.6) in
  let all = Helpers.brute_rules db ~minsup:2 ~confidence:(conf 0.6) in
  let ess = Helpers.brute_essential_rules db ~minsup:2 ~confidence:(conf 0.6) in
  check Alcotest.int "total" (List.length all) r.Rulegen.total_rules;
  check Alcotest.int "essential" (List.length ess) r.Rulegen.essential_count;
  check (Alcotest.float 1e-9) "ratio"
    (float_of_int (List.length all) /. float_of_int (List.length ess))
    r.Rulegen.redundancy_ratio;
  (* no rules at impossible thresholds: ratio degrades to 1 *)
  let none = Rulegen.redundancy lat ~minsup:11 ~confidence:(conf 1.0) in
  check Alcotest.int "no rules" 0 none.Rulegen.total_rules;
  check (Alcotest.float 0.0) "ratio 1" 1.0 none.Rulegen.redundancy_ratio

let essential_oracle_prop =
  QCheck2.Test.make ~name:"essential rules: equal brute-force Definition 4.2"
    ~count:60
    ~print:(fun ((db, _), (s, cf)) ->
      Helpers.db_print db ^ Printf.sprintf " s=%d c=%f" s cf)
    QCheck2.Gen.(
      pair Helpers.db_and_itemset_gen (pair (int_range 1 5) (float_range 0.1 1.0)))
    (fun ((db, _), (minsup, cf)) ->
      let c = conf cf in
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      let got = Rulegen.essential_rules lat ~minsup ~confidence:c in
      let expected = Helpers.brute_essential_rules db ~minsup ~confidence:c in
      got = List.sort Rule.compare expected)

let all_rules_oracle_prop =
  QCheck2.Test.make ~name:"all rules: equal brute force" ~count:60
    ~print:(fun ((db, _), (s, cf)) ->
      Helpers.db_print db ^ Printf.sprintf " s=%d c=%f" s cf)
    QCheck2.Gen.(
      pair Helpers.db_and_itemset_gen (pair (int_range 1 5) (float_range 0.1 1.0)))
    (fun ((db, _), (minsup, cf)) ->
      let c = conf cf in
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      let got = Rulegen.all_rules lat ~minsup ~confidence:c in
      let expected = Helpers.brute_rules db ~minsup ~confidence:c in
      got = List.sort Rule.compare expected)

let constrained_rules_oracle_prop =
  QCheck2.Test.make ~name:"constrained essential rules: equal brute force"
    ~count:60
    ~print:(fun (((db, _), _), cf) -> Helpers.db_print db ^ Printf.sprintf " c=%f" cf)
    QCheck2.Gen.(
      pair
        (pair Helpers.db_and_itemset_gen (pair (int_range 0 7) (int_range 0 7)))
        (float_range 0.1 1.0))
    (fun (((db, _), (pi, qi)), cf) ->
      let c = conf cf in
      let n = Database.num_items db in
      let p = Itemset.singleton (pi mod n) in
      let q = Itemset.singleton (qi mod n) in
      QCheck2.assume (not (Itemset.equal p q));
      let cs =
        {
          Boundary.unconstrained with
          antecedent_includes = p;
          consequent_includes = q;
        }
      in
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      let got = Rulegen.essential_rules ~constraints:cs lat ~minsup:2 ~confidence:c in
      (* brute force: restrict the family to rules satisfying the
         constraints, then apply Definition 4.2 within it *)
      let family =
        List.filter
          (fun r ->
            Itemset.subset p r.Rule.antecedent && Itemset.subset q r.Rule.consequent)
          (Helpers.brute_rules db ~minsup:2 ~confidence:c)
      in
      let expected = Olar_baseline.Naive_rules.essential_filter family in
      got = List.sort Rule.compare expected)

let test_essential_with_empty_antecedent () =
  (* allow_empty_antecedent admits the degenerate rules ∅ => X; the
     boundary promotes the root and the per-itemset essential output
     collapses to one rule per maximal-by-confidence family. *)
  let lat = Helpers.table2_lattice () in
  let cs = { Boundary.unconstrained with allow_empty_antecedent = true } in
  let got =
    Rulegen.essential_rules ~constraints:cs lat ~minsup:3 ~confidence:(conf 0.003)
  in
  (* at a near-zero confidence every ancestor qualifies, so the only
     essential antecedent is the root *)
  List.iter
    (fun r ->
      check Alcotest.bool "empty antecedent" true
        (Itemset.is_empty r.Rule.antecedent))
    got;
  check Alcotest.bool "rules exist" true (got <> []);
  (* each rule's support/confidence are the itemset's support *)
  List.iter
    (fun r ->
      check Alcotest.int "antecedent count is db size" 1000 r.Rule.antecedent_count)
    got

(* ------------------------------------------------------------------ *)
(* Serialize *)

let test_serialize_roundtrip () =
  let lat = Helpers.table2_lattice () in
  let path = Filename.temp_file "olar" ".lattice" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save lat path;
      let back = Serialize.load path in
      check Alcotest.int "vertices" (Lattice.num_vertices lat) (Lattice.num_vertices back);
      check Alcotest.int "edges" (Lattice.num_edges lat) (Lattice.num_edges back);
      check Alcotest.int "threshold" (Lattice.threshold lat) (Lattice.threshold back);
      check Alcotest.int "db_size" (Lattice.db_size lat) (Lattice.db_size back);
      Array.iter
        (fun (x, c) ->
          check (Alcotest.option Alcotest.int) (Itemset.to_string x) (Some c)
            (Lattice.support_of back x))
        (Lattice.entries lat))

let expect_malformed lines =
  match Serialize.parse lines with
  | exception Serialize.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed"

let test_serialize_malformed () =
  expect_malformed [];
  expect_malformed [ "nope" ];
  expect_malformed [ "# olar adjacency lattice v1"; "dbsize 10"; "threshold 2" ];
  expect_malformed
    [ "# olar adjacency lattice v1"; "dbsize 10"; "threshold 2"; "itemsets 1" ];
  expect_malformed
    [
      "# olar adjacency lattice v1"; "dbsize 10"; "threshold 2"; "itemsets 1";
      "5";
    ];
  (* closure violation caught on load *)
  expect_malformed
    [
      "# olar adjacency lattice v1"; "dbsize 10"; "threshold 2"; "itemsets 1";
      "5 0 1";
    ]

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_at_threshold () =
  let db = Helpers.small_db () in
  let engine = Engine.at_threshold db ~primary_support:0.2 in
  check Alcotest.int "db size" 10 (Engine.db_size engine);
  check Alcotest.int "threshold count" 2 (Engine.primary_threshold_count engine);
  check (Alcotest.float 1e-9) "threshold fraction" 0.2 (Engine.primary_threshold engine);
  check Alcotest.int "primary itemsets" 10 (Engine.num_primary_itemsets engine);
  check Alcotest.int "count_of_support" 4 (Engine.count_of_support engine 0.35)

let test_engine_queries_fractional () =
  let db = Helpers.small_db () in
  let engine = Engine.at_threshold db ~primary_support:0.2 in
  let items = Engine.itemsets engine ~minsup:0.4 in
  List.iter
    (fun (x, s) ->
      check (Alcotest.float 1e-9)
        ("support of " ^ Itemset.to_string x)
        (Database.support db x) s;
      check Alcotest.bool "meets minsup" true (s >= 0.4))
    items;
  check Alcotest.int "count agrees" (List.length items)
    (Engine.count_itemsets engine ~minsup:0.4);
  let ess = Engine.essential_rules engine ~minsup:0.2 ~minconf:0.6 in
  check rules "essential matches brute"
    (List.sort Rule.compare
       (Helpers.brute_essential_rules db ~minsup:2 ~confidence:(conf 0.6)))
    ess;
  let sc = Engine.single_consequent_rules engine ~minsup:0.2 ~minconf:0.6 in
  List.iter (fun r -> check Alcotest.bool "single" true (Rule.single_consequent r)) sc

let test_engine_reverse_queries () =
  let db = Helpers.small_db () in
  let engine = Engine.at_threshold db ~primary_support:0.1 in
  (match Engine.support_for_k_itemsets engine ~containing:Itemset.empty ~k:3 with
  | Some level -> check Alcotest.bool "level positive" true (level > 0.0)
  | None -> Alcotest.fail "expected a level");
  check (Alcotest.option (Alcotest.float 1e-9)) "k too large" None
    (Engine.support_for_k_itemsets engine ~containing:(set [ 4 ]) ~k:50);
  match
    Engine.support_for_k_rules engine ~involving:Itemset.empty ~minconf:0.5 ~k:2
  with
  | Some level -> check Alcotest.bool "rule level positive" true (level > 0.0)
  | None -> Alcotest.fail "expected a rule level"

let test_engine_preprocess_budget () =
  let db = Helpers.small_db () in
  let engine = Engine.preprocess db ~max_itemsets:8 in
  check Alcotest.bool "fits budget" true (Engine.num_primary_itemsets engine <= 8);
  let naive = Engine.preprocess ~search:`Naive db ~max_itemsets:8 in
  check Alcotest.int "searches agree"
    (Engine.num_primary_itemsets engine)
    (Engine.num_primary_itemsets naive);
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Engine.preprocess: max_itemsets") (fun () ->
      ignore (Engine.preprocess db ~max_itemsets:0))

let test_engine_save_load () =
  let db = Helpers.small_db () in
  let engine = Engine.at_threshold db ~primary_support:0.2 in
  let path = Filename.temp_file "olar" ".lattice" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.save engine path;
      let back = Engine.load path in
      check Alcotest.int "itemsets survive"
        (Engine.num_primary_itemsets engine)
        (Engine.num_primary_itemsets back);
      check rules "queries equal after reload"
        (Engine.essential_rules engine ~minsup:0.2 ~minconf:0.7)
        (Engine.essential_rules back ~minsup:0.2 ~minconf:0.7))

let test_engine_append () =
  let db = Helpers.small_db () in
  let engine = Engine.at_threshold db ~primary_support:0.2 in
  let delta = Database.of_lists ~num_items:5 [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let engine', promoted = Engine.append engine delta in
  check Alcotest.int "grown" 12 (Engine.db_size engine');
  check Alcotest.int "same vertex set"
    (Engine.num_primary_itemsets engine)
    (Engine.num_primary_itemsets engine');
  (* {0,1,2} gained a count; queries reflect it *)
  let merged_count =
    Database.support_count db (set [ 0; 1; 2 ]) + 1
  in
  check (Alcotest.option Alcotest.int) "updated count" (Some merged_count)
    (Lattice.support_of (Engine.lattice engine') (set [ 0; 1; 2 ]));
  check Alcotest.bool "no promotions from 2 transactions" true (promoted = [])

let test_engine_validation () =
  let db = Helpers.small_db () in
  Alcotest.check_raises "primary support 0"
    (Invalid_argument "Engine.at_threshold: primary_support") (fun () ->
      ignore (Engine.at_threshold db ~primary_support:0.0));
  let engine = Engine.at_threshold db ~primary_support:0.3 in
  (try
     ignore (Engine.itemsets engine ~minsup:0.1);
     Alcotest.fail "expected Below_primary_threshold"
   with Query.Below_primary_threshold _ -> ());
  Alcotest.check_raises "minsup above 1"
    (Invalid_argument "Engine.count_of_support") (fun () ->
      ignore (Engine.itemsets engine ~minsup:1.5))

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "core.query",
      [
        case "Table 2 queries" test_find_itemsets_table2;
        case "include_start matrix" test_find_itemsets_include_start_matrix;
        case "non-primary start" test_find_itemsets_not_primary;
        case "below primary threshold" test_find_itemsets_below_primary;
        case "count" test_count_itemsets;
        case "output-sensitive work" test_find_itemsets_work_is_output_sensitive;
        QCheck_alcotest.to_alcotest find_itemsets_oracle_prop;
      ] );
    ( "core.support_query",
      [
        case "Table 2 top-k" test_find_support_table2;
        case "containing" test_find_support_containing;
        case "exhausted" test_find_support_exhausted;
        case "rules variant" test_find_support_for_rules;
        case "rules involving" test_find_support_for_rules_involving;
        QCheck_alcotest.to_alcotest find_support_oracle_prop;
      ] );
    ( "core.boundary",
      [
        case "Figure 4" test_boundary_figure4;
        case "lower confidence widens" test_boundary_includes_non_maximal;
        case "empty antecedent policy" test_boundary_empty_antecedent_policy;
        case "constraints" test_boundary_constraints;
        case "bad target" test_boundary_bad_target;
        QCheck_alcotest.to_alcotest boundary_oracle_prop;
        QCheck_alcotest.to_alcotest boundary_constrained_oracle_prop;
      ] );
    ( "core.rulegen",
      [
        case "Figure 4 essential rules" test_essential_rules_figure4;
        case "strict pruning" test_essential_strict_pruning;
        case "essential vs brute (fixed db)" test_essential_vs_brute_small_db;
        case "all rules vs brute" test_all_rules_vs_brute;
        case "containing scope" test_rules_containing;
        case "single consequent" test_single_consequent_rules;
        case "redundancy report" test_redundancy_report;
        case "empty antecedent policy" test_essential_with_empty_antecedent;
        QCheck_alcotest.to_alcotest essential_oracle_prop;
        QCheck_alcotest.to_alcotest all_rules_oracle_prop;
        QCheck_alcotest.to_alcotest constrained_rules_oracle_prop;
      ] );
    ( "core.serialize",
      [
        case "roundtrip" test_serialize_roundtrip;
        case "malformed" test_serialize_malformed;
      ] );
    ( "core.engine",
      [
        case "at_threshold" test_engine_at_threshold;
        case "fractional queries" test_engine_queries_fractional;
        case "reverse queries" test_engine_reverse_queries;
        case "preprocess budget" test_engine_preprocess_budget;
        case "save/load" test_engine_save_load;
        case "append" test_engine_append;
        case "validation" test_engine_validation;
      ] );
  ]
