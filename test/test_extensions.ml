(* Tests for the extension modules: the two-pass miners (Partition,
   Sampling), condensed representations, incremental lattice
   maintenance, the bitmap index, named-basket I/O, interestingness
   measures and export formats. *)

open Olar_data
open Olar_core

let check = Alcotest.check
let set = Itemset.of_list
let itemset = Helpers.itemset
let entries = Alcotest.list Helpers.entry

let sorted_frequent f = Helpers.sort_entries (Olar_mining.Frequent.to_list f)

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_matches_apriori () =
  let db = Helpers.small_db () in
  List.iter
    (fun p ->
      let got = Olar_mining.Partition.mine ~num_partitions:p db ~minsup:2 in
      check entries
        (Printf.sprintf "%d partitions" p)
        (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:2))
        (sorted_frequent got);
      check Alcotest.bool "complete" true (Olar_mining.Frequent.complete got))
    [ 1; 2; 3; 4; 10; 100 ]

let test_partition_empty_db () =
  let db = Database.of_lists ~num_items:3 [] in
  let got = Olar_mining.Partition.mine db ~minsup:1 in
  check Alcotest.int "empty" 0 (Olar_mining.Frequent.total got)

let test_partition_validation () =
  let db = Helpers.small_db () in
  Alcotest.check_raises "minsup" (Invalid_argument "Partition.mine: minsup")
    (fun () -> ignore (Olar_mining.Partition.mine db ~minsup:0));
  Alcotest.check_raises "partitions"
    (Invalid_argument "Partition.mine: num_partitions") (fun () ->
      ignore (Olar_mining.Partition.mine ~num_partitions:0 db ~minsup:1))

let partition_oracle_prop =
  QCheck2.Test.make ~name:"partition: equals brute force" ~count:60
    ~print:(fun ((db, p), s) ->
      Helpers.db_print db ^ Printf.sprintf " p=%d minsup=%d" p s)
    QCheck2.Gen.(pair (pair Helpers.db_gen (int_range 1 8)) (int_range 1 6))
    (fun ((db, p), minsup) ->
      let got = Olar_mining.Partition.mine ~num_partitions:p db ~minsup in
      sorted_frequent got = Helpers.sort_entries (Helpers.brute_frequent db ~minsup))

(* ------------------------------------------------------------------ *)
(* Sampling *)

let test_negative_border_simple () =
  (* family over 3 items: {0},{1},{0,1}: border = {2} and nothing else
     ({0,2},{1,2} have the non-member subset {2}). *)
  let border =
    Olar_mining.Sampling.negative_border ~num_items:3
      ~levels:[ [| set [ 0 ]; set [ 1 ] |]; [| set [ 0; 1 ] |] ]
  in
  check (Alcotest.list itemset) "border" [ set [ 2 ] ] border

let test_negative_border_pairs () =
  (* all three singletons, one pair missing: border = the missing pairs *)
  let border =
    Olar_mining.Sampling.negative_border ~num_items:3
      ~levels:[ [| set [ 0 ]; set [ 1 ]; set [ 2 ] |]; [| set [ 0; 1 ] |] ]
  in
  check (Alcotest.list itemset) "missing pairs"
    [ set [ 0; 2 ]; set [ 1; 2 ] ]
    border

let test_negative_border_empty_family () =
  let border = Olar_mining.Sampling.negative_border ~num_items:2 ~levels:[] in
  check (Alcotest.list itemset) "all singletons" [ set [ 0 ]; set [ 1 ] ] border

let test_sampling_exact () =
  let params =
    { Olar_datagen.Params.default with Olar_datagen.Params.num_items = 80;
      num_potential = 30; num_transactions = 1_500; seed = 5 }
  in
  let db = Olar_datagen.Quest.generate params in
  List.iter
    (fun minsup ->
      let report =
        Olar_mining.Sampling.mine ~seed:11 ~sample_fraction:0.3 db ~minsup
      in
      let exact = Olar_mining.Apriori.mine db ~minsup in
      check entries
        (Printf.sprintf "minsup=%d (fell_back=%b misses=%d)" minsup
           report.Olar_mining.Sampling.fell_back report.Olar_mining.Sampling.misses)
        (sorted_frequent exact)
        (sorted_frequent report.Olar_mining.Sampling.result))
    [ 30; 75; 150 ]

let test_sampling_small_db_degenerates () =
  let db = Helpers.small_db () in
  (* sample floor of 100 transactions >= db: degenerate exact path *)
  let report = Olar_mining.Sampling.mine db ~minsup:2 in
  check Alcotest.int "sample is whole db" (Database.size db)
    report.Olar_mining.Sampling.sample_size;
  check entries "still exact"
    (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:2))
    (sorted_frequent report.Olar_mining.Sampling.result)

let test_sampling_validation () =
  let db = Helpers.small_db () in
  Alcotest.check_raises "fraction" (Invalid_argument "Sampling.mine: sample_fraction")
    (fun () -> ignore (Olar_mining.Sampling.mine ~sample_fraction:0.0 db ~minsup:1));
  Alcotest.check_raises "lowering" (Invalid_argument "Sampling.mine: lowering")
    (fun () -> ignore (Olar_mining.Sampling.mine ~lowering:1.5 db ~minsup:1))

let sampling_oracle_prop =
  QCheck2.Test.make ~name:"sampling: always exact" ~count:40
    ~print:(fun ((db, seed), s) ->
      Helpers.db_print db ^ Printf.sprintf " seed=%d minsup=%d" seed s)
    QCheck2.Gen.(pair (pair Helpers.db_gen (int_range 0 1000)) (int_range 1 6))
    (fun ((db, seed), minsup) ->
      let report =
        Olar_mining.Sampling.mine ~seed ~sample_fraction:0.5 db ~minsup
      in
      sorted_frequent report.Olar_mining.Sampling.result
      = Helpers.sort_entries (Helpers.brute_frequent db ~minsup))

(* ------------------------------------------------------------------ *)
(* Condense: maximal and closed itemsets *)

let brute_maximal frequent =
  List.filter
    (fun (x, _) ->
      not
        (List.exists (fun (y, _) -> Itemset.strict_subset x y) frequent))
    frequent

let brute_closed frequent =
  List.filter
    (fun (x, c) ->
      not
        (List.exists
           (fun (y, cy) -> Itemset.strict_subset x y && cy = c)
           frequent))
    frequent

let test_condense_small_db () =
  let db = Helpers.small_db () in
  let frequent = Olar_mining.Apriori.mine db ~minsup:2 in
  let all = Helpers.sort_entries (Olar_mining.Frequent.to_list frequent) in
  check entries "maximal"
    (Helpers.sort_entries (brute_maximal all))
    (Olar_mining.Condense.maximal frequent);
  check entries "closed"
    (Helpers.sort_entries (brute_closed all))
    (Olar_mining.Condense.closed frequent)

let test_condense_requires_complete () =
  let db = Helpers.small_db () in
  let partial = Olar_mining.Apriori.mine db ~max_level:1 ~minsup:2 in
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Condense.maximal: requires a complete mining result")
    (fun () -> ignore (Olar_mining.Condense.maximal partial))

let test_condense_closed_recovers_support () =
  let db = Helpers.small_db () in
  let frequent = Olar_mining.Apriori.mine db ~minsup:2 in
  let closed = Olar_mining.Condense.closed frequent in
  Olar_mining.Frequent.iter
    (fun x c ->
      check (Alcotest.option Alcotest.int) (Itemset.to_string x) (Some c)
        (Olar_mining.Condense.support_from_closed closed x))
    frequent;
  (* an infrequent itemset has no closed superset *)
  check (Alcotest.option Alcotest.int) "infrequent" None
    (Olar_mining.Condense.support_from_closed closed (set [ 3; 4 ]))

let condense_oracle_prop =
  QCheck2.Test.make ~name:"condense: maximal and closed equal brute force"
    ~count:80
    ~print:(fun (db, s) -> Helpers.db_print db ^ Printf.sprintf " minsup=%d" s)
    QCheck2.Gen.(pair Helpers.db_gen (int_range 1 5))
    (fun (db, minsup) ->
      let frequent = Olar_mining.Apriori.mine db ~minsup in
      let all = Helpers.sort_entries (Olar_mining.Frequent.to_list frequent) in
      Olar_mining.Condense.maximal frequent
      = Helpers.sort_entries (brute_maximal all)
      && Olar_mining.Condense.closed frequent
         = Helpers.sort_entries (brute_closed all))

(* ------------------------------------------------------------------ *)
(* Maintenance *)

let test_append_exact_counts () =
  let old_db = Helpers.small_db () in
  let delta =
    Database.of_lists ~num_items:5 [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 3; 4 ]; [ 2 ] ]
  in
  let engine = Engine.at_threshold old_db ~primary_support:0.2 in
  let update = Maintenance.append (Engine.lattice engine) delta in
  check Alcotest.int "delta size" 4 update.Maintenance.delta_size;
  let lat = update.Maintenance.lattice in
  check Alcotest.int "grown db size" 14 (Lattice.db_size lat);
  (* every updated count equals a scan over old ∪ delta *)
  let merged =
    Database.of_lists ~num_items:5
      (List.init 10 (fun i -> Itemset.to_list (Database.get old_db i))
      @ List.init 4 (fun i -> Itemset.to_list (Database.get delta i)))
  in
  Array.iter
    (fun (x, c) ->
      check Alcotest.int ("count of " ^ Itemset.to_string x)
        (Database.support_count merged x)
        c)
    (Lattice.entries lat)

let test_append_promotions () =
  (* {3,4} is infrequent in the old data (count 0... actually 0) but the
     delta pushes it over the threshold: it must be reported. *)
  let old_db = Helpers.small_db () in
  let engine = Engine.at_threshold old_db ~primary_support:0.2 in
  let delta =
    Database.of_lists ~num_items:5 [ [ 3; 4 ]; [ 3; 4 ]; [ 3; 4 ] ]
  in
  let update = Maintenance.append (Engine.lattice engine) delta in
  (* {4} was not primary before (old count 1); the delta makes it
     frequent. The frontier is minimal, so {4} is reported but its
     extension {3,4} is not (its parent is itself new). *)
  check Alcotest.bool "promotion detected" true
    (List.exists (Itemset.equal (set [ 4 ])) update.Maintenance.promoted_candidates);
  check Alcotest.bool "non-minimal not reported" false
    (List.exists (Itemset.equal (set [ 3; 4 ]))
       update.Maintenance.promoted_candidates);
  (* rebuild picks everything up for real *)
  let rebuilt = Maintenance.rebuild ~threshold:2 ~old_db ~delta () in
  check Alcotest.bool "rebuilt contains {4}" true (Lattice.mem rebuilt (set [ 4 ]));
  check Alcotest.bool "rebuilt contains {3,4}" true
    (Lattice.mem rebuilt (set [ 3; 4 ]))

let test_append_no_promotions_small_delta () =
  let old_db = Helpers.small_db () in
  let engine = Engine.at_threshold old_db ~primary_support:0.2 in
  let delta = Database.of_lists ~num_items:5 [ [ 0 ] ] in
  let update = Maintenance.append (Engine.lattice engine) delta in
  check (Alcotest.list itemset) "none" [] update.Maintenance.promoted_candidates

let test_append_queries_stay_consistent () =
  let old_db = Helpers.small_db () in
  let engine = Engine.at_threshold old_db ~primary_support:0.2 in
  let delta = Database.of_lists ~num_items:5 [ [ 0; 1; 2 ]; [ 0; 1; 2 ] ] in
  let update = Maintenance.append (Engine.lattice engine) delta in
  let lat = update.Maintenance.lattice in
  (* the support-monotonicity and closure invariants still hold: a full
     query runs fine and agrees with brute force over the merged data *)
  let merged =
    Database.of_lists ~num_items:5
      (List.init 10 (fun i -> Itemset.to_list (Database.get old_db i))
      @ [ [ 0; 1; 2 ]; [ 0; 1; 2 ] ])
  in
  let got = Query.to_entries lat (Query.find_itemsets lat ~containing:Itemset.empty ~minsup:4) in
  let expected =
    List.filter
      (fun (x, c) -> c >= 4 && Lattice.mem lat x)
      (Helpers.brute_frequent merged ~minsup:4)
  in
  check entries "query over updated lattice"
    (Helpers.sort_entries expected)
    (Helpers.sort_entries got)

let maintenance_prop =
  QCheck2.Test.make ~name:"maintenance: appended counts equal merged scans"
    ~count:50
    ~print:(fun (a, b) -> Helpers.db_print a ^ " ++ " ^ Helpers.db_print b)
    QCheck2.Gen.(pair Helpers.db_gen Helpers.db_gen)
    (fun (old_db, delta_raw) ->
      (* align the delta to the old universe *)
      let num_items = Database.num_items old_db in
      let delta =
        Database.create ~num_items
          (Array.init (Database.size delta_raw) (fun i ->
               Itemset.of_list
                 (List.filter (fun x -> x < num_items)
                    (Itemset.to_list (Database.get delta_raw i)))))
      in
      let entries = Array.of_list (Helpers.brute_frequent old_db ~minsup:1) in
      let lat =
        Lattice.of_entries ~db_size:(Database.size old_db) ~threshold:1 entries
      in
      let update = Maintenance.append lat delta in
      let merged =
        Database.create ~num_items
          (Array.append
             (Array.init (Database.size old_db) (Database.get old_db))
             (Array.init (Database.size delta) (Database.get delta)))
      in
      Array.for_all
        (fun (x, c) -> c = Database.support_count merged x)
        (Lattice.entries update.Maintenance.lattice))

(* ------------------------------------------------------------------ *)
(* Bitmap *)

let test_bitmap_matches_scan () =
  let db = Helpers.small_db () in
  let idx = Bitmap.build db in
  check Alcotest.int "items" 5 (Bitmap.num_items idx);
  check Alcotest.int "transactions" 10 (Bitmap.num_transactions idx);
  List.iter
    (fun x ->
      check Alcotest.int
        (Format.asprintf "support %a" Itemset.pp x)
        (Database.support_count db x) (Bitmap.support_count idx x))
    (Helpers.all_nonempty_itemsets db);
  check Alcotest.int "empty itemset" 10 (Bitmap.support_count idx Itemset.empty);
  Alcotest.check_raises "oob" (Invalid_argument "Bitmap.bitmap") (fun () ->
      ignore (Bitmap.bitmap idx 5))

let bitmap_prop =
  QCheck2.Test.make ~name:"bitmap: support equals full scan" ~count:100
    ~print:(fun (db, x) -> Helpers.db_print db ^ " / " ^ Itemset.to_string x)
    Helpers.db_and_itemset_gen
    (fun (db, x) ->
      Bitmap.support_count (Bitmap.build db) x = Database.support_count db x)

(* ------------------------------------------------------------------ *)
(* Basket_io *)

let test_basket_parse () =
  let vocab, db =
    Basket_io.parse
      [
        "# comment";
        "bread, butter, jam";
        "";
        "coffee,milk";
        "bread , coffee";
      ]
  in
  check Alcotest.int "vocab size" 5 (Item.Vocab.size vocab);
  check Alcotest.int "transactions" 3 (Database.size db);
  let id name = Option.get (Item.Vocab.id vocab name) in
  check itemset "first basket"
    (set [ id "bread"; id "butter"; id "jam" ])
    (Database.get db 0);
  check itemset "third basket" (set [ id "bread"; id "coffee" ]) (Database.get db 2)

let test_basket_roundtrip () =
  let vocab, db =
    Basket_io.parse [ "beer, chips"; "beer"; "salsa, chips, beer" ]
  in
  let path = Filename.temp_file "olar" ".basket" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Basket_io.save vocab db path;
      let vocab2, db2 = Basket_io.load path in
      check Alcotest.int "same size" (Database.size db) (Database.size db2);
      Database.iteri
        (fun tid _txn ->
          let names v d t =
            List.map (Item.Vocab.name v) (Itemset.to_list (Database.get d t))
          in
          check
            (Alcotest.slist Alcotest.string String.compare)
            "same names" (names vocab db tid) (names vocab2 db2 tid))
        db)

let test_basket_malformed () =
  (match Basket_io.parse [ "bread,,milk" ] with
  | exception Basket_io.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed");
  (* empty input is fine: empty database over a 1-item universe floor *)
  let _, db = Basket_io.parse [] in
  check Alcotest.int "empty ok" 0 (Database.size db)

let test_basket_drives_engine () =
  (* end-to-end: named baskets -> engine -> named rules *)
  let vocab, db =
    Basket_io.parse
      (List.concat_map
         (fun _ -> [ "beer, chips"; "beer, chips, salsa"; "water" ])
         (List.init 10 Fun.id))
  in
  let engine = Engine.at_threshold db ~primary_support:0.1 in
  let rules = Engine.essential_rules engine ~minsup:0.3 ~minconf:0.9 in
  check Alcotest.bool "found a beer rule" true
    (List.exists
       (fun r ->
         Itemset.mem (Option.get (Item.Vocab.id vocab "beer")) (Rule.union r))
       rules)

(* ------------------------------------------------------------------ *)
(* Interest *)

let interest_lattice () =
  (* 100 transactions: A=40, B=50, AB=30; C=10, AC=4 *)
  Lattice.of_entries ~db_size:100 ~threshold:2
    [|
      (set [ 0 ], 40); (set [ 1 ], 50); (set [ 2 ], 10);
      (set [ 0; 1 ], 30); (set [ 0; 2 ], 4);
    |]

let test_interest_measures () =
  let lat = interest_lattice () in
  let r =
    Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 1 ]) ~support_count:30
      ~antecedent_count:40
  in
  let m = Interest.measures lat r in
  check (Alcotest.float 1e-9) "support" 0.3 m.Interest.support;
  check (Alcotest.float 1e-9) "confidence" 0.75 m.Interest.confidence;
  check (Alcotest.float 1e-9) "lift" 1.5 m.Interest.lift;
  check (Alcotest.float 1e-9) "leverage" 0.1 m.Interest.leverage;
  check (Alcotest.float 1e-9) "conviction" 2.0 m.Interest.conviction

let test_interest_exact_rule_conviction () =
  let lat = interest_lattice () in
  let r =
    (* pretend exact: support = antecedent *)
    Rule.make ~antecedent:(set [ 2 ]) ~consequent:(set [ 0 ]) ~support_count:4
      ~antecedent_count:4
  in
  let m = Interest.measures lat r in
  check Alcotest.bool "infinite conviction" true
    (m.Interest.conviction = Float.infinity)

let test_interest_filter_sort () =
  let lat = interest_lattice () in
  let ab =
    Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 1 ]) ~support_count:30
      ~antecedent_count:40
  in
  let ac =
    (* conf 0.1, lift 0.1/0.1 = 1.0 *)
    Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 2 ]) ~support_count:4
      ~antecedent_count:40
  in
  check (Alcotest.list Helpers.rule) "filter by lift" [ ab ]
    (Interest.filter_by lat [ ab; ac ] ~min_lift:1.2);
  check (Alcotest.list Helpers.rule) "sort by lift" [ ab; ac ]
    (Interest.sort_by `Lift lat [ ac; ab ]);
  check (Alcotest.list Helpers.rule) "sort by support" [ ab; ac ]
    (Interest.sort_by `Support lat [ ac; ab ])

let test_interest_unprimary () =
  let lat = interest_lattice () in
  let r =
    Rule.make ~antecedent:(set [ 1 ]) ~consequent:(set [ 2 ]) ~support_count:2
      ~antecedent_count:50
  in
  Alcotest.check_raises "consequent... union not primary"
    (Invalid_argument "Interest.measures: consequent not primary") (fun () ->
      ignore
        (Interest.measures
           (Lattice.of_entries ~db_size:100 ~threshold:2 [| (set [ 1 ], 50) |])
           r));
  ignore lat

let interest_lift_symmetry_prop =
  QCheck2.Test.make ~name:"interest: lift is symmetric for single items"
    ~count:60 ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      let engine = Helpers.full_engine db in
      let lat = Engine.lattice engine in
      let rules =
        Rulegen.single_consequent_rules lat ~minsup:1
          ~confidence:(Conf.of_float 0.01)
      in
      List.for_all
        (fun r ->
          if
            Itemset.cardinal r.Rule.antecedent = 1
            && Itemset.cardinal r.Rule.consequent = 1
          then begin
            let mirror =
              List.find_opt
                (fun r' ->
                  Itemset.equal r'.Rule.antecedent r.Rule.consequent
                  && Itemset.equal r'.Rule.consequent r.Rule.antecedent)
                rules
            in
            match mirror with
            | None -> true (* mirror below confidence floor *)
            | Some r' ->
              abs_float
                ((Interest.measures lat r).Interest.lift
                -. (Interest.measures lat r').Interest.lift)
              < 1e-9
          end
          else true)
        rules)

(* ------------------------------------------------------------------ *)
(* Export *)

let test_export_itemsets_csv () =
  let csv =
    Export.itemsets_to_csv ~db_size:10 [ (set [ 0; 2 ], 4); (set [ 1 ], 6) ]
  in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "3 lines" 3 (List.length lines);
  check Alcotest.string "header" "itemset,size,count,support\r"
    (List.nth lines 0);
  check Alcotest.string "row" "0 2,2,4,0.400000\r" (List.nth lines 1)

let test_export_rules_csv_named () =
  let vocab = Item.Vocab.of_names [ "beer"; "chips, salted" ] in
  let r =
    Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 1 ]) ~support_count:3
      ~antecedent_count:4
  in
  let csv = Export.rules_to_csv ~vocab ~db_size:10 [ r ] in
  check Alcotest.bool "name with comma is quoted" true
    (let open String in
     length csv > 0
     &&
     match index_opt csv '"' with
     | Some _ -> true
     | None -> false);
  check Alcotest.bool "contains beer" true
    (Helpers.contains_substring csv "beer")

let test_export_json () =
  let json = Export.itemsets_to_json ~db_size:10 [ (set [ 0; 1 ], 5) ] in
  check Alcotest.string "itemsets json"
    "[{\"items\": [0,1], \"count\": 5, \"support\": 0.5}]\n" json;
  let r =
    Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 1 ]) ~support_count:5
      ~antecedent_count:10
  in
  let json = Export.rules_to_json ~db_size:10 [ r ] in
  check Alcotest.bool "has confidence" true
    (Helpers.contains_substring json "\"confidence\": 0.5");
  let vocab = Item.Vocab.of_names [ "a\"quote"; "b" ] in
  let json = Export.rules_to_json ~vocab ~db_size:10 [ r ] in
  check Alcotest.bool "escapes quotes" true
    (Helpers.contains_substring json "a\\\"quote")

let test_export_with_measures () =
  let lat = interest_lattice () in
  let r =
    Rule.make ~antecedent:(set [ 0 ]) ~consequent:(set [ 1 ]) ~support_count:30
      ~antecedent_count:40
  in
  let csv = Export.rules_to_csv ~measures:lat ~db_size:100 [ r ] in
  check Alcotest.bool "lift column present" true
    (Helpers.contains_substring csv "lift");
  check Alcotest.bool "lift value" true
    (Helpers.contains_substring csv "1.500000");
  let json = Export.rules_to_json ~measures:lat ~db_size:100 [ r ] in
  check Alcotest.bool "json lift" true
    (Helpers.contains_substring json "\"lift\": 1.5")

let test_export_validation () =
  Alcotest.check_raises "db_size" (Invalid_argument "Export.itemsets_to_csv")
    (fun () -> ignore (Export.itemsets_to_csv ~db_size:0 []))

(* ------------------------------------------------------------------ *)
(* Hashtree *)

let test_hashtree_basic () =
  let t = Olar_mining.Hashtree.create ~depth:2 () in
  check Alcotest.int "depth" 2 (Olar_mining.Hashtree.depth t);
  Olar_mining.Hashtree.insert t (set [ 0; 1 ]);
  Olar_mining.Hashtree.insert t (set [ 0; 2 ]);
  Olar_mining.Hashtree.insert t (set [ 0; 1 ]);
  check Alcotest.int "size dedups" 2 (Olar_mining.Hashtree.size t);
  Olar_mining.Hashtree.count_transaction t (set [ 0; 1; 2 ]);
  Olar_mining.Hashtree.count_transaction t (set [ 0; 2 ]);
  check (Alcotest.option Alcotest.int) "count 01" (Some 1)
    (Olar_mining.Hashtree.count t (set [ 0; 1 ]));
  check (Alcotest.option Alcotest.int) "count 02" (Some 2)
    (Olar_mining.Hashtree.count t (set [ 0; 2 ]));
  check (Alcotest.option Alcotest.int) "absent" None
    (Olar_mining.Hashtree.count t (set [ 1; 2 ]));
  Alcotest.check_raises "arity" (Invalid_argument "Hashtree.insert: wrong arity")
    (fun () -> Olar_mining.Hashtree.insert t (set [ 0 ]))

let test_hashtree_splits_hash_collisions () =
  (* fanout 2 with 20 colliding candidates: forces splits and bucket
     collisions; counting must stay exact (stamps prevent the classic
     double-count on multi-path leaf visits). *)
  let t = Olar_mining.Hashtree.create ~fanout:2 ~leaf_capacity:2 ~depth:3 () in
  let candidates = ref [] in
  for a = 0 to 4 do
    for b = a + 1 to 5 do
      for c = b + 1 to 6 do
        let x = set [ a; b; c ] in
        candidates := x :: !candidates;
        Olar_mining.Hashtree.insert t x
      done
    done
  done;
  let txn = set [ 0; 1; 2; 3; 4; 5; 6 ] in
  Olar_mining.Hashtree.count_transaction t txn;
  (* every candidate is a subset of the transaction: counted exactly once *)
  List.iter
    (fun x ->
      check (Alcotest.option Alcotest.int) (Itemset.to_string x) (Some 1)
        (Olar_mining.Hashtree.count t x))
    !candidates;
  Olar_mining.Hashtree.count_transaction t (set [ 0; 1 ]);
  (* too short: nothing changes *)
  check (Alcotest.option Alcotest.int) "short txn ignored" (Some 1)
    (Olar_mining.Hashtree.count t (set [ 0; 1; 2 ]))

let hashtree_equals_trie_prop =
  QCheck2.Test.make ~name:"hashtree: counts equal trie counts" ~count:80
    ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      let n = Database.num_items db in
      let trie = Olar_mining.Trie.create ~depth:2 in
      let tree = Olar_mining.Hashtree.create ~fanout:3 ~leaf_capacity:2 ~depth:2 () in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          Olar_mining.Trie.insert trie (set [ a; b ]);
          Olar_mining.Hashtree.insert tree (set [ a; b ])
        done
      done;
      Database.iter
        (fun txn ->
          Olar_mining.Trie.count_transaction trie txn;
          Olar_mining.Hashtree.count_transaction tree txn)
        db;
      Olar_mining.Trie.to_sorted_array trie
      = Olar_mining.Hashtree.to_sorted_array tree)

(* ------------------------------------------------------------------ *)
(* Byte-budget threshold search *)

let test_bytes_estimate_matches_lattice () =
  let db = Helpers.small_db () in
  let frequent = Olar_mining.Apriori.mine db ~minsup:2 in
  let lat =
    Lattice.of_entries ~db_size:(Database.size db) ~threshold:2
      (Array.of_list (Olar_mining.Frequent.to_list frequent))
  in
  check Alcotest.int "estimates agree"
    (Lattice.estimated_bytes lat)
    (Olar_mining.Threshold.estimate_bytes frequent)

let test_bytes_budget_respected () =
  let params =
    { Olar_datagen.Params.default with Olar_datagen.Params.num_items = 100;
      num_potential = 40; num_transactions = 1_000; seed = 21 }
  in
  let db = Olar_datagen.Quest.generate params in
  List.iter
    (fun budget ->
      let r =
        Olar_mining.Threshold.optimized_bytes db ~budget_bytes:budget
          ~slack_bytes:(budget / 10)
      in
      let bytes = Olar_mining.Threshold.estimate_bytes r.Olar_mining.Threshold.itemsets in
      check Alcotest.bool
        (Printf.sprintf "budget %d: %d bytes" budget bytes)
        true (bytes <= budget))
    [ 50_000; 200_000; 1_000_000 ]

let test_bytes_budget_monotone () =
  let db = Helpers.small_db () in
  let thr budget =
    (Olar_mining.Threshold.optimized_bytes db ~budget_bytes:budget
       ~slack_bytes:0)
      .Olar_mining.Threshold.threshold
  in
  check Alcotest.bool "bigger budget, lower threshold" true
    (thr 100_000 <= thr 2_000)

let test_engine_preprocess_bytes () =
  let db = Helpers.small_db () in
  let engine = Engine.preprocess_bytes db ~max_bytes:100_000 in
  check Alcotest.bool "fits" true
    (Lattice.estimated_bytes (Engine.lattice engine) <= 100_000);
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Engine.preprocess_bytes: max_bytes") (fun () ->
      ignore (Engine.preprocess_bytes db ~max_bytes:0))

let bytes_budget_prop =
  QCheck2.Test.make ~name:"byte budget is never exceeded" ~count:40
    ~print:(fun (db, b) -> Helpers.db_print db ^ Printf.sprintf " budget=%d" b)
    QCheck2.Gen.(pair Helpers.db_gen (int_range 2_000 200_000))
    (fun (db, budget) ->
      let r =
        Olar_mining.Threshold.optimized_bytes db ~budget_bytes:budget
          ~slack_bytes:(budget / 10)
      in
      Olar_mining.Threshold.estimate_bytes r.Olar_mining.Threshold.itemsets
      <= budget)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "mining.partition",
      [
        case "matches apriori" test_partition_matches_apriori;
        case "empty db" test_partition_empty_db;
        case "validation" test_partition_validation;
        QCheck_alcotest.to_alcotest partition_oracle_prop;
      ] );
    ( "mining.sampling",
      [
        case "negative border (pair family)" test_negative_border_simple;
        case "negative border (missing pairs)" test_negative_border_pairs;
        case "negative border (empty family)" test_negative_border_empty_family;
        case "exact on quest data" test_sampling_exact;
        case "degenerate small db" test_sampling_small_db_degenerates;
        case "validation" test_sampling_validation;
        QCheck_alcotest.to_alcotest sampling_oracle_prop;
      ] );
    ( "mining.condense",
      [
        case "small db" test_condense_small_db;
        case "requires complete" test_condense_requires_complete;
        case "closed recovers supports" test_condense_closed_recovers_support;
        QCheck_alcotest.to_alcotest condense_oracle_prop;
      ] );
    ( "core.maintenance",
      [
        case "append exact counts" test_append_exact_counts;
        case "promotions reported" test_append_promotions;
        case "no promotions on small delta" test_append_no_promotions_small_delta;
        case "queries stay consistent" test_append_queries_stay_consistent;
        QCheck_alcotest.to_alcotest maintenance_prop;
      ] );
    ( "data.bitmap",
      [
        case "matches scan" test_bitmap_matches_scan;
        QCheck_alcotest.to_alcotest bitmap_prop;
      ] );
    ( "data.basket_io",
      [
        case "parse" test_basket_parse;
        case "roundtrip" test_basket_roundtrip;
        case "malformed" test_basket_malformed;
        case "drives the engine" test_basket_drives_engine;
      ] );
    ( "core.interest",
      [
        case "measures" test_interest_measures;
        case "exact-rule conviction" test_interest_exact_rule_conviction;
        case "filter/sort" test_interest_filter_sort;
        case "unprimary rejected" test_interest_unprimary;
        QCheck_alcotest.to_alcotest interest_lift_symmetry_prop;
      ] );
    ( "mining.hashtree",
      [
        case "basic" test_hashtree_basic;
        case "splits and collisions" test_hashtree_splits_hash_collisions;
        QCheck_alcotest.to_alcotest hashtree_equals_trie_prop;
      ] );
    ( "mining.bytes_budget",
      [
        case "estimate matches lattice" test_bytes_estimate_matches_lattice;
        case "budget respected" test_bytes_budget_respected;
        case "monotone in budget" test_bytes_budget_monotone;
        case "engine preprocess_bytes" test_engine_preprocess_bytes;
        QCheck_alcotest.to_alcotest bytes_budget_prop;
      ] );
    ( "core.export",
      [
        case "itemsets csv" test_export_itemsets_csv;
        case "rules csv (named, quoting)" test_export_rules_csv_named;
        case "json" test_export_json;
        case "measures columns" test_export_with_measures;
        case "validation" test_export_validation;
      ] );
  ]
