(* Shared fixtures, brute-force oracles and qcheck generators for the
   whole test suite. Oracles are deliberately naive (full enumeration or
   full scans) so they are obviously correct on the small universes used
   in tests. *)

open Olar_data

(* ------------------------------------------------------------------ *)
(* Alcotest testables *)

let itemset = Alcotest.testable Itemset.pp Itemset.equal

let rule = Alcotest.testable Olar_core.Rule.pp Olar_core.Rule.equal

let entry =
  Alcotest.pair itemset Alcotest.int

(* ------------------------------------------------------------------ *)
(* Fixed databases *)

(* 10 transactions over 5 items; rich enough to have 3-itemsets at
   minsup 2. *)
let small_db () =
  Database.of_lists ~num_items:5
    [
      [ 0; 1; 2 ];
      [ 0; 1 ];
      [ 0; 2 ];
      [ 1; 2 ];
      [ 0; 1; 2; 3 ];
      [ 3 ];
      [ 0; 3 ];
      [ 1; 3 ];
      [ 2; 4 ];
      [ 0; 1; 2 ];
    ]

(* The paper's Table 2 example (supports in % of a 1000-transaction
   database): items A=0, B=1, C=2, D=3. *)
let table2_entries () =
  let set l = Itemset.of_list l in
  [|
    (set [ 0 ], 10);
    (set [ 1 ], 20);
    (set [ 2 ], 30);
    (set [ 3 ], 10);
    (set [ 0; 1 ], 4);
    (set [ 0; 2 ], 7);
    (set [ 1; 3 ], 6);
    (set [ 1; 2 ], 4);
    (set [ 0; 1; 2 ], 3);
  |]

let table2_lattice () =
  Olar_core.Lattice.of_entries ~db_size:1000 ~threshold:3 (table2_entries ())

(* ------------------------------------------------------------------ *)
(* Brute-force oracles *)

(* All non-empty subsets of the universe of [db]; only usable when
   [num_items db] is small. *)
let all_nonempty_itemsets db =
  let n = Database.num_items db in
  assert (n <= 16);
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let items = ref [] in
    for b = n - 1 downto 0 do
      if mask land (1 lsl b) <> 0 then items := b :: !items
    done;
    out := Itemset.of_list !items :: !out
  done;
  List.rev !out

(* Frequent itemsets by exhaustive enumeration + full scans. *)
let brute_frequent db ~minsup =
  List.filter_map
    (fun x ->
      let c = Database.support_count db x in
      if c >= minsup then Some (x, c) else None)
    (all_nonempty_itemsets db)

let sort_entries l =
  List.sort (fun (x, _) (y, _) -> Itemset.compare x y) l

(* All rules at (minsup, confidence) by brute force. *)
let brute_rules db ~minsup ~confidence =
  let frequent = brute_frequent db ~minsup in
  let support a =
    if Itemset.is_empty a then Database.size db else Database.support_count db a
  in
  Olar_baseline.Naive_rules.all_rules ~support ~frequent ~confidence

(* Essential rules by brute force: Definition 4.2 verbatim. *)
let brute_essential_rules db ~minsup ~confidence =
  Olar_baseline.Naive_rules.essential_filter (brute_rules db ~minsup ~confidence)

(* An engine holding every itemset of the database (threshold 1), so any
   query support is answerable. *)
let full_engine db =
  let entries = Array.of_list (brute_frequent db ~minsup:1) in
  Olar_core.Engine.of_lattice
    (Olar_core.Lattice.of_entries ~db_size:(Database.size db) ~threshold:1
       entries)

(* ------------------------------------------------------------------ *)
(* qcheck generators *)

(* A random database over a small universe: 4-8 items, 1-40 transactions,
   each a random subset biased toward small sizes. *)
let db_gen =
  let open QCheck2.Gen in
  let* num_items = int_range 4 8 in
  let* num_txns = int_range 1 40 in
  let txn =
    let* size = int_range 0 num_items in
    let* items = list_repeat size (int_range 0 (num_items - 1)) in
    return items
  in
  let* rows = list_repeat num_txns txn in
  return (Database.of_lists ~num_items rows)

let db_print db =
  Format.asprintf "db(%d items):@ %a" (Database.num_items db)
    (Format.pp_print_list Itemset.pp)
    (Database.fold (fun acc t -> t :: acc) [] db)

(* A random itemset over the universe of a database. *)
let itemset_gen ~num_items =
  let open QCheck2.Gen in
  let* size = int_range 0 (min 4 num_items) in
  let* items = list_repeat size (int_range 0 (num_items - 1)) in
  return (Itemset.of_list items)

(* A database together with a query itemset over its universe. *)
let db_and_itemset_gen =
  let open QCheck2.Gen in
  let* db = db_gen in
  let* x = itemset_gen ~num_items:(Database.num_items db) in
  return (db, x)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* Substring search for asserting on rendered output. *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0
