(* Tests for olar.datagen: parameter parsing/naming and the Section 6.1
   synthetic generator. *)

open Olar_data
open Olar_datagen

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_name () =
  let p = Params.make ~avg_transaction_size:10.0 ~avg_itemset_size:4.0 ~num_transactions:100_000 () in
  check Alcotest.string "paper name" "T10.I4.D100K" (Params.name p);
  let p = Params.make ~avg_transaction_size:20.0 ~avg_itemset_size:6.0 ~num_transactions:2_500 () in
  check Alcotest.string "non-K name" "T20.I6.D2500" (Params.name p);
  let p = Params.make ~avg_transaction_size:12.5 ~avg_itemset_size:4.0 ~num_transactions:1_000 () in
  check Alcotest.string "fractional T" "T12.5.I4.D1K" (Params.name p)

let test_params_of_name () =
  (match Params.of_name "T10.I4.D100K" with
  | Some p ->
    check (Alcotest.float 0.0) "T" 10.0 p.Params.avg_transaction_size;
    check (Alcotest.float 0.0) "I" 4.0 p.Params.avg_itemset_size;
    check Alcotest.int "D" 100_000 p.Params.num_transactions
  | None -> Alcotest.fail "parse failed");
  (match Params.of_name "t20.i6.d500" with
  | Some p ->
    check (Alcotest.float 0.0) "lowercase T" 20.0 p.Params.avg_transaction_size;
    check Alcotest.int "lowercase D" 500 p.Params.num_transactions
  | None -> Alcotest.fail "lowercase parse failed");
  List.iter
    (fun s ->
      check Alcotest.bool ("reject " ^ s) true (Params.of_name s = None))
    [ ""; "T10"; "T10.I4"; "X10.I4.D1K"; "T10.I4.DxK"; "T-1.I4.D1K"; "T10.I4.D1K.extra" ]

let test_params_roundtrip () =
  List.iter
    (fun s ->
      match Params.of_name s with
      | Some p -> check Alcotest.string ("roundtrip " ^ s) s (Params.name p)
      | None -> Alcotest.failf "parse failed for %s" s)
    [ "T10.I4.D100K"; "T20.I6.D100K"; "T5.I2.D777" ]

let test_params_validate () =
  Params.validate Params.default;
  let bad = { Params.default with num_items = 0 } in
  Alcotest.check_raises "num_items" (Invalid_argument "Params.validate: num_items")
    (fun () -> Params.validate bad);
  let bad = { Params.default with correlation = 1.5 } in
  Alcotest.check_raises "correlation" (Invalid_argument "Params.validate: correlation")
    (fun () -> Params.validate bad);
  let bad = { Params.default with avg_itemset_size = 2000.0 } in
  Alcotest.check_raises "itemset above universe"
    (Invalid_argument "Params.validate: avg_itemset_size above universe")
    (fun () -> Params.validate bad)

(* ------------------------------------------------------------------ *)
(* Quest: stage 1 *)

let small_params =
  {
    Params.default with
    Params.num_items = 200;
    num_potential = 100;
    num_transactions = 2_000;
    seed = 7;
  }

let test_potential_shapes () =
  let pot = Quest.potential_itemsets small_params in
  check Alcotest.int "count" 100 (Array.length pot.Quest.itemsets);
  check Alcotest.int "weights" 100 (Array.length pot.Quest.weights);
  check Alcotest.int "noise" 100 (Array.length pot.Quest.noise);
  Array.iter
    (fun x ->
      check Alcotest.bool "non-empty" false (Itemset.is_empty x);
      check Alcotest.bool "in universe" true (Itemset.max_item x < 200))
    pot.Quest.itemsets;
  Array.iter
    (fun w -> check Alcotest.bool "weight positive" true (w >= 0.0))
    pot.Quest.weights;
  Array.iter
    (fun n -> check Alcotest.bool "noise in (0,1)" true (n > 0.0 && n < 1.0))
    pot.Quest.noise

let test_potential_mean_size () =
  let pot = Quest.potential_itemsets { small_params with Params.num_potential = 2000 } in
  let mean =
    Array.fold_left (fun acc x -> acc +. float_of_int (Itemset.cardinal x)) 0.0
      pot.Quest.itemsets
    /. 2000.0
  in
  (* sizes are max(1, Poisson(4)): mean slightly above 4 *)
  if mean < 3.6 || mean > 4.6 then Alcotest.failf "mean itemset size %f" mean

let test_potential_correlation () =
  (* Successive potential itemsets share items (the paper's carry-over). *)
  let pot = Quest.potential_itemsets { small_params with Params.num_potential = 500 } in
  let shared = ref 0 and pairs = ref 0 in
  for j = 1 to 499 do
    let a = pot.Quest.itemsets.(j - 1) and b = pot.Quest.itemsets.(j) in
    incr pairs;
    if not (Itemset.disjoint a b) then incr shared
  done;
  let frac = float_of_int !shared /. float_of_int !pairs in
  check Alcotest.bool (Printf.sprintf "adjacent overlap %.2f" frac) true (frac > 0.5)

let test_potential_no_correlation_param () =
  let pot =
    Quest.potential_itemsets
      { small_params with Params.correlation = 0.0; num_potential = 300 }
  in
  (* with correlation 0 adjacent overlap should be rare on a 200-item
     universe *)
  let shared = ref 0 in
  for j = 1 to 299 do
    if not (Itemset.disjoint pot.Quest.itemsets.(j - 1) pot.Quest.itemsets.(j))
    then incr shared
  done;
  check Alcotest.bool "low overlap" true (float_of_int !shared /. 299.0 < 0.3)

(* ------------------------------------------------------------------ *)
(* Quest: stage 2 *)

let test_generate_shape () =
  let db = Quest.generate small_params in
  check Alcotest.int "transactions" 2_000 (Database.size db);
  check Alcotest.int "universe" 200 (Database.num_items db);
  let avg = Database.avg_transaction_size db in
  if avg < 8.0 || avg > 12.0 then Alcotest.failf "avg transaction size %f" avg

let test_generate_deterministic () =
  let a = Quest.generate small_params in
  let b = Quest.generate small_params in
  check Alcotest.int "same size" (Database.size a) (Database.size b);
  Database.iteri
    (fun tid txn -> check Helpers.itemset "same transaction" txn (Database.get b tid))
    a

let test_generate_seed_changes_data () =
  let a = Quest.generate small_params in
  let b = Quest.generate { small_params with Params.seed = 8 } in
  let differs = ref false in
  Database.iteri
    (fun tid txn ->
      if not (Itemset.equal txn (Database.get b tid)) then differs := true)
    a;
  check Alcotest.bool "different seed different data" true !differs

let test_generate_has_patterns () =
  (* The generated data must contain frequent itemsets beyond singletons:
     that is the whole point of planting potential itemsets. *)
  let db = Quest.generate small_params in
  let minsup = Database.count_of_fraction db 0.02 in
  let f = Olar_mining.Apriori.mine db ~minsup in
  check Alcotest.bool "frequent pairs exist" true
    (Array.length (Olar_mining.Frequent.level f 2) > 0)

let test_generate_zero_transactions () =
  let db = Quest.generate { small_params with Params.num_transactions = 0 } in
  check Alcotest.int "empty db" 0 (Database.size db)

let generate_within_universe_prop =
  QCheck2.Test.make ~name:"quest: every item in range, sizes positive" ~count:20
    QCheck2.Gen.(pair (int_range 1 1000) (pair (float_range 2.0 8.0) (float_range 2.0 6.0)))
    (fun (seed, (t, i)) ->
      let params =
        {
          small_params with
          Params.seed;
          avg_transaction_size = t;
          avg_itemset_size = i;
          num_transactions = 100;
        }
      in
      let db = Quest.generate params in
      Database.size db = 100
      && Database.fold
           (fun ok txn ->
             ok && (Itemset.is_empty txn || Itemset.max_item txn < 200))
           true db)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "datagen.params",
      [
        case "name" test_params_name;
        case "of_name" test_params_of_name;
        case "roundtrip" test_params_roundtrip;
        case "validate" test_params_validate;
      ] );
    ( "datagen.quest",
      [
        case "potential shapes" test_potential_shapes;
        case "potential mean size" test_potential_mean_size;
        case "potential correlation" test_potential_correlation;
        case "correlation off" test_potential_no_correlation_param;
        case "generate shape" test_generate_shape;
        case "deterministic" test_generate_deterministic;
        case "seed sensitivity" test_generate_seed_changes_data;
        case "plants patterns" test_generate_has_patterns;
        case "zero transactions" test_generate_zero_transactions;
        QCheck_alcotest.to_alcotest generate_within_universe_prop;
      ] );
  ]
