(* Cross-cutting laws: monotonicity and consistency properties that tie
   several modules together. These are the invariants an analyst relies
   on without thinking — tightening a threshold can only shrink an
   answer, folding data in batches equals folding it at once, etc. *)

open Olar_data
open Olar_core

let conf = Conf.of_float

(* Raising minsup can only shrink the itemset answer, and the smaller
   answer is a subset of the larger. *)
let itemsets_antitone_prop =
  QCheck2.Test.make ~name:"law: itemsets are antitone in minsup" ~count:80
    ~print:(fun (db, (a, b)) ->
      Helpers.db_print db ^ Printf.sprintf " s=%d..%d" a (a + b))
    QCheck2.Gen.(pair Helpers.db_gen (pair (int_range 1 4) (int_range 0 4)))
    (fun (db, (lo, bump)) ->
      let hi = lo + bump in
      let lat = Engine.lattice (Helpers.full_engine db) in
      let at s =
        Itemset.Set.of_list
          (List.map
             (fun v -> Lattice.itemset lat v)
             (Query.find_itemsets lat ~containing:Itemset.empty ~minsup:s))
      in
      Itemset.Set.subset (at hi) (at lo))

(* Raising minconf can only shrink the rule answer. *)
let rules_antitone_in_conf_prop =
  QCheck2.Test.make ~name:"law: all rules are antitone in confidence" ~count:60
    ~print:(fun (db, (c1, c2)) ->
      Helpers.db_print db ^ Printf.sprintf " c=%f<=%f" c1 (Float.min 1.0 (c1 +. c2)))
    QCheck2.Gen.(
      pair Helpers.db_gen (pair (float_range 0.1 0.9) (float_range 0.0 0.5)))
    (fun (db, (c_lo, bump)) ->
      let c_hi = Float.min 1.0 (c_lo +. bump) in
      let lat = Engine.lattice (Helpers.full_engine db) in
      let at c =
        List.map Rule.to_string (Rulegen.all_rules lat ~minsup:1 ~confidence:(conf c))
      in
      let strict = at c_hi and loose = at c_lo in
      List.for_all (fun r -> List.mem r loose) strict)

(* Essential rules are always a subset of all rules, and counting
   queries agree with materialising ones. *)
let essential_subset_prop =
  QCheck2.Test.make ~name:"law: essential ⊆ all; counts agree" ~count:60
    ~print:(fun (db, c) -> Helpers.db_print db ^ Printf.sprintf " c=%f" c)
    QCheck2.Gen.(pair Helpers.db_gen (float_range 0.1 1.0))
    (fun (db, c) ->
      let lat = Engine.lattice (Helpers.full_engine db) in
      let all = Rulegen.all_rules lat ~minsup:2 ~confidence:(conf c) in
      let essential = Rulegen.essential_rules lat ~minsup:2 ~confidence:(conf c) in
      let report = Rulegen.redundancy lat ~minsup:2 ~confidence:(conf c) in
      List.for_all (fun r -> List.exists (Rule.equal r) all) essential
      && report.Rulegen.total_rules = List.length all
      && report.Rulegen.essential_count = List.length essential
      && Query.count_itemsets lat ~containing:Itemset.empty ~minsup:2
         = List.length (Query.find_itemsets lat ~containing:Itemset.empty ~minsup:2))

(* The single-consequent rules are exactly the one-item-consequent slice
   of all rules. *)
let single_consequent_slice_prop =
  QCheck2.Test.make ~name:"law: single-consequent = slice of all rules"
    ~count:60
    ~print:(fun (db, c) -> Helpers.db_print db ^ Printf.sprintf " c=%f" c)
    QCheck2.Gen.(pair Helpers.db_gen (float_range 0.1 1.0))
    (fun (db, c) ->
      let lat = Engine.lattice (Helpers.full_engine db) in
      let all = Rulegen.all_rules lat ~minsup:1 ~confidence:(conf c) in
      let sc = Rulegen.single_consequent_rules lat ~minsup:1 ~confidence:(conf c) in
      List.sort Rule.compare sc
      = List.sort Rule.compare (List.filter Rule.single_consequent all))

(* Serialize/parse is the identity on query behaviour (fuzzed over
   random mined lattices). *)
let serialize_identity_prop =
  QCheck2.Test.make ~name:"law: serialization preserves every query" ~count:50
    ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      let lat = Engine.lattice (Helpers.full_engine db) in
      let path = Filename.temp_file "olar_law" ".lattice" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Serialize.save lat path;
          let back = Serialize.load path in
          let q l =
            ( Query.to_entries l (Query.find_itemsets l ~containing:Itemset.empty ~minsup:2),
              Rulegen.essential_rules l ~minsup:2 ~confidence:(conf 0.5),
              Lattice.num_edges l,
              Lattice.estimated_bytes l )
          in
          q lat = q back))

(* Folding a delta in two batches equals folding it in one. *)
let append_associative_prop =
  QCheck2.Test.make ~name:"law: append is batch-associative" ~count:50
    ~print:(fun (a, b) -> Helpers.db_print a ^ " / " ^ Helpers.db_print b)
    QCheck2.Gen.(pair Helpers.db_gen Helpers.db_gen)
    (fun (base, extra) ->
      let num_items = Database.num_items base in
      let clip db =
        Database.create ~num_items
          (Array.init (Database.size db) (fun i ->
               Itemset.of_list
                 (List.filter (fun x -> x < num_items)
                    (Itemset.to_list (Database.get db i)))))
      in
      let extra = clip extra in
      let n = Database.size extra in
      QCheck2.assume (n >= 2);
      let half = n / 2 in
      let slice from count =
        Database.create ~num_items
          (Array.init count (fun i -> Database.get extra (from + i)))
      in
      let lat = Engine.lattice (Helpers.full_engine base) in
      let once = (Maintenance.append lat extra).Maintenance.lattice in
      let step1 = (Maintenance.append lat (slice 0 half)).Maintenance.lattice in
      let twice =
        (Maintenance.append step1 (slice half (n - half))).Maintenance.lattice
      in
      Lattice.db_size once = Lattice.db_size twice
      && Array.for_all2
           (fun (x1, c1) (x2, c2) -> Itemset.equal x1 x2 && c1 = c2)
           (Lattice.entries once) (Lattice.entries twice))

(* FindSupport's threshold answer is consistent with FindItemsets. *)
let find_support_consistency_prop =
  QCheck2.Test.make ~name:"law: FindSupport level yields >= k itemsets"
    ~count:80
    ~print:(fun ((db, z), k) ->
      Helpers.db_print db ^ "/" ^ Itemset.to_string z ^ Printf.sprintf " k=%d" k)
    QCheck2.Gen.(pair Helpers.db_and_itemset_gen (int_range 1 10))
    (fun ((db, z), k) ->
      let lat = Engine.lattice (Helpers.full_engine db) in
      match Support_query.find_support lat ~containing:z ~k with
      | { Support_query.support_level = None; itemsets } ->
        List.length itemsets < k
      | { Support_query.support_level = Some level; itemsets } ->
        List.length itemsets = k
        && Query.count_itemsets lat ~containing:z ~minsup:level >= k
        && (level + 1 > Lattice.db_size lat
           || Query.count_itemsets lat ~containing:z ~minsup:(level + 1) < k))

(* Condensed representations nest: maximal ⊆ closed ⊆ frequent. *)
let condense_nesting_prop =
  QCheck2.Test.make ~name:"law: maximal ⊆ closed ⊆ frequent" ~count:80
    ~print:(fun (db, s) -> Helpers.db_print db ^ Printf.sprintf " minsup=%d" s)
    QCheck2.Gen.(pair Helpers.db_gen (int_range 1 5))
    (fun (db, minsup) ->
      let frequent = Olar_mining.Apriori.mine db ~minsup in
      let as_set l = Itemset.Set.of_list (List.map fst l) in
      let maximal = as_set (Olar_mining.Condense.maximal frequent) in
      let closed = as_set (Olar_mining.Condense.closed frequent) in
      Itemset.Set.subset maximal closed
      && Itemset.Set.for_all (fun x -> Olar_mining.Frequent.mem frequent x) closed)

(* Lift/leverage sign agreement: both say "positively correlated" or
   neither does. *)
let lift_leverage_sign_prop =
  QCheck2.Test.make ~name:"law: lift > 1 iff leverage > 0" ~count:60
    ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      let lat = Engine.lattice (Helpers.full_engine db) in
      let rules = Rulegen.all_rules lat ~minsup:1 ~confidence:(conf 0.05) in
      List.for_all
        (fun r ->
          let m = Interest.measures lat r in
          let eps = 1e-9 in
          (m.Interest.lift > 1.0 +. eps && m.Interest.leverage > 0.0)
          || (m.Interest.lift < 1.0 -. eps && m.Interest.leverage < 0.0)
          || Float.abs (m.Interest.lift -. 1.0) <= eps
             && Float.abs m.Interest.leverage <= eps *. 10.0)
        rules)

(* Promotion frontier soundness: every reported candidate really is
   frequent over old ∪ delta, absent from the old lattice, and minimal. *)
let promotion_soundness_prop =
  QCheck2.Test.make ~name:"law: promotion frontier is sound" ~count:50
    ~print:(fun (a, b) -> Helpers.db_print a ^ " / " ^ Helpers.db_print b)
    QCheck2.Gen.(pair Helpers.db_gen Helpers.db_gen)
    (fun (old_db, delta_raw) ->
      let num_items = Database.num_items old_db in
      let delta =
        Database.create ~num_items
          (Array.init (Database.size delta_raw) (fun i ->
               Itemset.of_list
                 (List.filter (fun x -> x < num_items)
                    (Itemset.to_list (Database.get delta_raw i)))))
      in
      let threshold = 2 in
      let entries =
        Array.of_list (Helpers.brute_frequent old_db ~minsup:threshold)
      in
      let lat =
        Lattice.of_entries ~db_size:(Database.size old_db) ~threshold entries
      in
      let update = Maintenance.append lat delta in
      let merged_count x =
        Database.support_count old_db x + Database.support_count delta x
      in
      List.for_all
        (fun x ->
          merged_count x >= threshold
          && (not (Lattice.mem lat x))
          && List.for_all (fun (_, p) -> Lattice.mem lat p) (Itemset.parents x))
        update.Maintenance.promoted_candidates)

(* The serializer never dies with anything but Malformed on garbage. *)
let serialize_fuzz_prop =
  QCheck2.Test.make ~name:"law: parse rejects garbage with Malformed only"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 12) (string_size (int_range 0 30)))
    (fun lines ->
      match Serialize.parse lines with
      | _ -> true
      | exception Serialize.Malformed _ -> true
      | exception _ -> false)

let db_io_fuzz_prop =
  QCheck2.Test.make ~name:"law: db parser rejects garbage with Malformed only"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 12) (string_size (int_range 0 30)))
    (fun lines ->
      match Db_io.parse lines with
      | _ -> true
      | exception Db_io.Malformed _ -> true
      | exception _ -> false)

(* Byte-budget and count-budget searches agree on monotonicity: both
   thresholds fall when the budget rises. *)
let budget_monotone_prop =
  QCheck2.Test.make ~name:"law: budget searches are antitone in budget"
    ~count:30
    ~print:(fun (db, (a, b)) ->
      Helpers.db_print db ^ Printf.sprintf " n=%d..%d" a (a + b))
    QCheck2.Gen.(pair Helpers.db_gen (pair (int_range 1 30) (int_range 0 50)))
    (fun (db, (n_lo, bump)) ->
      let n_hi = n_lo + bump in
      let thr n =
        (Olar_mining.Threshold.optimized db ~target:n ~slack:0)
          .Olar_mining.Threshold.threshold
      in
      thr n_hi <= thr n_lo)

let suites =
  [
    ( "laws",
      List.map QCheck_alcotest.to_alcotest
        [
          itemsets_antitone_prop;
          rules_antitone_in_conf_prop;
          essential_subset_prop;
          single_consequent_slice_prop;
          serialize_identity_prop;
          append_associative_prop;
          find_support_consistency_prop;
          condense_nesting_prop;
          lift_leverage_sign_prop;
          promotion_soundness_prop;
          serialize_fuzz_prop;
          db_io_fuzz_prop;
          budget_monotone_prop;
        ] );
  ]
