(* Tests for olar.mining: Trie, Candidate, Frequent, the level-wise
   miners (Apriori, DHP) against brute-force oracles, and the
   primary-threshold search. *)

open Olar_data
open Olar_mining

let check = Alcotest.check
let set = Itemset.of_list
let itemset = Helpers.itemset
let entries = Alcotest.list Helpers.entry

(* ------------------------------------------------------------------ *)
(* Trie *)

let test_trie_insert_count () =
  let t = Trie.create ~depth:2 in
  check Alcotest.int "depth" 2 (Trie.depth t);
  Trie.insert t (set [ 0; 1 ]);
  Trie.insert t (set [ 0; 2 ]);
  Trie.insert t (set [ 1; 2 ]);
  Trie.insert t (set [ 0; 1 ]);
  (* duplicate *)
  check Alcotest.int "size dedups" 3 (Trie.size t);
  Trie.count_transaction t (set [ 0; 1; 2 ]);
  Trie.count_transaction t (set [ 0; 1 ]);
  Trie.count_transaction t (set [ 2 ]);
  check (Alcotest.option Alcotest.int) "count 01" (Some 2) (Trie.count t (set [ 0; 1 ]));
  check (Alcotest.option Alcotest.int) "count 02" (Some 1) (Trie.count t (set [ 0; 2 ]));
  check (Alcotest.option Alcotest.int) "count 12" (Some 1) (Trie.count t (set [ 1; 2 ]));
  check (Alcotest.option Alcotest.int) "not inserted" None (Trie.count t (set [ 0; 3 ]))

let test_trie_sorted_output () =
  let t = Trie.create ~depth:2 in
  List.iter (Trie.insert t) [ set [ 2; 3 ]; set [ 0; 9 ]; set [ 0; 1 ] ];
  let out = Array.to_list (Trie.to_sorted_array t) in
  check entries "lex order"
    [ (set [ 0; 1 ], 0); (set [ 0; 9 ], 0); (set [ 2; 3 ], 0) ]
    out

let test_trie_wrong_arity () =
  let t = Trie.create ~depth:2 in
  Alcotest.check_raises "insert arity" (Invalid_argument "Trie.insert: wrong arity")
    (fun () -> Trie.insert t (set [ 1 ]));
  Alcotest.check_raises "create depth 0" (Invalid_argument "Trie.create")
    (fun () -> ignore (Trie.create ~depth:0))

let test_trie_short_transaction () =
  let t = Trie.create ~depth:3 in
  Trie.insert t (set [ 0; 1; 2 ]);
  Trie.count_transaction t (set [ 0; 1 ]);
  (* too short to contain any 3-candidate *)
  check (Alcotest.option Alcotest.int) "untouched" (Some 0) (Trie.count t (set [ 0; 1; 2 ]))

let trie_vs_scan_prop =
  QCheck2.Test.make ~name:"trie: batch counting equals subset scans" ~count:100
    ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      (* Candidates: all 2-itemsets over the universe. *)
      let n = Database.num_items db in
      let t = Trie.create ~depth:2 in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          Trie.insert t (set [ a; b ])
        done
      done;
      Database.iter (Trie.count_transaction t) db;
      Array.for_all
        (fun (x, c) -> c = Database.support_count db x)
        (Trie.to_sorted_array t))

(* ------------------------------------------------------------------ *)
(* Candidate *)

let test_candidate_pairs () =
  let out = Candidate.pairs_of_items [| 1; 4; 6 |] in
  check (Alcotest.list itemset) "pairs"
    [ set [ 1; 4 ]; set [ 1; 6 ]; set [ 4; 6 ] ]
    (Array.to_list out);
  Alcotest.check_raises "unsorted" (Invalid_argument "Candidate.pairs_of_items")
    (fun () -> ignore (Candidate.pairs_of_items [| 2; 1 |]))

let test_candidate_join_prune () =
  (* Classic example: frequent 2-itemsets {0,1} {0,2} {1,2} {1,3} join to
     3-candidates {0,1,2} (kept: all subsets frequent) and {1,2,3}
     (pruned: {2,3} infrequent). *)
  let frequent = [| set [ 0; 1 ]; set [ 0; 2 ]; set [ 1; 2 ]; set [ 1; 3 ] |] in
  let members = List.map (fun x -> Itemset.to_string x) (Array.to_list frequent) in
  let is_frequent x = List.mem (Itemset.to_string x) members in
  let out = Candidate.generate ~frequent ~is_frequent in
  check (Alcotest.list itemset) "join+prune" [ set [ 0; 1; 2 ] ] (Array.to_list out)

let test_candidate_no_join () =
  (* No pair shares a (k-1)-prefix: no candidates. *)
  let frequent = [| set [ 0; 1 ]; set [ 2; 3 ] |] in
  let out = Candidate.generate ~frequent ~is_frequent:(fun _ -> true) in
  check Alcotest.int "empty" 0 (Array.length out)

let test_candidate_validation () =
  Alcotest.check_raises "empty level"
    (Invalid_argument "Candidate.generate: empty level") (fun () ->
      ignore (Candidate.generate ~frequent:[||] ~is_frequent:(fun _ -> true)));
  Alcotest.check_raises "mixed arity"
    (Invalid_argument "Candidate.generate: mixed arity") (fun () ->
      ignore
        (Candidate.generate
           ~frequent:[| set [ 0 ]; set [ 0; 1 ] |]
           ~is_frequent:(fun _ -> true)));
  Alcotest.check_raises "not sorted"
    (Invalid_argument "Candidate.generate: not sorted") (fun () ->
      ignore
        (Candidate.generate
           ~frequent:[| set [ 1; 2 ]; set [ 0; 1 ] |]
           ~is_frequent:(fun _ -> true)))

(* Superset completeness: every frequent (k+1)-itemset appears among the
   candidates generated from the frequent k-itemsets. *)
let candidate_complete_prop =
  QCheck2.Test.make ~name:"candidate: generation is complete" ~count:100
    ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      let minsup = 2 in
      let frequent = Helpers.brute_frequent db ~minsup in
      let by_level k =
        List.sort Itemset.compare_lex
          (List.filter_map
             (fun (x, _) -> if Itemset.cardinal x = k then Some x else None)
             frequent)
      in
      let ok = ref true in
      let max_k = List.fold_left (fun m (x, _) -> max m (Itemset.cardinal x)) 0 frequent in
      for k = 2 to max_k - 1 do
        let level = Array.of_list (by_level k) in
        if Array.length level > 0 then begin
          let member = Itemset.Table.create 16 in
          Array.iter (fun x -> Itemset.Table.replace member x ()) level;
          let cands =
            Candidate.generate ~frequent:level ~is_frequent:(Itemset.Table.mem member)
          in
          let cand_set = Itemset.Table.create 16 in
          Array.iter (fun x -> Itemset.Table.replace cand_set x ()) cands;
          List.iter
            (fun x -> if not (Itemset.Table.mem cand_set x) then ok := false)
            (by_level (k + 1))
        end
        else if by_level (k + 1) <> [] then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Frequent *)

let mk_frequent () =
  Frequent.v ~db_size:10 ~threshold:2
    ~levels:
      [
        [| (set [ 0 ], 6); (set [ 1 ], 5); (set [ 2 ], 3) |];
        [| (set [ 0; 1 ], 4); (set [ 0; 2 ], 2) |];
      ]
    ~complete:true ~completed_levels:2

let test_frequent_accessors () =
  let f = mk_frequent () in
  check Alcotest.int "total" 5 (Frequent.total f);
  check Alcotest.int "max_level" 2 (Frequent.max_level f);
  check Alcotest.int "db_size" 10 (Frequent.db_size f);
  check Alcotest.int "threshold" 2 (Frequent.threshold f);
  check Alcotest.bool "complete" true (Frequent.complete f);
  check (Alcotest.option Alcotest.int) "count" (Some 4) (Frequent.count f (set [ 0; 1 ]));
  check (Alcotest.option Alcotest.int) "missing" None (Frequent.count f (set [ 1; 2 ]));
  check Alcotest.bool "mem" true (Frequent.mem f (set [ 2 ]));
  check Alcotest.int "level 1" 3 (Array.length (Frequent.level f 1));
  check Alcotest.int "level 0 empty" 0 (Array.length (Frequent.level f 0));
  check Alcotest.int "level 3 empty" 0 (Array.length (Frequent.level f 3));
  check Alcotest.int "to_list order" 5 (List.length (Frequent.to_list f))

let test_frequent_validation () =
  let bad_sort () =
    Frequent.v ~db_size:10 ~threshold:2
      ~levels:[ [| (set [ 1 ], 5); (set [ 0 ], 6) |] ]
      ~complete:true ~completed_levels:1
  in
  Alcotest.check_raises "not sorted" (Invalid_argument "Frequent.v: level not sorted")
    (fun () -> ignore (bad_sort ()));
  let bad_level () =
    Frequent.v ~db_size:10 ~threshold:2
      ~levels:[ [| (set [ 0; 1 ], 5) |] ]
      ~complete:true ~completed_levels:1
  in
  Alcotest.check_raises "wrong level" (Invalid_argument "Frequent.v: wrong level")
    (fun () -> ignore (bad_level ()));
  let below () =
    Frequent.v ~db_size:10 ~threshold:5
      ~levels:[ [| (set [ 0 ], 3) |] ]
      ~complete:true ~completed_levels:1
  in
  Alcotest.check_raises "below threshold"
    (Invalid_argument "Frequent.v: count below threshold") (fun () ->
      ignore (below ()))

let test_frequent_restrict () =
  let f = mk_frequent () in
  let r = Frequent.restrict f ~threshold:4 in
  check Alcotest.int "threshold" 4 (Frequent.threshold r);
  check Alcotest.int "total" 3 (Frequent.total r);
  check Alcotest.bool "kept" true (Frequent.mem r (set [ 0; 1 ]));
  check Alcotest.bool "dropped" false (Frequent.mem r (set [ 2 ]));
  (* restricting to 5 leaves level 2 empty: trailing levels trimmed *)
  let r5 = Frequent.restrict f ~threshold:5 in
  check Alcotest.int "max_level trimmed" 1 (Frequent.max_level r5);
  Alcotest.check_raises "lower threshold" (Invalid_argument "Frequent.restrict")
    (fun () -> ignore (Frequent.restrict f ~threshold:1))

(* ------------------------------------------------------------------ *)
(* Miners vs brute force *)

let sorted_frequent f = Helpers.sort_entries (Frequent.to_list f)

let test_apriori_small_db () =
  let db = Helpers.small_db () in
  let f = Apriori.mine db ~minsup:2 in
  check entries "matches brute force"
    (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:2))
    (sorted_frequent f);
  check Alcotest.bool "complete" true (Frequent.complete f)

let test_apriori_minsup_one () =
  let db = Database.of_lists ~num_items:3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  let f = Apriori.mine db ~minsup:1 in
  check entries "all transaction subsets"
    (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:1))
    (sorted_frequent f)

let test_apriori_nothing_frequent () =
  let db = Database.of_lists ~num_items:3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let f = Apriori.mine db ~minsup:2 in
  check Alcotest.int "empty" 0 (Frequent.total f);
  check Alcotest.bool "complete" true (Frequent.complete f)

(* More counting domains than transactions — including zero
   transactions — must clamp to the slices that exist, not crash or
   spawn idle domains that corrupt counts. Regression guard for callers
   that default [~domains] to the machine width on tiny databases. *)
let test_domains_exceed_transactions () =
  let empty = Database.of_lists ~num_items:4 [] in
  let f0 = Apriori.mine ~domains:8 empty ~minsup:1 in
  check Alcotest.int "empty db mines nothing" 0 (Frequent.total f0);
  check Alcotest.bool "and is complete" true (Frequent.complete f0);
  let one = Database.of_lists ~num_items:4 [ [ 0; 2 ] ] in
  check entries "1-txn db, 8 domains = serial"
    (sorted_frequent (Apriori.mine one ~minsup:1))
    (sorted_frequent (Apriori.mine ~domains:8 one ~minsup:1));
  (* the full preprocessing surface under the same imbalance *)
  let engine =
    Olar_core.Engine.at_threshold ~domains:8 one ~primary_support:1.0
  in
  check Alcotest.int "engine over the 1-txn db answers" 3
    (Olar_core.Engine.count_itemsets engine ~minsup:1.0)

let test_apriori_validation () =
  let db = Helpers.small_db () in
  Alcotest.check_raises "minsup 0" (Invalid_argument "Levelwise.mine: minsup")
    (fun () -> ignore (Apriori.mine db ~minsup:0))

let test_apriori_stats () =
  let db = Helpers.small_db () in
  let stats = Stats.create () in
  let f = Apriori.mine ~stats db ~minsup:2 in
  let passes = Olar_util.Timer.Counter.value stats.Stats.passes in
  check Alcotest.bool "passes = levels + 1 (last empty level)" true
    (passes = Frequent.max_level f + 1 || passes = Frequent.max_level f);
  check Alcotest.int "frequent counter" (Frequent.total f)
    (Olar_util.Timer.Counter.value stats.Stats.frequent);
  check Alcotest.int "no hash pruning in apriori" 0
    (Olar_util.Timer.Counter.value stats.Stats.hash_pruned)

let test_apriori_cap () =
  let db = Helpers.small_db () in
  let full = Apriori.mine db ~minsup:2 in
  let capped = Apriori.mine db ~cap:2 ~minsup:2 in
  check Alcotest.bool "flagged incomplete" false (Frequent.complete capped);
  check Alcotest.bool "exceeds cap when cut" true (Frequent.total capped > 2);
  check Alcotest.bool "subset of full" true
    (List.for_all
       (fun (x, c) -> Frequent.count full x = Some c)
       (Frequent.to_list capped));
  (* completed levels of a capped run are exhaustive *)
  let k0 = Frequent.completed_levels capped in
  for k = 1 to k0 do
    check Alcotest.int
      (Printf.sprintf "level %d exhaustive" k)
      (Array.length (Frequent.level full k))
      (Array.length (Frequent.level capped k))
  done

let test_apriori_max_level () =
  let db = Helpers.small_db () in
  let f = Apriori.mine db ~max_level:1 ~minsup:2 in
  check Alcotest.int "only level 1" 1 (Frequent.max_level f);
  check Alcotest.bool "incomplete" false (Frequent.complete f)

let test_apriori_seed_reuse () =
  let db = Helpers.small_db () in
  let seed = Apriori.mine db ~minsup:2 in
  let reused = Apriori.mine db ~seed ~minsup:3 in
  let fresh = Apriori.mine db ~minsup:3 in
  check entries "seeded equals fresh" (sorted_frequent fresh) (sorted_frequent reused);
  check Alcotest.bool "complete" true (Frequent.complete reused);
  (* reuse must not re-count: 0 passes when the seed is complete *)
  let stats = Stats.create () in
  let _ = Apriori.mine ~stats db ~seed ~minsup:3 in
  check Alcotest.int "no passes with complete seed" 0
    (Olar_util.Timer.Counter.value stats.Stats.passes)

let test_apriori_seed_partial () =
  let db = Helpers.small_db () in
  (* Partial seed: only level 1 counted. *)
  let seed = Apriori.mine db ~max_level:1 ~minsup:2 in
  let reused = Apriori.mine db ~seed ~minsup:2 in
  let fresh = Apriori.mine db ~minsup:2 in
  check entries "partial seed completes correctly" (sorted_frequent fresh)
    (sorted_frequent reused)

let test_apriori_seed_validation () =
  let db = Helpers.small_db () in
  let seed = Apriori.mine db ~minsup:3 in
  Alcotest.check_raises "seed above minsup"
    (Invalid_argument "Levelwise.mine: seed threshold above minsup") (fun () ->
      ignore (Apriori.mine db ~seed ~minsup:2))

let test_dhp_matches_apriori () =
  let db = Helpers.small_db () in
  let a = Apriori.mine db ~minsup:2 in
  let d = Dhp.mine db ~minsup:2 in
  check entries "same result" (sorted_frequent a) (sorted_frequent d)

let test_dhp_small_buckets () =
  (* Heavy hash collisions (4 buckets) must never lose itemsets: the
     filter only discards candidates whose bucket is globally light. *)
  let db = Helpers.small_db () in
  let d = Dhp.mine ~buckets:4 db ~minsup:2 in
  check entries "collision-heavy table still exact"
    (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:2))
    (sorted_frequent d)

let test_dhp_hash_all_levels () =
  let db = Helpers.small_db () in
  let d = Dhp.mine ~hash_all_levels:true db ~minsup:2 in
  check entries "hash_all variant exact"
    (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:2))
    (sorted_frequent d)

let test_dhp_prunes_candidates () =
  (* On a database with many infrequent pairs, DHP must count fewer
     2-candidates than Apriori. *)
  let params = { Olar_datagen.Params.default with num_transactions = 500 } in
  let db = Olar_datagen.Quest.generate params in
  let sa = Stats.create () and sd = Stats.create () in
  let a = Apriori.mine ~stats:sa db ~minsup:10 in
  let d = Dhp.mine ~stats:sd db ~minsup:10 in
  check entries "equal output" (sorted_frequent a) (sorted_frequent d);
  let ca = Olar_util.Timer.Counter.value sa.Stats.candidates in
  let cd = Olar_util.Timer.Counter.value sd.Stats.candidates in
  check Alcotest.bool
    (Printf.sprintf "dhp counts fewer candidates (%d < %d)" cd ca)
    true (cd < ca);
  check Alcotest.bool "pruning accounted" true
    (Olar_util.Timer.Counter.value sd.Stats.hash_pruned > 0)

let miner_oracle_prop ~name mine =
  QCheck2.Test.make ~name ~count:60
    ~print:(fun (db, minsup) -> Helpers.db_print db ^ Printf.sprintf " minsup=%d" minsup)
    QCheck2.Gen.(pair Helpers.db_gen (int_range 1 6))
    (fun (db, minsup) ->
      let mined = mine db ~minsup in
      Helpers.sort_entries (Frequent.to_list mined)
      = Helpers.sort_entries (Helpers.brute_frequent db ~minsup))

let apriori_oracle_prop =
  miner_oracle_prop ~name:"apriori: equals brute force" (fun db ~minsup ->
      Apriori.mine db ~minsup)

let dhp_oracle_prop =
  miner_oracle_prop ~name:"dhp: equals brute force" (fun db ~minsup ->
      Dhp.mine ~buckets:16 db ~minsup)

let dhp_hash_all_oracle_prop =
  miner_oracle_prop ~name:"dhp hash_all: equals brute force" (fun db ~minsup ->
      Dhp.mine ~buckets:8 ~hash_all_levels:true db ~minsup)

let hashtree_counting_oracle_prop =
  miner_oracle_prop ~name:"apriori with hashtree counting: equals brute force"
    (fun db ~minsup -> Apriori.mine ~counting:Levelwise.Use_hashtree db ~minsup)

let parallel_counting_oracle_prop =
  miner_oracle_prop ~name:"apriori with 4 domains: equals brute force"
    (fun db ~minsup -> Apriori.mine ~domains:4 db ~minsup)

let parallel_equals_sequential () =
  let params =
    { Olar_datagen.Params.default with Olar_datagen.Params.num_items = 120;
      num_potential = 40; num_transactions = 2_000; seed = 17 }
  in
  let db = Olar_datagen.Quest.generate params in
  let seq = Dhp.mine db ~minsup:20 in
  let par = Dhp.mine ~domains:4 db ~minsup:20 in
  check entries "identical results" (sorted_frequent seq) (sorted_frequent par);
  Alcotest.check_raises "domains 0" (Invalid_argument "Dhp.mine: domains")
    (fun () -> ignore (Dhp.mine ~domains:0 db ~minsup:20))

let dhp_hashtree_counting_oracle_prop =
  miner_oracle_prop ~name:"dhp with hashtree counting: equals brute force"
    (fun db ~minsup ->
      Dhp.mine ~buckets:16 ~counting:Levelwise.Use_hashtree db ~minsup)

let seed_reuse_prop =
  QCheck2.Test.make ~name:"seeded remine equals fresh mine" ~count:60
    ~print:(fun (db, (a, b)) ->
      Helpers.db_print db ^ Printf.sprintf " low=%d high=%d" a b)
    QCheck2.Gen.(pair Helpers.db_gen (pair (int_range 1 4) (int_range 0 4)))
    (fun (db, (low, bump)) ->
      let high = low + bump in
      let seed = Apriori.mine db ~minsup:low in
      let reused = Apriori.mine db ~seed ~minsup:high in
      let fresh = Apriori.mine db ~minsup:high in
      Helpers.sort_entries (Frequent.to_list reused)
      = Helpers.sort_entries (Frequent.to_list fresh))

(* ------------------------------------------------------------------ *)
(* FP-Growth *)

let test_fpgrowth_small_db () =
  let db = Helpers.small_db () in
  List.iter
    (fun minsup ->
      let got = Fpgrowth.mine db ~minsup in
      check entries
        (Printf.sprintf "minsup=%d" minsup)
        (Helpers.sort_entries (Helpers.brute_frequent db ~minsup))
        (sorted_frequent got))
    [ 1; 2; 3; 4; 6; 11 ]

let test_fpgrowth_single_path () =
  (* a database whose FP-tree is one chain *)
  let db = Database.of_lists ~num_items:4 [ [ 0 ]; [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1; 2; 3 ] ] in
  let got = Fpgrowth.mine db ~minsup:1 in
  check entries "single chain"
    (Helpers.sort_entries (Helpers.brute_frequent db ~minsup:1))
    (sorted_frequent got)

let test_fpgrowth_stats () =
  let db = Helpers.small_db () in
  let stats = Stats.create () in
  let f = Fpgrowth.mine ~stats db ~minsup:2 in
  check Alcotest.int "two passes" 2 (Olar_util.Timer.Counter.value stats.Stats.passes);
  check Alcotest.int "no candidates" 0
    (Olar_util.Timer.Counter.value stats.Stats.candidates);
  check Alcotest.int "frequent counted" (Frequent.total f)
    (Olar_util.Timer.Counter.value stats.Stats.frequent);
  Alcotest.check_raises "minsup 0" (Invalid_argument "Fpgrowth.mine: minsup")
    (fun () -> ignore (Fpgrowth.mine db ~minsup:0))

let test_fpgrowth_quest_data () =
  let params =
    { Olar_datagen.Params.default with Olar_datagen.Params.num_items = 100;
      num_potential = 30; num_transactions = 1_500; seed = 31 }
  in
  let db = Olar_datagen.Quest.generate params in
  List.iter
    (fun minsup ->
      let fp = Fpgrowth.mine db ~minsup in
      let ap = Apriori.mine db ~minsup in
      check Alcotest.int
        (Printf.sprintf "totals agree at %d" minsup)
        (Frequent.total ap) (Frequent.total fp);
      check entries "entries agree" (sorted_frequent ap) (sorted_frequent fp))
    [ 15; 40; 100 ]

let fpgrowth_oracle_prop =
  miner_oracle_prop ~name:"fpgrowth: equals brute force" (fun db ~minsup ->
      Fpgrowth.mine db ~minsup)

(* ------------------------------------------------------------------ *)
(* Threshold search *)

let test_threshold_finds_window () =
  let db = Helpers.small_db () in
  (* brute force: counts per threshold let us verify the window *)
  let r = Threshold.naive db ~target:8 ~slack:3 in
  let g = Frequent.total r.Threshold.itemsets in
  check Alcotest.bool (Printf.sprintf "within window (got %d)" g) true
    (g <= 8 && g >= 5);
  check Alcotest.int "result is complete mining at threshold" g
    (List.length (Helpers.brute_frequent db ~minsup:r.Threshold.threshold))

let test_threshold_never_exceeds_target () =
  let db = Helpers.small_db () in
  List.iter
    (fun target ->
      let r = Threshold.naive db ~target ~slack:0 in
      check Alcotest.bool
        (Printf.sprintf "target %d not exceeded" target)
        true
        (Frequent.total r.Threshold.itemsets <= target))
    [ 1; 2; 3; 5; 10; 100 ]

let test_threshold_optimized_agrees () =
  let db = Helpers.small_db () in
  List.iter
    (fun target ->
      let n = Threshold.naive db ~target ~slack:(target / 4) in
      let o = Threshold.optimized db ~target ~slack:(target / 4) in
      check Alcotest.int
        (Printf.sprintf "thresholds agree at target %d" target)
        n.Threshold.threshold o.Threshold.threshold;
      check entries "itemsets agree"
        (Helpers.sort_entries (Frequent.to_list n.Threshold.itemsets))
        (Helpers.sort_entries (Frequent.to_list o.Threshold.itemsets)))
    [ 1; 4; 8; 12; 100 ]

let test_threshold_huge_target () =
  (* Target above everything the db can produce: threshold must reach 1
     and return all itemsets. *)
  let db = Helpers.small_db () in
  let r = Threshold.optimized db ~target:10_000 ~slack:100 in
  check Alcotest.int "threshold bottoms out" 1 r.Threshold.threshold;
  check Alcotest.int "all itemsets"
    (List.length (Helpers.brute_frequent db ~minsup:1))
    (Frequent.total r.Threshold.itemsets)

let test_threshold_validation () =
  let db = Helpers.small_db () in
  Alcotest.check_raises "target 0" (Invalid_argument "Threshold: target")
    (fun () -> ignore (Threshold.naive db ~target:0 ~slack:0));
  Alcotest.check_raises "slack too big" (Invalid_argument "Threshold: slack")
    (fun () -> ignore (Threshold.naive db ~target:5 ~slack:5))

let test_threshold_optimized_cheaper () =
  let params = { Olar_datagen.Params.default with num_transactions = 500 } in
  let db = Olar_datagen.Quest.generate params in
  let sn = Stats.create () and so = Stats.create () in
  let n = Threshold.naive ~stats:sn db ~target:300 ~slack:30 in
  let o = Threshold.optimized ~stats:so db ~target:300 ~slack:30 in
  check Alcotest.int "same answer" n.Threshold.threshold o.Threshold.threshold;
  check Alcotest.bool
    (Printf.sprintf "optimized does less counting (%d <= %d)"
       (Olar_util.Timer.Counter.value so.Stats.candidates)
       (Olar_util.Timer.Counter.value sn.Stats.candidates))
    true
    (Olar_util.Timer.Counter.value so.Stats.candidates
    <= Olar_util.Timer.Counter.value sn.Stats.candidates)

let test_threshold_deadline () =
  let db = Helpers.small_db () in
  (* zero budget: at most the final completion probe runs *)
  let r = Threshold.optimized ~deadline_s:0.0 db ~target:8 ~slack:0 in
  check Alcotest.bool "deadline reported" true r.Threshold.hit_deadline;
  check Alcotest.bool "still a complete result" true
    (Frequent.complete r.Threshold.itemsets);
  check Alcotest.bool "never exceeds target" true
    (Frequent.total r.Threshold.itemsets <= 8);
  (* generous budget: behaves as without one *)
  let full = Threshold.optimized ~deadline_s:60.0 db ~target:8 ~slack:0 in
  let unlimited = Threshold.optimized db ~target:8 ~slack:0 in
  check Alcotest.bool "no deadline hit" false full.Threshold.hit_deadline;
  check Alcotest.int "same threshold" unlimited.Threshold.threshold
    full.Threshold.threshold;
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Threshold: deadline_s") (fun () ->
      ignore (Threshold.optimized ~deadline_s:(-1.0) db ~target:8 ~slack:0))

let test_threshold_fpgrowth_miner () =
  let db = Helpers.small_db () in
  let d = Threshold.optimized ~miner:Threshold.Use_dhp db ~target:8 ~slack:2 in
  let f = Threshold.optimized ~miner:Threshold.Use_fpgrowth db ~target:8 ~slack:2 in
  check Alcotest.int "same threshold" d.Threshold.threshold f.Threshold.threshold;
  check entries "same itemsets"
    (sorted_frequent d.Threshold.itemsets)
    (sorted_frequent f.Threshold.itemsets)

let threshold_agreement_prop =
  QCheck2.Test.make ~name:"threshold: naive and optimized agree" ~count:40
    ~print:(fun (db, target) -> Helpers.db_print db ^ Printf.sprintf " target=%d" target)
    QCheck2.Gen.(pair Helpers.db_gen (int_range 1 40))
    (fun (db, target) ->
      let slack = target / 5 in
      let n = Threshold.naive db ~target ~slack in
      let o = Threshold.optimized db ~target ~slack in
      n.Threshold.threshold = o.Threshold.threshold
      && Frequent.total n.Threshold.itemsets <= target
      && Frequent.total n.Threshold.itemsets = Frequent.total o.Threshold.itemsets)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "mining.trie",
      [
        case "insert/count" test_trie_insert_count;
        case "sorted output" test_trie_sorted_output;
        case "wrong arity" test_trie_wrong_arity;
        case "short transaction" test_trie_short_transaction;
        QCheck_alcotest.to_alcotest trie_vs_scan_prop;
      ] );
    ( "mining.candidate",
      [
        case "pairs" test_candidate_pairs;
        case "join+prune" test_candidate_join_prune;
        case "no join" test_candidate_no_join;
        case "validation" test_candidate_validation;
        QCheck_alcotest.to_alcotest candidate_complete_prop;
      ] );
    ( "mining.frequent",
      [
        case "accessors" test_frequent_accessors;
        case "validation" test_frequent_validation;
        case "restrict" test_frequent_restrict;
      ] );
    ( "mining.apriori",
      [
        case "small db" test_apriori_small_db;
        case "minsup 1" test_apriori_minsup_one;
        case "nothing frequent" test_apriori_nothing_frequent;
        case "domains exceed transactions" test_domains_exceed_transactions;
        case "validation" test_apriori_validation;
        case "stats" test_apriori_stats;
        case "cap (early termination)" test_apriori_cap;
        case "max_level" test_apriori_max_level;
        case "seed reuse" test_apriori_seed_reuse;
        case "partial seed" test_apriori_seed_partial;
        case "seed validation" test_apriori_seed_validation;
        QCheck_alcotest.to_alcotest apriori_oracle_prop;
        QCheck_alcotest.to_alcotest seed_reuse_prop;
      ] );
    ( "mining.dhp",
      [
        case "matches apriori" test_dhp_matches_apriori;
        case "small buckets" test_dhp_small_buckets;
        case "hash all levels" test_dhp_hash_all_levels;
        case "prunes candidates" test_dhp_prunes_candidates;
        QCheck_alcotest.to_alcotest dhp_oracle_prop;
        QCheck_alcotest.to_alcotest dhp_hash_all_oracle_prop;
        QCheck_alcotest.to_alcotest hashtree_counting_oracle_prop;
        QCheck_alcotest.to_alcotest dhp_hashtree_counting_oracle_prop;
        QCheck_alcotest.to_alcotest parallel_counting_oracle_prop;
        case "parallel equals sequential" parallel_equals_sequential;
      ] );
    ( "mining.fpgrowth",
      [
        case "small db" test_fpgrowth_small_db;
        case "single path" test_fpgrowth_single_path;
        case "stats" test_fpgrowth_stats;
        case "quest data" test_fpgrowth_quest_data;
        QCheck_alcotest.to_alcotest fpgrowth_oracle_prop;
      ] );
    ( "mining.threshold",
      [
        case "finds window" test_threshold_finds_window;
        case "never exceeds target" test_threshold_never_exceeds_target;
        case "optimized agrees with naive" test_threshold_optimized_agrees;
        case "huge target" test_threshold_huge_target;
        case "validation" test_threshold_validation;
        case "optimized is cheaper" test_threshold_optimized_cheaper;
        case "fpgrowth as subroutine" test_threshold_fpgrowth_miner;
        case "preprocessing-time deadline" test_threshold_deadline;
        QCheck_alcotest.to_alcotest threshold_agreement_prop;
      ] );
  ]
